"""Batched descriptor posting and completion draining (E18 data plane)."""

import pytest

from repro.errors import DescriptorError
from repro.hw.physmem import PAGE_SIZE
from repro.via.constants import VIP_SUCCESS, ReliabilityLevel
from repro.via.cq import CompletionQueue
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.machine import connected_pair


@pytest.fixture
def pair():
    return connected_pair("kiobuf")


def recv_descs(ua, vi=None, n=4, npages=1):
    """Build ``n`` receive descriptors over fresh registered buffers."""
    descs = []
    for _ in range(n):
        va = ua.task.mmap(npages)
        reg = ua.register_mem(va, npages * PAGE_SIZE)
        descs.append(Descriptor.recv([ua.segment(reg)]))
    return descs


def send_descs(ua, payloads):
    """Write each payload into its own registered page and build a send
    descriptor for it."""
    descs = []
    for data in payloads:
        va = ua.task.mmap(1)
        reg = ua.register_mem(va, PAGE_SIZE)
        ua.task.write(va, data)
        descs.append(Descriptor.send([DataSegment(reg.handle, va,
                                                  len(data))]))
    return descs


class TestBatchedPosting:
    def test_batched_roundtrip_matches_singles(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        rdescs = recv_descs(ua_r, n=4)
        assert ua_r.post_recv_many(vi_r, rdescs) == 4
        payloads = [f"batched-{i}".encode() for i in range(4)]
        sdescs = send_descs(ua_s, payloads)
        assert ua_s.post_send_many(vi_s, sdescs) == 4
        for sdesc in sdescs:
            assert sdesc.status == VIP_SUCCESS
        for i, expect in enumerate(payloads):
            got = ua_r.recv_done(vi_r)
            assert got is rdescs[i]
            assert ua_r.recv_bytes(vi_r, got) == expect

    def test_batch_amortizes_doorbell_and_fetch_charges(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        costs = ua_r.agent.kernel.costs
        n = 8
        batch = recv_descs(ua_r, n=n)
        singles = recv_descs(ua_r, n=n)
        clock = cluster.clock
        with clock.measure() as batched:
            ua_r.post_recv_many(vi_r, batch)
        with clock.measure() as one_by_one:
            for desc in singles:
                ua_r.post_recv(vi_r, desc)
        # The batch pays build per descriptor but doorbell + fetch once.
        saved = (n - 1) * (costs.doorbell_ring_ns
                           + costs.descriptor_fetch_ns)
        assert one_by_one.elapsed_ns - batched.elapsed_ns == saved

    def test_batch_validation_is_all_or_nothing(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        good = recv_descs(ua_r, n=2)
        bad = send_descs(ua_s, [b"wrong-queue"])[0]
        before = len(vi_r.recv_queue)
        with pytest.raises(DescriptorError):
            ua_r.post_recv_many(vi_r, good[:1] + [bad] + good[1:])
        assert len(vi_r.recv_queue) == before

        rogue = recv_descs(ua_r, n=1)[0]
        with pytest.raises(DescriptorError):
            ua_s.post_send_many(vi_s, [rogue])
        assert len(vi_s.send_queue) == 0

    def test_empty_batch_is_a_noop(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        before = cluster.clock.now_ns
        assert ua_r.post_recv_many(vi_r, []) == 0
        assert ua_s.post_send_many(vi_s, []) == 0
        assert cluster.clock.now_ns == before


class TestDrainBatch:
    def test_drains_fifo_and_empties_queue(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        # Rebuild the receive side on a CQ so completions aggregate.
        cq = ua_r.create_cq()
        vi_r2 = ua_r.create_vi(recv_cq=cq)
        vi_s2 = ua_s.create_vi()
        cluster.connect(vi_s2, cluster[0], vi_r2, cluster[1])
        rdescs = recv_descs(ua_r, n=3)
        ua_r.post_recv_many(vi_r2, rdescs)
        ua_s.post_send_many(vi_s2, send_descs(
            ua_s, [b"a", b"b", b"c"]))
        assert len(cq) == 3
        completions = cq.drain_batch()
        assert [c.descriptor for c in completions] == rdescs
        assert all(c.queue == "recv" and c.vi_id == vi_r2.vi_id
                   for c in completions)
        assert len(cq) == 0
        assert cq.drain_batch() == []

    def test_max_items_caps_the_drain(self):
        cq = CompletionQueue()
        for i in range(5):
            cq.post(_completion(i))
        first = cq.drain_batch(max_items=2)
        assert [c.vi_id for c in first] == [0, 1]
        assert cq.drain_batch(max_items=0) == []
        rest = cq.drain_batch(max_items=99)
        assert [c.vi_id for c in rest] == [2, 3, 4]
        assert len(cq) == 0


def _completion(vi_id):
    from repro.via.cq import Completion
    return Completion(vi_id=vi_id, queue="send", descriptor=None)
