"""Edge cases of the memory-management substrate: swap exhaustion,
clock-hand wrap, multi-area unmapping, hint growth."""

import pytest

from repro.errors import OutOfMemory
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.kernel.kernel import Kernel


class TestSwapExhaustion:
    def test_swap_out_stops_gracefully_when_swap_full(self):
        kernel = Kernel(num_frames=128, swap_slots=4)
        t = kernel.create_task()
        va = t.mmap(16)
        t.touch_pages(va, 16)
        freed = paging.swap_out(kernel, 16)
        assert freed == 4                      # only 4 slots existed
        assert kernel.swap.slots_free == 0
        # Further calls free nothing but do not crash.
        assert paging.swap_out(kernel, 4) == 0

    def test_allocation_ooms_when_ram_and_swap_full(self):
        kernel = Kernel(num_frames=64, swap_slots=2, min_free_pages=2)
        t = kernel.create_task()
        usable = kernel.pagemap.free_count
        va = t.mmap(usable + 16)
        with pytest.raises(OutOfMemory):
            t.touch_pages(va, usable + 16)
        # The two swap slots were used in the attempt.
        assert kernel.swap.slots_free == 0

    def test_swap_in_frees_slot_for_reuse(self):
        kernel = Kernel(num_frames=128, swap_slots=1)
        t = kernel.create_task()
        va = t.mmap(2)
        t.write(va, b"a")
        t.write(va + PAGE_SIZE, b"b")
        assert paging.swap_out(kernel, 1) == 1
        assert kernel.swap.slots_free == 0
        t.read(va, 1)                      # swap-in releases the slot
        assert kernel.swap.slots_free == 1
        assert paging.swap_out(kernel, 1) == 1   # reusable


class TestClockHand:
    def test_shrink_mmap_hand_wraps(self, kernel):
        n = kernel.pagemap.num_frames
        kernel._clock_hand = n - 2
        pd = kernel.add_page_cache_page()
        # A full-budget scan must wrap past the end and find the page.
        freed = paging.shrink_mmap(kernel, n)
        assert freed == 1
        assert 0 <= kernel._clock_hand < n
        del pd

    def test_task_swap_hand_resumes(self, kernel):
        t = kernel.create_task()
        va = t.mmap(6)
        t.touch_pages(va, 6)
        paging.swap_out(kernel, 1)
        first = kernel.trace.of_kind("swap_out")[0]["vpn"]
        paging.swap_out(kernel, 1)
        second = kernel.trace.of_kind("swap_out")[1]["vpn"]
        assert second == first + 1     # walk resumed, not restarted


class TestMunmapAcrossAreas:
    def test_munmap_spanning_partial_area(self, kernel):
        t = kernel.create_task()
        va = t.mmap(10)
        t.touch_pages(va, 10)
        t.munmap(va + 2 * PAGE_SIZE, 5)
        assert t.resident_pages() == 5
        spans = [(a.start_vpn - t.vpn_of(va), a.end_vpn - t.vpn_of(va))
                 for a in t.vmas]
        assert spans == [(0, 2), (7, 10)]
        # Access in the hole faults.
        from repro.errors import SegmentationFault
        with pytest.raises(SegmentationFault):
            t.read(va + 3 * PAGE_SIZE, 1)

    def test_mmap_hint_leaves_guard_gaps(self, kernel):
        t = kernel.create_task()
        a = t.mmap(3)
        b = t.mmap(3)
        # A write running off the end of `a` hits the guard gap.
        from repro.errors import SegmentationFault
        with pytest.raises(SegmentationFault):
            t.write(a + 3 * PAGE_SIZE, b"x")
        assert b > a


class TestReclaimPriorities:
    def test_reclaim_trace_bracketing(self, kernel):
        t = kernel.create_task()
        va = t.mmap(8)
        t.touch_pages(va, 8)
        paging.try_to_free_pages(kernel, 2)
        assert kernel.trace.count("reclaim_start") == 1
        done = kernel.trace.last("reclaim_done")
        assert done is not None and done["freed"] >= 2

    def test_try_to_free_gives_up_cleanly(self, kernel):
        # Nothing reclaimable at all.
        assert paging.try_to_free_pages(kernel, 4) == 0
