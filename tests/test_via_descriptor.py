"""Tests for VIA descriptors."""

import pytest

from repro.errors import DescriptorError
from repro.via.constants import DescriptorType
from repro.via.descriptor import DataSegment, Descriptor


def seg(handle=1, va=0, length=100) -> DataSegment:
    return DataSegment(handle, va, length)


class TestDescriptorConstruction:
    def test_send(self):
        d = Descriptor.send([seg()], immediate=b"abcd")
        assert d.dtype == DescriptorType.SEND
        assert d.immediate_data == b"abcd"
        d.validate()

    def test_recv(self):
        d = Descriptor.recv([seg()])
        assert d.dtype == DescriptorType.RECV
        d.validate()

    def test_rdma_write(self):
        d = Descriptor.rdma_write([seg()], remote_handle=9, remote_va=0x1000)
        d.validate()
        assert d.remote_handle == 9

    def test_rdma_read(self):
        d = Descriptor.rdma_read([seg()], remote_handle=9, remote_va=0)
        d.validate()

    def test_total_length(self):
        d = Descriptor.send([seg(length=10), seg(length=20)])
        assert d.total_length == 30

    def test_ids_unique(self):
        assert Descriptor.send([]).desc_id != Descriptor.send([]).desc_id


class TestDescriptorValidation:
    def test_too_many_segments(self):
        d = Descriptor.send([seg() for _ in range(9)])
        with pytest.raises(DescriptorError):
            d.validate()

    def test_negative_segment_length(self):
        d = Descriptor.send([seg(length=-1)])
        with pytest.raises(DescriptorError):
            d.validate()

    def test_immediate_data_limit(self):
        d = Descriptor.send([seg()], immediate=b"12345")
        with pytest.raises(DescriptorError):
            d.validate()

    def test_rdma_requires_remote_addressing(self):
        d = Descriptor(DescriptorType.RDMA_WRITE, [seg()])
        with pytest.raises(DescriptorError):
            d.validate()

    def test_send_must_not_carry_remote_addressing(self):
        d = Descriptor(DescriptorType.SEND, [seg()], remote_handle=1,
                       remote_va=0)
        with pytest.raises(DescriptorError):
            d.validate()

    def test_rdma_read_cannot_carry_immediate(self):
        d = Descriptor(DescriptorType.RDMA_READ, [seg()],
                       immediate_data=b"x", remote_handle=1, remote_va=0)
        with pytest.raises(DescriptorError):
            d.validate()


class TestCompletion:
    def test_complete_sets_fields(self):
        d = Descriptor.send([seg()])
        assert not d.done
        d.complete("VIP_SUCCESS", 42)
        assert d.done
        assert d.status == "VIP_SUCCESS"
        assert d.length_transferred == 42
