"""The SimClock event calendar: ordering, cancellation, freezing,
reset, catch-up semantics, and shim equivalence."""

import pytest

from repro.kernel.reaper import OrphanReaper
from repro.sim.clock import SimClock


class TestCalendarBasics:
    def test_event_fires_during_the_charge_that_crosses_its_deadline(self):
        clock = SimClock()
        fired = []
        clock.schedule_after(100, fired.append)
        clock.charge(99)
        assert fired == []
        clock.charge(1)
        assert fired == [100]

    def test_callback_receives_now_possibly_past_the_deadline(self):
        clock = SimClock()
        fired = []
        clock.schedule_at(100, fired.append)
        clock.charge(250)
        assert fired == [250]

    def test_deadline_at_or_before_now_fires_on_next_charge(self):
        clock = SimClock()
        clock.charge(500)
        fired = []
        clock.schedule_at(100, fired.append)
        # Never synchronously inside schedule_at.
        assert fired == []
        clock.charge(1)
        assert fired == [501]

    def test_deadline_ties_fire_fifo_by_schedule_order(self):
        clock = SimClock()
        order = []
        for label in "abcde":
            clock.schedule_at(100, lambda now, lbl=label: order.append(lbl))
        clock.charge(100)
        assert order == list("abcde")

    def test_events_across_deadlines_fire_in_deadline_order(self):
        clock = SimClock()
        order = []
        clock.schedule_at(300, lambda now: order.append(300))
        clock.schedule_at(100, lambda now: order.append(100))
        clock.schedule_at(200, lambda now: order.append(200))
        clock.charge(1000)
        assert order == [100, 200, 300]

    def test_negative_deadline_and_delay_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.schedule_at(-1, lambda now: None)
        with pytest.raises(ValueError):
            clock.schedule_after(-1, lambda now: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        clock = SimClock()
        fired = []
        event = clock.schedule_after(100, fired.append)
        assert event.pending
        assert clock.cancel(event)
        assert not event.pending
        clock.charge(1000)
        assert fired == []

    def test_cancel_is_idempotent_and_reports_first_win(self):
        clock = SimClock()
        event = clock.schedule_after(100, lambda now: None)
        assert clock.cancel(event)
        assert not clock.cancel(event)
        clock.charge(1000)
        # A fired event cannot be cancelled either.
        other = clock.schedule_after(10, lambda now: None)
        clock.charge(10)
        assert not other.pending
        assert not clock.cancel(other)

    def test_cancel_shard_only_touches_that_shard(self):
        clock = SimClock()
        fired = []
        clock.schedule_after(10, lambda now: fired.append("a"), shard="a")
        clock.schedule_after(10, lambda now: fired.append("b"), shard="b")
        clock.schedule_after(10, lambda now: fired.append("a2"), shard="a")
        assert clock.pending_events(shard="a") == 2
        assert clock.cancel_shard("a") == 2
        assert clock.pending_events(shard="a") == 0
        assert clock.pending_events() == 1
        clock.charge(10)
        assert fired == ["b"]

    def test_mass_cancellation_compacts_without_losing_events(self):
        clock = SimClock()
        fired = []
        events = [clock.schedule_at(i + 1, fired.append)
                  for i in range(100)]
        for event in events[::2]:
            clock.cancel(event)
        assert clock.pending_events() == 50
        clock.charge(200)
        assert len(fired) == 50


class TestDispatchReentrancy:
    def test_callback_may_reschedule_itself(self):
        clock = SimClock()
        fired = []

        def tick(now_ns):
            fired.append(now_ns)
            if len(fired) < 3:
                clock.schedule_after(100, tick)

        clock.schedule_after(100, tick)
        for _ in range(5):
            clock.charge(100)
        assert fired == [100, 200, 300]

    def test_event_made_due_inside_dispatch_fires_in_same_pass(self):
        clock = SimClock()
        fired = []

        def first(now_ns):
            fired.append("first")
            # Already due: must fire before this charge() returns.
            clock.schedule_at(now_ns, lambda now: fired.append("second"))

        clock.schedule_after(10, first)
        clock.charge(10)
        assert fired == ["first", "second"]

    def test_callback_charges_do_not_recurse_into_dispatch(self):
        clock = SimClock()
        depth = []

        def cb(now_ns):
            depth.append(len(depth))
            clock.charge(1_000)   # would re-trigger dispatch if reentrant

        clock.schedule_after(10, cb)
        clock.schedule_after(20, cb)
        clock.charge(10)
        # Both fired exactly once, sequentially (no recursion blow-up).
        assert depth == [0, 1]


class TestFrozenInteraction:
    def test_no_events_fire_while_frozen(self):
        clock = SimClock()
        fired = []
        clock.schedule_after(10, fired.append)
        with clock.frozen():
            clock.charge(1_000_000)
        assert fired == []
        assert clock.now_ns == 0
        clock.charge(10)
        assert fired == [10]


class TestReset:
    def test_reset_cancels_pending_events(self):
        clock = SimClock()
        fired = []
        event = clock.schedule_after(10, fired.append)
        clock.reset()
        assert not event.pending
        assert clock.pending_events() == 0
        clock.charge(1_000)
        assert fired == []
        # Cancelling a stale handle after reset is a harmless no-op.
        assert not clock.cancel(event)

    def test_reset_clears_watcher_bookkeeping(self):
        clock = SimClock()
        ticks = []
        clock.subscribe(ticks.append)
        clock.charge(5)
        clock.reset()
        clock.charge(5)
        assert ticks == [5]    # nothing from the post-reset timeline

    def test_back_to_back_phases_do_not_inherit_cadence(self):
        """Regression: a daemon left scheduled across reset() used to
        misfire into the next benchmark phase with stale deadlines."""
        clock = SimClock()
        fired = []

        def tick(now_ns):
            fired.append(now_ns)
            clock.schedule_after(100, tick)

        clock.schedule_after(100, tick)
        clock.charge(250)          # phase 1: fires once (catch-up)
        assert fired == [250]
        clock.reset()
        clock.charge(99)           # phase 2: fresh timeline, no daemon
        assert fired == [250]
        # Restarting the daemon binds it to the new timeline.
        clock.schedule_after(100, tick)
        clock.charge(100)
        assert fired == [250, 199]

    def test_reset_still_zeroes_time_and_categories(self):
        clock = SimClock()
        clock.charge(123, "dma")
        clock.reset()
        assert clock.now_ns == 0
        assert clock.categories() == {}


class TestSubscribeShim:
    def test_shim_still_fans_out_per_charge(self):
        clock = SimClock()
        ticks = []
        unsubscribe = clock.subscribe(ticks.append)
        clock.charge(5)
        clock.charge(7)
        assert ticks == [5, 12]
        unsubscribe()
        clock.charge(3)
        assert ticks == [5, 12]

    def test_shim_and_calendar_daemons_agree_on_cadence(self):
        """Equivalence: a cadence daemon fires at the same simulated
        times whether it polls from a subscriber or rides the calendar."""
        charges = [40, 40, 40, 250, 10, 100, 60]
        interval = 100

        def run_subscriber():
            clock = SimClock()
            fires = []
            state = {"due": interval}

            def on_tick(now_ns):
                if now_ns >= state["due"]:
                    fires.append(now_ns)
                    state["due"] = now_ns + interval

            clock.subscribe(on_tick)
            for ns in charges:
                clock.charge(ns)
            return fires

        def run_calendar():
            clock = SimClock()
            fires = []

            def on_event(now_ns):
                fires.append(now_ns)
                clock.schedule_after(interval, on_event)

            clock.schedule_after(interval, on_event)
            for ns in charges:
                clock.charge(ns)
            return fires

        assert run_subscriber() == run_calendar()


class TestCadenceCatchUp:
    """Satellite: one large charge jumping several intervals fires a
    periodic daemon once, with the next deadline realigned from now —
    not once per missed interval."""

    def test_calendar_daemon_fires_once_per_large_jump(self):
        clock = SimClock()
        fired = []

        def tick(now_ns):
            fired.append(now_ns)
            clock.schedule_after(100, tick)

        clock.schedule_after(100, tick)
        clock.charge(1_000)        # crosses 10 would-be intervals
        assert fired == [1_000]
        clock.charge(99)
        assert fired == [1_000]
        clock.charge(1)            # realigned: next fire at 1_000 + 100
        assert fired == [1_000, 1_100]

    def test_reaper_catch_up_fires_one_scan_and_realigns(self, kernel):
        reaper = OrphanReaper(kernel, interval_ns=1_000).start()
        assert reaper.scans == 0
        kernel.clock.charge(5_500)         # 5.5 intervals in one charge
        assert reaper.scans == 1
        before = kernel.clock.now_ns
        # Next scan is one interval after the catch-up scan completed
        # (the scan itself charges syscall time), not at a stale
        # multiple of the original phase.
        assert reaper._next_due_ns >= before
        kernel.clock.charge(reaper._next_due_ns - kernel.clock.now_ns)
        assert reaper.scans == 2
        reaper.stop()

    def test_reaper_start_is_idempotent(self, kernel):
        # The legacy per-charge subscriber arm is retired: start() always
        # rides the calendar, and calling it twice must not double-book
        # the cadence event.
        reaper = OrphanReaper(kernel, interval_ns=1_000).start()
        reaper.start()
        assert kernel.clock.pending_events() == 1
        kernel.clock.charge(1_000)
        assert reaper.scans == 1
        reaper.stop()

    def test_stopped_reaper_fires_no_more_events(self, kernel):
        reaper = OrphanReaper(kernel, interval_ns=1_000).start()
        reaper.stop()
        kernel.clock.charge(10_000)
        assert reaper.scans == 0
        assert kernel.clock.pending_events() == 0
