"""The SimClock event calendar: ordering, cancellation, freezing,
reset, catch-up semantics, and shim equivalence."""

import pytest

from repro.kernel.reaper import OrphanReaper
from repro.sim.clock import SimClock


class TestCalendarBasics:
    def test_event_fires_during_the_charge_that_crosses_its_deadline(self):
        clock = SimClock()
        fired = []
        clock.schedule_after(100, fired.append)
        clock.charge(99)
        assert fired == []
        clock.charge(1)
        assert fired == [100]

    def test_callback_receives_now_possibly_past_the_deadline(self):
        clock = SimClock()
        fired = []
        clock.schedule_at(100, fired.append)
        clock.charge(250)
        assert fired == [250]

    def test_deadline_at_or_before_now_fires_on_next_charge(self):
        clock = SimClock()
        clock.charge(500)
        fired = []
        clock.schedule_at(100, fired.append)
        # Never synchronously inside schedule_at.
        assert fired == []
        clock.charge(1)
        assert fired == [501]

    def test_deadline_ties_fire_fifo_by_schedule_order(self):
        clock = SimClock()
        order = []
        for label in "abcde":
            clock.schedule_at(100, lambda now, lbl=label: order.append(lbl))
        clock.charge(100)
        assert order == list("abcde")

    def test_events_across_deadlines_fire_in_deadline_order(self):
        clock = SimClock()
        order = []
        clock.schedule_at(300, lambda now: order.append(300))
        clock.schedule_at(100, lambda now: order.append(100))
        clock.schedule_at(200, lambda now: order.append(200))
        clock.charge(1000)
        assert order == [100, 200, 300]

    def test_negative_deadline_and_delay_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.schedule_at(-1, lambda now: None)
        with pytest.raises(ValueError):
            clock.schedule_after(-1, lambda now: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        clock = SimClock()
        fired = []
        event = clock.schedule_after(100, fired.append)
        assert event.pending
        assert clock.cancel(event)
        assert not event.pending
        clock.charge(1000)
        assert fired == []

    def test_cancel_is_idempotent_and_reports_first_win(self):
        clock = SimClock()
        event = clock.schedule_after(100, lambda now: None)
        assert clock.cancel(event)
        assert not clock.cancel(event)
        clock.charge(1000)
        # A fired event cannot be cancelled either.
        other = clock.schedule_after(10, lambda now: None)
        clock.charge(10)
        assert not other.pending
        assert not clock.cancel(other)

    def test_cancel_shard_only_touches_that_shard(self):
        clock = SimClock()
        fired = []
        clock.schedule_after(10, lambda now: fired.append("a"), shard="a")
        clock.schedule_after(10, lambda now: fired.append("b"), shard="b")
        clock.schedule_after(10, lambda now: fired.append("a2"), shard="a")
        assert clock.pending_events(shard="a") == 2
        assert clock.cancel_shard("a") == 2
        assert clock.pending_events(shard="a") == 0
        assert clock.pending_events() == 1
        clock.charge(10)
        assert fired == ["b"]

    def test_mass_cancellation_compacts_without_losing_events(self):
        clock = SimClock()
        fired = []
        events = [clock.schedule_at(i + 1, fired.append)
                  for i in range(100)]
        for event in events[::2]:
            clock.cancel(event)
        assert clock.pending_events() == 50
        clock.charge(200)
        assert len(fired) == 50


class TestDispatchReentrancy:
    def test_callback_may_reschedule_itself(self):
        clock = SimClock()
        fired = []

        def tick(now_ns):
            fired.append(now_ns)
            if len(fired) < 3:
                clock.schedule_after(100, tick)

        clock.schedule_after(100, tick)
        for _ in range(5):
            clock.charge(100)
        assert fired == [100, 200, 300]

    def test_event_made_due_inside_dispatch_fires_in_same_pass(self):
        clock = SimClock()
        fired = []

        def first(now_ns):
            fired.append("first")
            # Already due: must fire before this charge() returns.
            clock.schedule_at(now_ns, lambda now: fired.append("second"))

        clock.schedule_after(10, first)
        clock.charge(10)
        assert fired == ["first", "second"]

    def test_callback_charges_do_not_recurse_into_dispatch(self):
        clock = SimClock()
        depth = []

        def cb(now_ns):
            depth.append(len(depth))
            clock.charge(1_000)   # would re-trigger dispatch if reentrant

        clock.schedule_after(10, cb)
        clock.schedule_after(20, cb)
        clock.charge(10)
        # Both fired exactly once, sequentially (no recursion blow-up).
        assert depth == [0, 1]


class TestFrozenInteraction:
    def test_no_events_fire_while_frozen(self):
        clock = SimClock()
        fired = []
        clock.schedule_after(10, fired.append)
        with clock.frozen():
            clock.charge(1_000_000)
        assert fired == []
        assert clock.now_ns == 0
        clock.charge(10)
        assert fired == [10]


class TestReset:
    def test_reset_cancels_pending_events(self):
        clock = SimClock()
        fired = []
        event = clock.schedule_after(10, fired.append)
        clock.reset()
        assert not event.pending
        assert clock.pending_events() == 0
        clock.charge(1_000)
        assert fired == []
        # Cancelling a stale handle after reset is a harmless no-op.
        assert not clock.cancel(event)

    def test_reset_clears_watcher_bookkeeping(self):
        clock = SimClock()
        ticks = []
        clock.subscribe(ticks.append)
        clock.charge(5)
        clock.reset()
        clock.charge(5)
        assert ticks == [5]    # nothing from the post-reset timeline

    def test_back_to_back_phases_do_not_inherit_cadence(self):
        """Regression: a daemon left scheduled across reset() used to
        misfire into the next benchmark phase with stale deadlines."""
        clock = SimClock()
        fired = []

        def tick(now_ns):
            fired.append(now_ns)
            clock.schedule_after(100, tick)

        clock.schedule_after(100, tick)
        clock.charge(250)          # phase 1: fires once (catch-up)
        assert fired == [250]
        clock.reset()
        clock.charge(99)           # phase 2: fresh timeline, no daemon
        assert fired == [250]
        # Restarting the daemon binds it to the new timeline.
        clock.schedule_after(100, tick)
        clock.charge(100)
        assert fired == [250, 199]

    def test_reset_still_zeroes_time_and_categories(self):
        clock = SimClock()
        clock.charge(123, "dma")
        clock.reset()
        assert clock.now_ns == 0
        assert clock.categories() == {}


class TestSubscribeShim:
    def test_shim_still_fans_out_per_charge(self):
        clock = SimClock()
        ticks = []
        unsubscribe = clock.subscribe(ticks.append)
        clock.charge(5)
        clock.charge(7)
        assert ticks == [5, 12]
        unsubscribe()
        clock.charge(3)
        assert ticks == [5, 12]

    def test_shim_and_calendar_daemons_agree_on_cadence(self):
        """Equivalence: a cadence daemon fires at the same simulated
        times whether it polls from a subscriber or rides the calendar."""
        charges = [40, 40, 40, 250, 10, 100, 60]
        interval = 100

        def run_subscriber():
            clock = SimClock()
            fires = []
            state = {"due": interval}

            def on_tick(now_ns):
                if now_ns >= state["due"]:
                    fires.append(now_ns)
                    state["due"] = now_ns + interval

            clock.subscribe(on_tick)
            for ns in charges:
                clock.charge(ns)
            return fires

        def run_calendar():
            clock = SimClock()
            fires = []

            def on_event(now_ns):
                fires.append(now_ns)
                clock.schedule_after(interval, on_event)

            clock.schedule_after(interval, on_event)
            for ns in charges:
                clock.charge(ns)
            return fires

        assert run_subscriber() == run_calendar()


class TestCadenceCatchUp:
    """Satellite: one large charge jumping several intervals fires a
    periodic daemon once, with the next deadline realigned from now —
    not once per missed interval."""

    def test_calendar_daemon_fires_once_per_large_jump(self):
        clock = SimClock()
        fired = []

        def tick(now_ns):
            fired.append(now_ns)
            clock.schedule_after(100, tick)

        clock.schedule_after(100, tick)
        clock.charge(1_000)        # crosses 10 would-be intervals
        assert fired == [1_000]
        clock.charge(99)
        assert fired == [1_000]
        clock.charge(1)            # realigned: next fire at 1_000 + 100
        assert fired == [1_000, 1_100]

    def test_reaper_catch_up_fires_one_scan_and_realigns(self, kernel):
        reaper = OrphanReaper(kernel, interval_ns=1_000).start()
        assert reaper.scans == 0
        kernel.clock.charge(5_500)         # 5.5 intervals in one charge
        assert reaper.scans == 1
        before = kernel.clock.now_ns
        # Next scan is one interval after the catch-up scan completed
        # (the scan itself charges syscall time), not at a stale
        # multiple of the original phase.
        assert reaper._next_due_ns >= before
        kernel.clock.charge(reaper._next_due_ns - kernel.clock.now_ns)
        assert reaper.scans == 2
        reaper.stop()

    def test_reaper_start_is_idempotent(self, kernel):
        # The legacy per-charge subscriber arm is retired: start() always
        # rides the calendar, and calling it twice must not double-book
        # the cadence event.
        reaper = OrphanReaper(kernel, interval_ns=1_000).start()
        reaper.start()
        assert kernel.clock.pending_events() == 1
        kernel.clock.charge(1_000)
        assert reaper.scans == 1
        reaper.stop()

    def test_stopped_reaper_fires_no_more_events(self, kernel):
        reaper = OrphanReaper(kernel, interval_ns=1_000).start()
        reaper.stop()
        kernel.clock.charge(10_000)
        assert reaper.scans == 0
        assert kernel.clock.pending_events() == 0


class TestTieBreakPermutation:
    """The seeded tie-break hook (satellite of the race-explorer PR):
    identity seed preserves FIFO exactly, integer seeds permute ties
    deterministically, and determinism survives reset()."""

    @staticmethod
    def _run_ties(clock, labels, deadline=100):
        order = []
        for label in labels:
            clock.schedule_at(deadline, lambda now, l=label: order.append(l))
        clock.charge(deadline)
        return order

    def test_identity_seed_preserves_fifo(self):
        clock = SimClock()
        assert clock.set_tiebreak(None) is None
        assert self._run_ties(clock, "abcdef") == list("abcdef")

    def test_fifo_determinism_across_reset(self):
        # Same schedule replayed after reset() dispatches identically,
        # with and without the identity seed installed.
        clock = SimClock()
        first = self._run_ties(clock, "abcdef")
        clock.reset()
        clock.set_tiebreak(None)
        second = self._run_ties(clock, "abcdef")
        assert first == second == list("abcdef")

    def test_seeded_permutation_is_deterministic(self):
        runs = []
        for _ in range(2):
            clock = SimClock()
            clock.set_tiebreak(7)
            runs.append(self._run_ties(clock, "abcdefgh"))
        assert runs[0] == runs[1]
        assert sorted(runs[0]) == list("abcdefgh")

    def test_seed_survives_reset(self):
        clock = SimClock()
        clock.set_tiebreak(7)
        first = self._run_ties(clock, "abcdefgh")
        clock.reset()
        assert clock.tiebreak_seed == 7
        assert self._run_ties(clock, "abcdefgh") == first

    def test_different_seeds_reach_different_orders(self):
        # Not every pair of seeds differs, but across a handful at
        # least one must deviate from FIFO — otherwise the hook is
        # inert and the explorer explores nothing.
        orders = set()
        for seed in range(1, 8):
            clock = SimClock()
            clock.set_tiebreak(seed)
            orders.add(tuple(self._run_ties(clock, "abcdefgh")))
        assert len(orders) > 1 or tuple("abcdefgh") not in orders

    def test_deadline_order_never_violated(self):
        clock = SimClock()
        clock.set_tiebreak(12345)
        order = []
        for deadline in (300, 100, 200):
            for label in "xy":
                clock.schedule_at(
                    deadline,
                    lambda now, l=f"{deadline}{label}": order.append(l))
        clock.charge(300)
        assert [o[:3] for o in order] == ["100", "100", "200", "200",
                                          "300", "300"]

    def test_tiebreak_key_is_pure(self):
        from repro.sim.clock import tiebreak_key
        assert tiebreak_key(3, 17) == tiebreak_key(3, 17)
        assert tiebreak_key(3, 17) != tiebreak_key(4, 17)
        # Seed 0 is a real seed, not the identity.
        assert tiebreak_key(0, 1) != 0


class TestCalendarHooks:
    def test_hooks_observe_schedule_and_dispatch(self):
        from repro.sim.clock import CalendarHook

        class Recorder(CalendarHook):
            def __init__(self):
                self.log = []

            def scheduled(self, event):
                self.log.append(("sched", event.name))

            def pass_begin(self):
                self.log.append(("pass",))

            def fire_begin(self, event):
                self.log.append(("begin", event.name))

            def fire_end(self, event):
                self.log.append(("end", event.name))

        clock = SimClock()
        rec = Recorder()
        remove = clock.add_calendar_hook(rec)
        clock.schedule_at(10, lambda now: None, name="a")
        clock.schedule_at(10, lambda now: None, name="b")
        clock.charge(10)
        assert rec.log == [("sched", "a"), ("sched", "b"), ("pass",),
                           ("begin", "a"), ("end", "a"),
                           ("begin", "b"), ("end", "b")]
        remove()
        clock.schedule_at(20, lambda now: None, name="c")
        clock.charge(10)
        assert ("begin", "c") not in rec.log

    def test_current_firing_names_the_running_callback(self):
        from repro.sim.clock import CalendarHook

        clock = SimClock()
        clock.add_calendar_hook(CalendarHook())
        seen = []

        def cb(now):
            seen.append(clock.current_firing.name)

        clock.schedule_at(5, cb, name="probe")
        assert clock.current_firing is None
        clock.charge(5)
        assert seen == ["probe"]
        assert clock.current_firing is None

    def test_fire_end_runs_even_when_callback_raises(self):
        from repro.sim.clock import CalendarHook

        class Recorder(CalendarHook):
            def __init__(self):
                self.ended = []

            def fire_end(self, event):
                self.ended.append(event.name)

        clock = SimClock()
        rec = Recorder()
        clock.add_calendar_hook(rec)

        def boom(now):
            raise RuntimeError("callback failed")

        clock.schedule_at(5, boom, name="boom")
        with pytest.raises(RuntimeError):
            clock.charge(5)
        assert rec.ended == ["boom"]
        assert clock.current_firing is None
