"""Unit tests for the fault-injection framework (repro.sim.faults)."""

from __future__ import annotations

import pytest

from repro.sim.faults import FaultPlan, FaultStats, install
from repro.via.machine import Cluster, Machine


class TestFaultPlanDecisions:
    def test_zero_rates_inject_nothing(self):
        plan = FaultPlan(seed=1)
        for _ in range(100):
            assert not plan.should_drop()
            assert not plan.should_duplicate()
            assert not plan.should_corrupt()
            assert plan.delay() == 0
            assert not plan.should_fail_dma()
        assert plan.stats.total == 0

    def test_full_rates_inject_always(self):
        plan = FaultPlan(seed=1, loss_rate=1.0, dma_fail_rate=1.0)
        assert all(plan.should_drop() for _ in range(10))
        assert all(plan.should_fail_dma() for _ in range(10))
        assert plan.stats.drops == 10
        assert plan.stats.dma_failures == 10

    def test_same_seed_same_decisions(self):
        def run(seed):
            plan = FaultPlan(seed=seed, loss_rate=0.5, corrupt_rate=0.3)
            return [(plan.should_drop(), plan.should_corrupt())
                    for _ in range(200)]
        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=-0.1)

    def test_negative_delay_ns_rejected(self):
        """Regression: ``__post_init__`` validated the rates but not
        ``delay_ns`` — a negative delay moved packets back in time."""
        with pytest.raises(ValueError, match="delay_ns"):
            FaultPlan(delay_ns=-1)
        assert FaultPlan(delay_ns=0).delay_ns == 0

    def test_negative_crash_pid_rejected(self):
        with pytest.raises(ValueError, match="crash_pid"):
            FaultPlan(crash_pid=-5)
        assert FaultPlan(crash_pid=None).crash_pid is None
        assert FaultPlan(crash_pid=0).crash_pid == 0

    def test_negative_nic_reset_at_ns_rejected(self):
        with pytest.raises(ValueError, match="nic_reset_at_ns"):
            FaultPlan(nic_reset_at_ns=-100)
        assert FaultPlan(nic_reset_at_ns=0).nic_reset_at_ns == 0

    def test_corrupt_flips_exactly_one_byte(self):
        plan = FaultPlan(seed=3)
        payload = bytes(range(64))
        corrupted = plan.corrupt(payload)
        assert len(corrupted) == len(payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, corrupted))
                 if a != b]
        assert len(diffs) == 1
        assert corrupted[diffs[0]] == payload[diffs[0]] ^ 0xFF

    def test_corrupt_empty_payload_is_noop(self):
        assert FaultPlan(seed=3).corrupt(b"") == b""

    def test_delay_returns_configured_ns(self):
        plan = FaultPlan(seed=0, delay_rate=1.0, delay_ns=1234)
        assert plan.delay() == 1234
        assert plan.stats.delays == 1


class TestFaultBudgets:
    def test_registration_failure_budget_is_consumed(self):
        plan = FaultPlan(registration_failures=2)
        assert plan.take_registration_failure()
        assert plan.take_registration_failure()
        assert not plan.take_registration_failure()
        assert plan.stats.registration_failures == 2

    def test_pin_failure_budget_is_consumed(self):
        plan = FaultPlan(pin_failures=1)
        assert plan.take_pin_failure()
        assert not plan.take_pin_failure()
        assert plan.stats.pin_failures == 1


class TestNicResetSchedule:
    def test_reset_fires_once_at_time(self):
        plan = FaultPlan(nic_reset_at_ns=1000)
        assert not plan.nic_reset_due(999, "m0.nic0")
        assert plan.nic_reset_due(1000, "m0.nic0")
        # one-shot: never again, on any NIC
        assert not plan.nic_reset_due(2000, "m0.nic0")
        assert not plan.nic_reset_due(2000, "m1.nic0")
        assert plan.stats.nic_resets == 1

    def test_reset_name_filter(self):
        plan = FaultPlan(nic_reset_at_ns=0, nic_reset_name="m1.nic0")
        assert not plan.nic_reset_due(5000, "m0.nic0")
        assert plan.nic_reset_due(5000, "m1.nic0")

    def test_no_schedule_never_fires(self):
        plan = FaultPlan()
        assert not plan.nic_reset_due(10**12, "m0.nic0")


class TestInstall:
    def test_install_on_cluster_wires_every_layer(self):
        cluster = Cluster(2)
        plan = FaultPlan(seed=5)
        assert install(plan, cluster) is plan
        assert cluster.fabric.fault_plan is plan
        for m in cluster.machines:
            assert m.nic.fault_plan is plan
            assert m.nic.dma.fault_plan is plan
            assert m.agent.fault_plan is plan

    def test_install_none_uninstalls(self):
        cluster = Cluster(2)
        cluster.inject_faults(FaultPlan())
        cluster.inject_faults(None)
        assert cluster.fabric.fault_plan is None
        assert cluster[0].nic.fault_plan is None
        assert cluster[0].agent.fault_plan is None

    def test_install_on_machine(self):
        m = Machine()
        plan = m.inject_faults(FaultPlan(seed=2))
        assert m.fabric.fault_plan is plan
        assert m.nic.fault_plan is plan

    def test_install_on_fabric_covers_attached_nics(self):
        m = Machine()
        plan = FaultPlan()
        install(plan, m.fabric)
        assert m.fabric.fault_plan is plan
        assert m.nic.fault_plan is plan
        assert m.nic.dma.fault_plan is plan

    def test_install_rejects_other_targets(self):
        with pytest.raises(TypeError):
            install(FaultPlan(), object())


def test_stats_total_sums_all_kinds():
    stats = FaultStats(drops=1, duplicates=2, corruptions=3, delays=4,
                       dma_failures=5, registration_failures=6,
                       pin_failures=7, nic_resets=8)
    assert stats.total == 36
