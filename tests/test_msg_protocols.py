"""Tests for the messaging layer (endpoints, protocols, MPI facade)."""

import numpy as np
import pytest

from repro.hw.physmem import PAGE_SIZE
from repro.msg.endpoint import Endpoint, make_pair
from repro.msg.mpi_like import MpiPair
from repro.msg.protocols import (
    EagerProtocol, PioProtocol, RendezvousCopyProtocol,
    RendezvousZeroCopyProtocol,
)
from repro.via.machine import Cluster


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


def payload_bytes(rng, n: int) -> bytes:
    return bytes(rng.integers(0, 256, n, dtype=np.uint8))


@pytest.fixture
def pair():
    cluster = Cluster(2, num_frames=2048)
    s, r = make_pair(cluster)
    return cluster, s, r


def alloc_buffers(s: Endpoint, r: Endpoint, nbytes: int):
    pages = nbytes // PAGE_SIZE + 2
    src = s.task.mmap(pages)
    s.task.touch_pages(src, pages)
    dst = r.task.mmap(pages)
    r.task.touch_pages(dst, pages)
    return src, dst


PROTOCOLS = [
    EagerProtocol(),
    RendezvousCopyProtocol(),
    RendezvousZeroCopyProtocol(use_cache=False),
    RendezvousZeroCopyProtocol(use_cache=True),
    PioProtocol(use_cache=False),
    PioProtocol(use_cache=True),
]


class TestProtocolCorrectness:
    @pytest.mark.parametrize("proto", PROTOCOLS, ids=lambda p: p.name)
    @pytest.mark.parametrize("size", [1, 100, PAGE_SIZE,
                                      PAGE_SIZE + 1, 5 * PAGE_SIZE + 17])
    def test_payload_arrives_intact(self, pair, rng, proto, size):
        cluster, s, r = pair
        src, dst = alloc_buffers(s, r, size)
        data = payload_bytes(rng, size)
        s.task.write(src, data)
        res = proto.transfer(s, r, src, dst, size)
        assert res.ok and not res.corrupt
        assert r.task.read(dst, size) == data

    def test_eager_has_no_registrations(self, pair, rng):
        cluster, s, r = pair
        src, dst = alloc_buffers(s, r, 8192)
        s.task.write(src, payload_bytes(rng, 8192))
        res = EagerProtocol().transfer(s, r, src, dst, 8192)
        assert res.registrations == 0
        assert res.copies_bytes >= 2 * 8192   # copies on both sides

    def test_zerocopy_has_no_bulk_copies(self, pair, rng):
        cluster, s, r = pair
        size = 64 * 1024
        src, dst = alloc_buffers(s, r, size)
        s.task.write(src, payload_bytes(rng, size))
        res = RendezvousZeroCopyProtocol(False).transfer(
            s, r, src, dst, size)
        assert res.registrations == 2       # both user buffers
        assert res.copies_bytes < 1024      # control messages only

    def test_cache_turns_registrations_into_hits(self, pair, rng):
        cluster, s, r = pair
        size = 64 * 1024
        src, dst = alloc_buffers(s, r, size)
        s.task.write(src, payload_bytes(rng, size))
        proto = RendezvousZeroCopyProtocol(use_cache=True)
        first = proto.transfer(s, r, src, dst, size)
        second = proto.transfer(s, r, src, dst, size)
        assert first.registrations == 2 and first.cache_hits == 0
        assert second.registrations == 0 and second.cache_hits == 2
        assert second.sim_ns < first.sim_ns

    def test_rendezvous_copy_uses_control_messages(self, pair, rng):
        cluster, s, r = pair
        src, dst = alloc_buffers(s, r, 4096)
        s.task.write(src, payload_bytes(rng, 4096))
        res = RendezvousCopyProtocol().transfer(s, r, src, dst, 4096)
        assert res.control_messages == 2    # RTS + CTS

    def test_zerocopy_faster_than_eager_for_large(self, pair, rng):
        cluster, s, r = pair
        size = 512 * 1024
        src, dst = alloc_buffers(s, r, size)
        s.task.write(src, payload_bytes(rng, size))
        eager = EagerProtocol().transfer(s, r, src, dst, size)
        zc = RendezvousZeroCopyProtocol(False).transfer(
            s, r, src, dst, size)
        assert zc.sim_ns < eager.sim_ns

    def test_eager_faster_than_zerocopy_for_tiny(self, pair, rng):
        cluster, s, r = pair
        size = 256
        src, dst = alloc_buffers(s, r, size)
        s.task.write(src, payload_bytes(rng, size))
        eager = EagerProtocol().transfer(s, r, src, dst, size)
        zc = RendezvousZeroCopyProtocol(False).transfer(
            s, r, src, dst, size)
        assert eager.sim_ns < zc.sim_ns


class TestPioProtocol:
    def test_pio_registers_receiver_window_only(self, pair, rng):
        cluster, s, r = pair
        src, dst = alloc_buffers(s, r, 8192)
        s.task.write(src, payload_bytes(rng, 8192))
        res = PioProtocol(use_cache=False).transfer(s, r, src, dst, 8192)
        assert res.ok
        assert res.registrations == 1    # only the exported window

    def test_pio_charges_cpu_not_dma(self, pair, rng):
        cluster, s, r = pair
        src, dst = alloc_buffers(s, r, 65536)
        s.task.write(src, payload_bytes(rng, 65536))
        clock = cluster.clock
        pio_before = clock.category_ns("pio")
        dma_before = clock.category_ns("dma")
        PioProtocol(use_cache=False).transfer(s, r, src, dst, 65536)
        costs = cluster[0].kernel.costs
        assert clock.category_ns("pio") - pio_before >= \
            costs.pio_stream_per_byte_ns * 65536 * 0.99
        assert clock.category_ns("dma") == dma_before

    def test_pio_lowest_small_message_latency(self, pair, rng):
        cluster, s, r = pair
        src, dst = alloc_buffers(s, r, 64)
        s.task.write(src, payload_bytes(rng, 64))
        pio = PioProtocol(use_cache=True)
        eager = EagerProtocol()
        pio.transfer(s, r, src, dst, 64)     # warm the window
        p = pio.transfer(s, r, src, dst, 64)
        e = eager.transfer(s, r, src, dst, 64)
        assert p.sim_ns < e.sim_ns


class TestEndpointMechanics:
    def test_bounce_slots_reposted(self, pair, rng):
        """After many chunks the receive queue must not drain."""
        cluster, s, r = pair
        src, dst = alloc_buffers(s, r, 40 * PAGE_SIZE)
        data = payload_bytes(rng, 40 * PAGE_SIZE)
        s.task.write(src, data)
        EagerProtocol().transfer(s, r, src, dst, 40 * PAGE_SIZE)
        assert len(r.vi.recv_queue) == len(r.bounce_slots)

    def test_oversize_chunk_rejected(self, pair):
        cluster, s, r = pair
        from repro.errors import ViaError
        with pytest.raises(ViaError):
            s.send_chunk(b"x" * (Endpoint.CHUNK + 1))

    def test_control_roundtrip(self, pair):
        cluster, s, r = pair
        s.send_control(b"hello-control")
        assert r.recv_control() == b"hello-control"


class TestMpiPair:
    def test_protocol_switching(self, pair):
        cluster, s, r = pair
        mpi = MpiPair(s, r)
        assert mpi.protocol_for(100).name == "eager"
        assert mpi.protocol_for(64 * 1024).name == "rendezvous-copy"
        assert "zerocopy" in mpi.protocol_for(1 << 20).name

    def test_sendrecv_and_history(self, pair, rng):
        cluster, s, r = pair
        mpi = MpiPair(s, r)
        src, dst = alloc_buffers(s, r, 256 * 1024)
        data = payload_bytes(rng, 256 * 1024)
        s.task.write(src, data)
        res = mpi.sendrecv(src, dst, 256 * 1024)
        assert res.ok
        assert r.task.read(dst, 1024) == data[:1024]
        assert mpi.history == [res]

    def test_ping_pong(self, pair, rng):
        cluster, s, r = pair
        mpi = MpiPair(s, r)
        src, dst = alloc_buffers(s, r, 2048)
        bsrc, bdst = alloc_buffers(r, s, 2048)
        data = payload_bytes(rng, 2048)
        s.task.write(src, data)
        r.task.write(bsrc, data)
        there, back = mpi.ping_pong(src, dst, 2048, bsrc, bdst)
        assert there.ok and back.ok
        assert len(mpi.history) == 2

    def test_custom_thresholds(self, pair):
        cluster, s, r = pair
        mpi = MpiPair(s, r, eager_threshold=1024,
                      zerocopy_threshold=8192)
        assert mpi.protocol_for(2048).name == "rendezvous-copy"
        assert "zerocopy" in mpi.protocol_for(8192).name
