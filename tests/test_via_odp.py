"""The on-demand-paging backend: suspend/fault/resume instead of pins.

Four layers of coverage:

* the backend contract (lazy lock, just-in-time ``fault_in``, pressure
  ``evict_frame``, one-shot unlock);
* the driver's fault service (coalescing window, bounded fault table,
  pressure eviction through the pin-eviction hook, re-fault after
  eviction);
* the races the ISSUE names — concurrent faults on one extent, a
  process kill at every instrumented point of the fault path, and
  retransmission after a suspend/resume staying exactly-once;
* the sanitizer's ``odp`` mode (fault-service pairing, dangling
  suspensions, eviction bookkeeping).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.events import (
    DMA_RESUME, DMA_SUSPEND, FAULT_SERVICE, ODP_EVICT, REGISTER,
    TPT_PAGE_INVALIDATE, TPT_TRANSLATE,
)
from repro.analysis.sanitizer import PinSanitizer
from repro.core.audit import (
    audit_kernel_invariants, audit_pin_leaks, audit_tpt_consistency,
)
from repro.errors import InvalidArgument, ProcessKilled, ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.msg.endpoint import make_pair
from repro.sim.costs import FREE
from repro.sim.faults import FaultPlan, ODP_CRASH_POINTS
from repro.via.constants import VIP_SUCCESS
from repro.via.descriptor import Descriptor
from repro.via.kernel_agent import ODP_FAULT_TABLE_ENTRIES
from repro.via.locking import make_backend
from repro.via.machine import Cluster, Machine, connected_pair
from repro.via.tpt import INVALID_FRAME

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def _assert_converged(machine):
    assert audit_tpt_consistency(machine.agent) == []
    assert audit_pin_leaks(machine.kernel, machine.agent) == []
    audit_kernel_invariants(machine.kernel)


# --------------------------------------------------------- backend contract

class TestOdpBackend:
    @pytest.fixture
    def setup(self, kernel):
        t = kernel.create_task(name="app")
        va = t.mmap(8)
        return kernel, t, va

    def test_lock_is_lazy(self, setup):
        """Registration resolves no frames and faults nothing in."""
        kernel, t, va = setup
        be = make_backend("odp")
        res = be.lock(kernel, t, va, 8 * PAGE_SIZE)
        assert res.frames == [INVALID_FRAME] * 8
        assert t.resident_pages() == 0
        be.unlock(kernel, res.cookie)

    def test_fault_in_pins_and_commits(self, setup):
        kernel, t, va = setup
        be = make_backend("odp")
        res = be.lock(kernel, t, va, 8 * PAGE_SIZE)
        patched = be.fault_in(kernel, t, res.cookie, (0, 3))
        assert set(patched) == {0, 3}
        for index, frame in patched.items():
            assert kernel.pagemap.page(frame).pin_count == 1
            assert res.cookie.resident[index] == frame
        be.unlock(kernel, res.cookie)
        for frame in patched.values():
            assert kernel.pagemap.page(frame).pin_count == 0

    def test_fault_in_is_idempotent(self, setup):
        """A page that lost the race to a concurrent fault is reused,
        not double-pinned."""
        kernel, t, va = setup
        be = make_backend("odp")
        res = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        first = be.fault_in(kernel, t, res.cookie, (0, 1))
        again = be.fault_in(kernel, t, res.cookie, (0, 1))
        assert first == again
        for frame in first.values():
            assert kernel.pagemap.page(frame).pin_count == 1
        be.unlock(kernel, res.cookie)

    def test_evict_frame_releases_pin(self, setup):
        kernel, t, va = setup
        be = make_backend("odp")
        res = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        patched = be.fault_in(kernel, t, res.cookie, (2,))
        frame = patched[2]
        assert be.evict_frame(kernel, res.cookie, frame) == (2,)
        assert res.cookie.resident == {}
        assert kernel.pagemap.page(frame).pin_count == 0
        be.unlock(kernel, res.cookie)

    def test_double_unlock_raises(self, setup):
        kernel, t, va = setup
        be = make_backend("odp")
        res = be.lock(kernel, t, va, PAGE_SIZE)
        be.unlock(kernel, res.cookie)
        with pytest.raises(ViaError):
            be.unlock(kernel, res.cookie)


# ------------------------------------------------------ driver fault service

class TestOdpFaultService:
    def test_registration_installs_invalid_entries(self):
        m = Machine(backend="odp", num_frames=256)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(8)
        reg = ua.register_mem(va, 8 * PAGE_SIZE)
        assert reg.region.odp
        assert all(f == INVALID_FRAME for f in reg.region.frames)
        assert t.resident_pages() == 0          # still nothing faulted
        ua.deregister_mem(reg)
        _assert_converged(m)

    def test_service_patches_tpt_and_pins(self):
        m = Machine(backend="odp", num_frames=256)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(8)
        reg = ua.register_mem(va, 8 * PAGE_SIZE)
        patched = m.agent.service_translation_fault(reg.handle, (0, 1, 2))
        assert sorted(patched) == [0, 1, 2]
        for index, frame in patched.items():
            assert reg.region.frames[index] == frame
            assert m.kernel.pagemap.page(frame).pin_count == 1
        assert m.agent.odp_faults_serviced == 1
        ua.deregister_mem(reg)
        _assert_converged(m)

    def test_service_unknown_or_non_odp_handle(self):
        m = Machine(backend="odp")
        with pytest.raises(Exception):
            m.agent.service_translation_fault(999, (0,))
        m2 = Machine(backend="kiobuf")
        t = m2.spawn("app")
        ua = m2.user_agent(t)
        va = t.mmap(1)
        t.touch_pages(va, 1)
        reg = ua.register_mem(va, PAGE_SIZE)
        with pytest.raises(ViaError):
            m2.agent.service_translation_fault(reg.handle, (0,))

    def test_duplicate_fault_coalesces(self):
        """Two fault requests for the same extent inside one service
        window (two DMA channels hitting the same pages, as the
        sequential simulator models concurrency) run the fault path
        once; the duplicate is answered from the TPT."""
        m = Machine(backend="odp", costs=FREE)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(4)
        reg = ua.register_mem(va, 4 * PAGE_SIZE)
        first = m.agent.service_translation_fault(reg.handle, (0, 1))
        second = m.agent.service_translation_fault(reg.handle, (0, 1))
        assert first == second
        assert m.agent.odp_faults_serviced == 1
        assert m.agent.odp_faults_coalesced == 1
        # The frames hold exactly one pin: coalescing did not re-pin.
        for frame in first.values():
            assert m.kernel.pagemap.page(frame).pin_count == 1
        assert m.kernel.trace.count("odp_fault_coalesced") == 1

    def test_coalescing_window_expires(self):
        """Past the completion time of the original service, a repeat
        request re-runs the fault path (it would re-pin had the pages
        been evicted meanwhile)."""
        m = Machine(backend="odp", costs=FREE)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(2)
        reg = ua.register_mem(va, 2 * PAGE_SIZE)
        m.agent.service_translation_fault(reg.handle, (0, 1))
        m.kernel.clock.charge(1, "test")        # leave the window
        m.agent.service_translation_fault(reg.handle, (0, 1))
        assert m.agent.odp_faults_serviced == 2
        assert m.agent.odp_faults_coalesced == 0

    def test_fault_table_is_bounded(self):
        npages = ODP_FAULT_TABLE_ENTRIES + 8
        m = Machine(backend="odp", num_frames=4 * npages)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(npages)
        reg = ua.register_mem(va, npages * PAGE_SIZE)
        for i in range(npages):
            m.agent.service_translation_fault(reg.handle, (i,))
        assert len(m.agent._fault_table) <= ODP_FAULT_TABLE_ENTRIES

    def test_pressure_evicts_and_refault_repairs(self):
        """The reclaim inverse: a memory hog evicts ODP-resident frames
        (fence, unpin, steal), and the next fault service repairs the
        translations with fresh pins."""
        m = Machine(backend="odp", num_frames=128)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(8)
        reg = ua.register_mem(va, 8 * PAGE_SIZE)
        m.agent.service_translation_fault(reg.handle, tuple(range(8)))
        assert reg.region.invalid_pages(va, 8 * PAGE_SIZE) == ()

        hog = m.spawn("hog")
        hog_va = hog.mmap(256)
        for i in range(256):
            hog.write(hog_va + i * PAGE_SIZE, b"HOG")
        assert m.agent.odp_pages_evicted > 0
        assert m.kernel.trace.count("odp_evict") > 0
        invalid = reg.region.invalid_pages(va, 8 * PAGE_SIZE)
        assert invalid                           # entries fenced off
        # No pin survived the eviction, so nothing is leaked mid-cycle.
        assert audit_pin_leaks(m.kernel, m.agent) == []

        patched = m.agent.service_translation_fault(reg.handle, invalid)
        assert set(patched) == set(invalid)
        assert reg.region.invalid_pages(va, 8 * PAGE_SIZE) == ()
        ua.deregister_mem(reg)
        _assert_converged(m)


# ------------------------------------------------------- end-to-end transfers

class TestOdpTransfers:
    def test_first_touch_send_suspends_and_delivers(self):
        """A send over never-touched ODP registrations suspends on both
        NICs, fault-services, resumes, and delivers byte-identical."""
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("odp")
        dst = ua_r.task.mmap(2)
        reg_r = ua_r.register_mem(dst, 2 * PAGE_SIZE)
        desc_r = Descriptor.recv([ua_r.segment(reg_r)])
        ua_r.post_recv(vi_r, desc_r)
        src = ua_s.task.mmap(2)
        reg_s = ua_s.register_mem(src, 2 * PAGE_SIZE)
        payload = bytes(range(256)) * 16
        desc_s = ua_s.send_bytes(vi_s, reg_s, payload)
        assert desc_s.status == VIP_SUCCESS
        assert desc_r.status == VIP_SUCCESS
        assert ua_r.recv_bytes(vi_r, desc_r) == payload
        assert cluster[0].nic.dma_suspensions > 0
        assert cluster[0].agent.odp_faults_serviced > 0
        assert cluster[1].agent.odp_faults_serviced > 0
        for m in cluster.machines:
            _assert_converged(m)

    def test_retransmit_after_resume_stays_exactly_once(self):
        """Packet loss forces retransmission while ODP suspends and
        repairs translations underneath; every chunk arrives exactly
        once, byte-identical, and nothing leaks."""
        cluster = Cluster(2, backend="odp", num_frames=2048)
        s, r = make_pair(cluster)
        cluster.inject_faults(FaultPlan(seed=SEED + 17, loss_rate=0.25))
        rng = np.random.default_rng(SEED + 5)
        for i in range(32):
            data = bytes(rng.integers(0, 256, 1024 + i, dtype=np.uint8))
            s.send_chunk(data)
            got, _ = r.recv_chunk()
            assert got == data, f"transfer {i} not byte-identical"
        assert r.try_recv_chunk() is None        # no duplicate delivery
        assert cluster.trace.count("via_retransmit") > 0
        assert sum(m.agent.odp_faults_serviced
                   for m in cluster.machines) > 0
        for m in cluster.machines:
            audit_kernel_invariants(m.kernel)
            assert audit_tpt_consistency(m.agent) == []
            assert audit_pin_leaks(m.kernel, m.agent) == []


# ------------------------------------------------------------ kill sweep

class TestOdpKillSweep:
    @pytest.mark.parametrize("point", ODP_CRASH_POINTS)
    def test_kill_during_fault_service(self, point):
        """Dying before, between, and after the pin and the TPT patch
        leaks nothing: pins committed so far are released by the exit
        path, the registration and its TPT entries are gone."""
        m = Machine(backend="odp", seed=SEED)
        task = m.spawn("victim")
        ua = m.user_agent(task)
        va = task.mmap(4)
        reg = ua.register_mem(va, 4 * PAGE_SIZE)
        m.inject_faults(FaultPlan(seed=SEED, crash_point=point,
                                  crash_pid=task.pid))
        with pytest.raises(ProcessKilled) as exc_info:
            m.agent.service_translation_fault(reg.handle, (0, 1, 2, 3))
        assert exc_info.value.point == point
        with pytest.raises(InvalidArgument):
            m.kernel.find_task(task.pid)
        assert m.agent.registrations == {}
        assert m.agent._odp_resident == {}
        _assert_converged(m)

    @pytest.mark.parametrize("point", ODP_CRASH_POINTS)
    def test_kill_mid_transfer_fault(self, point):
        """Same sweep through the NIC: the suspended transfer is resumed
        in error (never left parked) and both machines converge."""
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("odp",
                                                         seed=SEED)
        dst = ua_r.task.mmap(2)
        reg_r = ua_r.register_mem(dst, 2 * PAGE_SIZE)
        ua_r.post_recv(vi_r, Descriptor.recv([ua_r.segment(reg_r)]))
        src = ua_s.task.mmap(2)
        reg_s = ua_s.register_mem(src, 2 * PAGE_SIZE)
        victim_pid = ua_s.task.pid
        cluster.inject_faults(FaultPlan(seed=SEED, crash_point=point,
                                        crash_pid=victim_pid))
        with pytest.raises(ProcessKilled):
            ua_s.send_bytes(vi_s, reg_s, b"x" * 64)
        sender_machine = cluster[0]
        with pytest.raises(InvalidArgument):
            sender_machine.kernel.find_task(victim_pid)
        assert sender_machine.agent.registrations_of(victim_pid) == []
        # The NIC unwound the suspension rather than leaving it parked.
        assert sender_machine.nic.dma_suspensions > 0
        resumes = sender_machine.kernel.trace.of_kind("odp_dma_resume")
        assert any(not e["ok"] for e in resumes)
        for m in cluster.machines:
            _assert_converged(m)


# ------------------------------------------------------------ sanitizer mode

class TestOdpSanitizerMode:
    def _reg(self, handle=1, pid=10):
        return (REGISTER, dict(handle=handle, pid=pid, frames=(),
                               backend="odp", first_vpn=100, npages=4))

    def test_suspend_service_resume_is_clean(self):
        san = PinSanitizer()
        san.feed([
            self._reg(),
            (DMA_SUSPEND, dict(handle=1, pages=(0,), token=7, va=0,
                               length=64)),
            (FAULT_SERVICE, dict(handle=1, pages=(0,), frames=(5,),
                                 pid=10, token=7, coalesced=False)),
            (DMA_RESUME, dict(handle=1, token=7, ok=True)),
        ])
        assert san.violations == []
        san.disarm()
        assert san.violations == []

    def test_resume_without_service_is_dangling(self):
        san = PinSanitizer()
        san.feed([
            self._reg(),
            (DMA_SUSPEND, dict(handle=1, pages=(0,), token=7, va=0,
                               length=64)),
            (DMA_RESUME, dict(handle=1, token=7, ok=True)),
        ])
        assert [v.check for v in san.violations] == \
            ["odp-dangling-suspension"]

    def test_error_resume_needs_no_service(self):
        san = PinSanitizer()
        san.feed([
            self._reg(),
            (DMA_SUSPEND, dict(handle=1, pages=(0,), token=7, va=0,
                               length=64)),
            (DMA_RESUME, dict(handle=1, token=7, ok=False)),
        ])
        assert san.violations == []
        san.disarm()
        assert san.violations == []

    def test_open_suspension_at_disarm_is_dangling(self):
        san = PinSanitizer()
        san.feed([
            self._reg(),
            (DMA_SUSPEND, dict(handle=1, pages=(0,), token=9, va=0,
                               length=64)),
        ])
        assert san.violations == []
        san.disarm()
        assert [v.check for v in san.violations] == \
            ["odp-dangling-suspension"]
        assert "never resumed" in san.violations[0].message

    def test_page_invalidate_keeps_region_registered(self):
        """TPT_PAGE_INVALIDATE fences single pages of a *live* ODP
        region — translating the region afterwards is the expected
        repair path, not tpt-use-after-invalidate."""
        san = PinSanitizer()
        san.feed([
            self._reg(),
            (FAULT_SERVICE, dict(handle=1, pages=(0,), frames=(5,),
                                 pid=10, token=None, coalesced=False)),
            (TPT_PAGE_INVALIDATE, dict(handle=1, pages=(0,), frames=(5,))),
            (ODP_EVICT, dict(handle=1, frame=5, pages=(0,), pid=10)),
            (TPT_TRANSLATE, dict(handle=1, va=100 * PAGE_SIZE,
                                 length=64)),
        ])
        assert san.violations == []

    def test_evicted_frame_may_be_swapped(self):
        """After ODP_EVICT the frame is no longer a registered frame —
        reclaim stealing it is the design, not swap-registered."""
        from repro.analysis.events import SWAP_OUT
        san = PinSanitizer()
        san.feed([
            self._reg(),
            (FAULT_SERVICE, dict(handle=1, pages=(0,), frames=(5,),
                                 pid=10, token=None, coalesced=False)),
            (ODP_EVICT, dict(handle=1, frame=5, pages=(0,), pid=10)),
            (SWAP_OUT, dict(pid=10, vpn=100, frame=5)),
        ])
        assert san.violations == []

    def test_swap_of_resident_odp_frame_still_reported(self):
        """Without the eviction fence, stealing a fault-serviced frame
        is exactly the paper's §3.1 hazard and must still be flagged."""
        from repro.analysis.events import SWAP_OUT
        san = PinSanitizer()
        san.feed([
            self._reg(),
            (FAULT_SERVICE, dict(handle=1, pages=(0,), frames=(5,),
                                 pid=10, token=None, coalesced=False)),
            (SWAP_OUT, dict(pid=10, vpn=100, frame=5)),
        ])
        assert [v.check for v in san.violations] == ["swap-registered"]

    @pytest.mark.san_suppress
    def test_armed_pressure_cycle_is_clean(self):
        """System-level: register → fault-in → pressure-evict → re-fault
        → deregister under an armed strict sanitizer, zero violations."""
        m = Machine(backend="odp", num_frames=128)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(8)
        san = m.arm_sanitizer()
        reg = ua.register_mem(va, 8 * PAGE_SIZE)
        m.agent.service_translation_fault(reg.handle, tuple(range(8)))
        hog = m.spawn("hog")
        hog_va = hog.mmap(256)
        for i in range(256):
            hog.write(hog_va + i * PAGE_SIZE, b"HOG")
        assert m.agent.odp_pages_evicted > 0
        invalid = reg.region.invalid_pages(va, 8 * PAGE_SIZE)
        if invalid:
            m.agent.service_translation_fault(reg.handle, invalid)
        ua.deregister_mem(reg)
        san.disarm()
        assert san.violations == []
        _assert_converged(m)
