"""Tests for the RAW I/O subsystem (kiobufs' original consumer)."""

import pytest

from repro.errors import InvalidArgument
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.kernel.rawio import (
    BlockDevice, buffered_read, buffered_write, raw_read, raw_write,
)


@pytest.fixture
def setup(kernel):
    dev = BlockDevice(kernel, num_blocks=64)
    t = kernel.create_task()
    va = t.mmap(8)
    t.touch_pages(va, 8)
    return kernel, dev, t, va


class TestBlockDevice:
    def test_roundtrip(self, setup):
        kernel, dev, t, va = setup
        dev.write_block(3, b"disk data")
        data = dev.read_block(3)
        assert data[:9] == b"disk data"
        assert len(data) == PAGE_SIZE

    def test_unwritten_block_reads_zero(self, setup):
        kernel, dev, t, va = setup
        assert dev.read_block(0) == bytes(PAGE_SIZE)

    def test_bounds(self, setup):
        kernel, dev, t, va = setup
        with pytest.raises(InvalidArgument):
            dev.read_block(64)
        with pytest.raises(InvalidArgument):
            dev.write_block(-1, b"x")

    def test_io_charges_disk_cost(self, setup):
        kernel, dev, t, va = setup
        before = kernel.clock.category_ns("disk_io")
        dev.read_block(0)
        assert kernel.clock.category_ns("disk_io") > before


class TestPathsAgree:
    @pytest.mark.parametrize("read_fn,write_fn", [
        (buffered_read, buffered_write),
        (raw_read, raw_write),
    ], ids=["buffered", "raw"])
    def test_write_then_read_roundtrip(self, setup, read_fn, write_fn):
        kernel, dev, t, va = setup
        payload = bytes(range(256)) * 16 * 2   # 2 pages
        t.write(va, payload)
        write_fn(kernel, t, dev, 10, va, 2 * PAGE_SIZE)
        t.write(va, bytes(2 * PAGE_SIZE))      # wipe
        read_fn(kernel, t, dev, 10, va, 2 * PAGE_SIZE)
        assert t.read(va, len(payload)) == payload

    def test_cross_path_roundtrip(self, setup):
        """Data written raw must read back buffered and vice versa."""
        kernel, dev, t, va = setup
        t.write(va, b"via-raw")
        raw_write(kernel, t, dev, 0, va, PAGE_SIZE)
        buffered_read(kernel, t, dev, 0, va + PAGE_SIZE, PAGE_SIZE)
        assert t.read(va + PAGE_SIZE, 7) == b"via-raw"


class TestRawSemantics:
    def test_raw_read_does_no_cpu_copies(self, setup):
        kernel, dev, t, va = setup
        before = kernel.clock.category_ns("cpu_copy")
        raw_read(kernel, t, dev, 0, va, 4 * PAGE_SIZE)
        assert kernel.clock.category_ns("cpu_copy") == before

    def test_buffered_read_pays_cpu_copies(self, setup):
        kernel, dev, t, va = setup
        before = kernel.clock.category_ns("cpu_copy")
        buffered_read(kernel, t, dev, 0, va, 4 * PAGE_SIZE)
        copied = kernel.clock.category_ns("cpu_copy") - before
        assert copied >= kernel.costs.memcpy_ns(4 * PAGE_SIZE)

    def test_raw_faster_than_buffered(self, setup):
        """Same transfer, simulated time: raw must win (the kiobuf
        mechanism's raison d'être)."""
        kernel, dev, t, va = setup
        with kernel.clock.measure() as raw_span:
            raw_read(kernel, t, dev, 0, va, 4 * PAGE_SIZE)
        with kernel.clock.measure() as buf_span:
            buffered_read(kernel, t, dev, 0, va, 4 * PAGE_SIZE)
        assert raw_span.elapsed_ns < buf_span.elapsed_ns

    def test_pages_unpinned_after_raw_io(self, setup):
        kernel, dev, t, va = setup
        raw_read(kernel, t, dev, 0, va, 2 * PAGE_SIZE)
        for frame in t.physical_pages(va, 2):
            assert kernel.pagemap.page(frame).pin_count == 0

    def test_raw_io_to_swapped_buffer_faults_it_in(self, setup):
        kernel, dev, t, va = setup
        dev.write_block(5, b"from disk")
        paging.swap_out(kernel, kernel.pagemap.num_frames)
        assert t.resident_pages() == 0
        raw_read(kernel, t, dev, 5, va, PAGE_SIZE)
        assert t.read(va, 9) == b"from disk"

    def test_alignment_enforced(self, setup):
        kernel, dev, t, va = setup
        with pytest.raises(InvalidArgument):
            raw_read(kernel, t, dev, 0, va + 1, PAGE_SIZE)
        with pytest.raises(InvalidArgument):
            raw_write(kernel, t, dev, 0, va, 100)

    def test_buffered_leaves_no_cache_residue(self, setup):
        kernel, dev, t, va = setup
        buffered_read(kernel, t, dev, 0, va, 2 * PAGE_SIZE)
        assert kernel.page_cache == set()
