"""Tests for the table/series printers."""

import io

from repro.bench.harness import fmt_bool, fmt_ns, print_series, print_table


class TestFormatters:
    def test_fmt_ns_units(self):
        assert fmt_ns(500) == "500ns"
        assert fmt_ns(2_500) == "2.50us"
        assert fmt_ns(3_500_000) == "3.50ms"
        assert fmt_ns(1_200_000_000) == "1.20s"

    def test_fmt_bool(self):
        assert fmt_bool(True) == "yes"
        assert fmt_bool(False) == "NO"


class TestPrintTable:
    def test_alignment_and_content(self):
        out = io.StringIO()
        text = print_table("T", ["name", "n"], [["a", 1], ["bbbb", 22]],
                           out=out)
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert lines[1].startswith("name")
        assert "bbbb" in lines[-1]
        assert out.getvalue().strip() == text.strip()

    def test_bool_and_float_cells(self):
        text = print_table("T", ["x"], [[True], [False], [1.234]],
                           out=io.StringIO())
        assert "yes" in text and "NO" in text and "1.23" in text

    def test_empty_rows(self):
        text = print_table("T", ["a"], [], out=io.StringIO())
        assert "== T ==" in text


class TestPrintSeries:
    def test_merges_on_x(self):
        text = print_series(
            "S", "size",
            {"a": [(1, 10.0), (2, 20.0)], "b": [(2, 5.0), (4, 2.5)]},
            out=io.StringIO())
        lines = text.splitlines()
        # x values 1, 2, 4 each appear once
        assert sum(1 for ln in lines if ln.startswith("1 ")) == 1
        assert "20.00" in text and "5.00" in text and "2.50" in text

    def test_missing_points_blank(self):
        text = print_series("S", "x", {"a": [(1, 1.0)], "b": [(2, 2.0)]},
                            out=io.StringIO())
        assert "1.00" in text and "2.00" in text
