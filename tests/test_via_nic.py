"""End-to-end NIC tests: send/receive, RDMA, protection, reliability."""

import pytest

from repro.errors import (
    ViaConnectionError, DescriptorError, QueueEmpty,
)
from repro.hw.physmem import PAGE_SIZE
from repro.via.constants import (
    VIP_ERROR_CONN_LOST, VIP_PROTECTION_ERROR, VIP_SUCCESS,
    ReliabilityLevel, ViState,
)
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.machine import connected_pair


@pytest.fixture
def pair():
    return connected_pair("kiobuf")


def post_recv_buffer(ua, vi, npages=2):
    """Map + register + post a receive buffer; returns (va, registration,
    descriptor)."""
    va = ua.task.mmap(npages)
    reg = ua.register_mem(va, npages * PAGE_SIZE)
    desc = Descriptor.recv([ua.segment(reg)])
    ua.post_recv(vi, desc)
    return va, reg, desc


class TestSendReceive:
    def test_roundtrip(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        _, _, rdesc = post_recv_buffer(ua_r, vi_r)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        sdesc = ua_s.send_bytes(vi_s, sreg, b"payload-123")
        assert sdesc.status == VIP_SUCCESS
        got = ua_r.recv_done(vi_r)
        assert got is rdesc
        assert got.status == VIP_SUCCESS
        assert got.length_transferred == 11
        assert ua_r.recv_bytes(vi_r, got) == b"payload-123"

    def test_multiple_messages_in_order(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        descs = [post_recv_buffer(ua_r, vi_r)[2] for _ in range(3)]
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        for i in range(3):
            ua_s.send_bytes(vi_s, sreg, f"msg{i}".encode())
        for i in range(3):
            got = ua_r.recv_done(vi_r)
            assert got is descs[i]
            assert ua_r.recv_bytes(vi_r, got) == f"msg{i}".encode()

    def test_immediate_data_travels(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        post_recv_buffer(ua_r, vi_r)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        desc = Descriptor.send([ua_s.segment(sreg, sva, 4)],
                               immediate=b"TAG!")
        ua_s.task.write(sva, b"body")
        ua_s.post_send(vi_s, desc)
        got = ua_r.recv_done(vi_r)
        assert got.received_immediate == b"TAG!"

    def test_send_counters(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        post_recv_buffer(ua_r, vi_r)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        ua_s.send_bytes(vi_s, sreg, b"x")
        assert ua_s.nic.sends_completed == 1
        assert ua_r.nic.recvs_completed == 1

    def test_send_without_recv_breaks_reliable_connection(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        desc = ua_s.send_bytes(vi_s, sreg, b"nobody home")
        assert desc.status == VIP_ERROR_CONN_LOST
        assert vi_s.state == ViState.ERROR
        assert vi_r.state == ViState.ERROR
        assert ua_r.nic.recv_drops == 1

    def test_send_without_recv_dropped_silently_unreliable(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair(
            "kiobuf", reliability=ReliabilityLevel.UNRELIABLE)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        desc = ua_s.send_bytes(vi_s, sreg, b"gone")
        assert desc.status == VIP_SUCCESS     # fire-and-forget
        assert vi_s.state == ViState.CONNECTED
        assert ua_r.nic.recv_drops == 1

    def test_undersized_recv_buffer_is_descriptor_error(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        rva = ua_r.task.mmap(1)
        rreg = ua_r.register_mem(rva, PAGE_SIZE)
        rdesc = Descriptor.recv([DataSegment(rreg.handle, rva, 4)])
        ua_r.post_recv(vi_r, rdesc)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        ua_s.send_bytes(vi_s, sreg, b"way too long")
        got = ua_r.recv_done(vi_r)
        assert got.status == "VIP_DESCRIPTOR_ERROR"
        assert vi_r.state == ViState.ERROR


class TestRDMA:
    def _rdma_setup(self, pair, write_enable=True, read_enable=True):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        rva = ua_r.task.mmap(2)
        ua_r.task.touch_pages(rva, 2)
        rreg = ua_r.register_mem(rva, 2 * PAGE_SIZE,
                                 rdma_write=write_enable,
                                 rdma_read=read_enable)
        lva = ua_s.task.mmap(2)
        lreg = ua_s.register_mem(lva, 2 * PAGE_SIZE)
        return cluster, ua_s, ua_r, vi_s, vi_r, rva, rreg, lva, lreg

    def test_rdma_write(self, pair):
        (cluster, ua_s, ua_r, vi_s, vi_r,
         rva, rreg, lva, lreg) = self._rdma_setup(pair)
        ua_s.task.write(lva, b"one-sided!")
        desc = Descriptor.rdma_write(
            [DataSegment(lreg.handle, lva, 10)],
            remote_handle=rreg.handle, remote_va=rva + 100)
        ua_s.post_send(vi_s, desc)
        assert desc.status == VIP_SUCCESS
        assert ua_r.task.read(rva + 100, 10) == b"one-sided!"
        assert ua_s.nic.rdma_writes_completed == 1

    def test_rdma_write_with_immediate_consumes_recv(self, pair):
        (cluster, ua_s, ua_r, vi_s, vi_r,
         rva, rreg, lva, lreg) = self._rdma_setup(pair)
        _, _, rdesc = post_recv_buffer(ua_r, vi_r)
        desc = Descriptor.rdma_write(
            [DataSegment(lreg.handle, lva, 4)],
            remote_handle=rreg.handle, remote_va=rva, immediate=b"done")
        ua_s.post_send(vi_s, desc)
        got = ua_r.recv_done(vi_r)
        assert got is rdesc
        assert got.received_immediate == b"done"

    def test_rdma_read(self, pair):
        (cluster, ua_s, ua_r, vi_s, vi_r,
         rva, rreg, lva, lreg) = self._rdma_setup(pair)
        ua_r.task.write(rva + 10, b"remote data")
        desc = Descriptor.rdma_read(
            [DataSegment(lreg.handle, lva, 11)],
            remote_handle=rreg.handle, remote_va=rva + 10)
        ua_s.post_send(vi_s, desc)
        assert desc.status == VIP_SUCCESS
        assert ua_s.task.read(lva, 11) == b"remote data"
        assert ua_s.nic.rdma_reads_completed == 1

    def test_rdma_write_without_enable_is_protection_error(self, pair):
        (cluster, ua_s, ua_r, vi_s, vi_r,
         rva, rreg, lva, lreg) = self._rdma_setup(pair, write_enable=False)
        before = ua_r.task.read(rva, 4)
        desc = Descriptor.rdma_write(
            [DataSegment(lreg.handle, lva, 4)],
            remote_handle=rreg.handle, remote_va=rva)
        ua_s.post_send(vi_s, desc)
        assert desc.status == VIP_PROTECTION_ERROR
        assert vi_s.state == ViState.ERROR
        assert ua_r.task.read(rva, 4) == before   # no data transferred
        assert ua_r.nic.protection_faults == 1

    def test_rdma_read_without_enable_is_protection_error(self, pair):
        (cluster, ua_s, ua_r, vi_s, vi_r,
         rva, rreg, lva, lreg) = self._rdma_setup(pair, read_enable=False)
        desc = Descriptor.rdma_read(
            [DataSegment(lreg.handle, lva, 4)],
            remote_handle=rreg.handle, remote_va=rva)
        ua_s.post_send(vi_s, desc)
        assert desc.status == VIP_PROTECTION_ERROR

    def test_rdma_to_foreign_region_is_protection_error(self, pair):
        """A VI cannot touch a region registered by a *different* process
        (different protection tag) — Fig. 3's 'neither A is able to
        access wrong memory locations'."""
        (cluster, ua_s, ua_r, vi_s, vi_r,
         rva, rreg, lva, lreg) = self._rdma_setup(pair)
        intruder = cluster[1].spawn("intruder")
        ua_i = cluster[1].user_agent(intruder)
        iva = intruder.mmap(1)
        ireg = ua_i.register_mem(iva, PAGE_SIZE, rdma_write=True)
        desc = Descriptor.rdma_write(
            [DataSegment(lreg.handle, lva, 4)],
            remote_handle=ireg.handle, remote_va=iva)
        ua_s.post_send(vi_s, desc)
        assert desc.status == VIP_PROTECTION_ERROR


class TestLocalProtection:
    def test_send_from_foreign_registration_fails(self, pair):
        """A process cannot send out of another process's registered
        memory: the segment's handle carries the wrong tag."""
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        other = cluster[0].spawn("other")
        ua_o = cluster[0].user_agent(other)
        ova = other.mmap(1)
        oreg = ua_o.register_mem(ova, PAGE_SIZE)
        post_recv_buffer(ua_r, vi_r)
        desc = Descriptor.send([DataSegment(oreg.handle, ova, 4)])
        ua_s.post_send(vi_s, desc)
        assert desc.status == VIP_PROTECTION_ERROR
        assert vi_s.state == ViState.ERROR

    def test_recv_into_foreign_registration_fails(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        other = cluster[1].spawn("other")
        ua_o = cluster[1].user_agent(other)
        ova = other.mmap(1)
        oreg = ua_o.register_mem(ova, PAGE_SIZE)
        bad = Descriptor.recv([DataSegment(oreg.handle, ova, PAGE_SIZE)])
        ua_r.post_recv(vi_r, bad)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        ua_s.send_bytes(vi_s, sreg, b"x")
        got = ua_r.recv_done(vi_r)
        assert got.status == VIP_PROTECTION_ERROR


class TestPostingRules:
    def test_wrong_queue_rejected(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        with pytest.raises(DescriptorError):
            ua_s.post_send(vi_s, Descriptor.recv([]))
        with pytest.raises(DescriptorError):
            ua_r.post_recv(vi_r, Descriptor.send([]))

    def test_send_on_unconnected_vi_rejected(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        lone = ua_s.create_vi()
        with pytest.raises(ViaConnectionError):
            ua_s.post_send(lone, Descriptor.send([]))

    def test_recv_can_be_posted_while_idle(self, pair):
        """Pre-posting receives before the connection exists is legal."""
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        lone = ua_r.create_vi()
        va = ua_r.task.mmap(1)
        reg = ua_r.register_mem(va, PAGE_SIZE)
        ua_r.post_recv(lone, Descriptor.recv([ua_r.segment(reg)]))
        assert len(lone.recv_queue) == 1

    def test_done_polls_raise_when_empty(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        with pytest.raises(QueueEmpty):
            ua_s.send_done(vi_s)
        with pytest.raises(QueueEmpty):
            ua_r.recv_done(vi_r)


class TestConnectionManagement:
    def test_connect_requires_idle(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        extra_s = ua_s.create_vi()
        with pytest.raises(ViaConnectionError):
            cluster.fabric.connect(cluster[0].nic, vi_s.vi_id,
                                   cluster[1].nic, vi_r.vi_id)
        del extra_s

    def test_reliability_must_match(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        a = ua_s.create_vi(reliability=ReliabilityLevel.UNRELIABLE)
        b = ua_r.create_vi(reliability=ReliabilityLevel.RELIABLE_DELIVERY)
        with pytest.raises(ViaConnectionError):
            cluster.fabric.connect(cluster[0].nic, a.vi_id,
                                   cluster[1].nic, b.vi_id)

    def test_disconnect_peer_goes_to_error(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        cluster.fabric.disconnect(cluster[0].nic, vi_s.vi_id)
        assert vi_s.state == ViState.IDLE
        assert vi_r.state == ViState.ERROR

    def test_destroy_connected_vi_rejected(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        with pytest.raises(ViaConnectionError):
            cluster[0].nic.destroy_vi(vi_s.vi_id)

    def test_loopback_connection(self):
        from repro.via.machine import Machine
        m = Machine()
        t1 = m.spawn("a")
        t2 = m.spawn("b")
        ua1, ua2 = m.user_agent(t1), m.user_agent(t2)
        v1, v2 = ua1.create_vi(), ua2.create_vi()
        m.connect_loopback(v1, v2)
        rva = t2.mmap(1)
        rreg = ua2.register_mem(rva, PAGE_SIZE)
        ua2.post_recv(v2, Descriptor.recv([ua2.segment(rreg)]))
        sva = t1.mmap(1)
        sreg = ua1.register_mem(sva, PAGE_SIZE)
        d = ua1.send_bytes(v1, sreg, b"loopback")
        assert d.status == VIP_SUCCESS
        assert ua2.recv_bytes(v2, ua2.recv_done(v2)) == b"loopback"


class TestPacketLoss:
    def test_unreliable_vi_drops_packets(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair(
            "kiobuf", reliability=ReliabilityLevel.UNRELIABLE)
        cluster.fabric.loss_rate = 1.0    # drop everything
        post_recv_buffer(ua_r, vi_r)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        desc = ua_s.send_bytes(vi_s, sreg, b"lost")
        assert desc.status == VIP_SUCCESS   # sender cannot tell
        assert cluster.fabric.packets_dropped == 1
        with pytest.raises(QueueEmpty):
            ua_r.recv_done(vi_r)


class TestTranslationCacheLifecycle:
    """The NIC's translation cache must be provably invalidated on
    deregistration and flushed wholesale on a NIC reset — a stale
    cached translation is exactly the DMA-to-freed-frame failure the
    paper's locking mechanism exists to prevent."""

    def warm(self, pair, payloads=2):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        for _ in range(payloads):
            post_recv_buffer(ua_r, vi_r)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        for _ in range(payloads):
            assert ua_s.send_bytes(vi_s, sreg, b"warm").status \
                == VIP_SUCCESS
        return sreg

    def test_deregister_drops_cached_translations(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        sreg = self.warm(pair)
        tpt = ua_s.nic.tpt
        assert tpt.cached_translations > 0
        before = tpt.cached_translations
        ua_s.deregister_mem(sreg)
        assert tpt.cache_invalidations >= 1
        assert tpt.cached_translations < before
        # nothing cached refers to the dead handle any more
        assert all(key[0] != sreg.handle for key in tpt._xcache)

    def test_nic_reset_flushes_translation_cache(self, pair):
        cluster, ua_s, ua_r, vi_s, vi_r = pair
        self.warm(pair)
        tpt = ua_s.nic.tpt
        assert tpt.cached_translations > 0
        ua_s.nic.reset()
        assert tpt.cached_translations == 0
        # registrations themselves survive the reset (host-side state)
        assert tpt.entries_used > 0
