"""PinSanitizer: golden sequences per check, runtime integration per
backend, the §3.1/§3.2 detections, and the observability bridge."""

import numpy as np
import pytest

# Every test here manages its own sanitizer (or hand-feeds events), so
# suite-level arming would double-count and double-raise — and several
# tests assert the hub has no subscribers at all, which suite-level
# race-detector arming would also break.
pytestmark = [pytest.mark.san_suppress, pytest.mark.race_suppress]

from repro.analysis.events import (
    ATOMIC_RMW, DEREGISTER, DMA_BEGIN, DMA_END, PIN, REGISTER, SWAP_OUT,
    TASK_EXIT, TPT_INVALIDATE, TPT_TRANSLATE, UNPIN, EventHub, MUNLOCK,
    SanEvent,
)
from repro.analysis.sanitizer import CHECKS, MLOCK_BACKENDS, PinSanitizer
from repro.core.locktest import LocktestExperiment
from repro.errors import SanitizerViolation, UnmetExpectation
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.kiobuf import map_user_kiobuf, unmap_kiobuf
from repro.msg.endpoint import make_pair
from repro.msg.mpi_like import MpiPair
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.machine import Cluster, Machine, connected_pair
from repro.workloads.allocator import MemoryHog


def reg_event(handle=1, pid=10, frames=(3, 4), backend="kiobuf",
              first_vpn=100, npages=2):
    return (REGISTER, dict(handle=handle, pid=pid, frames=frames,
                           backend=backend, first_vpn=first_vpn,
                           npages=npages))


def only(san, check):
    """Assert exactly one violation, of ``check``; return it."""
    assert [v.check for v in san.violations] == [check]
    counts = san.counts
    assert counts[check] == 1
    assert sum(counts.values()) == 1
    return san.violations[0]


# ------------------------------------------------- golden sequences per check

class TestGoldenSequences:
    """One hand-fed event sequence per catalog entry."""

    def test_dma_unpinned_frame(self):
        san = PinSanitizer()
        san.feed([
            (PIN, dict(frames=(5,), pid=1)),
            (DMA_BEGIN, dict(frames=(5,), op="read")),
            (UNPIN, dict(frames=(5,), pid=1)),
        ])
        v = only(san, "dma-unpinned-frame")
        assert "frame 5" in v.message and "DMA window" in v.message

    def test_dma_unpinned_only_when_count_reaches_zero(self):
        san = PinSanitizer()
        san.feed([
            (PIN, dict(frames=(5,), pid=1)),
            (PIN, dict(frames=(5,), pid=1)),       # second registration
            (DMA_BEGIN, dict(frames=(5,), op="read")),
            (UNPIN, dict(frames=(5,), pid=1)),     # one pin remains
        ])
        assert san.violations == []

    def test_dma_swapped_frame(self):
        san = PinSanitizer()
        san.feed([
            (DMA_BEGIN, dict(frames=(7,), op="write")),
            (SWAP_OUT, dict(pid=1, vpn=10, frame=7)),
        ])
        v = only(san, "dma-swapped-frame")
        assert "swap_out" in v.message

    def test_dma_end_closes_the_window(self):
        san = PinSanitizer()
        san.feed([
            (DMA_BEGIN, dict(frames=(7,), op="write")),
            (DMA_END, dict(frames=(7,), op="write")),
            (SWAP_OUT, dict(pid=1, vpn=10, frame=7)),
        ])
        assert san.violations == []

    def test_mlock_nesting(self):
        san = PinSanitizer()
        san.feed([
            reg_event(backend="mlock_naive"),
            (MUNLOCK, dict(pid=10, start_vpn=100, end_vpn=102)),
        ])
        v = only(san, "mlock-nesting")
        assert "does not nest" in v.message and "§3.2" in v.message

    def test_mlock_nesting_needs_overlap_pid_and_backend(self):
        san = PinSanitizer()
        san.feed([
            reg_event(handle=1, backend="mlock"),
            reg_event(handle=2, pid=11, backend="mlock", first_vpn=500),
            reg_event(handle=3, backend="kiobuf"),
            # Disjoint range / other pid / non-mlock backend: all clean.
            (MUNLOCK, dict(pid=10, start_vpn=400, end_vpn=402)),
            (MUNLOCK, dict(pid=12, start_vpn=100, end_vpn=102)),
        ])
        assert san.violations == []
        # A dead registration no longer trips it either.
        san.feed([
            (DEREGISTER, dict(handle=1, pid=10)),
            (MUNLOCK, dict(pid=10, start_vpn=100, end_vpn=102)),
        ])
        assert san.violations == []

    def test_pin_underflow(self):
        san = PinSanitizer()
        san.feed([(UNPIN, dict(frames=(9,), pid=1))])
        v = only(san, "pin-underflow")
        assert "double release" in v.message

    def test_tpt_use_after_invalidate(self):
        san = PinSanitizer()
        san.feed([
            (TPT_TRANSLATE, dict(handle=2, va=0, length=64)),  # live: fine
            (TPT_INVALIDATE, dict(handle=2)),
            (TPT_TRANSLATE, dict(handle=2, va=0, length=64)),
        ])
        v = only(san, "tpt-use-after-invalidate")
        assert "handle 2" in v.message

    def test_registration_leak(self):
        san = PinSanitizer()
        san.feed([
            reg_event(handle=4),
            (TASK_EXIT, dict(pid=10, cleanup=True)),
        ])
        v = only(san, "registration-leak")
        assert "clean teardown" in v.message and "[4]" in v.message

    def test_no_leak_without_cleanup_or_registrations(self):
        san = PinSanitizer()
        san.feed([
            reg_event(handle=4),
            # Modelled-buggy teardown: the reaper's problem, not ours.
            (TASK_EXIT, dict(pid=10, cleanup=False)),
            (TASK_EXIT, dict(pid=99, cleanup=True)),
        ])
        assert san.violations == []

    def test_swap_registered(self):
        san = PinSanitizer()
        san.feed([
            reg_event(frames=(3,), backend="refcount", npages=1),
            (SWAP_OUT, dict(pid=10, vpn=100, frame=3)),
        ])
        v = only(san, "swap-registered")
        assert "§3.1" in v.message and "refcount" in v.message

    def test_deregister_ends_swap_registered_liability(self):
        san = PinSanitizer()
        san.feed([
            reg_event(frames=(3,), backend="refcount", npages=1),
            (DEREGISTER, dict(handle=1, pid=10)),
            (SWAP_OUT, dict(pid=10, vpn=100, frame=3)),
        ])
        assert san.violations == []


# ----------------------------------------------------------------- the trail

class TestTrail:
    def test_trail_is_related_events_with_trigger_last(self):
        san = PinSanitizer()
        san.feed([
            (PIN, dict(frames=(5,), pid=1)),
            (PIN, dict(frames=(6,), pid=2)),       # unrelated frame/pid
            (DMA_BEGIN, dict(frames=(5,), op="read")),
            (UNPIN, dict(frames=(5,), pid=1)),
        ])
        [v] = san.violations
        assert v.event is v.trail[-1]
        kinds = [e.kind for e in v.trail]
        assert kinds == [PIN, DMA_BEGIN, UNPIN]
        assert all(5 in e.fields.get("frames", ()) or e.fields.get("pid") == 1
                   for e in v.trail)

    def test_format_marks_the_trigger(self):
        san = PinSanitizer()
        san.feed([(UNPIN, dict(frames=(9,), pid=1))])
        report = san.violations[0].format()
        assert report.startswith("[pin-underflow] on test:")
        assert "=> " in report and "unpin" in report

    def test_trail_is_bounded(self):
        san = PinSanitizer(trail_maxlen=64, trail_report=8)
        san.feed([(PIN, dict(frames=(5,), pid=1))] * 200)
        san.feed([(DMA_BEGIN, dict(frames=(5,), op="read"))])
        san.feed([(UNPIN, dict(frames=(5,), pid=1))] * 200)
        assert san.violations            # eventually underflows
        assert len(san.violations[0].trail) <= 8


# ------------------------------------------------- strict / suppress / expect

class TestModes:
    def test_strict_raises_at_the_offending_operation(self):
        san = PinSanitizer(strict=True)
        with pytest.raises(SanitizerViolation) as err:
            san.feed([(UNPIN, dict(frames=(9,), pid=1))])
        assert err.value.violation.check == "pin-underflow"
        assert "pin-underflow" in str(err.value)

    def test_suppress_silences_one_check(self):
        san = PinSanitizer(strict=True, suppress=("pin-underflow",))
        san.feed([(UNPIN, dict(frames=(9,), pid=1))])
        assert san.violations == []
        assert san.counts["pin-underflow"] == 0
        san.unsuppress("pin-underflow")
        with pytest.raises(SanitizerViolation):
            san.feed([(UNPIN, dict(frames=(9,), pid=1))])
        assert san.counts["pin-underflow"] == 1

    def test_suppress_rejects_typos(self):
        with pytest.raises(ValueError, match="unknown check"):
            PinSanitizer(suppress=("pin-underfow",))
        with pytest.raises(ValueError, match="unknown check"):
            PinSanitizer().expect("dma-unpined").__enter__()

    def test_expect_captures_instead_of_recording(self):
        san = PinSanitizer(strict=True)
        with san.expect("pin-underflow") as got:
            san.feed([(UNPIN, dict(frames=(9,), pid=1))])
        assert [v.check for v in got] == ["pin-underflow"]
        assert san.violations == [] and sum(san.counts.values()) == 0
        # Outside the window, strict raises again.
        with pytest.raises(SanitizerViolation):
            san.feed([(UNPIN, dict(frames=(9,), pid=1))])

    def test_expect_with_no_args_captures_everything(self):
        san = PinSanitizer(strict=True)
        with san.expect() as got:
            san.feed([
                (UNPIN, dict(frames=(9,), pid=1)),
                (DMA_BEGIN, dict(frames=(7,), op="read")),
                (SWAP_OUT, dict(pid=1, vpn=0, frame=7)),
            ])
        assert {v.check for v in got} == {"pin-underflow",
                                         "dma-swapped-frame"}

    def test_unmet_expectation_raises_at_disarm(self):
        # Regression: an expect() block whose violation never fires used
        # to pass silently — the assertion on the capture list becomes
        # vacuous when the scenario stops exercising the hazard.
        san = PinSanitizer().arm(Machine(num_frames=32, seed=0))
        with san.expect("pin-underflow") as got:
            pass                                # hazard never provoked
        assert got == []
        with pytest.raises(UnmetExpectation, match="pin-underflow"):
            san.disarm()
        # the unmet list is consumed: a second disarm is quiet
        san.disarm()

    def test_met_expectation_disarms_quietly(self):
        san = PinSanitizer().arm(Machine(num_frames=32, seed=0))
        with san.expect("pin-underflow") as got:
            san.feed([(UNPIN, dict(frames=(9,), pid=1))])
        assert [v.check for v in got] == ["pin-underflow"]
        san.disarm()
        assert san.violations == []

    def test_exception_in_expect_block_is_not_masked(self):
        # An exception unwinding through the block is the usual reason
        # nothing fired; the expectation must not pile on top of it.
        san = PinSanitizer().arm(Machine(num_frames=32, seed=0))
        with pytest.raises(RuntimeError, match="workload died"):
            with san.expect("pin-underflow"):
                raise RuntimeError("workload died")
        san.disarm()

    def test_unmet_expectation_is_an_assertion_failure(self):
        # UnmetExpectation doubles as AssertionError so test harnesses
        # report it as a plain failure, not an error.
        assert issubclass(UnmetExpectation, AssertionError)


# --------------------------------------------------------- runtime integration

def pump_transfers(cluster, rounds=12, pages=8):
    """Drive verified zero-copy transfers across ``cluster``."""
    s, r = make_pair(cluster)
    mpi = MpiPair(s, r)
    src = s.task.mmap(pages)
    s.task.touch_pages(src, pages)
    dst = r.task.mmap(pages)
    r.task.touch_pages(dst, pages)
    rng = np.random.default_rng(1)
    for i in range(rounds):
        size = int(rng.integers(64, pages * PAGE_SIZE - 64))
        payload = bytes(rng.integers(0, 256, size, dtype=np.uint8))
        s.task.write(src, payload)
        assert mpi.sendrecv(src, dst, size).ok


class TestRuntimeClean:
    """Armed strict, the reliable mechanisms run real workloads with
    zero violations — the sanitizer's false-positive budget is zero."""

    @pytest.mark.parametrize("backend", ["kiobuf", "mlock", "mlock_naive",
                                         "pageflags"])
    def test_locktest_under_pressure_is_clean(self, backend):
        exp = LocktestExperiment(backend, buffer_pages=16,
                                 num_frames=192)
        san = exp.machine.arm_sanitizer(strict=True)
        result = exp.run()
        assert result.registration_survived
        assert san.events_seen > 0
        assert sum(san.counts.values()) == 0
        san.disarm()

    def test_cluster_messaging_with_churn_is_clean(self):
        cluster = Cluster(2, num_frames=512, backend="kiobuf")
        san = cluster.arm_sanitizer(strict=True)
        hogs = [MemoryHog(m.kernel, "churner") for m in cluster.machines]
        for hog, m in zip(hogs, cluster.machines):
            hog.grow(m.kernel.pagemap.num_frames // 2)
        pump_transfers(cluster)
        for hog in hogs:
            hog.churn()
        pump_transfers(cluster, rounds=4)
        # Both hosts' streams were observed, under their machine names.
        hosts = {e.host for _scope, e in san._ring}
        assert hosts == {"m0", "m1"}
        assert sum(san.counts.values()) == 0
        san.disarm()
        seen = san.events_seen
        pump_transfers(cluster, rounds=2)
        assert san.events_seen == seen   # disarm really unsubscribed

    def test_clean_exit_with_live_registrations_is_not_a_leak(self):
        # The driver's exit hook deregisters before TASK_EXIT fires, so
        # dying with live registrations is *clean* teardown, not a leak.
        m = Machine("m0", backend="kiobuf")
        san = m.arm_sanitizer(strict=True)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(8)
        ua.register_mem(va, 8 * PAGE_SIZE)
        m.kernel.exit_task(t)
        assert sum(san.counts.values()) == 0
        san.disarm()


class TestRuntimeDetections:
    """The sanitizer catches the paper's two failure modes live."""

    def test_section_3_1_refcount_swap_registered(self):
        exp = LocktestExperiment("refcount", buffer_pages=16,
                                 num_frames=192)
        san = exp.machine.arm_sanitizer(strict=True)
        with san.expect("swap-registered") as got:
            exp.run()
        assert got, "pressure never swapped a registered page"
        v = got[0]
        assert "§3.1" in v.message and "refcount" in v.message
        # The trail ends at the triggering swap_out of that frame.
        assert v.trail[-1] is v.event
        assert v.event.kind == SWAP_OUT
        san.disarm()

    def test_section_3_2_naive_mlock_nesting(self):
        m = Machine("m0", backend="mlock_naive", num_frames=256)
        san = m.arm_sanitizer(strict=True)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(8)
        r1 = ua.register_mem(va, 8 * PAGE_SIZE)
        r2 = ua.register_mem(va, 8 * PAGE_SIZE)
        with san.expect("mlock-nesting") as got:
            ua.deregister_mem(r1)       # annuls r2's VM_LOCKED (§3.2)
        assert [v.check for v in got] == ["mlock-nesting"]
        v = got[0]
        assert f"handle {r2.handle}" in v.message
        assert v.event.kind == MUNLOCK
        # The trail shows the surviving registration then the munlock.
        kinds = [e.kind for e in v.trail]
        assert REGISTER in kinds and kinds[-1] == MUNLOCK
        ua.deregister_mem(r2)
        assert sum(san.counts.values()) == 0
        san.disarm()

    def test_tracked_mlock_backend_does_not_trip_nesting(self):
        m = Machine("m0", backend="mlock", num_frames=256)
        san = m.arm_sanitizer(strict=True)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(8)
        r1 = ua.register_mem(va, 8 * PAGE_SIZE)
        r2 = ua.register_mem(va, 8 * PAGE_SIZE)
        ua.deregister_mem(r1)           # tracked: r2 stays VM_LOCKED
        ua.deregister_mem(r2)
        assert sum(san.counts.values()) == 0
        san.disarm()


class TestArming:
    def test_arm_baselines_preexisting_pins(self, kernel):
        t = kernel.create_task(name="app")
        va = t.mmap(4)
        t.touch_pages(va, 4)
        kio = map_user_kiobuf(kernel, t, va, 4 * PAGE_SIZE)
        san = PinSanitizer(strict=True).arm(kernel)
        # Releasing a pin taken before arming must not read as underflow.
        unmap_kiobuf(kernel, kio)
        assert sum(san.counts.values()) == 0
        san.disarm()

    def test_arm_seeds_preexisting_registrations(self):
        m = Machine("m0", backend="mlock_naive", num_frames=256)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(8)
        r1 = ua.register_mem(va, 8 * PAGE_SIZE)
        r2 = ua.register_mem(va, 8 * PAGE_SIZE)
        san = m.arm_sanitizer()         # arms *after* both registrations
        with san.expect("mlock-nesting") as got:
            ua.deregister_mem(r1)
        assert got, "seeded registration was not tracked"
        ua.deregister_mem(r2)
        san.disarm()

    def test_machine_and_cluster_arm_helpers(self):
        m = Machine("m0")
        san = m.arm_sanitizer()
        assert san.armed and m.kernel.events.active
        san.disarm()
        assert not m.kernel.events.active
        cluster = Cluster(2)
        san = cluster.arm_sanitizer(strict=True)
        assert all(mm.kernel.events.active for mm in cluster.machines)
        san.disarm()


# ------------------------------------------------------------------ obs bridge

class TestObsBridge:
    def test_counts_land_in_the_metrics_snapshot(self):
        m = Machine("m0", backend="kiobuf")
        san = m.arm_sanitizer()
        san.feed([(UNPIN, dict(frames=(9,), pid=1))])   # one underflow
        snap = m.obs.snapshot()
        metrics = snap["metrics"]
        assert metrics["analysis.san.events_observed"]["value"] == \
            san.events_seen
        assert metrics["analysis.san.violations_total"]["value"] == 1
        assert metrics["analysis.san.violations.pin_underflow"][
            "value"] == 1
        assert metrics["analysis.san.violations.mlock_nesting"][
            "value"] == 0
        san.disarm()
        # After disarm the collector is detached: new snapshots no
        # longer refresh, but the last values persist in the registry.
        san.feed([(UNPIN, dict(frames=(9,), pid=1))])
        snap2 = m.obs.snapshot()
        assert snap2["metrics"]["analysis.san.violations_total"][
            "value"] == 1

    def test_event_hub_counts_emissions(self):
        m = Machine("m0")
        hub: EventHub = m.kernel.events
        assert hub.events_emitted == 0
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(2)
        # No subscribers: emission sites skip entirely.
        ua.register_mem(va, 2 * PAGE_SIZE)
        assert hub.events_emitted == 0
        san = m.arm_sanitizer()
        ua.register_mem(va, 2 * PAGE_SIZE)
        assert hub.events_emitted > 0
        san.disarm()


class TestAtomicNonatomicOverlap:
    """A word the adapter serves remote atomics on must never be hit by
    a plain (non-atomic) DMA write while its registration lives."""

    def test_plain_write_over_atomic_word(self):
        san = PinSanitizer()
        san.feed([
            reg_event(frames=(3,), npages=1),
            (ATOMIC_RMW, dict(frame=3, offset=64)),
            (DMA_BEGIN, dict(frames=(3,), op="write",
                             spans=[(3, 0, 128)])),
        ])
        v = only(san, "atomic-nonatomic-overlap")
        assert "word 64" in v.message and "tear" in v.message

    def test_atomic_inside_open_write_window(self):
        san = PinSanitizer()
        san.feed([
            reg_event(frames=(3,), npages=1),
            (DMA_BEGIN, dict(frames=(3,), op="write_scatter",
                             spans=[(3, 0, 72)])),
            (ATOMIC_RMW, dict(frame=3, offset=64)),
        ])
        only(san, "atomic-nonatomic-overlap")

    def test_disjoint_write_and_closed_window_are_clean(self):
        san = PinSanitizer()
        san.feed([
            reg_event(frames=(3,), npages=1),
            (ATOMIC_RMW, dict(frame=3, offset=64)),
            # byte-disjoint plain write: [0, 64) never touches word 64
            (DMA_BEGIN, dict(frames=(3,), op="write",
                             spans=[(3, 0, 64)])),
            (DMA_END, dict(frames=(3,), op="write",
                           spans=[(3, 0, 64)])),
            # a *read* over the word is fine — only writes can tear
            (DMA_BEGIN, dict(frames=(3,), op="read",
                             spans=[(3, 0, 128)])),
            # window above closed before this RMW, so no overlap either
            (ATOMIC_RMW, dict(frame=3, offset=0)),
        ])
        assert san.violations == []

    def test_deregistration_clears_the_word_history(self):
        san = PinSanitizer()
        san.feed([
            reg_event(handle=1, frames=(3,), npages=1),
            (ATOMIC_RMW, dict(frame=3, offset=64)),
            (DEREGISTER, dict(handle=1, pid=10)),
            # frame recycled: plain writes are legitimate again
            (DMA_BEGIN, dict(frames=(3,), op="write",
                             spans=[(3, 0, 128)])),
        ])
        assert [v.check for v in san.violations] == []

    def test_runtime_rdma_write_over_atomic_word(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        san = cluster.arm_sanitizer(strict=True)
        rva = ua_r.task.mmap(1)
        ua_r.task.touch_pages(rva, 1)
        rreg = ua_r.register_mem(rva, PAGE_SIZE, rdma_write=True,
                                 rdma_atomic=True)
        lva = ua_s.task.mmap(1)
        lreg = ua_s.register_mem(lva, PAGE_SIZE)
        ua_s.atomic_fetchadd(vi_s, lreg, rreg.handle, rva, 1)
        with san.expect("atomic-nonatomic-overlap") as got:
            desc = Descriptor.rdma_write(
                [DataSegment(lreg.handle, lva, 16)], rreg.handle, rva)
            ua_s.post_send(vi_s, desc)
        assert [v.check for v in got] == ["atomic-nonatomic-overlap"]
        # a plain write elsewhere in the region stays clean
        desc = Descriptor.rdma_write(
            [DataSegment(lreg.handle, lva, 16)], rreg.handle, rva + 256)
        ua_s.post_send(vi_s, desc)
        assert sum(san.counts.values()) == 0
        san.disarm()


def test_check_catalog_is_exact():
    """The catalog the docs/metrics promise, in order."""
    assert CHECKS == (
        "dma-unpinned-frame", "dma-swapped-frame", "mlock-nesting",
        "pin-underflow", "tpt-use-after-invalidate", "registration-leak",
        "swap-registered", "quota-breach", "atomic-nonatomic-overlap",
        "odp-dangling-suspension")
    assert MLOCK_BACKENDS == {"mlock", "mlock_naive"}
