"""Remote atomic verbs: descriptor shape, end-to-end semantics, typed
rejects, per-word serialization, and the retransmit-dedup property.

VIA itself has no atomics; these follow the InfiniBand verbs they are
modelled on (ATOMIC_CMPSWAP / ATOMIC_FETCHADD on a naturally aligned
8-byte word, original value returned in the completion).  The property
sweep at the bottom is the acceptance test for the idempotency guard:
N interleaved client streams under packet loss and duplication must
match a sequential oracle exactly — a retransmitted atomic whose
response was lost after execution is answered from the responder's
response cache, never re-executed.
"""

import pytest

from repro.errors import DescriptorError
from repro.hw.physmem import PAGE_SIZE
from repro.sim.costs import FREE
from repro.sim.faults import FaultPlan
from repro.via.constants import (
    VIP_INVALID_MEMORY, VIP_INVALID_PARAMETER, VIP_PROTECTION_ERROR,
    VIP_SUCCESS, DescriptorType, ReliabilityLevel,
)
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.fabric import Packet
from repro.via.machine import Cluster, connected_pair

U64 = 0xFFFF_FFFF_FFFF_FFFF


def seg(handle=1, va=0x1000, length=8):
    return DataSegment(handle, va, length)


def _word(task, va):
    """Read the 8-byte word at ``va`` through the task's page tables."""
    return int.from_bytes(task.read(va, 8), "little")


class TestAtomicDescriptors:
    """Shape rules enforced before posting."""

    def test_constructors_validate(self):
        Descriptor.atomic_cmpswap([seg()], 9, 0x2000, 0, 1).validate()
        Descriptor.atomic_fetchadd([seg()], 9, 0x2000, 5).validate()

    def test_misaligned_target_rejected(self):
        d = Descriptor.atomic_fetchadd([seg()], 9, 0x2004, 1)
        with pytest.raises(DescriptorError, match="aligned"):
            d.validate()

    def test_exactly_one_eight_byte_segment(self):
        with pytest.raises(DescriptorError, match="exactly one"):
            Descriptor.atomic_fetchadd([seg(), seg()], 9, 0x2000,
                                       1).validate()
        with pytest.raises(DescriptorError, match="8 bytes"):
            Descriptor.atomic_fetchadd([seg(length=4)], 9, 0x2000,
                                       1).validate()

    def test_atomics_cannot_carry_immediate_data(self):
        d = Descriptor.atomic_fetchadd([seg()], 9, 0x2000, 1)
        d.immediate_data = b"TAG!"
        with pytest.raises(DescriptorError, match="immediate"):
            d.validate()

    def test_operand_presence_and_range(self):
        d = Descriptor(DescriptorType.ATOMIC_CMPSWAP, [seg()],
                       remote_handle=9, remote_va=0x2000, compare=0)
        with pytest.raises(DescriptorError, match="swap"):
            d.validate()
        with pytest.raises(DescriptorError, match="64-bit"):
            Descriptor.atomic_fetchadd([seg()], 9, 0x2000,
                                       U64 + 1).validate()
        with pytest.raises(DescriptorError, match="64-bit"):
            Descriptor.atomic_cmpswap([seg()], 9, 0x2000, -1, 0).validate()

    def test_stray_operands_rejected_both_ways(self):
        d = Descriptor.atomic_cmpswap([seg()], 9, 0x2000, 0, 1)
        d.add = 3
        with pytest.raises(DescriptorError, match="add"):
            d.validate()
        d2 = Descriptor.atomic_fetchadd([seg()], 9, 0x2000, 1)
        d2.swap = 3
        with pytest.raises(DescriptorError, match="swap"):
            d2.validate()
        d3 = Descriptor.send([seg()])
        d3.compare = 1
        with pytest.raises(DescriptorError, match="atomic"):
            d3.validate()

    def test_empty_immediate_on_rdma_read_still_rejected(self):
        # Regression: ``b""`` is falsy, and a truthiness check used to
        # let a zero-length immediate slip through the RDMA-read rule.
        d = Descriptor.rdma_read([seg()], 9, 0x2000)
        d.immediate_data = b""
        with pytest.raises(DescriptorError, match="immediate"):
            d.validate()


class _AtomicPair:
    """A connected pair with an atomic-enabled remote region."""

    def __init__(self, backend="kiobuf", costs=None, atomic_enable=True):
        (self.cluster, self.ua_s, self.ua_r,
         self.vi_s, self.vi_r) = connected_pair(backend, costs=costs)
        self.rva = self.ua_r.task.mmap(1)
        self.ua_r.task.touch_pages(self.rva, 1)
        self.rreg = self.ua_r.register_mem(self.rva, PAGE_SIZE,
                                           rdma_write=True,
                                           rdma_atomic=atomic_enable)
        self.lva = self.ua_s.task.mmap(1)
        self.lreg = self.ua_s.register_mem(self.lva, PAGE_SIZE)

    def set_word(self, offset, value):
        self.ua_r.task.write(self.rva + offset, value.to_bytes(8, "little"))

    def word(self, offset=0):
        return _word(self.ua_r.task, self.rva + offset)


class TestAtomicSemantics:
    def test_fetchadd_returns_original_and_applies(self):
        p = _AtomicPair()
        p.set_word(0, 40)
        d = p.ua_s.atomic_fetchadd(p.vi_s, p.lreg, p.rreg.handle,
                                   p.rva, 2)
        assert d.status == VIP_SUCCESS
        assert d.atomic_original_value == 40
        assert p.word() == 42
        # the original value also lands in the local 8-byte segment
        assert _word(p.ua_s.task, p.lva) == 40

    def test_fetchadd_wraps_mod_2_64(self):
        p = _AtomicPair()
        p.set_word(0, U64)
        d = p.ua_s.atomic_fetchadd(p.vi_s, p.lreg, p.rreg.handle,
                                   p.rva, 3)
        assert d.atomic_original_value == U64
        assert p.word() == 2

    def test_cmpswap_hit_and_miss(self):
        p = _AtomicPair()
        p.set_word(8, 7)
        hit = p.ua_s.atomic_cmpswap(p.vi_s, p.lreg, p.rreg.handle,
                                    p.rva + 8, 7, 99)
        assert hit.status == VIP_SUCCESS
        assert hit.atomic_original_value == 7
        assert p.word(8) == 99
        miss = p.ua_s.atomic_cmpswap(p.vi_s, p.lreg, p.rreg.handle,
                                     p.rva + 8, 7, 123)
        assert miss.status == VIP_SUCCESS
        assert miss.atomic_original_value == 99   # tells us who holds it
        assert p.word(8) == 99                    # unchanged on miss

    def test_original_value_travels_on_the_cq(self):
        cluster, ua_s, ua_r, _, _ = connected_pair("kiobuf")
        cq = ua_s.create_cq()
        vi_s = ua_s.create_vi(send_cq=cq)
        vi_r = ua_r.create_vi()
        cluster.connect(vi_s, cluster[0], vi_r, cluster[1])
        rva = ua_r.task.mmap(1)
        ua_r.task.touch_pages(rva, 1)
        rreg = ua_r.register_mem(rva, PAGE_SIZE, rdma_atomic=True)
        ua_r.task.write(rva, (17).to_bytes(8, "little"))
        lva = ua_s.task.mmap(1)
        lreg = ua_s.register_mem(lva, PAGE_SIZE)
        ua_s.atomic_fetchadd(vi_s, lreg, rreg.handle, rva, 1)
        comp = ua_s.cq_done(cq)
        assert comp.queue == "send"
        assert comp.atomic_original_value == 17
        assert comp.descriptor.atomic_original_value == 17
        batch = cq.drain_batch()
        assert batch == []

    def test_counters(self):
        p = _AtomicPair()
        for i in range(3):
            p.ua_s.atomic_fetchadd(p.vi_s, p.lreg, p.rreg.handle, p.rva, 1)
        assert p.ua_s.nic.atomics_completed == 3
        assert p.ua_r.nic.atomics_served == 3
        assert p.ua_s.nic.atomic_rejects == 0


class TestAtomicRejects:
    def test_unreliable_vi_rejected_at_post(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair(
            "kiobuf", reliability=ReliabilityLevel.UNRELIABLE)
        lva = ua_s.task.mmap(1)
        lreg = ua_s.register_mem(lva, PAGE_SIZE)
        with pytest.raises(DescriptorError, match="RELIABLE"):
            ua_s.atomic_fetchadd(vi_s, lreg, 999, 0x2000, 1)

    def test_no_atomic_enable_is_protection_error(self):
        p = _AtomicPair(atomic_enable=False)
        d = p.ua_s.atomic_fetchadd(p.vi_s, p.lreg, p.rreg.handle,
                                   p.rva, 1)
        assert d.status == VIP_PROTECTION_ERROR
        assert p.ua_r.nic.atomic_rejects == 1

    def test_responder_rejects_misaligned_packet(self):
        # Descriptor validation stops a misaligned post at the requester;
        # the responder still refuses a crafted wire packet on its own.
        p = _AtomicPair()
        packet = Packet(DescriptorType.ATOMIC_FETCHADD,
                        src_nic=p.ua_s.nic.name, src_vi=p.vi_s.vi_id,
                        dst_nic=p.ua_r.nic.name, dst_vi=p.vi_r.vi_id,
                        remote_handle=p.rreg.handle, remote_va=p.rva + 4,
                        add=1, seq=1)
        status, original = p.ua_r.nic.serve_atomic(
            packet, ReliabilityLevel.RELIABLE_DELIVERY)
        assert (status, original) == (VIP_INVALID_PARAMETER, 0)

    @pytest.mark.san_suppress("mlock-nesting")
    def test_unpinned_word_rejected(self):
        # §3.2's naive-munlock hazard: deregistering an overlapping
        # region annuls the survivor's pins while its TPT entry lives.
        # Fire-and-forget DMA stays "unhelpful" there; the atomic unit
        # refuses to RMW an unpinned word.
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("mlock_naive")
        rva = ua_r.task.mmap(1)
        ua_r.task.touch_pages(rva, 1)
        r1 = ua_r.register_mem(rva, PAGE_SIZE)
        r2 = ua_r.register_mem(rva, PAGE_SIZE, rdma_atomic=True)
        ua_r.deregister_mem(r1)          # annuls r2's pin
        lva = ua_s.task.mmap(1)
        lreg = ua_s.register_mem(lva, PAGE_SIZE)
        d = ua_s.atomic_fetchadd(vi_s, lreg, r2.handle, rva, 1)
        assert d.status == VIP_INVALID_MEMORY
        assert ua_r.nic.atomic_rejects == 1
        ua_r.deregister_mem(r2)


class TestAtomicSerialization:
    def test_contention_window_serializes_a_word(self):
        costs = FREE.scaled(atomic_contention_window_ns=10_000)
        p = _AtomicPair(costs=costs)
        p.cluster.obs.enable()
        for _ in range(4):
            p.ua_s.atomic_fetchadd(p.vi_s, p.lreg, p.rreg.handle,
                                   p.rva, 1)
        # every atomic after the first lands inside the previous one's
        # contention window and stalls a full window on the sim clock
        assert p.cluster.obs.counter("via.atomic.contended").value == 3
        assert p.cluster.clock.now_ns >= 3 * 10_000
        assert p.word() == 4

    def test_distinct_words_do_not_contend(self):
        costs = FREE.scaled(atomic_contention_window_ns=10_000)
        p = _AtomicPair(costs=costs)
        p.cluster.obs.enable()
        for i in range(4):
            p.ua_s.atomic_fetchadd(p.vi_s, p.lreg, p.rreg.handle,
                                   p.rva + 8 * i, 1)
        assert p.cluster.obs.counter("via.atomic.contended").value == 0


class TestDedupProperty:
    """Satellite acceptance: interleaved streams under loss+duplication
    match the sequential oracle — dedup prevents double-apply."""

    N_CLIENTS = 4
    OPS_EACH = 40

    def _run(self, loss, dup, seed=0):
        cluster = Cluster(2, seed=seed)
        target = cluster[1].spawn("target")
        ua_t = cluster[1].user_agent(target)
        rva = target.mmap(1)
        target.touch_pages(rva, 1)
        rreg = ua_t.register_mem(rva, PAGE_SIZE, rdma_atomic=True)
        streams = []
        for i in range(self.N_CLIENTS):
            task = cluster[0].spawn(f"client{i}")
            ua = cluster[0].user_agent(task)
            vi = ua.create_vi()
            vi_srv = ua_t.create_vi()
            cluster.connect(vi, cluster[0], vi_srv, cluster[1])
            lva = task.mmap(1)
            lreg = ua.register_mem(lva, PAGE_SIZE)
            streams.append((ua, vi, lreg))
        cluster.inject_faults(FaultPlan(seed=seed, loss_rate=loss,
                                        duplicate_rate=dup))
        originals = []
        for step in range(self.OPS_EACH):
            for ua, vi, lreg in streams:
                d = ua.atomic_fetchadd(vi, lreg, rreg.handle, rva, 1)
                assert d.status == VIP_SUCCESS
                assert d.atomic_original_value is not None
                originals.append(d.atomic_original_value)
        cluster.inject_faults(None)
        total = self.N_CLIENTS * self.OPS_EACH
        # Sequential oracle: one FETCH_ADD(+1) stream would observe
        # exactly 0..total-1 and leave the word at total.  Any
        # re-executed retransmit shows up as a duplicated original or an
        # over-count; any lost apply as a gap.
        assert _word(target, rva) == total
        assert sorted(originals) == list(range(total))
        return cluster

    def test_clean_fabric_matches_oracle(self):
        self._run(loss=0.0, dup=0.0)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lossy_duplicating_fabric_matches_oracle(self, seed):
        cluster = self._run(loss=0.25, dup=0.20, seed=seed)
        # loss after execution forces replay-from-cache at least once
        assert cluster[1].nic.atomic_replays >= 1
