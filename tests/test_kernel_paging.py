"""Tests for the reclaim path — the skip rules the paper's whole argument
rests on (Sec. 2.2)."""

import pytest

from repro.errors import OutOfMemory
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.kernel.flags import PG_REFERENCED, VM_LOCKED


def fill_task(kernel, npages: int, name: str = "t"):
    t = kernel.create_task(name=name)
    va = t.mmap(npages)
    t.touch_pages(va, npages)
    return t, va


class TestSwapOutSkipRules:
    def test_steals_plain_pages(self, kernel):
        t, va = fill_task(kernel, 8)
        freed = paging.swap_out(kernel, 4)
        assert freed == 4
        assert kernel.trace.count("swap_out") == 4
        assert kernel.swap.writes == 4

    def test_vm_locked_vma_skipped(self, kernel):
        t, va = fill_task(kernel, 8)
        kernel.do_mlock(t, va, 8 * PAGE_SIZE)
        assert paging.swap_out(kernel, 4) == 0
        skips = kernel.trace.of_kind("swap_skip")
        assert any(e["reason"] == "VM_LOCKED" for e in skips)
        assert t.resident_pages() == 8

    def test_pg_locked_page_skipped(self, kernel):
        t, va = fill_task(kernel, 4)
        for frame in t.physical_pages(va, 4):
            kernel.lock_page(frame)
        assert paging.swap_out(kernel, 2) == 0
        assert any(e["reason"] == "PG_locked"
                   for e in kernel.trace.of_kind("swap_skip"))

    def test_pinned_page_skipped(self, kernel):
        """The paper's proposal hook: kiobuf-pinned pages are immune."""
        t, va = fill_task(kernel, 4)
        kio = kernel.map_user_kiobuf(t, va, 4 * PAGE_SIZE)
        assert paging.swap_out(kernel, 2) == 0
        assert any(e["reason"] == "pinned"
                   for e in kernel.trace.of_kind("swap_skip"))
        kernel.unmap_kiobuf(kio)
        assert paging.swap_out(kernel, 2) == 2

    def test_elevated_refcount_does_NOT_protect(self, kernel):
        """The central negative result (Sec. 3.1): a bare get_page
        reference does not stop the steal — the page is unmapped, written
        to swap, and the frame is orphaned."""
        t, va = fill_task(kernel, 1)
        frame = t.physical_pages(va, 1)[0]
        kernel.pagemap.get_page(frame)          # driver-style extra ref
        freed = paging.swap_out(kernel, 1)
        # Unmapped but NOT freed: the steal produced no usable frame.
        assert freed == 0
        ev = kernel.trace.last("swap_out")
        assert ev is not None and ev["frame"] == frame
        assert ev["freed"] is False
        pte = t.page_table.lookup(t.vpn_of(va))
        assert pte.swapped
        pd = kernel.pagemap.page(frame)
        assert pd.count == 1 and pd.tag == "orphan"
        assert pd in kernel.pagemap.orphans()

    def test_cow_shared_page_skipped(self, kernel):
        t, va = fill_task(kernel, 1)
        pd = kernel.pagemap.page(t.physical_pages(va, 1)[0])
        pd.cow_shares = 1
        assert paging.swap_out(kernel, 1) == 0
        assert any(e["reason"] == "cow_shared"
                   for e in kernel.trace.of_kind("swap_skip"))


class TestVictimSelection:
    def test_pressure_spread_across_tasks(self, kernel):
        """swap_cnt heuristic: even a small task eventually gets chosen —
        why locktest's pages were stolen despite the huge allocator."""
        small, _ = fill_task(kernel, 4, "small")
        big, _ = fill_task(kernel, 64, "big")
        # The swap_cnt heuristic drains the biggest task first, but under
        # sustained pressure the counters equalise and the small task is
        # chosen too.
        paging.swap_out(kernel, 66)
        victims = {e["pid"] for e in kernel.trace.of_kind("swap_out")}
        assert small.pid in victims and big.pid in victims

    def test_no_tasks_no_steal(self, kernel):
        assert paging.swap_out(kernel, 4) == 0


class TestShrinkMmap:
    def test_reclaims_unreferenced_cache_pages(self, kernel):
        pds = [kernel.add_page_cache_page() for _ in range(4)]
        freed = paging.shrink_mmap(kernel, kernel.pagemap.num_frames)
        assert freed == 4
        assert kernel.page_cache == set()
        for pd in pds:
            assert pd.free

    def test_second_chance_for_referenced_pages(self, kernel):
        pd = kernel.add_page_cache_page()
        pd.set_flag(PG_REFERENCED)
        assert paging.shrink_mmap(kernel, kernel.pagemap.num_frames) == 0
        assert not pd.referenced   # bit cleared: second chance spent
        assert paging.shrink_mmap(kernel, kernel.pagemap.num_frames) == 1

    def test_locked_cache_page_untouched(self, kernel):
        pd = kernel.add_page_cache_page()
        kernel.lock_page(pd.frame)
        for _ in range(3):
            assert paging.shrink_mmap(kernel,
                                      kernel.pagemap.num_frames) == 0
        assert pd.in_page_cache

    def test_extra_ref_cache_page_skipped(self, kernel):
        pd = kernel.add_page_cache_page()
        kernel.pagemap.get_page(pd.frame)
        assert paging.shrink_mmap(kernel, kernel.pagemap.num_frames) == 0

    def test_does_not_touch_user_pages(self, kernel):
        t, va = fill_task(kernel, 4)
        assert paging.shrink_mmap(kernel, kernel.pagemap.num_frames) == 0
        assert t.resident_pages() == 4


class TestTryToFreePages:
    def test_prefers_cache_then_swaps(self, kernel):
        for _ in range(4):
            kernel.add_page_cache_page()
        t, _ = fill_task(kernel, 8)
        freed = paging.try_to_free_pages(kernel, 6)
        assert freed >= 6
        assert kernel.trace.count("cache_reclaim") == 4
        assert kernel.trace.count("swap_out") >= 2

    def test_allocation_triggers_reclaim(self, tiny_kernel):
        """get_free_pages → try_to_free_pages: exhaust RAM, allocation
        still succeeds by swapping someone out."""
        k = tiny_kernel
        t, _ = fill_task(k, k.pagemap.free_count - 2)
        assert k.free_pages <= k.min_free_pages + 2
        t2 = k.create_task(name="grower")
        va2 = t2.mmap(16)
        t2.touch_pages(va2, 16)   # must trigger reclaim, not OOM
        assert k.trace.count("swap_out") > 0
        assert t2.resident_pages() == 16

    def test_true_oom_when_everything_locked(self, tiny_kernel):
        """When every allocated page is VM_LOCKED, reclaim can free
        nothing and allocation genuinely fails."""
        k = tiny_kernel
        t = k.create_task()
        npages = k.pagemap.free_count - 2
        va = t.mmap(npages)
        t.touch_pages(va, npages)
        k.do_mlock(t, va, npages * PAGE_SIZE)
        t2 = k.create_task()
        va2 = t2.mmap(32)
        with pytest.raises(OutOfMemory):
            # mlock faults pages in *and* locks them, so t2's own pages
            # are not stealable either: a true OOM.
            k.do_mlock(t2, va2, 32 * PAGE_SIZE)


class TestPinEvictionHooks:
    """Regression for the per-frame eviction hook: reclaim used to skip
    *every* pinned frame unconditionally; now it asks the registered
    pin owners first, and only skips when no owner releases its pins."""

    def test_pinned_skip_without_hooks(self, kernel):
        t, va = fill_task(kernel, 4)
        for vpn in range(t.vpn_of(va), t.vpn_of(va) + 4):
            kernel.pin_user_page(t, vpn)
        assert kernel.pin_eviction_hooks == []
        assert paging.swap_out(kernel, 2) == 0
        assert any(e["reason"] == "pinned"
                   for e in kernel.trace.of_kind("swap_skip"))
        assert t.resident_pages() == 4
        for frame in t.physical_pages(va, 4):
            kernel.unpin_user_page(frame, t.pid)

    def test_declining_hook_preserves_skip(self, kernel):
        t, va = fill_task(kernel, 2)
        frames = t.physical_pages(va, 2)
        for vpn in range(t.vpn_of(va), t.vpn_of(va) + 2):
            kernel.pin_user_page(t, vpn)
        asked = []
        kernel.pin_eviction_hooks.append(
            lambda frame: (asked.append(frame), False)[1])
        assert paging.swap_out(kernel, 2) == 0
        assert set(asked) == set(frames)     # consulted, not bypassed
        assert t.resident_pages() == 2
        for frame in frames:
            kernel.unpin_user_page(frame, t.pid)

    def test_releasing_hook_makes_frame_stealable(self, kernel):
        kernel.obs.enable()
        t, va = fill_task(kernel, 2)
        frames = t.physical_pages(va, 2)
        for vpn in range(t.vpn_of(va), t.vpn_of(va) + 2):
            kernel.pin_user_page(t, vpn)

        def release(frame):
            if frame not in frames:
                return False
            kernel.unpin_user_page(frame, t.pid)
            return True

        kernel.pin_eviction_hooks.append(release)
        assert paging.swap_out(kernel, 2) == 2
        assert t.resident_pages() == 0
        assert kernel.obs.counter(
            "kernel.paging.swap_evictions.odp").value == 2
