"""Shared fixtures for the test suite, plus the post-hoc invariant
audit: every kernel built during a test is checked for accounting
violations after the test body finishes, so a test that silently
corrupts kernel state fails even if its own assertions pass.  Tests
that corrupt state *on purpose* opt out with
``@pytest.mark.no_posthoc_audit``."""

from __future__ import annotations

import pytest

from repro.core.audit import audit_kernel_invariants
from repro.kernel.kernel import Kernel
from repro.sim import costs as costs_mod

_live_kernels: list[Kernel] = []
_original_kernel_init = Kernel.__init__


def _recording_init(self, *args, **kwargs):
    _original_kernel_init(self, *args, **kwargs)
    _live_kernels.append(self)


Kernel.__init__ = _recording_init


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_setup(item):
    _live_kernels.clear()
    yield


def pytest_runtest_teardown(item, nextitem):
    kernels, _live_kernels[:] = list(_live_kernels), []
    if item.get_closest_marker("no_posthoc_audit") is not None:
        return
    for kernel in kernels:
        audit_kernel_invariants(kernel)


@pytest.fixture
def kernel() -> Kernel:
    """A small machine: 256 frames (1 MiB), plenty of swap."""
    return Kernel(num_frames=256, swap_slots=2048, seed=0)


@pytest.fixture
def tiny_kernel() -> Kernel:
    """A very small machine (64 frames) where pressure is trivial."""
    return Kernel(num_frames=64, swap_slots=1024, seed=0)


@pytest.fixture
def free_kernel() -> Kernel:
    """A machine with a zero-cost model, for pure-correctness tests."""
    return Kernel(num_frames=256, swap_slots=2048, costs=costs_mod.FREE,
                  seed=0)
