"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.kernel.kernel import Kernel
from repro.sim import costs as costs_mod


@pytest.fixture
def kernel() -> Kernel:
    """A small machine: 256 frames (1 MiB), plenty of swap."""
    return Kernel(num_frames=256, swap_slots=2048, seed=0)


@pytest.fixture
def tiny_kernel() -> Kernel:
    """A very small machine (64 frames) where pressure is trivial."""
    return Kernel(num_frames=64, swap_slots=1024, seed=0)


@pytest.fixture
def free_kernel() -> Kernel:
    """A machine with a zero-cost model, for pure-correctness tests."""
    return Kernel(num_frames=256, swap_slots=2048, costs=costs_mod.FREE,
                  seed=0)
