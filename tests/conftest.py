"""Shared fixtures for the test suite, plus the post-hoc invariant
audit: every kernel built during a test is checked for accounting
violations after the test body finishes, so a test that silently
corrupts kernel state fails even if its own assertions pass.  Tests
that corrupt state *on purpose* opt out with
``@pytest.mark.no_posthoc_audit``.

With ``REPRO_SANITIZE`` set in the environment, every kernel built
during a test is additionally armed with a
:class:`~repro.analysis.sanitizer.PinSanitizer`
(``REPRO_SANITIZE=strict`` raises at the offending operation; any
other value accumulates and fails the test at teardown).  Tests that
*provoke* violations — the paper's broken mechanisms doing what the
paper says they do — scope them out with
``@pytest.mark.san_suppress("check", ...)``; with no arguments the
marker skips suite-level arming for that test entirely (for tests
that manage their own sanitizer or hand-feed event streams).

``REPRO_RACE`` works the same way for the happens-before race engine:
every kernel built during a test is armed with a
:class:`~repro.analysis.races.RaceDetector` (``strict`` raises
:class:`~repro.errors.RaceDetected` at the access that closes a race;
any other value accumulates and fails at teardown), opted out per race
kind — or entirely, with no arguments — via
``@pytest.mark.race_suppress(...)``."""

from __future__ import annotations

import os

import pytest

from repro.analysis.races import RaceDetector
from repro.analysis.sanitizer import PinSanitizer
from repro.core.audit import audit_kernel_invariants
from repro.kernel.kernel import Kernel
from repro.sim import costs as costs_mod

_live_kernels: list[Kernel] = []
_original_kernel_init = Kernel.__init__

_SANITIZE_MODE = os.environ.get("REPRO_SANITIZE", "")
_RACE_MODE = os.environ.get("REPRO_RACE", "")
#: the suite-level sanitizer for the current test, when arming is on
_suite_sanitizer: list[PinSanitizer] = []
#: the suite-level race detector for the current test, when arming is on
_suite_detector: list[RaceDetector] = []


def _recording_init(self, *args, **kwargs):
    _original_kernel_init(self, *args, **kwargs)
    _live_kernels.append(self)
    if _suite_sanitizer:
        # Armed at construction: a fresh kernel has no pins and no
        # registrations, so the arming baseline is trivially right even
        # though a Machine may relabel the hub's host afterwards.
        _suite_sanitizer[0].arm(self)
    if _suite_detector:
        _suite_detector[0].arm(self)


Kernel.__init__ = _recording_init


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_setup(item):
    _live_kernels.clear()
    _suite_sanitizer.clear()
    _suite_detector.clear()
    if _SANITIZE_MODE:
        marker = item.get_closest_marker("san_suppress")
        if marker is None or marker.args:
            _suite_sanitizer.append(PinSanitizer(
                strict=_SANITIZE_MODE == "strict",
                suppress=marker.args if marker is not None else ()))
    if _RACE_MODE:
        marker = item.get_closest_marker("race_suppress")
        if marker is None or marker.args:
            _suite_detector.append(RaceDetector(
                strict=_RACE_MODE == "strict",
                suppress=marker.args if marker is not None else ()))
    yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_teardown(item, nextitem):
    # Hookwrapper so a failing audit cannot abort pytest's own
    # fixture/finalizer teardown (which runs inside the yield).
    yield
    kernels, _live_kernels[:] = list(_live_kernels), []
    sanitizers, _suite_sanitizer[:] = list(_suite_sanitizer), []
    detectors, _suite_detector[:] = list(_suite_detector), []
    for san in sanitizers:
        san.disarm()
        if san.violations:
            raise AssertionError(
                f"pin sanitizer recorded {len(san.violations)} "
                f"violation(s):\n\n"
                + "\n\n".join(v.format() for v in san.violations))
    for det in detectors:
        det.disarm()
        if det.races:
            raise AssertionError(
                f"race detector recorded {len(det.races)} race(s):\n\n"
                + "\n\n".join(r.format() for r in det.races))
    if item.get_closest_marker("no_posthoc_audit") is not None:
        return
    for kernel in kernels:
        audit_kernel_invariants(kernel)


@pytest.fixture
def kernel() -> Kernel:
    """A small machine: 256 frames (1 MiB), plenty of swap."""
    return Kernel(num_frames=256, swap_slots=2048, seed=0)


@pytest.fixture
def tiny_kernel() -> Kernel:
    """A very small machine (64 frames) where pressure is trivial."""
    return Kernel(num_frames=64, swap_slots=1024, seed=0)


@pytest.fixture
def free_kernel() -> Kernel:
    """A machine with a zero-cost model, for pure-correctness tests."""
    return Kernel(num_frames=256, swap_slots=2048, costs=costs_mod.FREE,
                  seed=0)
