"""Tests for the kiobuf subsystem (map_user_kiobuf / unmap_kiobuf)."""

import pytest

from repro.errors import KiobufError, SegmentationFault
from repro.hw.physmem import PAGE_SIZE


class TestMapUserKiobuf:
    def test_map_faults_pages_in(self, kernel):
        t = kernel.create_task()
        va = t.mmap(4)
        assert t.resident_pages() == 0
        kio = kernel.map_user_kiobuf(t, va, 4 * PAGE_SIZE)
        assert t.resident_pages() == 4
        assert kio.npages == 4
        assert kio.frames == t.physical_pages(va, 4)

    def test_map_takes_ref_and_pin(self, kernel):
        t = kernel.create_task()
        va = t.mmap(2)
        t.touch_pages(va, 2)
        kio = kernel.map_user_kiobuf(t, va, 2 * PAGE_SIZE)
        for frame in kio.frames:
            pd = kernel.pagemap.page(frame)
            assert pd.count == 2       # mapping + kiobuf
            assert pd.pin_count == 1

    def test_unmap_releases_everything(self, kernel):
        t = kernel.create_task()
        va = t.mmap(2)
        kio = kernel.map_user_kiobuf(t, va, 2 * PAGE_SIZE)
        kernel.unmap_kiobuf(kio)
        for frame in kio.frames:
            pd = kernel.pagemap.page(frame)
            assert pd.count == 1 and pd.pin_count == 0
        assert not kio.mapped
        assert kio.kiobuf_id not in kernel.kiobufs

    def test_double_unmap_rejected(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        kio = kernel.map_user_kiobuf(t, va, PAGE_SIZE)
        kernel.unmap_kiobuf(kio)
        with pytest.raises(KiobufError):
            kernel.unmap_kiobuf(kio)

    def test_two_kiobufs_nest(self, kernel):
        """The property mlock lacks: independent mappings stack."""
        t = kernel.create_task()
        va = t.mmap(2)
        k1 = kernel.map_user_kiobuf(t, va, 2 * PAGE_SIZE)
        k2 = kernel.map_user_kiobuf(t, va, 2 * PAGE_SIZE)
        pd = kernel.pagemap.page(k1.frames[0])
        assert pd.pin_count == 2
        kernel.unmap_kiobuf(k1)
        assert pd.pin_count == 1       # still pinned by k2
        kernel.unmap_kiobuf(k2)
        assert pd.pin_count == 0

    def test_partial_page_range(self, kernel):
        t = kernel.create_task()
        va = t.mmap(3)
        # 100 bytes starting mid-page: still pins the whole page.
        kio = kernel.map_user_kiobuf(t, va + 50, 100)
        assert kio.npages == 1
        # spanning a boundary pins both pages
        kio2 = kernel.map_user_kiobuf(t, va + PAGE_SIZE - 10, 20)
        assert kio2.npages == 2

    def test_physical_segments(self, kernel):
        t = kernel.create_task()
        va = t.mmap(2)
        kio = kernel.map_user_kiobuf(t, va + 100, PAGE_SIZE)
        segs = kio.physical_segments()
        assert len(segs) == 2
        assert segs[0][1] == PAGE_SIZE - 100
        assert segs[1][1] == 100
        assert segs[0][0] % PAGE_SIZE == 100
        assert segs[1][0] % PAGE_SIZE == 0
        assert sum(n for _, n in segs) == PAGE_SIZE

    def test_unmapped_range_rejected_and_unwound(self, kernel):
        t = kernel.create_task()
        va = t.mmap(2)
        with pytest.raises(SegmentationFault):
            kernel.map_user_kiobuf(t, va, 4 * PAGE_SIZE)  # runs off the VMA
        # The two good pages were unwound: no stray pins/refs.
        for frame in t.physical_pages(va, 2):
            if frame is not None:
                pd = kernel.pagemap.page(frame)
                assert pd.pin_count == 0 and pd.count == 1

    def test_readonly_vma_rejected_for_write_map(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1, writable=False)
        with pytest.raises(SegmentationFault):
            kernel.map_user_kiobuf(t, va, PAGE_SIZE, write=True)
        # read-only mapping is fine
        kio = kernel.map_user_kiobuf(t, va, PAGE_SIZE, write=False)
        assert kio.npages == 1

    def test_zero_bytes_rejected(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        with pytest.raises(KiobufError):
            kernel.map_user_kiobuf(t, va, 0)

    def test_map_swapped_page_faults_it_back(self, kernel):
        from repro.kernel import paging
        t = kernel.create_task()
        va = t.mmap(1)
        t.write(va, b"data")
        paging.swap_out(kernel, 1)
        assert t.resident_pages() == 0
        kio = kernel.map_user_kiobuf(t, va, PAGE_SIZE)
        assert t.resident_pages() == 1
        assert t.read(va, 4) == b"data"
        assert t.major_faults == 1
        kernel.unmap_kiobuf(kio)
