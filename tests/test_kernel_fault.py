"""Tests for the page-fault handler (demand paging, swap-in, COW)."""

import pytest

from repro.errors import SegmentationFault
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.fault import handle_fault


class TestDemandPaging:
    def test_mmap_allocates_nothing(self, kernel):
        t = kernel.create_task()
        free_before = kernel.free_pages
        t.mmap(16)
        assert kernel.free_pages == free_before

    def test_touch_allocates_distinct_frames(self, kernel):
        """Step 1 of the paper's experiment: touching every page maps
        each virtual page to a distinct physical page."""
        t = kernel.create_task()
        va = t.mmap(8)
        t.touch_pages(va, 8)
        frames = t.physical_pages(va, 8)
        assert None not in frames
        assert len(set(frames)) == 8
        assert t.minor_faults == 8

    def test_demand_zero_page_is_zero(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        assert t.read(va, PAGE_SIZE) == bytes(PAGE_SIZE)

    def test_fault_outside_vma_segfaults(self, kernel):
        t = kernel.create_task()
        with pytest.raises(SegmentationFault):
            handle_fault(kernel, t, 0xDEAD, write=False)

    def test_write_to_readonly_vma_segfaults(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1, writable=False)
        with pytest.raises(SegmentationFault):
            t.write(va, b"x")
        # reads are fine
        assert t.read(va, 4) == bytes(4)

    def test_spurious_fault_on_present_page(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        t.write(va, b"a")
        frame = t.physical_pages(va, 1)[0]
        assert handle_fault(kernel, t, t.vpn_of(va), write=True) == frame


class TestSwapInPath:
    def _swap_out_one(self, kernel, task, va):
        """Force the single page at va out to swap."""
        from repro.kernel import paging
        vpn = task.vpn_of(va)
        # Keep stealing until this vpn is gone (other pages may go first).
        for _ in range(1000):
            pte = task.page_table.lookup(vpn)
            if pte is not None and not pte.present:
                return
            if paging.swap_out(kernel, 1) == 0:
                break
        pte = task.page_table.lookup(vpn)
        assert pte is not None and pte.swapped, "could not swap target page"

    def test_swap_in_restores_contents_into_new_frame(self, kernel):
        t = kernel.create_task()
        va = t.mmap(4)
        t.write(va, b"persist me")
        old_frame = t.physical_pages(va, 1)[0]
        self._swap_out_one(kernel, t, va)
        assert kernel.trace.count("swap_out") >= 1
        # Touch it again: major fault reads it back.
        data = t.read(va, 10)
        assert data == b"persist me"
        assert t.major_faults >= 1
        new_frame = t.physical_pages(va, 1)[0]
        assert new_frame is not None
        # The frame was freed in between, so it may or may not be reused;
        # what matters is the data integrity verified above.
        assert isinstance(old_frame, int)

    def test_swap_in_frees_swap_slot(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        t.write(va, b"z")
        self._swap_out_one(kernel, t, va)
        used = kernel.swap.slots_in_use
        t.read(va, 1)
        assert kernel.swap.slots_in_use == used - 1


class TestCOW:
    def _share_cow(self, kernel, src, dst, src_va, dst_va):
        """Manually establish a COW share of one frame between tasks
        (the simulator has no fork; tests build shares directly)."""
        pte = src.page_table.lookup(src.vpn_of(src_va))
        pd = kernel.pagemap.get_page(pte.frame)
        pd.cow_shares = 2
        pte.writable = False
        pte.cow = True
        dpte = dst.page_table.set_mapping(dst.vpn_of(dst_va), pte.frame,
                                          writable=False)
        dpte.cow = True

    def test_cow_break_copies(self, kernel):
        a = kernel.create_task()
        b = kernel.create_task()
        va_a = a.mmap(1)
        va_b = b.mmap(1)
        a.write(va_a, b"shared")
        b.touch_pages(va_b, 1)
        # Rewire b's page to share a's frame copy-on-write.
        old_b_frame = b.physical_pages(va_b, 1)[0]
        kernel.pagemap.put_page(old_b_frame)
        b.page_table.clear(b.vpn_of(va_b))
        self._share_cow(kernel, a, b, va_a, va_b)
        assert b.read(va_b, 6) == b"shared"
        # Write from b breaks the share.
        b.write(va_b, b"mine!!")
        assert b.read(va_b, 6) == b"mine!!"
        assert a.read(va_a, 6) == b"shared"
        assert a.physical_pages(va_a, 1) != b.physical_pages(va_b, 1)

    def test_cow_last_sharer_reuses_frame(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        t.write(va, b"x")
        pte = t.page_table.lookup(t.vpn_of(va))
        pte.writable = False
        pte.cow = True
        kernel.pagemap.page(pte.frame).cow_shares = 1
        frame_before = pte.frame
        t.write(va, b"y")
        assert t.physical_pages(va, 1)[0] == frame_before
        assert kernel.trace.count("cow_reuse") == 1


class TestCowUnderflowRegression:
    """Regression: ``_break_cow`` used to clamp a sharer-count underflow
    silently (``cow_shares`` already 0 at the decrement).  An underflow
    means fork/munmap/exit accounting lost a decrement — the kind of
    rot the ODP eviction path, which trusts ``cow_shares``, would turn
    into a stale DMA — so it must always leave evidence, and under
    strict accounting it must be fatal."""

    @staticmethod
    def _broken_cow_page(kernel):
        """A COW-marked PTE whose frame claims zero sharers (the lost
        decrement already happened)."""
        t = kernel.create_task()
        va = t.mmap(1)
        t.write(va, b"x")
        pte = t.page_table.lookup(t.vpn_of(va))
        pte.writable = False
        pte.cow = True
        assert kernel.pagemap.page(pte.frame).cow_shares == 0
        return t, va

    def test_underflow_traces_and_counts(self):
        # Explicitly non-strict: the suite may run with REPRO_SANITIZE
        # =strict, which flips the fixture kernel's default to fatal.
        from repro.kernel.kernel import Kernel
        kernel = Kernel(num_frames=64, swap_slots=256,
                        strict_accounting=False)
        assert not kernel.strict_accounting
        t, va = self._broken_cow_page(kernel)
        t.write(va, b"y")               # clamped: the write still lands
        assert t.read(va, 1) == b"y"
        events = kernel.trace.of_kind("cow_underflow")
        assert len(events) == 1
        assert events[0]["pid"] == t.pid
        assert events[0]["cow_shares"] == 0

    def test_underflow_fatal_under_strict_accounting(self):
        from repro.errors import PageAccountingError
        from repro.kernel.kernel import Kernel
        kernel = Kernel(num_frames=64, swap_slots=256,
                        strict_accounting=True)
        t, va = self._broken_cow_page(kernel)
        with pytest.raises(PageAccountingError):
            t.write(va, b"y")
        assert kernel.trace.count("cow_underflow") == 1

    def test_healthy_cow_break_is_silent(self, kernel):
        """The fork → write path never trips the check."""
        parent = kernel.create_task()
        va = parent.mmap(2)
        parent.write(va, b"shared")
        child = kernel.fork_task(parent)
        child.write(va, b"child!")
        parent.write(va + PAGE_SIZE, b"parent")
        assert kernel.trace.count("cow_underflow") == 0
        assert child.read(va, 6) == b"child!"
        assert parent.read(va, 6) == b"shared"

    def test_strict_accounting_defaults_from_env(self, monkeypatch):
        from repro.kernel.kernel import Kernel
        monkeypatch.setenv("REPRO_SANITIZE", "strict")
        assert Kernel(num_frames=64).strict_accounting
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert not Kernel(num_frames=64).strict_accounting
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not Kernel(num_frames=64).strict_accounting
        # An explicit argument always wins over the environment.
        monkeypatch.setenv("REPRO_SANITIZE", "strict")
        assert not Kernel(num_frames=64,
                          strict_accounting=False).strict_accounting
