"""Tests for the Translation and Protection Table."""

import pytest

from repro.errors import NotRegistered, ProtectionError, ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.via.tpt import TranslationProtectionTable

TAG_A, TAG_B = 0x100, 0x200


def install(tpt, va=0x10000, npages=4, tag=TAG_A, **kw):
    frames = list(range(10, 10 + npages))
    return tpt.install(va_base=va, nbytes=npages * PAGE_SIZE, prot_tag=tag,
                       frames=frames, **kw)


class TestInstallRemove:
    def test_install_and_lookup(self):
        tpt = TranslationProtectionTable(16)
        region = install(tpt)
        assert tpt.lookup(region.handle) is region
        assert tpt.entries_used == 4
        assert tpt.entries_free == 12

    def test_capacity_enforced(self):
        tpt = TranslationProtectionTable(4)
        install(tpt, npages=3)
        with pytest.raises(ViaError) as exc:
            install(tpt, va=0x90000, npages=2)
        assert exc.value.status == "VIP_ERROR_RESOURCE"

    def test_remove_releases_entries(self):
        tpt = TranslationProtectionTable(4)
        region = install(tpt, npages=4)
        tpt.remove(region.handle)
        assert tpt.entries_used == 0
        with pytest.raises(NotRegistered):
            tpt.lookup(region.handle)

    def test_remove_unknown(self):
        with pytest.raises(NotRegistered):
            TranslationProtectionTable().remove(999)

    def test_empty_region_rejected(self):
        tpt = TranslationProtectionTable()
        with pytest.raises(ViaError):
            tpt.install(va_base=0, nbytes=0, prot_tag=TAG_A, frames=[])

    def test_handles_unique(self):
        tpt = TranslationProtectionTable()
        a = install(tpt)
        b = install(tpt, va=0x90000)
        assert a.handle != b.handle


class TestTranslation:
    def test_single_page(self):
        tpt = TranslationProtectionTable()
        region = install(tpt, va=0x10000, npages=4)
        segs = tpt.translate(region.handle, 0x10000 + 100, 50, TAG_A)
        assert segs == [(10 * PAGE_SIZE + 100, 50)]

    def test_multi_page_spans(self):
        tpt = TranslationProtectionTable()
        region = install(tpt, va=0x10000, npages=4)
        va = 0x10000 + PAGE_SIZE - 10
        segs = tpt.translate(region.handle, va, 20, TAG_A)
        assert segs == [(10 * PAGE_SIZE + PAGE_SIZE - 10, 10),
                        (11 * PAGE_SIZE, 10)]

    def test_translation_uses_recorded_frames(self):
        """The staleness mechanism: translation uses registration-time
        frames even after they are mutated out from under the TPT."""
        tpt = TranslationProtectionTable()
        region = install(tpt)
        region.frames[0] = 99      # "kernel moved the page"
        segs = tpt.translate(region.handle, 0x10000, 8, TAG_A)
        assert segs[0][0] == 99 * PAGE_SIZE

    def test_wrong_tag_rejected(self):
        tpt = TranslationProtectionTable()
        region = install(tpt, tag=TAG_A)
        with pytest.raises(ProtectionError):
            tpt.translate(region.handle, 0x10000, 4, TAG_B)

    def test_out_of_bounds_rejected(self):
        tpt = TranslationProtectionTable()
        region = install(tpt, va=0x10000, npages=2)
        with pytest.raises(NotRegistered):
            tpt.translate(region.handle, 0x10000, 3 * PAGE_SIZE, TAG_A)
        with pytest.raises(NotRegistered):
            tpt.translate(region.handle, 0x10000 - 1, 4, TAG_A)

    def test_rdma_enables(self):
        tpt = TranslationProtectionTable()
        region = install(tpt, rdma_write=True, rdma_read=False)
        tpt.translate(region.handle, 0x10000, 4, TAG_A, rdma_write=True)
        with pytest.raises(ProtectionError):
            tpt.translate(region.handle, 0x10000, 4, TAG_A, rdma_read=True)

    def test_rdma_disabled_by_default(self):
        tpt = TranslationProtectionTable()
        region = install(tpt)
        with pytest.raises(ProtectionError):
            tpt.translate(region.handle, 0x10000, 4, TAG_A, rdma_write=True)

    def test_unaligned_base_region(self):
        """Regions need not start on a page boundary."""
        tpt = TranslationProtectionTable()
        va = 0x10000 + 100
        region = tpt.install(va_base=va, nbytes=200, prot_tag=TAG_A,
                             frames=[7])
        segs = tpt.translate(region.handle, va + 10, 100, TAG_A)
        assert segs == [(7 * PAGE_SIZE + 110, 100)]
