"""Tests for the Translation and Protection Table."""

import pytest

from repro.errors import NotRegistered, ProtectionError, ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.via.tpt import TranslationProtectionTable

TAG_A, TAG_B = 0x100, 0x200


def install(tpt, va=0x10000, npages=4, tag=TAG_A, **kw):
    frames = list(range(10, 10 + npages))
    return tpt.install(va_base=va, nbytes=npages * PAGE_SIZE, prot_tag=tag,
                       frames=frames, **kw)


class TestInstallRemove:
    def test_install_and_lookup(self):
        tpt = TranslationProtectionTable(16)
        region = install(tpt)
        assert tpt.lookup(region.handle) is region
        assert tpt.entries_used == 4
        assert tpt.entries_free == 12

    def test_capacity_enforced(self):
        tpt = TranslationProtectionTable(4)
        install(tpt, npages=3)
        with pytest.raises(ViaError) as exc:
            install(tpt, va=0x90000, npages=2)
        assert exc.value.status == "VIP_ERROR_RESOURCE"

    def test_remove_releases_entries(self):
        tpt = TranslationProtectionTable(4)
        region = install(tpt, npages=4)
        tpt.remove(region.handle)
        assert tpt.entries_used == 0
        with pytest.raises(NotRegistered):
            tpt.lookup(region.handle)

    def test_remove_unknown(self):
        with pytest.raises(NotRegistered):
            TranslationProtectionTable().remove(999)

    def test_empty_region_rejected(self):
        tpt = TranslationProtectionTable()
        with pytest.raises(ViaError):
            tpt.install(va_base=0, nbytes=0, prot_tag=TAG_A, frames=[])

    def test_handles_unique(self):
        tpt = TranslationProtectionTable()
        a = install(tpt)
        b = install(tpt, va=0x90000)
        assert a.handle != b.handle


class TestTranslation:
    def test_single_page(self):
        tpt = TranslationProtectionTable()
        region = install(tpt, va=0x10000, npages=4)
        segs = tpt.translate(region.handle, 0x10000 + 100, 50, TAG_A)
        assert segs == [(10 * PAGE_SIZE + 100, 50)]

    def test_multi_page_spans_coalesced(self):
        """Adjacent frames merge into one extent on the fast path."""
        tpt = TranslationProtectionTable()
        region = install(tpt, va=0x10000, npages=4)
        va = 0x10000 + PAGE_SIZE - 10
        segs = tpt.translate(region.handle, va, 20, TAG_A)
        assert segs == [(10 * PAGE_SIZE + PAGE_SIZE - 10, 20)]

    def test_multi_page_spans_legacy_walk(self):
        """The per-page walk splits the same span at page boundaries."""
        tpt = TranslationProtectionTable()
        tpt.coalesce_extents = False
        region = install(tpt, va=0x10000, npages=4)
        va = 0x10000 + PAGE_SIZE - 10
        segs = tpt.translate(region.handle, va, 20, TAG_A)
        assert segs == [(10 * PAGE_SIZE + PAGE_SIZE - 10, 10),
                        (11 * PAGE_SIZE, 10)]

    def test_discontiguous_frames_split_extents(self):
        tpt = TranslationProtectionTable()
        region = tpt.install(va_base=0x10000, nbytes=3 * PAGE_SIZE,
                             prot_tag=TAG_A, frames=[10, 11, 20])
        segs = tpt.translate(region.handle, 0x10000, 3 * PAGE_SIZE, TAG_A)
        assert segs == [(10 * PAGE_SIZE, 2 * PAGE_SIZE),
                        (20 * PAGE_SIZE, PAGE_SIZE)]

    def test_translation_uses_recorded_frames(self):
        """The staleness mechanism: translation uses registration-time
        frames even after they are mutated out from under the TPT."""
        tpt = TranslationProtectionTable()
        region = install(tpt)
        region.frames[0] = 99      # "kernel moved the page"
        segs = tpt.translate(region.handle, 0x10000, 8, TAG_A)
        assert segs[0][0] == 99 * PAGE_SIZE

    def test_wrong_tag_rejected(self):
        tpt = TranslationProtectionTable()
        region = install(tpt, tag=TAG_A)
        with pytest.raises(ProtectionError):
            tpt.translate(region.handle, 0x10000, 4, TAG_B)

    def test_out_of_bounds_rejected(self):
        tpt = TranslationProtectionTable()
        region = install(tpt, va=0x10000, npages=2)
        with pytest.raises(NotRegistered):
            tpt.translate(region.handle, 0x10000, 3 * PAGE_SIZE, TAG_A)
        with pytest.raises(NotRegistered):
            tpt.translate(region.handle, 0x10000 - 1, 4, TAG_A)

    def test_rdma_enables(self):
        tpt = TranslationProtectionTable()
        region = install(tpt, rdma_write=True, rdma_read=False)
        tpt.translate(region.handle, 0x10000, 4, TAG_A, rdma_write=True)
        with pytest.raises(ProtectionError):
            tpt.translate(region.handle, 0x10000, 4, TAG_A, rdma_read=True)

    def test_rdma_disabled_by_default(self):
        tpt = TranslationProtectionTable()
        region = install(tpt)
        with pytest.raises(ProtectionError):
            tpt.translate(region.handle, 0x10000, 4, TAG_A, rdma_write=True)

    def test_unaligned_base_region(self):
        """Regions need not start on a page boundary."""
        tpt = TranslationProtectionTable()
        va = 0x10000 + 100
        region = tpt.install(va_base=va, nbytes=200, prot_tag=TAG_A,
                             frames=[7])
        segs = tpt.translate(region.handle, va + 10, 100, TAG_A)
        assert segs == [(7 * PAGE_SIZE + 110, 100)]

    def test_unaligned_base_multi_page(self):
        """Regression: a multi-page region whose base is not
        page-aligned must index frames relative to the region's
        *aligned* base (``va // PAGE_SIZE``), not its raw ``va_base`` —
        the two paths (extent and per-page) must agree byte-for-byte."""
        tpt = TranslationProtectionTable(translation_cache_entries=0)
        va = 0x10000 + 100
        # 2 * PAGE_SIZE bytes starting 100 bytes into a page touch three
        # pages; deliberately non-adjacent frames so nothing coalesces.
        region = tpt.install(va_base=va, nbytes=2 * PAGE_SIZE,
                             prot_tag=TAG_A, frames=[7, 9, 13])
        fast = tpt.translate(region.handle, va, 2 * PAGE_SIZE, TAG_A)
        assert fast == [(7 * PAGE_SIZE + 100, PAGE_SIZE - 100),
                        (9 * PAGE_SIZE, PAGE_SIZE),
                        (13 * PAGE_SIZE, 100)]
        tpt.coalesce_extents = False
        legacy = tpt.translate(region.handle, va, 2 * PAGE_SIZE, TAG_A)
        assert legacy == fast
        # A sub-span starting mid-way through the second page.
        tpt.coalesce_extents = True
        off = PAGE_SIZE - 100 + 50        # 50 bytes into page 1
        fast = tpt.translate(region.handle, va + off, PAGE_SIZE, TAG_A)
        tpt.coalesce_extents = False
        legacy = tpt.translate(region.handle, va + off, PAGE_SIZE, TAG_A)
        assert legacy == fast == [(9 * PAGE_SIZE + 50, PAGE_SIZE - 50),
                                  (13 * PAGE_SIZE, 50)]


class TestTranslationCache:
    def test_repeat_translation_is_a_hit(self):
        tpt = TranslationProtectionTable()
        region = install(tpt)
        first = tpt.translate(region.handle, 0x10000, 100, TAG_A)
        assert (tpt.cache_misses, tpt.cache_hits) == (1, 0)
        second = tpt.translate(region.handle, 0x10000, 100, TAG_A)
        assert second == first
        assert (tpt.cache_misses, tpt.cache_hits) == (1, 1)
        assert tpt.cached_translations == 1

    def test_cached_result_is_a_copy(self):
        tpt = TranslationProtectionTable()
        region = install(tpt)
        first = tpt.translate(region.handle, 0x10000, 100, TAG_A)
        first.append(("garbage", 0))
        second = tpt.translate(region.handle, 0x10000, 100, TAG_A)
        assert second == [(10 * PAGE_SIZE, 100)]

    def test_deregister_invalidates_cached_translations(self):
        """A cached translation must never outlive its registration."""
        tpt = TranslationProtectionTable()
        a = install(tpt)
        b = install(tpt, va=0x90000)
        tpt.translate(a.handle, 0x10000, 64, TAG_A)
        tpt.translate(b.handle, 0x90000, 64, TAG_A)
        assert tpt.cached_translations == 2
        tpt.remove(a.handle)
        # a's span is gone; b's survives.
        assert tpt.cached_translations == 1
        assert tpt.cache_invalidations == 1
        with pytest.raises(NotRegistered):
            tpt.translate(a.handle, 0x10000, 64, TAG_A)
        tpt.translate(b.handle, 0x90000, 64, TAG_A)
        assert tpt.cache_hits == 1

    def test_frames_mutation_invalidates(self):
        """Mutating the recorded frames makes every cached span derived
        from them stale — the next translation recomputes."""
        tpt = TranslationProtectionTable()
        region = install(tpt)
        tpt.translate(region.handle, 0x10000, 8, TAG_A)
        region.frames[0] = 99      # "kernel moved the page"
        segs = tpt.translate(region.handle, 0x10000, 8, TAG_A)
        assert segs == [(99 * PAGE_SIZE, 8)]
        assert tpt.cache_hits == 0
        assert tpt.cache_misses == 2

    def test_full_flush_on_nic_reset_path(self):
        tpt = TranslationProtectionTable()
        a = install(tpt)
        b = install(tpt, va=0x90000)
        tpt.translate(a.handle, 0x10000, 64, TAG_A)
        tpt.translate(b.handle, 0x90000, 64, TAG_A)
        assert tpt.invalidate_translations() == 2
        assert tpt.cached_translations == 0
        # next translations are misses, not stale hits
        tpt.translate(a.handle, 0x10000, 64, TAG_A)
        assert tpt.cache_hits == 0

    def test_cache_is_bounded_lru(self):
        tpt = TranslationProtectionTable(translation_cache_entries=2)
        region = install(tpt)
        for off in (0, 8, 16):
            tpt.translate(region.handle, 0x10000 + off, 4, TAG_A)
        assert tpt.cached_translations == 2
        # offset 0 (coldest) was evicted; 8 and 16 still hit.
        tpt.translate(region.handle, 0x10000 + 8, 4, TAG_A)
        tpt.translate(region.handle, 0x10000 + 16, 4, TAG_A)
        assert tpt.cache_hits == 2
        tpt.translate(region.handle, 0x10000, 4, TAG_A)
        assert tpt.cache_misses == 4

    def test_cache_disabled_by_zero_entries(self):
        tpt = TranslationProtectionTable(translation_cache_entries=0)
        region = install(tpt)
        tpt.translate(region.handle, 0x10000, 4, TAG_A)
        tpt.translate(region.handle, 0x10000, 4, TAG_A)
        assert tpt.cached_translations == 0
        assert (tpt.cache_hits, tpt.cache_misses) == (0, 0)

    def test_protection_checked_even_on_cached_span(self):
        """Memoization covers only the segment list — the protection
        checks run on every call."""
        tpt = TranslationProtectionTable()
        region = install(tpt, tag=TAG_A)
        tpt.translate(region.handle, 0x10000, 4, TAG_A)
        with pytest.raises(ProtectionError):
            tpt.translate(region.handle, 0x10000, 4, TAG_B)
        with pytest.raises(ProtectionError):
            tpt.translate(region.handle, 0x10000, 4, TAG_A,
                          rdma_write=True)
