"""Tests for the Kernel Agent and User Agent."""

import pytest

from repro.errors import InvalidArgument, NotRegistered, ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.via.machine import Machine


@pytest.fixture
def machine():
    return Machine(num_frames=256)


@pytest.fixture
def ua(machine):
    task = machine.spawn("app")
    return machine.user_agent(task)


class TestProtectionTags:
    def test_tag_stable_per_process(self, machine):
        t = machine.spawn()
        tag1 = machine.agent.open_nic(t)
        tag2 = machine.agent.open_nic(t)
        assert tag1 == tag2

    def test_tags_distinct_across_processes(self, machine):
        a = machine.spawn()
        b = machine.spawn()
        assert machine.agent.open_nic(a) != machine.agent.open_nic(b)

    def test_unopened_process_rejected(self, machine):
        t = machine.spawn()
        va = t.mmap(1)
        with pytest.raises(InvalidArgument):
            machine.agent.register_memory(t, va, PAGE_SIZE)


class TestRegistration:
    def test_register_installs_tpt_region(self, machine, ua):
        va = ua.task.mmap(4)
        reg = ua.register_mem(va, 4 * PAGE_SIZE)
        region = machine.nic.tpt.lookup(reg.handle)
        assert region.npages == 4
        assert region.prot_tag == ua.prot_tag
        assert machine.agent.registrations[reg.handle] is reg

    def test_deregister_cleans_up(self, machine, ua):
        va = ua.task.mmap(2)
        reg = ua.register_mem(va, 2 * PAGE_SIZE)
        ua.deregister_mem(reg)
        with pytest.raises(NotRegistered):
            machine.nic.tpt.lookup(reg.handle)
        assert reg.handle not in machine.agent.registrations
        # pins released
        for frame in ua.task.physical_pages(va, 2):
            assert machine.kernel.pagemap.page(frame).pin_count == 0

    def test_deregister_unknown_handle(self, machine):
        with pytest.raises(NotRegistered):
            machine.agent.deregister_memory(12345)

    def test_double_deregister_rejected(self, machine, ua):
        va = ua.task.mmap(1)
        reg = ua.register_mem(va, PAGE_SIZE)
        ua.deregister_mem(reg)
        with pytest.raises(NotRegistered):
            ua.deregister_mem(reg)

    def test_zero_bytes_rejected(self, machine, ua):
        va = ua.task.mmap(1)
        with pytest.raises(InvalidArgument):
            ua.register_mem(va, 0)

    def test_tpt_exhaustion_unlocks_pins(self):
        """A failed install must not leak the backend's pins."""
        m = Machine(num_frames=256, tpt_entries=4)
        t = m.spawn()
        a = m.user_agent(t)
        va = t.mmap(8)
        a.register_mem(va, 3 * PAGE_SIZE)
        with pytest.raises(ViaError):
            a.register_mem(va + 3 * PAGE_SIZE, 3 * PAGE_SIZE)
        # pins of the failed attempt were released
        for frame in t.physical_pages(va + 3 * PAGE_SIZE, 3):
            if frame is not None:
                assert m.kernel.pagemap.page(frame).pin_count == 0

    def test_registrations_of_pid(self, machine, ua):
        va = ua.task.mmap(4)
        r1 = ua.register_mem(va, PAGE_SIZE)
        r2 = ua.register_mem(va + PAGE_SIZE, PAGE_SIZE)
        other = machine.spawn()
        ua2 = machine.user_agent(other)
        ov = other.mmap(1)
        ua2.register_mem(ov, PAGE_SIZE)
        regs = machine.agent.registrations_of(ua.task.pid)
        assert {r.handle for r in regs} == {r1.handle, r2.handle}

    def test_multiple_registration_same_range(self, machine, ua):
        """The VIA-spec requirement the paper centres on."""
        va = ua.task.mmap(2)
        r1 = ua.register_mem(va, 2 * PAGE_SIZE)
        r2 = ua.register_mem(va, 2 * PAGE_SIZE)
        assert r1.handle != r2.handle
        frame = ua.task.physical_pages(va, 1)[0]
        assert machine.kernel.pagemap.page(frame).pin_count == 2
        ua.deregister_mem(r1)
        assert machine.kernel.pagemap.page(frame).pin_count == 1
        ua.deregister_mem(r2)
        assert machine.kernel.pagemap.page(frame).pin_count == 0


class TestUserAgentHelpers:
    def test_segment_defaults_to_whole_region(self, ua):
        va = ua.task.mmap(2)
        reg = ua.register_mem(va, 2 * PAGE_SIZE)
        seg = ua.segment(reg)
        assert (seg.mem_handle, seg.va, seg.length) == (
            reg.handle, va, 2 * PAGE_SIZE)

    def test_segment_subrange(self, ua):
        va = ua.task.mmap(2)
        reg = ua.register_mem(va, 2 * PAGE_SIZE)
        seg = ua.segment(reg, va + 100, 50)
        assert (seg.va, seg.length) == (va + 100, 50)

    def test_vipl_aliases_exist(self, ua):
        assert ua.VipRegisterMem == ua.register_mem
        assert ua.VipPostSend == ua.post_send

    def test_wait_mode_costs_more_than_polling(self):
        """The MPI/Pro-vs-ScaMPI completion-mode tradeoff: blocking wait
        charges a kernel trap + reschedule on top of the poll."""
        from repro.hw.physmem import PAGE_SIZE
        from repro.via.descriptor import Descriptor
        from repro.via.machine import connected_pair
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        rva = ua_r.task.mmap(1)
        rreg = ua_r.register_mem(rva, PAGE_SIZE)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        costs = cluster[0].kernel.costs

        ua_r.post_recv(vi_r, Descriptor.recv([ua_r.segment(rreg)]))
        ua_s.send_bytes(vi_s, sreg, b"a")
        with cluster.clock.measure() as poll_span:
            ua_r.recv_done(vi_r)

        ua_r.post_recv(vi_r, Descriptor.recv([ua_r.segment(rreg)]))
        ua_s.send_bytes(vi_s, sreg, b"b")
        with cluster.clock.measure() as wait_span:
            ua_r.recv_wait(vi_r)

        extra = wait_span.elapsed_ns - poll_span.elapsed_ns
        assert extra == costs.syscall_ns + costs.reschedule_ns

    def test_send_wait_returns_completed_descriptor(self):
        from repro.hw.physmem import PAGE_SIZE
        from repro.via.descriptor import Descriptor
        from repro.via.machine import connected_pair
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        rva = ua_r.task.mmap(1)
        rreg = ua_r.register_mem(rva, PAGE_SIZE)
        ua_r.post_recv(vi_r, Descriptor.recv([ua_r.segment(rreg)]))
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        desc = ua_s.send_bytes(vi_s, sreg, b"x")
        assert ua_s.send_wait(vi_s) is desc
