"""Tests for VM areas and the VMA list (find/split/merge/lock)."""

import pytest

from repro.errors import InvalidArgument, SegmentationFault
from repro.kernel.flags import VM_LOCKED, VM_READ, VM_WRITE
from repro.kernel.vma import VMArea, VMAList

RW = VM_READ | VM_WRITE


def make(*ranges: tuple[int, int]) -> VMAList:
    vl = VMAList()
    for start, end in ranges:
        vl.insert(VMArea(start, end, RW))
    return vl


class TestVMArea:
    def test_npages_and_contains(self):
        a = VMArea(10, 20, RW)
        assert a.npages == 10
        assert a.contains(10) and a.contains(19)
        assert not a.contains(9) and not a.contains(20)

    def test_locked_property(self):
        assert not VMArea(0, 1, RW).locked
        assert VMArea(0, 1, RW | VM_LOCKED).locked


class TestVMAList:
    def test_find(self):
        vl = make((10, 20), (30, 40))
        assert vl.find(15).start_vpn == 10
        assert vl.find(30).start_vpn == 30
        assert vl.find(25) is None
        assert vl.find(40) is None

    def test_find_or_fault(self):
        vl = make((10, 20))
        assert vl.find_or_fault(10).start_vpn == 10
        with pytest.raises(SegmentationFault):
            vl.find_or_fault(99)

    def test_insert_rejects_overlap(self):
        vl = make((10, 20))
        with pytest.raises(InvalidArgument):
            vl.insert(VMArea(15, 25, RW))
        with pytest.raises(InvalidArgument):
            vl.insert(VMArea(5, 11, RW))

    def test_insert_rejects_empty(self):
        vl = VMAList()
        with pytest.raises(InvalidArgument):
            vl.insert(VMArea(5, 5, RW))

    def test_areas_in(self):
        vl = make((10, 20), (30, 40), (50, 60))
        hits = vl.areas_in(15, 35)
        assert [a.start_vpn for a in hits] == [10, 30]

    def test_covers(self):
        vl = make((10, 20), (20, 30))
        assert vl.covers(10, 30)
        assert vl.covers(12, 28)
        assert not vl.covers(5, 15)
        assert not vl.covers(25, 35)
        vl2 = make((10, 20), (25, 30))
        assert not vl2.covers(10, 30)  # hole at [20, 25)

    def test_split_at(self):
        vl = make((10, 20))
        assert vl.split_at(15)
        assert [(a.start_vpn, a.end_vpn) for a in vl] == [(10, 15), (15, 20)]
        assert not vl.split_at(15)   # boundary: no-op
        assert not vl.split_at(99)   # unmapped: no-op

    def test_split_range_counts(self):
        vl = make((10, 30))
        assert vl.split_range(15, 25) == 2
        assert vl.split_range(15, 25) == 0

    def test_set_flags_range_needs_prior_split(self):
        vl = make((10, 30))
        vl.split_range(15, 25)
        touched = vl.set_flags_range(15, 25, set_bits=VM_LOCKED)
        assert touched == 1
        assert vl.find(20).locked
        assert not vl.find(10).locked
        assert not vl.find(25).locked

    def test_clear_flags_range(self):
        vl = make((10, 20))
        vl.set_flags_range(10, 20, set_bits=VM_LOCKED)
        vl.set_flags_range(10, 20, clear_bits=VM_LOCKED)
        assert not vl.find(10).locked

    def test_merge_adjacent(self):
        vl = make((10, 30))
        vl.split_range(15, 25)
        assert len(vl) == 3
        merges = vl.merge_adjacent()
        assert merges == 2
        assert [(a.start_vpn, a.end_vpn) for a in vl] == [(10, 30)]

    def test_merge_respects_flags(self):
        vl = make((10, 30))
        vl.split_range(15, 25)
        vl.set_flags_range(15, 25, set_bits=VM_LOCKED)
        assert vl.merge_adjacent() == 0
        assert len(vl) == 3

    def test_remove_range_splits_boundaries(self):
        vl = make((10, 30))
        removed = vl.remove_range(15, 25)
        assert [(a.start_vpn, a.end_vpn) for a in removed] == [(15, 25)]
        assert [(a.start_vpn, a.end_vpn) for a in vl] == [(10, 15), (25, 30)]

    def test_page_counters(self):
        vl = make((10, 20), (30, 40))
        vl.set_flags_range(30, 40, set_bits=VM_LOCKED)
        assert vl.total_pages() == 20
        assert vl.locked_pages() == 10
