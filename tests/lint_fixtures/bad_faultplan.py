"""Fixture: FaultPlan knobs that escape validation (2 findings)."""

from dataclasses import dataclass


@dataclass
class FaultPlan:
    seed: int = 0
    loss_rate: float = 0.0
    burst_len: int = 1                      # <- finding: never validated
    jitter_rate: float = 0.0                # <- finding: never validated

    def __post_init__(self):
        if self.seed < 0:
            raise ValueError("seed")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate")
