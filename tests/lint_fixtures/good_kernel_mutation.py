"""Fixture: layer-clean driver code (0 findings under repro/via/)."""

from repro.kernel.kiobuf import map_user_kiobuf
from repro.kernel.mlock import do_mlock


class Backend:
    def lock(self, kernel, task, va, nbytes):
        # Audited kernel entry points are the sanctioned route.
        kio = map_user_kiobuf(kernel, task, va, nbytes)
        do_mlock(kernel, task, va, nbytes)
        # Own state is not kernel state.
        self.count = 1
        self.frame = kio.frames[0]
        return kio
