"""Fixture: broad handlers that are all ProcessKilled-safe (0 findings)."""


def reraises_bare():
    try:
        work()                              # noqa: F821 (fixture only)
    except Exception:
        cleanup()                           # noqa: F821
        raise


def reraises_bound_name():
    try:
        work()                              # noqa: F821
    except Exception as exc:
        log(exc)                            # noqa: F821
        raise exc


def protected_by_earlier_handler():
    try:
        work()                              # noqa: F821
    except ProcessKilled:                   # noqa: F821
        raise
    except Exception:
        cleanup()                           # noqa: F821


def protected_by_kernel_error():
    try:
        work()                              # noqa: F821
    except KernelError:                     # noqa: F821
        raise
    except Exception as exc:
        return exc


def narrow_handler_is_fine():
    try:
        work()                              # noqa: F821
    except ValueError:
        pass


def pragma_suppresses():
    try:
        work()                              # noqa: F821
    except Exception:  # repro-lint: allow(broad-except)
        pass
