"""Fixture: every handler here swallows ProcessKilled (3 findings)."""


def swallow_bare():
    try:
        work()                              # noqa: F821 (fixture only)
    except:                                 # noqa: E722  <- finding
        pass


def swallow_exception():
    try:
        work()                              # noqa: F821
    except Exception as exc:
        log(exc)                            # noqa: F821  <- finding


def swallow_by_conversion():
    try:
        work()                              # noqa: F821
    except BaseException as exc:            # <- finding: raise-from is
        raise RuntimeError("wrapped") from exc  # not a re-raise
