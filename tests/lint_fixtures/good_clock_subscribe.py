"""Fixture: periodic daemon on the event calendar (and non-clock
subscribes, which the rule must leave alone)."""


class Daemon:
    def __init__(self, kernel):
        self.kernel = kernel
        self._event = None

    def start(self):
        self._event = self.kernel.clock.schedule_after(
            1_000_000, self._on_event, name="daemon.cadence")

    def start_legacy(self):
        # Sanctioned legacy A/B arm.
        self.kernel.clock.subscribe(self._on_tick)  # repro-lint: allow(clock-subscribe)

    def listen(self, hub):
        # EventHub subscription is a different mechanism entirely.
        hub.subscribe(self._on_hub_event)

    def _on_event(self, now_ns):
        self._event = self.kernel.clock.schedule_after(
            1_000_000, self._on_event, name="daemon.cadence")

    def _on_tick(self, now_ns):
        pass

    def _on_hub_event(self, event):
        pass
