"""Fixture: unguarded event-hub emissions (3 findings)."""


def hot_path(kernel, frame):
    kernel.events.emit("pin", frames=(frame,))          # <- finding


def wrong_guard(kernel, armed, frame):
    if armed:                                           # not the hub
        kernel.events.emit("unpin", frames=(frame,))    # <- finding


def bail_does_not_return(self, frame):
    if not self.kernel.events.active:
        frame += 1                                      # no bail-out
    self.kernel.events.emit("pin", frames=(frame,))     # <- finding
