"""Fixture: every event-hub emission is guarded (0 findings)."""


def guarded_by_active(kernel, frame):
    if kernel.events.active:
        kernel.events.emit("pin", frames=(frame,))


def guarded_by_truthiness(kernel, frame):
    # EventHub.__bool__ returns `.active`, so this is the same guard.
    if kernel.events:
        kernel.events.emit("pin", frames=(frame,))


def guarded_by_none_check(events, frame):
    if events is not None and events.active:
        events.emit("unpin", frames=(frame,))


def guarded_by_early_return(self, frame):
    events = self._events
    if not events.active:
        return
    events.emit("pin", frames=(frame,))


def other_emitters_are_not_hubs(kernel, frame):
    # trace/log emitters guard internally; only event hubs are checked.
    kernel.trace.emit("pin", frame=frame)


def pragma_suppresses(kernel, frame):
    # repro-lint: allow(hub-emit-unguarded)
    kernel.events.emit("pin", frames=(frame,))
