"""Fixture: every FaultPlan knob validated (0 findings)."""

from dataclasses import dataclass, field


@dataclass
class FaultPlan:
    seed: int = 0
    loss_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_ns: int = 0
    _cache: object = None                   # private: exempt
    stats: object = field(default=None)     # derived stats: exempt

    def __post_init__(self):
        if self.seed < 0:
            raise ValueError("seed")
        # getattr-by-name counts as validated, like the real FaultPlan.
        for attr in ("loss_rate", "corrupt_rate"):
            if not 0.0 <= getattr(self, attr) <= 1.0:
                raise ValueError(attr)
        if self.delay_ns < 0:
            raise ValueError("delay_ns")
