"""Fixture: FaultPlan with knobs but no __post_init__ (1 finding)."""

from dataclasses import dataclass


@dataclass
class FaultPlan:
    seed: int = 0
    loss_rate: float = 0.0
