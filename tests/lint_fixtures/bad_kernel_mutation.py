"""Fixture: driver-layer code poking kernel state (4 findings).

Only meaningful when linted under a ``repro/via/`` (or msg/mpi)
relpath — the rule is scoped to the layers above the kernel.
"""


def poke_descriptor(pd):
    pd.pin_count = 0                        # <- finding
    pd.flags |= 4                           # <- finding (aug-assign)


def call_mutators(kernel, pte):
    kernel.pagemap.get_page(pte.frame)      # <- finding
    pte.pd.set_flag(2)                      # <- finding
