"""Fixture: deterministic time and randomness (0 findings)."""

from repro.sim.rng import make_rng


def stamp(clock):
    return clock.now_ns                     # sim time, not wall time


def dice(seed):
    rng = make_rng(seed)                    # the audited seeding point
    return int(rng.integers(0, 6))


def unrelated_calls(times):
    # Methods merely *named* like time functions resolve to their
    # receiver, not to the time module.
    return times.time(), times.monotonic()
