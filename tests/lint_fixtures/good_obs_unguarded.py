"""Fixture: every registry access is guarded (0 findings)."""


def guarded_by_if(kernel, n):
    obs = kernel.obs
    if obs.enabled:
        obs.metrics.counter("ops").inc()
        obs.metrics.gauge("depth").set(n)


def guarded_by_none_check(obs):
    if obs is not None and obs.enabled:
        obs.metrics.counter("ops").inc()


def guarded_by_early_return(obs):
    if not obs.enabled:
        return
    obs.metrics.histogram("lat_ns").observe(1)


def facade_is_self_guarding(obs):
    obs.inc("ops")          # facade call — checks .enabled internally
    obs.set_gauge("depth", 3)


def pragma_suppresses(obs):
    # repro-lint: allow(obs-unguarded)
    obs.metrics.counter("ops").inc()
