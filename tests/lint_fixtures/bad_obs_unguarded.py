"""Fixture: unguarded metrics-registry access (3 findings)."""


def hot_path(obs, n):
    obs.metrics.counter("ops").inc()                    # <- finding
    obs.metrics.gauge("depth").set(n)                   # <- finding


def wrong_guard(obs, active):
    if active:                                          # not `.enabled`
        obs.metrics.histogram("lat_ns").observe(1)      # <- finding
