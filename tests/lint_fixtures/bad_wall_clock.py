"""Fixture: nondeterminism of every flavour (6 findings)."""

import datetime
import random
import time as walltime
from time import monotonic

import numpy as np


def stamp():
    a = walltime.time()                     # <- finding (aliased import)
    b = monotonic()                         # <- finding (from-import)
    c = datetime.datetime.now()             # <- finding
    return a, b, c


def dice():
    x = random.random()                     # <- finding
    rng = np.random.default_rng()           # <- finding (bypasses sim.rng)
    return x, rng, random.randint(0, 6)     # <- finding
