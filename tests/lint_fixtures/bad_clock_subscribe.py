"""Fixture: periodic daemon wired through the deprecated subscriber."""


class Daemon:
    def __init__(self, kernel):
        self.kernel = kernel
        self._unsub = None

    def start(self):
        self._unsub = self.kernel.clock.subscribe(self._on_tick)

    def arm(self, clock):
        clock.subscribe(self._on_tick)

    def arm_private(self, machine):
        machine._clock.subscribe(self._on_tick)

    def _on_tick(self, now_ns):
        pass
