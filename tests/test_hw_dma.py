"""Tests for the DMA engine — including its deliberate lack of checks."""

import pytest

from repro.errors import BadPhysicalAddress
from repro.hw.dma import DMAEngine
from repro.hw.physmem import PAGE_SIZE, PhysicalMemory
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.trace import Trace


def make(frames: int = 4):
    clock = SimClock()
    trace = Trace(clock)
    phys = PhysicalMemory(frames)
    return DMAEngine(phys, clock, CostModel(), trace), phys, clock, trace


class TestDMAEngine:
    def test_write_then_read(self):
        dma, phys, _, _ = make()
        dma.write(100, b"dma payload")
        assert dma.read(100, 11) == b"dma payload"

    def test_transfer_crossing_frames(self):
        dma, phys, _, _ = make()
        addr = PAGE_SIZE - 3
        dma.write(addr, b"abcdef")
        assert phys.read(0, PAGE_SIZE - 3, 3) == b"abc"
        assert phys.read(1, 0, 3) == b"def"
        assert dma.read(addr, 6) == b"abcdef"

    def test_counters(self):
        dma, _, _, _ = make()
        dma.write(0, b"12345")
        dma.read(0, 2)
        assert dma.bytes_written == 5
        assert dma.bytes_read == 2

    def test_costs_charged(self):
        dma, _, clock, _ = make()
        m = CostModel()
        dma.write(0, b"x" * 1000)
        expected = m.dma_setup_ns + m.dma_ns(1000)
        assert clock.category_ns("dma") == expected

    def test_trace_events(self):
        dma, _, _, trace = make()
        dma.write(64, b"x")
        dma.read(64, 1)
        assert trace.count("dma_write") == 1
        assert trace.count("dma_read") == 1
        assert trace.last("dma_write")["phys_addr"] == 64

    def test_no_validity_check_beyond_ram_bounds(self):
        """The engine writes wherever it is pointed — the property the
        paper's staleness failure depends on."""
        dma, phys, _, _ = make()
        # Frame 3 is mapped by nobody, yet DMA happily lands there.
        dma.write(3 * PAGE_SIZE, b"stale!")
        assert phys.read(3, 0, 6) == b"stale!"

    def test_out_of_ram_faults(self):
        dma, _, _, _ = make(2)
        with pytest.raises(BadPhysicalAddress):
            dma.write(2 * PAGE_SIZE, b"x")
        with pytest.raises(BadPhysicalAddress):
            dma.read(2 * PAGE_SIZE - 1, 2)  # starts inside, runs out

    def test_gather_read(self):
        dma, phys, _, _ = make()
        phys.write(0, 0, b"AA")
        phys.write(2, 10, b"BB")
        data = dma.read_gather([(0, 2), (2 * PAGE_SIZE + 10, 2)])
        assert data == b"AABB"

    def test_scatter_write(self):
        dma, phys, _, _ = make()
        dma.write_scatter([(5, 3), (PAGE_SIZE + 1, 2)], b"abcde")
        assert phys.read(0, 5, 3) == b"abc"
        assert phys.read(1, 1, 2) == b"de"

    def test_scatter_length_mismatch(self):
        dma, _, _, _ = make()
        with pytest.raises(ValueError):
            dma.write_scatter([(0, 2)], b"abc")


class TestBurstCoalescing:
    def test_coalesce_runs_merges_adjacent(self):
        runs = DMAEngine.coalesce_runs(
            [(0, 4), (4, 4), (8, 2), (100, 4), (104, 1)])
        assert runs == [(0, 10), (100, 5)]

    def test_coalesce_runs_skips_empty_segments(self):
        assert DMAEngine.coalesce_runs([(0, 2), (2, 0), (2, 2)]) \
            == [(0, 4)]

    def test_gather_equivalence_with_legacy(self):
        dma, phys, _, _ = make()
        phys.write(0, PAGE_SIZE - 2, b"ab")
        phys.write(1, 0, b"cd")
        segs = [(PAGE_SIZE - 2, 2), (PAGE_SIZE, 2)]
        fast = dma.read_gather(segs)
        dma.coalesce = False
        assert dma.read_gather(segs) == fast == b"abcd"

    def test_scatter_equivalence_with_legacy(self):
        dma, phys, _, _ = make()
        segs = [(PAGE_SIZE - 2, 2), (PAGE_SIZE, 2)]
        dma.write_scatter(segs, b"abcd")
        fast = phys.read_iovec([(PAGE_SIZE - 2, 4)])
        dma.coalesce = False
        dma.write_scatter(segs, b"wxyz")
        assert fast == b"abcd"
        assert phys.read_iovec([(PAGE_SIZE - 2, 4)]) == b"wxyz"

    def test_adjacent_segments_are_one_burst(self):
        dma, phys, _, _ = make()
        segs = [(0, 4), (4, 4), (8, 4)]
        dma.read_gather(segs)
        assert dma.bursts_issued == 1
        dma.write_scatter([(0, 4), (100, 4)], b"x" * 8)
        assert dma.bursts_issued == 3     # 1 + 2

    def test_burst_costs_charged(self):
        dma, _, clock, _ = make()
        m = CostModel()
        dma.read_gather([(0, 4), (100, 4)])   # two runs
        expected = m.dma_setup_ns + m.dma_burst_ns + m.dma_ns(8)
        assert clock.category_ns("dma") == expected

    def test_legacy_mode_charges_per_segment_setup(self):
        dma, _, clock, _ = make()
        dma.coalesce = False
        m = CostModel()
        dma.read_gather([(0, 4), (100, 4)])
        expected = 2 * m.dma_setup_ns + m.dma_ns(4) * 2
        assert clock.category_ns("dma") == expected
