"""Tests for client/server connection management (VipConnectWait /
VipConnectRequest)."""

import pytest

from repro.errors import ViaConnectionError
from repro.hw.physmem import PAGE_SIZE
from repro.via.constants import ReliabilityLevel, ViState
from repro.via.descriptor import Descriptor
from repro.via.machine import Cluster


@pytest.fixture
def cluster():
    return Cluster(2, num_frames=512)


@pytest.fixture
def agents(cluster):
    server = cluster[1].spawn("server")
    client = cluster[0].spawn("client")
    return cluster[0].user_agent(client), cluster[1].user_agent(server)


class TestClientServer:
    def test_listen_then_connect(self, cluster, agents):
        ua_c, ua_s = agents
        vi_s = ua_s.create_vi()
        vi_c = ua_c.create_vi()
        ua_s.connect_wait(vi_s, b"service-1")
        ua_c.connect_request(vi_c, cluster[1].nic.name, b"service-1")
        assert vi_c.state == ViState.CONNECTED
        assert vi_s.state == ViState.CONNECTED
        assert vi_c.peer == (cluster[1].nic.name, vi_s.vi_id)
        assert cluster.fabric.connmgr.pending == 0
        assert cluster.fabric.connmgr.connects_completed == 1

    def test_connection_carries_traffic(self, cluster, agents):
        ua_c, ua_s = agents
        vi_s = ua_s.create_vi()
        vi_c = ua_c.create_vi()
        ua_s.connect_wait(vi_s, b"mpi")
        ua_c.connect_request(vi_c, cluster[1].nic.name, b"mpi")
        rva = ua_s.task.mmap(1)
        rreg = ua_s.register_mem(rva, PAGE_SIZE)
        ua_s.post_recv(vi_s, Descriptor.recv([ua_s.segment(rreg)]))
        sva = ua_c.task.mmap(1)
        sreg = ua_c.register_mem(sva, PAGE_SIZE)
        ua_c.send_bytes(vi_c, sreg, b"via connmgr")
        got = ua_s.recv_done(vi_s)
        assert ua_s.recv_bytes(vi_s, got) == b"via connmgr"

    def test_no_listener_times_out(self, cluster, agents):
        ua_c, _ = agents
        vi_c = ua_c.create_vi()
        with pytest.raises(ViaConnectionError):
            ua_c.connect_request(vi_c, cluster[1].nic.name, b"absent")

    def test_discriminators_are_distinct(self, cluster, agents):
        ua_c, ua_s = agents
        a, b = ua_s.create_vi(), ua_s.create_vi()
        ua_s.connect_wait(a, b"svc-a")
        ua_s.connect_wait(b, b"svc-b")
        vi_c = ua_c.create_vi()
        ua_c.connect_request(vi_c, cluster[1].nic.name, b"svc-b")
        assert b.state == ViState.CONNECTED
        assert a.state == ViState.IDLE
        assert cluster.fabric.connmgr.pending == 1

    def test_duplicate_listener_rejected(self, cluster, agents):
        _, ua_s = agents
        a, b = ua_s.create_vi(), ua_s.create_vi()
        ua_s.connect_wait(a, b"svc")
        with pytest.raises(ViaConnectionError):
            ua_s.connect_wait(b, b"svc")

    def test_connected_vi_cannot_listen(self, cluster, agents):
        ua_c, ua_s = agents
        vi_s = ua_s.create_vi()
        vi_c = ua_c.create_vi()
        ua_s.connect_wait(vi_s, b"x")
        ua_c.connect_request(vi_c, cluster[1].nic.name, b"x")
        with pytest.raises(ViaConnectionError):
            ua_s.connect_wait(vi_s, b"y")

    def test_reliability_mismatch_keeps_listener(self, cluster, agents):
        ua_c, ua_s = agents
        vi_s = ua_s.create_vi(
            reliability=ReliabilityLevel.RELIABLE_DELIVERY)
        vi_c = ua_c.create_vi(reliability=ReliabilityLevel.UNRELIABLE)
        ua_s.connect_wait(vi_s, b"svc")
        with pytest.raises(ViaConnectionError):
            ua_c.connect_request(vi_c, cluster[1].nic.name, b"svc")
        # The server keeps waiting for a compatible client.
        assert cluster.fabric.connmgr.pending == 1
        vi_c2 = ua_c.create_vi(
            reliability=ReliabilityLevel.RELIABLE_DELIVERY)
        ua_c.connect_request(vi_c2, cluster[1].nic.name, b"svc")
        assert vi_s.state == ViState.CONNECTED

    def test_unlisten(self, cluster, agents):
        ua_c, ua_s = agents
        vi_s = ua_s.create_vi()
        ua_s.connect_wait(vi_s, b"svc")
        cluster.fabric.connmgr.unlisten(cluster[1].nic, b"svc")
        vi_c = ua_c.create_vi()
        with pytest.raises(ViaConnectionError):
            ua_c.connect_request(vi_c, cluster[1].nic.name, b"svc")

    def test_loopback_client_server(self, cluster):
        """Client and server on the same machine/NIC."""
        m = cluster[0]
        s = m.spawn("srv")
        c = m.spawn("cli")
        ua_s, ua_c = m.user_agent(s), m.user_agent(c)
        vi_s, vi_c = ua_s.create_vi(), ua_c.create_vi()
        ua_s.connect_wait(vi_s, b"local")
        ua_c.connect_request(vi_c, m.nic.name, b"local")
        assert vi_s.state == ViState.CONNECTED
