"""Kill-at-every-step chaos sweep.

A victim process is killed at each instrumented crash point — during
registration and during a rendezvous zero-copy transfer — and the world
must converge: no leaked pins, no stale TPT entries, no stuck peer
descriptors.  The surviving peer observes ``VIP_ERROR_CONN_LOST``
rather than hanging.

``REPRO_CHAOS_SEED`` (used by the CI chaos job) varies the simulation
seeds; crash points themselves are deterministic.
"""

from __future__ import annotations

import os

import pytest

from repro.core.audit import (
    audit_kernel_invariants, audit_pin_leaks, audit_tpt_consistency,
)
from repro.errors import InvalidArgument, ProcessKilled, ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.reaper import OrphanReaper
from repro.msg.endpoint import make_pair
from repro.msg.protocols import RendezvousZeroCopyProtocol
from repro.sim.faults import (
    FaultPlan, REGISTRATION_CRASH_POINTS, TRANSFER_CRASH_POINTS,
)
from repro.via.constants import VIP_ERROR_CONN_LOST, ViState
from repro.via.machine import Cluster, Machine

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def _assert_converged(machine):
    """All three audits clean — the sweep's acceptance criterion."""
    assert audit_tpt_consistency(machine.agent) == []
    assert audit_pin_leaks(machine.kernel, machine.agent) == []
    audit_kernel_invariants(machine.kernel)


class TestRegistrationCrashPoints:
    @pytest.mark.parametrize("point", REGISTRATION_CRASH_POINTS)
    @pytest.mark.parametrize("backend", ["kiobuf", "mlock"])
    def test_kill_during_registration(self, point, backend):
        """Dying before, between, and after the pin and the TPT install
        leaks nothing."""
        m = Machine(backend=backend, seed=SEED)
        task = m.spawn("victim")
        ua = m.user_agent(task)
        m.inject_faults(FaultPlan(seed=SEED, crash_point=point,
                                  crash_pid=task.pid))
        va = task.mmap(4)
        task.touch_pages(va, 4)
        with pytest.raises(ProcessKilled) as exc_info:
            ua.register_mem(va, 4 * PAGE_SIZE)
        assert exc_info.value.point == point
        assert exc_info.value.pid == task.pid
        with pytest.raises(InvalidArgument):
            m.kernel.find_task(task.pid)
        assert m.agent.registrations == {}
        assert not any(k.mapped for k in m.kernel.kiobufs.values())
        _assert_converged(m)
        assert m.kernel.trace.count("crash_point") == 1

    def test_crash_point_is_one_shot(self):
        """After the crash fires once, a second process registers
        normally under the same plan."""
        m = Machine(seed=SEED)
        t1 = m.spawn("victim")
        ua1 = m.user_agent(t1)
        m.inject_faults(FaultPlan(seed=SEED,
                                  crash_point="register.pinned",
                                  crash_pid=t1.pid))
        va = t1.mmap(1)
        t1.touch_pages(va, 1)
        with pytest.raises(ProcessKilled):
            ua1.register_mem(va, PAGE_SIZE)
        t2 = m.spawn("survivor")
        ua2 = m.user_agent(t2)
        va2 = t2.mmap(1)
        t2.touch_pages(va2, 1)
        reg = ua2.register_mem(va2, PAGE_SIZE)
        assert reg.handle in m.agent.registrations
        ua2.deregister_mem(reg)
        _assert_converged(m)


class TestTransferCrashPoints:
    @pytest.mark.parametrize("point", sorted(TRANSFER_CRASH_POINTS))
    def test_kill_mid_transfer(self, point):
        """Kill the victim at each rendezvous step; the survivor sees
        CONN_LOST, and one reaper pass finds nothing left to reclaim."""
        side = TRANSFER_CRASH_POINTS[point]
        cluster = Cluster(2, num_frames=2048, seed=SEED)
        sender, receiver = make_pair(cluster)
        victim, survivor = ((sender, receiver) if side == "sender"
                            else (receiver, sender))
        cluster.inject_faults(FaultPlan(seed=SEED, crash_point=point,
                                        crash_pid=victim.task.pid))
        nbytes = 8 * PAGE_SIZE
        src = sender.task.mmap(8)
        sender.task.touch_pages(src, 8, fill=b"\xab")
        dst = receiver.task.mmap(8)
        receiver.task.touch_pages(dst, 8)

        proto = RendezvousZeroCopyProtocol(use_cache=False)
        with pytest.raises(ProcessKilled) as exc_info:
            proto.transfer(sender, receiver, src, dst, nbytes)
        assert exc_info.value.pid == victim.task.pid

        # The victim is gone, with all its driver state.
        victim_machine = victim.machine
        with pytest.raises(InvalidArgument):
            victim_machine.kernel.find_task(victim.task.pid)
        assert victim_machine.agent.registrations_of(
            victim.task.pid) == []
        assert not any(v.owner_pid == victim.task.pid
                       for v in victim_machine.nic.vis.values())

        # The survivor is not hung: its VI broke with CONN_LOST and
        # every outstanding descriptor completed.
        assert survivor.vi.state == ViState.ERROR
        assert survivor.vi.outstanding == 0
        statuses = [s.descriptor.status for s in survivor.bounce_slots
                    if s.descriptor is not None]
        assert VIP_ERROR_CONN_LOST in statuses
        with pytest.raises(ViaError):
            survivor.send_chunk(b"hello?")

        # One reaper pass per machine confirms the exit path left no
        # work behind.
        for m in cluster.machines:
            report = OrphanReaper(m.kernel, agents=[m.agent]).scan()
            assert report.reclaimed_total == 0, report
            _assert_converged(m)

    def test_survivor_registration_is_reclaimable(self):
        """A transfer-time registration stranded on the *survivor* (the
        victim died before releasing the handshake state) is still the
        survivor's to free — and freeing it converges the audits."""
        cluster = Cluster(2, num_frames=2048, seed=SEED)
        sender, receiver = make_pair(cluster)
        cluster.inject_faults(FaultPlan(
            seed=SEED, crash_point="xfer.cts_received",
            crash_pid=sender.task.pid))
        nbytes = 4 * PAGE_SIZE
        src = sender.task.mmap(4)
        sender.task.touch_pages(src, 4, fill=b"\xcd")
        dst = receiver.task.mmap(4)
        receiver.task.touch_pages(dst, 4)
        proto = RendezvousZeroCopyProtocol(use_cache=False)
        with pytest.raises(ProcessKilled):
            proto.transfer(sender, receiver, src, dst, nbytes)
        # The receiver still holds the registration it made for the CTS.
        stranded = [r for r in receiver.machine.agent.registrations_of(
            receiver.task.pid) if r.va == dst]
        assert len(stranded) == 1
        receiver.ua.deregister_mem(stranded[0].handle)
        for m in cluster.machines:
            _assert_converged(m)
