"""Tests for the registration cache."""

import pytest

from repro.core.regcache import RegistrationCache, aligned_range
from repro.errors import ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.via.machine import Machine


@pytest.fixture
def setup():
    m = Machine(num_frames=512, backend="kiobuf", tpt_entries=64)
    t = m.spawn("mpi")
    ua = m.user_agent(t)
    del ua  # opening the NIC allocated the protection tag
    cache = RegistrationCache(m.agent, t)
    va = t.mmap(32)
    return m, t, cache, va


class TestAlignedRange:
    def test_already_aligned(self):
        assert aligned_range(0, PAGE_SIZE) == (0, PAGE_SIZE)

    def test_subpage(self):
        assert aligned_range(100, 50) == (0, PAGE_SIZE)

    def test_straddle(self):
        base, length = aligned_range(PAGE_SIZE - 10, 20)
        assert base == 0 and length == 2 * PAGE_SIZE


class TestHitMiss:
    def test_first_acquire_misses(self, setup):
        m, t, cache, va = setup
        cache.acquire(va, PAGE_SIZE)
        assert cache.stats.misses == 1 and cache.stats.hits == 0

    def test_repeat_acquire_hits(self, setup):
        m, t, cache, va = setup
        r1 = cache.acquire(va, PAGE_SIZE)
        cache.release(va, PAGE_SIZE)
        r2 = cache.acquire(va, PAGE_SIZE)
        assert r1 is r2
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_subrange_hits_covering_entry(self, setup):
        m, t, cache, va = setup
        cache.acquire(va, 4 * PAGE_SIZE)
        cache.acquire(va + PAGE_SIZE, PAGE_SIZE)
        assert cache.stats.hits == 1

    def test_rdma_attrs_respected(self, setup):
        """A cached entry without RDMA-write enable cannot satisfy an
        RDMA-write request (the NIC would protection-fault)."""
        m, t, cache, va = setup
        cache.acquire(va, PAGE_SIZE)                    # plain
        cache.acquire(va, PAGE_SIZE, rdma_write=True)   # needs new entry
        assert cache.stats.misses == 2

    def test_released_entry_stays_registered(self, setup):
        """The whole point: release keeps the (pinned) registration."""
        m, t, cache, va = setup
        reg = cache.acquire(va, PAGE_SIZE)
        cache.release(va, PAGE_SIZE)
        assert reg.handle in m.agent.registrations
        frame = t.physical_pages(va, 1)[0]
        assert m.kernel.pagemap.page(frame).pin_count == 1

    def test_release_unacquired_raises(self, setup):
        m, t, cache, va = setup
        with pytest.raises(ViaError):
            cache.release(va, PAGE_SIZE)


class TestEviction:
    def test_tpt_pressure_evicts_lru(self, setup):
        """TPT has 64 entries; acquiring 5 × 16 pages must evict."""
        m, t, cache, va = setup
        big = t.mmap(128)
        for i in range(5):
            cache.acquire(big + i * 16 * PAGE_SIZE, 16 * PAGE_SIZE)
            cache.release(big + i * 16 * PAGE_SIZE, 16 * PAGE_SIZE)
        assert cache.stats.evictions >= 1
        assert m.nic.tpt.entries_used <= 64

    def test_in_use_entries_not_evicted(self, setup):
        m, t, cache, va = setup
        big = t.mmap(128)
        # Hold all acquisitions: nothing is evictable → capacity failure.
        cache.acquire(big, 16 * PAGE_SIZE)
        cache.acquire(big + 16 * PAGE_SIZE, 16 * PAGE_SIZE)
        cache.acquire(big + 32 * PAGE_SIZE, 16 * PAGE_SIZE)
        cache.acquire(big + 48 * PAGE_SIZE, 16 * PAGE_SIZE)
        with pytest.raises(ViaError):
            cache.acquire(big + 64 * PAGE_SIZE, 16 * PAGE_SIZE)
        assert cache.stats.capacity_failures == 1

    def test_max_pages_budget(self, setup):
        m, t, cache, va = setup
        cache.max_pages = 8
        cache.acquire(va, 4 * PAGE_SIZE)
        cache.release(va, 4 * PAGE_SIZE)
        cache.acquire(va + 8 * PAGE_SIZE, 8 * PAGE_SIZE)
        assert cache.cached_pages <= 8 + 8  # old entry evicted before new
        assert cache.stats.evictions == 1

    def test_flush(self, setup):
        m, t, cache, va = setup
        cache.acquire(va, PAGE_SIZE)
        cache.release(va, PAGE_SIZE)
        cache.acquire(va + PAGE_SIZE, PAGE_SIZE)   # still in use
        assert cache.flush() == 1
        assert cache.cached_regions == 1


class TestIndexIdentity:
    """Regression: ``_index_remove`` used ``list.remove``, which matches
    by dataclass ``__eq__`` — evicting one of two equal-comparing entries
    could delete the *other* from the interval index, leaving the index
    pointing at a deregistered entry."""

    def test_index_remove_is_by_identity(self, setup):
        from repro.core.regcache import CacheEntry
        m, t, cache, va = setup
        reg = m.agent.register_memory(t, va, PAGE_SIZE)
        # Two distinct entries with identical field values: dataclass
        # __eq__ says equal, identity says no.
        a = CacheEntry(registration=reg)
        b = CacheEntry(registration=reg)
        assert a == b and a is not b
        cache._index_add(a)
        cache._index_add(b)
        cache._index_remove(b)
        bucket = cache._page_index[va // PAGE_SIZE]
        assert len(bucket) == 1
        assert bucket[0] is a, "removed the wrong (equal-comparing) entry"
        cache._index_remove(a)
        assert va // PAGE_SIZE not in cache._page_index
        m.agent.deregister_memory(reg.handle)

    def test_rdma_variant_does_not_shadow_plain_entry(self, setup):
        """Regression: the cache key omitted the RDMA enables, so
        registering the same range twice (plain, then rdma_write) made
        the second insert overwrite the first in ``_entries`` while both
        stayed in the page index — the plain registration leaked (never
        deregistered, pages pinned forever)."""
        m, t, cache, va = setup
        r_plain = cache.acquire(va, PAGE_SIZE)
        cache.release(va, PAGE_SIZE)
        r_rdma = cache.acquire(va, PAGE_SIZE, rdma_write=True)
        cache.release(va, PAGE_SIZE)
        assert r_plain is not r_rdma
        assert cache.cached_regions == 2          # no shadowing
        # Both registrations deregister cleanly: nothing leaked.
        assert cache.flush() == 2
        assert cache.cached_regions == 0
        assert cache.cached_pages == 0
        assert not cache._page_index
