"""Tests for simulated physical memory."""

import pytest

from repro.errors import BadPhysicalAddress
from repro.hw.physmem import PAGE_SIZE, PhysicalMemory


class TestPhysicalMemory:
    def test_page_size_is_4k(self):
        assert PAGE_SIZE == 4096

    def test_initially_zeroed(self):
        pm = PhysicalMemory(4)
        assert pm.read_frame(0) == bytes(PAGE_SIZE)

    def test_write_and_read_frame(self):
        pm = PhysicalMemory(4)
        pm.write_frame(2, b"hello")
        data = pm.read_frame(2)
        assert data[:5] == b"hello"
        assert data[5:] == bytes(PAGE_SIZE - 5)

    def test_write_frame_clears_tail(self):
        pm = PhysicalMemory(2)
        pm.write_frame(0, b"\xff" * PAGE_SIZE)
        pm.write_frame(0, b"ab")
        assert pm.read_frame(0) == b"ab" + bytes(PAGE_SIZE - 2)

    def test_write_frame_too_big(self):
        pm = PhysicalMemory(1)
        with pytest.raises(BadPhysicalAddress):
            pm.write_frame(0, b"x" * (PAGE_SIZE + 1))

    def test_zero_frame(self):
        pm = PhysicalMemory(1)
        pm.write_frame(0, b"junk")
        pm.zero_frame(0)
        assert pm.read_frame(0) == bytes(PAGE_SIZE)

    def test_copy_frame(self):
        pm = PhysicalMemory(3)
        pm.write_frame(0, b"payload")
        pm.copy_frame(0, 2)
        assert pm.read_frame(2) == pm.read_frame(0)

    def test_subframe_read_write(self):
        pm = PhysicalMemory(2)
        pm.write(1, 100, b"xyz")
        assert pm.read(1, 100, 3) == b"xyz"
        assert pm.read(1, 99, 1) == b"\x00"

    def test_span_cannot_cross_frame(self):
        pm = PhysicalMemory(2)
        with pytest.raises(BadPhysicalAddress):
            pm.read(0, PAGE_SIZE - 2, 4)
        with pytest.raises(BadPhysicalAddress):
            pm.write(0, PAGE_SIZE - 1, b"ab")

    def test_bad_frame_rejected(self):
        pm = PhysicalMemory(2)
        with pytest.raises(BadPhysicalAddress):
            pm.read_frame(2)
        with pytest.raises(BadPhysicalAddress):
            pm.read_frame(-1)

    def test_negative_length_rejected(self):
        pm = PhysicalMemory(1)
        with pytest.raises(BadPhysicalAddress):
            pm.read(0, 0, -1)

    def test_flat_address_helpers(self):
        assert PhysicalMemory.split_phys(PAGE_SIZE * 3 + 17) == (3, 17)
        assert PhysicalMemory.join_phys(3, 17) == PAGE_SIZE * 3 + 17
        assert PhysicalMemory.join_phys(5) == PAGE_SIZE * 5

    def test_size_bytes(self):
        assert PhysicalMemory(8).size_bytes == 8 * PAGE_SIZE

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(0)


class TestIovec:
    def test_view_is_readonly(self):
        pm = PhysicalMemory(2)
        pm.write(0, 0, b"abc")
        v = pm.view(0, 3)
        assert bytes(v) == b"abc"
        with pytest.raises(TypeError):
            v[0] = 0

    def test_read_iovec_single_span_crosses_frames(self):
        """Unlike `read`, an iovec span may cross frame boundaries —
        physically-contiguous frames are one flat run of bytes."""
        pm = PhysicalMemory(2)
        pm.write(0, PAGE_SIZE - 2, b"ab")
        pm.write(1, 0, b"cd")
        assert pm.read_iovec([(PAGE_SIZE - 2, 4)]) == b"abcd"

    def test_read_iovec_gathers_in_order(self):
        pm = PhysicalMemory(3)
        pm.write(2, 0, b"XX")
        pm.write(0, 5, b"YY")
        assert pm.read_iovec([(2 * PAGE_SIZE, 2), (5, 2)]) == b"XXYY"

    def test_write_iovec_scatters(self):
        pm = PhysicalMemory(3)
        pm.write_iovec([(2 * PAGE_SIZE, 2), (5, 2)], b"XXYY")
        assert pm.read(2, 0, 2) == b"XX"
        assert pm.read(0, 5, 2) == b"YY"

    def test_write_iovec_span_crosses_frames(self):
        pm = PhysicalMemory(2)
        pm.write_iovec([(PAGE_SIZE - 2, 4)], b"abcd")
        assert pm.read(0, PAGE_SIZE - 2, 2) == b"ab"
        assert pm.read(1, 0, 2) == b"cd"

    def test_write_iovec_length_mismatch_rejected(self):
        pm = PhysicalMemory(1)
        with pytest.raises(BadPhysicalAddress):
            pm.write_iovec([(0, 3)], b"toolong")

    def test_iovec_out_of_ram_rejected(self):
        pm = PhysicalMemory(1)
        with pytest.raises(BadPhysicalAddress):
            pm.read_iovec([(PAGE_SIZE - 1, 2)])
        with pytest.raises(BadPhysicalAddress):
            pm.write_iovec([(PAGE_SIZE - 1, 2)], b"ab")
