"""Schedule-exploration tests: the seeded goldens and the explorer
machinery.

The acceptance bar for the whole subsystem lives here: each seeded race
class is detected **under exploration but not on the default
schedule** — the identity run of every seeded scenario is race-clean,
and the explorer's permuted tie-breaks surface exactly the declared
race kind.  These tests arm their own detector/sanitizer per run, so
suite-level arming is skipped.
"""

from __future__ import annotations

import pytest

from repro.analysis.explore import (
    ExploreConfig, ExploreReport, Scenario, explore, run_one,
)
from repro.analysis.scenarios import SCENARIOS

pytestmark = [pytest.mark.san_suppress, pytest.mark.race_suppress]

SEEDED = ["unpin_vs_dma", "invalidate_vs_translate",
          "fault_service_vs_evict"]
CONFIG = ExploreConfig(schedules=6)


@pytest.fixture(scope="module")
def reports() -> dict[str, ExploreReport]:
    """Explore every registered scenario once; tests share the verdicts
    (exploration re-runs each scenario several times)."""
    return {name: explore(sc, CONFIG) for name, sc in SCENARIOS.items()}


class TestSeededGoldens:
    @pytest.mark.parametrize("name", SEEDED)
    def test_default_schedule_is_clean(self, reports, name):
        identity = reports[name].identity_result
        assert identity.seed is None
        assert identity.clean, (
            f"{name}: the FIFO schedule must be the safe protocol order")

    @pytest.mark.parametrize("name", SEEDED)
    def test_exploration_detects_the_seeded_race(self, reports, name):
        report = reports[name]
        expected = set(SCENARIOS[name].expect_races)
        assert report.race_kinds_found == expected
        assert report.schedules_run > 1, (
            f"{name}: no permuted schedule survived pruning — the "
            f"seeded conflict was invisible to DPOR")

    @pytest.mark.parametrize("name", SEEDED)
    def test_racy_runs_name_a_permuted_seed(self, reports, name):
        racy = [r for r in reports[name].results if r.races]
        assert racy and all(r.seed is not None for r in racy)

    @pytest.mark.parametrize("name", SEEDED)
    def test_seeded_tie_group_was_recorded(self, reports, name):
        report = reports[name]
        assert len(report.groups) == 1
        _deadline, members = report.groups[0]
        assert len(members) == 2


class TestExplorationWorkloads:
    @pytest.mark.parametrize("name", ["kill_sweep", "odp_fault"])
    def test_workload_is_race_clean_everywhere(self, reports, name):
        report = reports[name]
        dirty = [r for r in report.results if not r.clean]
        assert not dirty, "\n".join(
            f"seed={r.seed} crash={r.crash_point}: "
            + "; ".join(v.race for v in r.races)
            + "; ".join(v.check for v in r.san_violations)
            for r in dirty)

    def test_kill_sweep_places_every_crash_point(self, reports):
        report = reports["kill_sweep"]
        placed = {r.crash_point for r in report.results} - {None}
        assert placed == set(SCENARIOS["kill_sweep"].crash_points)
        # the build catches its own ProcessKilled (the reaper must run
        # to converge the orphans), so every run still reports "ok"
        assert all(r.outcome == "ok" for r in report.results)

    def test_odp_fault_runs_a_conflicting_permutation(self, reports):
        report = reports["odp_fault"]
        assert report.pruned > 0                # disjoint ties skipped
        assert any(r.seed is not None for r in report.results)


class TestExplorerMachinery:
    def test_exploration_is_deterministic(self):
        sc = SCENARIOS["unpin_vs_dma"]
        first = explore(sc, CONFIG).to_payload()
        second = explore(sc, CONFIG).to_payload()
        assert first == second

    def test_dpor_pruning_loses_no_verdicts(self):
        sc = SCENARIOS["unpin_vs_dma"]
        pruned = explore(sc, ExploreConfig(schedules=6, dpor=True))
        full = explore(sc, ExploreConfig(schedules=6, dpor=False))
        assert pruned.pruned > 0
        assert full.pruned == 0
        assert full.schedules_run > pruned.schedules_run
        assert pruned.race_kinds_found == full.race_kinds_found

    def test_crash_with_schedules_multiplies_placements(self):
        sc = SCENARIOS["fault_service_vs_evict"]
        crashy = Scenario(
            name=sc.name, build=sc.build, expect_races=sc.expect_races,
            crash_points=("odp_fault.start",))
        report = explore(crashy, ExploreConfig(schedules=6,
                                               crash_with_schedules=True))
        placed = [r for r in report.results
                  if r.crash_point == "odp_fault.start"]
        assert {r.seed for r in placed} > {None}

    def test_run_one_classifies_escaping_kills(self):
        from repro.errors import ProcessKilled, ViaError

        def doomed(run):
            raise ProcessKilled("victim", pid=1, point="register.start")

        result, _run = run_one(Scenario(name="doomed", build=doomed))
        assert result.outcome == "killed"
        result, _run = run_one(Scenario(
            name="broken",
            build=lambda run: (_ for _ in ()).throw(ViaError("no"))))
        assert result.outcome == "error:ViaError"

    def test_run_one_records_detector_and_sanitizer(self):
        result, run = run_one(SCENARIOS["unpin_vs_dma"])
        assert result.outcome == "ok"
        assert result.clean
        assert not run.detector.armed and not run.sanitizer.armed
        assert run.detector.events_seen > 0

    def test_report_payload_shape(self, reports):
        payload = reports["unpin_vs_dma"].to_payload()
        assert payload["scenario"] == "unpin_vs_dma"
        assert payload["identity_clean"] is True
        assert payload["race_kinds_found"] == ["unpin-vs-dma"]
        assert payload["schedules_run"] == len(payload["results"])
        racy = [r for r in payload["results"] if r["races"]]
        assert racy and racy[0]["races"][0]["location"] == [
            "frame", racy[0]["races"][0]["location"][1]]
