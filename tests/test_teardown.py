"""Crash-safe process teardown: exit-path reclamation, munmap
force-deregistration, idempotent deregistration, and the invariant
watchdog."""

from __future__ import annotations

import pytest

from repro.core.audit import (
    InvariantWatchdog, audit_kernel_invariants, audit_pin_leaks,
    audit_tpt_consistency,
)
from repro.errors import (
    InvalidArgument, InvariantViolation, NotRegistered, PageAccountingError,
    ViaError,
)
from repro.hw.physmem import PAGE_SIZE
from repro.via.constants import VIP_ERROR_CONN_LOST, ViState
from repro.via.locking.refcount import RefcountLocking
from repro.via.machine import Cluster, Machine, connected_pair


def _registered_task(machine, npages=4, name="t"):
    task = machine.spawn(name)
    ua = machine.user_agent(task)
    va = task.mmap(npages)
    task.touch_pages(va, npages)
    reg = ua.register_mem(va, npages * PAGE_SIZE)
    return task, ua, va, reg


def _assert_clean(machine):
    assert audit_tpt_consistency(machine.agent) == []
    assert audit_pin_leaks(machine.kernel, machine.agent) == []
    audit_kernel_invariants(machine.kernel)


# ---------------------------------------------------------------------------
# exit-path reclamation
# ---------------------------------------------------------------------------

class TestExitPath:
    @pytest.mark.parametrize("backend", ["kiobuf", "mlock", "refcount",
                                         "pageflags"])
    def test_exit_releases_registrations(self, backend):
        """A task dying with live registrations leaks nothing: the exit
        hook deregisters through the active locking strategy."""
        m = Machine(backend=backend)
        task, _, _, _ = _registered_task(m)
        _registered_task(m, npages=2, name="t2")[0]  # a second process
        task.exit()
        assert m.agent.registrations_of(task.pid) == []
        with pytest.raises(InvalidArgument):
            m.kernel.find_task(task.pid)
        assert not task.alive
        _assert_clean(m)

    def test_exit_releases_every_pin(self):
        m = Machine(backend="kiobuf")
        task, _, va, reg = _registered_task(m, npages=4)
        frames = list(reg.region.frames)
        for f in frames:
            assert m.kernel.pagemap.page(f).pinned
        task.exit()
        for f in frames:
            assert not m.kernel.pagemap.page(f).pinned
        assert not any(k.mapped and k.pid == task.pid
                       for k in m.kernel.kiobufs.values())

    def test_exit_drops_protection_tag(self):
        m = Machine()
        task, _, _, _ = _registered_task(m)
        assert task.pid in m.agent._tags
        task.exit()
        assert task.pid not in m.agent._tags

    def test_exit_disconnects_peer_with_conn_lost(self):
        """The surviving peer of a dead process observes
        VIP_ERROR_CONN_LOST on its outstanding descriptors instead of
        hanging."""
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair()
        # The survivor has a receive outstanding when the peer dies.
        rtask = ua_r.task
        rva = rtask.mmap(1)
        rtask.touch_pages(rva, 1)
        rreg = ua_r.register_mem(rva, PAGE_SIZE)
        from repro.via.descriptor import DataSegment, Descriptor
        desc = Descriptor.recv([DataSegment(rreg.handle, rva, PAGE_SIZE)])
        ua_r.post_recv(vi_r, desc)

        ua_s.task.exit()

        assert vi_r.state == ViState.ERROR
        assert vi_r.outstanding == 0
        assert desc.status == VIP_ERROR_CONN_LOST
        assert ua_r.recv_done(vi_r) is desc
        # The victim's VI is gone from its NIC.
        assert vi_s.vi_id not in cluster[0].nic.vis
        with pytest.raises(ViaError):
            ua_r.post_send(vi_r, Descriptor.send(
                [DataSegment(rreg.handle, rva, PAGE_SIZE)]))
        for m in cluster.machines:
            _assert_clean(m)

    def test_exit_emits_teardown_trace(self):
        m = Machine()
        task, ua, _, _ = _registered_task(m)
        ua.create_vi()
        task.exit()
        events = m.kernel.trace.of_kind("via_task_teardown")
        assert len(events) == 1
        assert events[0]["registrations"] == 1
        assert events[0]["vis"] == 1


# ---------------------------------------------------------------------------
# munmap of a still-registered region (satellite 1)
# ---------------------------------------------------------------------------

class TestMunmapForceDeregister:
    def test_munmap_force_deregisters(self):
        """munmap of a registered range must not leave stale TPT
        entries — the regression is keyed off audit_tpt_consistency."""
        m = Machine(backend="kiobuf")
        task, _, va, reg = _registered_task(m, npages=4)
        task.munmap(va, 4)
        assert reg.handle not in m.agent.registrations
        assert audit_tpt_consistency(m.agent) == []
        assert audit_pin_leaks(m.kernel, m.agent) == []
        events = m.kernel.trace.of_kind("via_munmap_deregister")
        assert len(events) == 1
        assert events[0]["handle"] == reg.handle

    def test_partial_overlap_also_deregisters(self):
        m = Machine(backend="kiobuf")
        task, _, va, reg = _registered_task(m, npages=4)
        # Unmap only the last page of the registered range.
        task.munmap(va + 3 * PAGE_SIZE, 1)
        assert reg.handle not in m.agent.registrations
        assert audit_tpt_consistency(m.agent) == []

    def test_disjoint_munmap_keeps_registration(self):
        m = Machine(backend="kiobuf")
        task, _, va, reg = _registered_task(m, npages=2)
        other = task.mmap(2)
        task.touch_pages(other, 2)
        task.munmap(other, 2)
        assert reg.handle in m.agent.registrations
        assert audit_tpt_consistency(m.agent) == []


# ---------------------------------------------------------------------------
# idempotent deregistration (satellite 2)
# ---------------------------------------------------------------------------

class TestDoubleDeregister:
    @pytest.mark.parametrize("backend", ["kiobuf", "refcount", "mlock"])
    def test_double_deregister_raises_typed_error(self, backend):
        m = Machine(backend=backend)
        _, ua, _, reg = _registered_task(m)
        frames = list(reg.region.frames)
        ua.deregister_mem(reg)
        counts = [m.kernel.pagemap.page(f).count for f in frames]
        pins = [m.kernel.pagemap.page(f).pin_count for f in frames]
        with pytest.raises(NotRegistered):
            ua.deregister_mem(reg)
        # The failed second deregister must not touch any counter.
        assert [m.kernel.pagemap.page(f).count for f in frames] == counts
        assert [m.kernel.pagemap.page(f).pin_count
                for f in frames] == pins
        assert all(c >= 0 for c in counts) and all(p >= 0 for p in pins)
        audit_kernel_invariants(m.kernel)

    def test_refcount_cookie_is_one_shot(self):
        """Releasing a refcount lock cookie twice raises instead of
        silently dropping references it never took."""
        m = Machine(backend="refcount")
        _, _, _, reg = _registered_task(m)
        cookie = reg.region.lock_cookie
        backend = m.agent.backend
        backend.unlock(m.kernel, cookie)
        with pytest.raises(ViaError):
            backend.unlock(m.kernel, cookie)
        audit_kernel_invariants(m.kernel)
        m.agent.forget_registration(reg.handle)

    def test_refcount_unlock_never_underflows(self):
        """A cookie naming a frame whose count already hit zero raises
        PageAccountingError instead of driving it negative."""
        m = Machine(backend="refcount")
        task = m.spawn("t")
        va = task.mmap(1)
        task.touch_pages(va, 1)
        frame = task.page_table.lookup(va // PAGE_SIZE).frame
        task.munmap(va, 1)   # frame freed: count == 0
        with pytest.raises(PageAccountingError):
            RefcountLocking().unlock(
                m.kernel, ("refcount", [frame], {"released": False}))
        assert m.kernel.pagemap.page(frame).count == 0


# ---------------------------------------------------------------------------
# the invariant watchdog
# ---------------------------------------------------------------------------

class TestInvariantWatchdog:
    def test_clean_machine_samples_quietly(self):
        m = Machine()
        wd = m.arm_watchdog(interval_ns=1_000)
        task, _, _, _ = _registered_task(m)
        task.exit()
        assert wd.armed
        assert wd.checks_run > 0
        assert wd.violations == 0
        wd.disarm()
        runs = wd.checks_run
        m.kernel.clock.charge(10_000, "test")
        assert wd.checks_run == runs

    def test_detects_pin_leak_on_cadence(self):
        """A leaked pin surfaces at the next clock sample, not at the
        end of the run."""
        m = Machine()
        task = m.spawn("leaker")
        va = task.mmap(1)
        task.touch_pages(va, 1)
        pd = m.kernel.pagemap.page(
            task.page_table.lookup(va // PAGE_SIZE).frame)
        wd = m.arm_watchdog(interval_ns=1_000)
        m.kernel.clock.charge(2_000, "test")   # clean sample
        pd.pin()                               # the leak
        with pytest.raises(InvariantViolation) as exc_info:
            m.kernel.clock.charge(2_000, "test")
        exc = exc_info.value
        assert exc.kind == "pin_leak"
        assert exc.snapshot["boundary"] == "cadence"
        assert exc.snapshot["leaks"][0]["frame"] == pd.frame
        assert "memory" in exc.snapshot
        assert wd.violations == 1
        wd.disarm()
        pd.unpin()

    def test_checks_at_teardown_boundary(self):
        m = Machine()
        task, _, _, _ = _registered_task(m)
        other = m.spawn("bystander")
        ova = other.mmap(1)
        other.touch_pages(ova, 1)
        pd = m.kernel.pagemap.page(
            other.page_table.lookup(ova // PAGE_SIZE).frame)
        # Huge interval: only the teardown boundary can fire.
        wd = m.arm_watchdog(interval_ns=10**15)
        pd.pin()
        with pytest.raises(InvariantViolation) as exc_info:
            task.exit()
        assert exc_info.value.snapshot["boundary"] == \
            f"teardown pid {task.pid}"
        # Teardown itself still completed before the check fired.
        with pytest.raises(InvalidArgument):
            m.kernel.find_task(task.pid)
        wd.disarm()
        pd.unpin()

    @pytest.mark.san_suppress("swap-registered")
    def test_detects_stale_tpt_of_broken_backend(self):
        """The watchdog catches the paper's bug as it happens: refcount
        'locking' lets registered pages swap out, going stale in the
        TPT."""
        m = Machine(backend="refcount", num_frames=64, swap_slots=1024)
        task, _, _, _ = _registered_task(m, npages=4)
        wd = InvariantWatchdog(interval_ns=10**15).arm(m)
        with pytest.raises(InvariantViolation) as exc_info:
            m.kernel.apply_pressure()
            wd.check()
        exc = exc_info.value
        assert exc.kind == "stale_tpt"
        assert exc.snapshot["stale"]
        wd.disarm()

    def test_arms_over_whole_cluster(self):
        cluster = Cluster(2)
        wd = cluster.arm_watchdog(interval_ns=1_000)
        assert len(wd._pairs) == 2
        t0, _, _, _ = _registered_task(cluster[0])
        t1, _, _, _ = _registered_task(cluster[1])
        t0.exit()
        t1.exit()
        assert wd.violations == 0
        assert wd.checks_run >= 4   # two teardown boundaries x two pairs
        wd.disarm()
        for m in cluster.machines:
            assert not m.kernel.post_exit_hooks

    def test_manual_check_reports_boundary(self):
        m = Machine()
        wd = InvariantWatchdog().arm((m.kernel, [m.agent]))
        wd.check()
        assert wd.checks_run == 1
        wd.disarm()
