"""The multi-tenant registration service: accounting, quotas, the
admission degrade ladder, typed denials, regcache shards, the sanitizer
quota-breach check, and a smoke-scale churn soak."""

from __future__ import annotations

import pytest

from repro.analysis.events import DEREGISTER, REGISTER
from repro.analysis.sanitizer import PinSanitizer
from repro.errors import (
    AdmissionError, PinCeilingExceeded, QuotaExceeded, ViaError,
)
from repro.hw.physmem import PAGE_SIZE
from repro.via.constants import VIP_ERROR_RESOURCE
from repro.via.machine import Machine
from repro.via.tenancy import audit_tenant_accounting


def _register(machine, task, npages, ua=None):
    ua = ua if ua is not None else machine.user_agent(task)
    va = task.mmap(npages)
    task.touch_pages(va, npages)
    return ua, va, ua.register_mem(va, npages * PAGE_SIZE)


class TestAccounting:
    def test_register_charges_and_deregister_credits(self):
        m = Machine(backend="kiobuf")
        task = m.spawn("app", uid=1001)
        ua, _va, reg = _register(m, task, 4)
        acct = m.tenants.account(1001)
        assert acct.pinned_pages == 4
        assert acct.registrations == 1
        assert m.tenants.total_pinned_pages == 4
        assert reg.uid == 1001
        assert audit_tenant_accounting(m.agent) == []
        ua.deregister_mem(reg)
        assert acct.pinned_pages == 0
        assert acct.registrations == 0
        assert m.tenants.total_pinned_pages == 0
        assert audit_tenant_accounting(m.agent) == []

    def test_tenants_are_kept_apart(self):
        m = Machine(backend="kiobuf")
        a = m.spawn("a", uid=1001)
        b = m.spawn("b", uid=1002)
        _register(m, a, 3)
        _register(m, b, 5)
        assert m.tenants.account(1001).pinned_pages == 3
        assert m.tenants.account(1002).pinned_pages == 5
        assert m.tenants.total_pinned_pages == 8
        assert audit_tenant_accounting(m.agent) == []

    def test_exit_path_credits_automatically(self):
        m = Machine(backend="kiobuf")
        task = m.spawn("app", uid=1001)
        _register(m, task, 4)
        m.kernel.exit_task(task)
        assert m.tenants.account(1001).pinned_pages == 0
        assert m.tenants.total_pinned_pages == 0

    def test_reaper_credits_after_dirty_kill(self):
        """A buggy kill leaves the record (and the charge); the reaper's
        reclamation deregisters through the agent, so the credit follows
        the record — the tenant's budget is not held by a dead pid."""
        m = Machine(backend="kiobuf")
        task = m.spawn("victim", uid=1001)
        _register(m, task, 4)
        m.kernel.kill(task.pid, cleanup=False)
        assert m.tenants.account(1001).pinned_pages == 4
        m.start_reaper().scan()
        assert m.tenants.account(1001).pinned_pages == 0
        assert audit_tenant_accounting(m.agent) == []

    def test_peaks_are_recorded(self):
        m = Machine(backend="kiobuf")
        task = m.spawn("app", uid=1001)
        ua, _va, reg = _register(m, task, 6)
        ua.deregister_mem(reg)
        assert m.tenants.account(1001).peak_pinned_pages == 6
        assert m.tenants.peak_total_pinned_pages == 6


class TestQuotas:
    def test_default_quota_denies_with_typed_error(self):
        m = Machine(backend="kiobuf", tenant_quota_pages=4)
        task = m.spawn("app", uid=1001)
        _register(m, task, 3)
        with pytest.raises(QuotaExceeded) as exc_info:
            _register(m, task, 2)
        exc = exc_info.value
        assert exc.status == VIP_ERROR_RESOURCE
        assert isinstance(exc, AdmissionError)
        assert isinstance(exc, ViaError)
        assert exc.uid == 1001
        assert exc.requested_pages == 2
        assert exc.limit_pages == 4
        assert exc.pinned_pages == 3
        acct = m.tenants.account(1001)
        assert acct.denied == 1
        # The denial left no partial state behind.
        assert acct.pinned_pages == 3
        assert audit_tenant_accounting(m.agent) == []

    def test_per_tenant_quota_overrides_default(self):
        m = Machine(backend="kiobuf", tenant_quota_pages=4)
        m.tenants.set_quota(1002, 16)
        big = m.spawn("big", uid=1002)
        _register(m, big, 10)
        small = m.spawn("small", uid=1001)
        with pytest.raises(QuotaExceeded):
            _register(m, small, 5)
        assert m.tenants.quota_of(1002) == 16
        assert m.tenants.quota_of(1001) == 4

    def test_host_ceiling_denies_across_tenants(self):
        m = Machine(backend="kiobuf", host_pin_ceiling_pages=8)
        a = m.spawn("a", uid=1001)
        _register(m, a, 6)
        b = m.spawn("b", uid=1002)
        with pytest.raises(PinCeilingExceeded) as exc_info:
            _register(m, b, 4)
        assert exc_info.value.limit_pages == 8
        assert exc_info.value.pinned_pages == 6
        assert m.tenants.account(1002).denied == 1

    def test_no_budgets_means_no_gate(self):
        m = Machine(backend="kiobuf")
        task = m.spawn("app", uid=1001)
        _register(m, task, 64)
        assert m.tenants.account(1001).accepted == 1
        assert m.tenants.account(1001).denied == 0


class TestDegradeLadder:
    def test_admission_sheds_tenant_cache(self):
        """Quota pressure evicts the tenant's own unused cached
        registrations instead of denying."""
        from repro.core.regcache import RegistrationCache
        m = Machine(backend="kiobuf", tenant_quota_pages=8)
        task = m.spawn("app", uid=1001)
        m.user_agent(task)               # open the NIC
        cache = RegistrationCache(m.agent, task)
        va = task.mmap(6)
        task.touch_pages(va, 6)
        cache.acquire(va, 6 * PAGE_SIZE)
        cache.release(va, 6 * PAGE_SIZE)  # cached, unused: sheddable
        assert m.tenants.account(1001).pinned_pages == 6
        before_ns = m.kernel.clock.now_ns
        _register(m, task, 4)            # 6 + 4 > 8: must shed first
        acct = m.tenants.account(1001)
        assert acct.pinned_pages == 4
        assert acct.degraded == 1
        assert acct.denied == 0
        assert acct.wait_ns > 0
        assert m.kernel.clock.now_ns > before_ns
        assert cache.stats.evictions == 1
        assert audit_tenant_accounting(m.agent) == []

    def test_host_pressure_drafts_reaper(self):
        """A ceiling shortage caused by a dead pid's leaked registration
        resolves via the drafted reaper, not a denial."""
        m = Machine(backend="kiobuf", host_pin_ceiling_pages=8)
        m.start_reaper()
        victim = m.spawn("victim", uid=1001)
        _register(m, victim, 6)
        m.kernel.kill(victim.pid, cleanup=False)
        survivor = m.spawn("app", uid=1002)
        _register(m, survivor, 4)        # 6 + 4 > 8 until the reaper runs
        acct = m.tenants.account(1002)
        assert acct.degraded == 1
        assert m.tenants.account(1001).pinned_pages == 0
        assert m.tenants.total_pinned_pages == 4
        assert audit_tenant_accounting(m.agent) == []

    def test_exhausted_ladder_still_denies(self):
        """When nothing is sheddable the ladder runs out and the typed
        denial fires after max_admission_attempts backoffs."""
        m = Machine(backend="kiobuf", tenant_quota_pages=4)
        task = m.spawn("app", uid=1001)
        _register(m, task, 4)            # live, not cached: unsheddable
        before_ns = m.kernel.clock.now_ns
        with pytest.raises(QuotaExceeded):
            _register(m, task, 1)
        acct = m.tenants.account(1001)
        assert acct.denied == 1
        assert acct.wait_ns > 0          # it did try, in simulated time
        assert m.kernel.clock.now_ns > before_ns


class TestQuotaHotReload:
    def test_lowering_below_usage_marks_over_budget(self):
        m = Machine(backend="kiobuf")
        m.obs.enable()
        task = m.spawn("app", uid=1001)
        ua, _va, reg = _register(m, task, 6)
        deficit = m.tenants.set_quota(1001, 4)
        assert deficit == 2
        acct = m.tenants.account(1001)
        assert acct.over_budget is True
        assert acct.quota_reloads == 1
        assert m.obs.metrics.gauge("tenant.1001.over_budget").value == 1
        # live registrations were not revoked
        assert acct.pinned_pages == 6
        # the next admission hits the ladder and denies, typed
        with pytest.raises(QuotaExceeded):
            _register(m, task, 2, ua=ua)
        # draining under budget clears the flag through credit()
        ua.deregister_mem(reg)
        assert acct.over_budget is False
        assert acct.pinned_pages == 0
        assert m.obs.metrics.gauge("tenant.1001.over_budget").value == 0
        assert m.kernel.trace.count("quota_reload") == 1
        assert m.kernel.trace.count("quota_recovered") == 1
        assert audit_tenant_accounting(m.agent) == []

    def test_raising_the_quota_clears_the_deficit(self):
        m = Machine(backend="kiobuf")
        task = m.spawn("app", uid=1001)
        _register(m, task, 6)
        assert m.tenants.set_quota(1001, 4) == 2
        assert m.tenants.set_quota(1001, 8) == 0
        acct = m.tenants.account(1001)
        assert acct.over_budget is False
        assert acct.quota_reloads == 2
        # back to the service default (here: unlimited)
        assert m.tenants.set_quota(1001, None) == 0
        assert m.tenants.quota_of(1001) is None

    def test_shed_true_reclaims_cached_pages_immediately(self):
        from repro.core.regcache import RegistrationCache
        m = Machine(backend="kiobuf")
        task = m.spawn("app", uid=1001)
        m.user_agent(task)
        cache = RegistrationCache(m.agent, task)
        va = task.mmap(6)
        task.touch_pages(va, 6)
        cache.acquire(va, 6 * PAGE_SIZE)
        cache.release(va, 6 * PAGE_SIZE)   # cached, unused: sheddable
        deficit = m.tenants.set_quota(1001, 2, shed=True)
        assert deficit == 0
        assert cache.stats.evictions == 1
        acct = m.tenants.account(1001)
        assert acct.over_budget is False
        assert acct.pinned_pages == 0
        assert audit_tenant_accounting(m.agent) == []

    def test_reload_under_churn_stays_consistent(self):
        """Flip the quota while registrations come and go; accounting
        and the flag must converge every time."""
        m = Machine(backend="kiobuf")
        task = m.spawn("app", uid=1001)
        ua = m.user_agent(task)
        live = []
        for round_no in range(6):
            quota = 4 if round_no % 2 else 12
            m.tenants.set_quota(1001, quota)
            acct = m.tenants.account(1001)
            assert acct.over_budget == (acct.pinned_pages > quota)
            try:
                _ua, _va, reg = _register(m, task, 3, ua=ua)
                live.append(reg)
            except QuotaExceeded:
                pass
            if len(live) > 2:
                ua.deregister_mem(live.pop(0))
            assert audit_tenant_accounting(m.agent) == []
        for reg in live:
            ua.deregister_mem(reg)
        acct = m.tenants.account(1001)
        assert acct.pinned_pages == 0
        assert acct.over_budget is False
        assert acct.quota_reloads == 6

    def test_negative_quota_rejected(self):
        m = Machine(backend="kiobuf")
        with pytest.raises(ValueError, match=">= 0"):
            m.tenants.set_quota(1001, -1)


class TestObservability:
    def test_gauges_and_counters_published(self):
        m = Machine(backend="kiobuf", tenant_quota_pages=4)
        m.obs.enable()
        task = m.spawn("app", uid=1001)
        ua, _va, reg = _register(m, task, 3)
        metrics = m.obs.metrics
        assert metrics.gauge("tenant.1001.pinned_pages").value == 3
        assert metrics.gauge("via.tenancy.total_pinned_pages").value == 3
        with pytest.raises(QuotaExceeded):
            _register(m, task, 3, ua=ua)
        assert metrics.counter("via.admission.accepted").value == 1
        assert metrics.counter("via.admission.denied").value == 1
        assert metrics.histogram("via.admission.wait_ns").count == 2
        ua.deregister_mem(reg)
        assert metrics.gauge("tenant.1001.pinned_pages").value == 0


class TestSanitizerQuotaBreach:
    # Hand-fed sequences; suite-level arming would double-count.
    pytestmark = pytest.mark.san_suppress

    def _reg(self, handle, frames, uid, quota):
        return (REGISTER, dict(handle=handle, pid=10, frames=frames,
                               backend="kiobuf", first_vpn=100 + handle,
                               npages=len(frames), uid=uid,
                               quota_pages=quota))

    def test_breach_detected(self):
        san = PinSanitizer()
        san.feed([
            self._reg(1, (3, 4), uid=7, quota=3),
            self._reg(2, (5, 6), uid=7, quota=3),   # 4 > 3: breach
        ])
        assert [v.check for v in san.violations] == ["quota-breach"]
        assert "uid 7" in san.violations[0].message

    def test_within_quota_is_silent(self):
        san = PinSanitizer()
        san.feed([
            self._reg(1, (3, 4), uid=7, quota=4),
            self._reg(2, (5, 6), uid=7, quota=4),
        ])
        assert san.violations == []

    def test_deregister_frees_budget(self):
        san = PinSanitizer()
        san.feed([
            self._reg(1, (3, 4), uid=7, quota=3),
            (DEREGISTER, dict(handle=1, pid=10)),
            self._reg(2, (5, 6), uid=7, quota=3),
        ])
        assert san.violations == []

    def test_untagged_registrations_are_exempt(self):
        """Events without uid/quota (single-tenant setups) never trip
        the check."""
        san = PinSanitizer()
        san.feed([
            (REGISTER, dict(handle=1, pid=10, frames=(3, 4),
                            backend="kiobuf", first_vpn=100, npages=2)),
        ])
        assert san.violations == []

    def test_runtime_breach_impossible_through_agent(self):
        """End-to-end: with admission in front, a strict sanitizer never
        sees a quota breach from the real registration path."""
        m = Machine(backend="kiobuf", tenant_quota_pages=4)
        san = PinSanitizer(strict=True).arm(m)
        task = m.spawn("app", uid=1001)
        _register(m, task, 4)
        with pytest.raises(QuotaExceeded):
            _register(m, task, 1)
        san.disarm()
        assert san.violations == []


class TestSoakSmoke:
    def test_tiny_soak_holds_budgets(self):
        from repro.workloads.soak import SoakConfig, run_soak
        config = SoakConfig(tenants=3, sim_seconds=45.0, num_frames=1024,
                            host_ceiling_pages=150,
                            mean_gap_ns=250_000_000, hog_max_pages=128,
                            seed=11)
        rep = run_soak(config)
        assert rep.sim_ns >= 45.0 * 1e9
        assert rep.sanitizer_violations == 0
        assert rep.leaked_pins == 0
        assert rep.notes == []
        assert rep.max_host_pinned_pages <= 150
        assert rep.max_tenant_pinned_pages <= config.tenant_quota_pages
        assert rep.transfers_ok > 0
        assert rep.kills_clean + rep.kills_dirty > 0
