"""Tests for the workload generators."""

from repro.hw.physmem import PAGE_SIZE
from repro.workloads.allocator import MemoryHog, apply_memory_pressure
from repro.workloads.patterns import buffer_reuse_trace, size_sweep


class TestMemoryHog:
    def test_grow_consumes_frames(self, kernel):
        hog = MemoryHog(kernel)
        free0 = kernel.free_pages
        hog.grow(16)
        assert kernel.free_pages <= free0 - 16 + kernel.min_free_pages + 4
        assert hog.pages_touched == 16

    def test_grow_beyond_ram_forces_swap(self, tiny_kernel):
        hog = MemoryHog(tiny_kernel)
        hog.grow(tiny_kernel.pagemap.num_frames * 2)
        assert tiny_kernel.swap.writes > 0

    def test_release_returns_memory(self, kernel):
        hog = MemoryHog(kernel)
        free0 = kernel.free_pages
        hog.grow(16)
        hog.release()
        assert kernel.free_pages == free0

    def test_churn_retouches(self, tiny_kernel):
        hog = MemoryHog(tiny_kernel)
        hog.grow(tiny_kernel.pagemap.num_frames)
        writes0 = tiny_kernel.swap.writes
        hog.churn(2)
        # Sustained churn keeps pushing pages out.
        assert tiny_kernel.swap.writes > writes0

    def test_apply_memory_pressure_helper(self, kernel):
        victim = kernel.create_task()
        va = victim.mmap(8)
        victim.touch_pages(va, 8)
        hog = apply_memory_pressure(kernel, factor=1.5)
        # Reclaim ran and stole something (victim or hog pages).
        assert kernel.trace.count("swap_out") > 0
        hog.release()


class TestSizeSweep:
    def test_powers_of_two_inclusive(self):
        points = size_sweep(64, 1024)
        assert [p.nbytes for p in points] == [64, 128, 256, 512, 1024]

    def test_repeats_taper(self):
        points = size_sweep(64, 1 << 20, repeats_small=5, repeats_large=2)
        assert points[0].repeats == 5
        assert points[-1].repeats == 2


class TestBufferReuseTrace:
    def test_deterministic(self):
        a = buffer_reuse_trace(seed=3)
        b = buffer_reuse_trace(seed=3)
        assert a == b
        assert a != buffer_reuse_trace(seed=4)

    def test_ops_within_buffers(self):
        trace = buffer_reuse_trace(num_buffers=4, buffer_pages=8,
                                   operations=100)
        assert len(trace) == 100
        for op in trace:
            assert 0 <= op.buffer_index < 4
            assert op.offset % PAGE_SIZE == 0
            assert op.nbytes % PAGE_SIZE == 0
            assert op.offset + op.nbytes <= 8 * PAGE_SIZE

    def test_hot_buffers_dominate(self):
        trace = buffer_reuse_trace(num_buffers=8, hot_fraction=0.25,
                                   hot_probability=0.8, operations=400)
        hot_ops = sum(1 for op in trace if op.buffer_index < 2)
        assert hot_ops > 0.6 * len(trace)
