"""Smoke tests: every example must run to completion and produce its
key output lines."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "hello, VIA!" in out
        assert "RDMA payload" in out
        assert "simulated time" in out

    def test_locktest_swapping(self):
        out = run_example("locktest_swapping.py")
        assert "refcount" in out
        assert "64/64" in out           # all pages moved
        assert "1 of 6 mechanisms fail" in out

    def test_zero_copy_messaging(self):
        out = run_example("zero_copy_messaging.py")
        assert "Bandwidth under memory pressure" in out
        assert "payload correct: False" in out   # the silent corruption

    def test_registration_cache(self):
        out = run_example("registration_cache.py")
        assert "caching speedup" in out
        assert "hit rate" in out

    def test_raw_io(self):
        out = run_example("raw_io.py")
        assert "RAW vs buffered" in out
        assert "survive reclaim: True" in out

    def test_parallel_sort(self):
        out = run_example("parallel_sort.py")
        assert "globally sorted: True" in out

    def test_halo_exchange(self):
        out = run_example("halo_exchange.py")
        assert "bit-identical to reference: True" in out
