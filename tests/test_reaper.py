"""The orphan reaper: dead-owner reclamation, retry/backoff,
force-escalation, swap-pressure drafting, descriptor deadlines, and
cadence scheduling."""

from __future__ import annotations

import pytest

from repro.core.audit import (
    audit_kernel_invariants, audit_pin_leaks, audit_tpt_consistency,
)
from repro.errors import KiobufError
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.kernel.reaper import OrphanReaper
from repro.via.constants import VIP_ERROR_CONN_LOST
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.machine import Machine


def _leaky_kill(machine, npages=4, name="victim", vis=0):
    """A task that dies without driver cleanup, leaking registrations
    (and optionally VIs)."""
    task = machine.spawn(name)
    ua = machine.user_agent(task)
    va = task.mmap(npages)
    task.touch_pages(va, npages)
    reg = ua.register_mem(va, npages * PAGE_SIZE)
    for _ in range(vis):
        ua.create_vi()
    machine.kernel.kill(task.pid, cleanup=False)
    return task, reg


def _assert_clean(machine):
    assert audit_tpt_consistency(machine.agent) == []
    assert audit_pin_leaks(machine.kernel, machine.agent) == []
    audit_kernel_invariants(machine.kernel)


class TestDeadOwnerReclamation:
    def test_buggy_kill_leaks_until_reaped(self):
        m = Machine(backend="kiobuf")
        task, reg = _leaky_kill(m, vis=2)
        # The leak is real: record, pins, and VIs all survived the kill.
        assert reg.handle in m.agent.registrations
        assert all(m.kernel.pagemap.page(f).pinned
                   for f in reg.region.frames)
        assert sum(1 for v in m.nic.vis.values()
                   if v.owner_pid == task.pid) == 2

        reaper = OrphanReaper(m.kernel, agents=[m.agent])
        report = reaper.scan()
        assert report.registrations_reclaimed == 1
        assert report.vis_reclaimed == 2
        assert report.frames_freed >= 4
        assert reg.handle not in m.agent.registrations
        assert task.pid not in m.agent._tags
        _assert_clean(m)

    def test_second_scan_finds_nothing(self):
        m = Machine(backend="kiobuf")
        _leaky_kill(m)
        reaper = OrphanReaper(m.kernel, agents=[m.agent])
        assert reaper.scan().reclaimed_total > 0
        report = reaper.scan()
        assert report.reclaimed_total == 0
        assert report.failures == 0

    def test_live_tasks_are_untouched(self):
        m = Machine(backend="kiobuf")
        keeper = m.spawn("keeper")
        ua = m.user_agent(keeper)
        va = keeper.mmap(2)
        keeper.touch_pages(va, 2)
        reg = ua.register_mem(va, 2 * PAGE_SIZE)
        _leaky_kill(m)
        OrphanReaper(m.kernel, agents=[m.agent]).scan()
        assert reg.handle in m.agent.registrations
        assert all(m.kernel.pagemap.page(f).pinned
                   for f in reg.region.frames)
        _assert_clean(m)

    def test_orphaned_kiobuf_without_registration(self):
        """A crash between pin and record leaves a bare kiobuf; the
        reaper unmaps it."""
        m = Machine(backend="kiobuf")
        task = m.spawn("victim")
        va = task.mmap(2)
        task.touch_pages(va, 2)
        kio = m.kernel.map_user_kiobuf(task, va, 2 * PAGE_SIZE)
        m.kernel.kill(task.pid, cleanup=False)
        assert kio.mapped
        report = OrphanReaper(m.kernel, agents=[m.agent]).scan()
        assert report.kiobufs_reclaimed == 1
        assert not kio.mapped
        _assert_clean(m)


class TestRetryAndEscalation:
    def test_transient_failure_retries_with_backoff(self):
        m = Machine(backend="kiobuf")
        _leaky_kill(m)
        fails = {"left": 2}
        real_unmap = m.kernel.unmap_kiobuf

        def flaky_unmap(kio):
            if fails["left"] > 0:
                fails["left"] -= 1
                raise KiobufError("transient unmap failure (injected)")
            real_unmap(kio)

        m.kernel.unmap_kiobuf = flaky_unmap
        reaper = OrphanReaper(m.kernel, agents=[m.agent],
                              backoff_base_ns=1_000_000)
        r1 = reaper.scan()
        assert r1.failures == 1 and r1.registrations_reclaimed == 0
        # Inside the backoff window: deferred, not retried.
        r2 = reaper.scan()
        assert r2.deferred >= 1 and r2.failures == 0
        m.kernel.clock.charge(2_000_000, "test")
        r3 = reaper.scan()
        assert r3.failures == 1           # second injected failure
        m.kernel.clock.charge(4_000_000, "test")
        r4 = reaper.scan()
        assert r4.registrations_reclaimed == 1
        assert m.kernel.trace.count("reaper_retry") == 2
        _assert_clean(m)

    def test_permanent_failure_escalates_to_force(self):
        """A backend that can never unlock still converges: the record
        and TPT entry are force-dropped, then the kiobuf sweep releases
        the pin."""
        m = Machine(backend="kiobuf")
        _, reg = _leaky_kill(m)

        def broken_unlock(kernel, cookie):
            raise KiobufError("backend permanently wedged (injected)")

        m.agent.backend.unlock = broken_unlock
        reaper = OrphanReaper(m.kernel, agents=[m.agent],
                              max_attempts=3, backoff_base_ns=0)
        reports = [reaper.scan() for _ in range(4)]
        assert sum(r.failures for r in reports) == 3
        assert reports[3].registrations_forced == 1
        assert reg.handle not in m.agent.registrations
        # The pin the backend stranded was mopped up via the kiobuf
        # sweep (the cookie is the kiobuf itself).
        final = reaper.scan()
        assert final.reclaimed_total <= 1
        for _ in range(3):
            reaper.scan()
        assert not any(m.kernel.pagemap.page(f).pinned
                       for f in reg.region.frames)
        _assert_clean(m)


class TestReaperUnderSwapPressure:
    def test_reclaim_drafts_reaper_for_orphaned_registrations(self):
        """try_to_free_pages falls short, drafts the reaper, and the
        dead process's pinned frames come back — while the live
        process's registration resists."""
        m = Machine(backend="kiobuf", num_frames=96, swap_slots=4,
                    min_free_pages=4)
        keeper = m.spawn("keeper")
        ua = m.user_agent(keeper)
        kva = keeper.mmap(8)
        keeper.touch_pages(kva, 8)
        keeper_reg = ua.register_mem(kva, 8 * PAGE_SIZE)
        _, dead_reg = _leaky_kill(m, npages=16)
        OrphanReaper(m.kernel, agents=[m.agent])   # attaches kernel.reaper

        free0 = m.kernel.pagemap.free_count
        freed = paging.try_to_free_pages(m.kernel, free0 + 12)
        assert freed >= 16   # the dead registration's frames came back
        assert dead_reg.handle not in m.agent.registrations
        assert keeper_reg.handle in m.agent.registrations
        assert all(m.kernel.pagemap.page(f).pinned
                   for f in keeper_reg.region.frames)
        assert m.kernel.trace.count("reaper_scan") >= 1
        _assert_clean(m)

    def test_orphan_frames_freed_when_unexplained(self):
        """swap_out's unmapped-but-referenced orphans are reclaimed once
        no registration explains them."""
        m = Machine(num_frames=64)
        task = m.spawn("t")
        va = task.mmap(1)
        task.touch_pages(va, 1)
        frame = task.page_table.lookup(va // PAGE_SIZE).frame
        m.kernel.pagemap.get_page(frame)    # a leaked driver reference
        m.kernel.apply_pressure()
        pd = m.kernel.pagemap.page(frame)
        assert pd.tag == "orphan" and pd.count == 1
        report = OrphanReaper(m.kernel, agents=[m.agent]).scan()
        assert report.orphan_frames_freed >= 1
        assert m.kernel.pagemap.page(frame).free
        audit_kernel_invariants(m.kernel)


class TestDescriptorDeadline:
    def test_stale_descriptor_flushed_with_conn_lost(self):
        m = Machine()
        t1, t2 = m.spawn("a"), m.spawn("b")
        ua1, ua2 = m.user_agent(t1), m.user_agent(t2)
        vi1, vi2 = ua1.create_vi(), ua2.create_vi()
        m.connect_loopback(vi1, vi2)
        va = t1.mmap(1)
        t1.touch_pages(va, 1)
        reg = ua1.register_mem(va, PAGE_SIZE)
        desc = Descriptor.recv([DataSegment(reg.handle, va, PAGE_SIZE)])
        ua1.post_recv(vi1, desc)

        reaper = OrphanReaper(m.kernel, agents=[m.agent],
                              descriptor_deadline_ns=1_000_000)
        m.kernel.clock.charge(2_000_000, "test")
        report = reaper.scan()
        assert report.descriptors_flushed == 1
        assert desc.status == VIP_ERROR_CONN_LOST
        assert ua1.recv_done(vi1) is desc
        assert vi1.vi_id in m.nic.vis      # owner alive: VI survives

    def test_fresh_descriptors_survive(self):
        m = Machine()
        t1, t2 = m.spawn("a"), m.spawn("b")
        ua1, ua2 = m.user_agent(t1), m.user_agent(t2)
        vi1, vi2 = ua1.create_vi(), ua2.create_vi()
        m.connect_loopback(vi1, vi2)
        va = t1.mmap(1)
        t1.touch_pages(va, 1)
        reg = ua1.register_mem(va, PAGE_SIZE)
        desc = Descriptor.recv([DataSegment(reg.handle, va, PAGE_SIZE)])
        ua1.post_recv(vi1, desc)
        reaper = OrphanReaper(m.kernel, agents=[m.agent],
                              descriptor_deadline_ns=10**9)
        report = reaper.scan()
        assert report.descriptors_flushed == 0
        assert desc in vi1.recv_queue


class TestCadence:
    def test_started_reaper_scans_on_clock(self):
        m = Machine(backend="kiobuf")
        reaper = m.start_reaper(interval_ns=1_000)
        _leaky_kill(m)
        scans0 = reaper.scans
        m.kernel.clock.charge(5_000, "test")
        assert reaper.scans > scans0
        _assert_clean(m)
        reaper.stop()
        scans1 = reaper.scans
        m.kernel.clock.charge(50_000, "test")
        assert reaper.scans == scans1

    def test_run_if_due_respects_interval(self):
        m = Machine()
        reaper = OrphanReaper(m.kernel, agents=[m.agent],
                              interval_ns=1_000_000)
        assert reaper.run_if_due() is not None    # first scan: due at 0
        assert reaper.run_if_due() is None        # inside the interval
        m.kernel.clock.charge(2_000_000, "test")
        assert reaper.run_if_due() is not None

    def test_scan_emits_report_trace_only_when_work_found(self):
        m = Machine(backend="kiobuf")
        reaper = OrphanReaper(m.kernel, agents=[m.agent])
        reaper.scan()
        assert m.kernel.trace.count("reaper_scan") == 0
        _leaky_kill(m)
        reaper.scan()
        assert m.kernel.trace.count("reaper_scan") == 1


class TestTenantAttribution:
    """ReaperReport's per-pid / per-uid reclamation breakdown."""

    def test_breakdown_by_pid_and_uid(self):
        m = Machine(backend="kiobuf")
        a = m.spawn("a", uid=2001)
        ua_a = m.user_agent(a)
        b = m.spawn("b", uid=2002)
        ua_b = m.user_agent(b)
        for task, ua, n in ((a, ua_a, 2), (b, ua_b, 1)):
            for _ in range(n):
                va = task.mmap(2)
                task.touch_pages(va, 2)
                ua.register_mem(va, 2 * PAGE_SIZE)
        m.kernel.kill(a.pid, cleanup=False)
        m.kernel.kill(b.pid, cleanup=False)
        report = OrphanReaper(m.kernel, agents=[m.agent]).scan()
        assert report.reclaimed_by_pid == {a.pid: 2, b.pid: 1}
        assert report.reclaimed_by_uid == {2001: 2, 2002: 1}
        _assert_clean(m)

    def test_vi_reclamation_attributed(self):
        m = Machine(backend="kiobuf")
        task, _reg = _leaky_kill(m, vis=2)
        report = OrphanReaper(m.kernel, agents=[m.agent]).scan()
        # 1 registration + 2 VIs, all the same pid (default-uid tenant).
        assert report.reclaimed_by_pid == {task.pid: 3}
        assert report.reclaimed_by_uid == {task.uid: 3}

    def test_clean_scan_has_empty_breakdown(self):
        m = Machine(backend="kiobuf")
        report = OrphanReaper(m.kernel, agents=[m.agent]).scan()
        assert report.reclaimed_by_pid == {}
        assert report.reclaimed_by_uid == {}

    def test_tenant_counters_published(self):
        m = Machine(backend="kiobuf")
        m.obs.enable()
        _leaky_kill(m, name="victim")
        reaper = OrphanReaper(m.kernel, agents=[m.agent])
        reaper.start()
        reaper.scan()
        counter = m.obs.metrics.counter("kernel.reaper.tenant.1000.reclaimed")
        assert counter.value >= 1
