"""Fabric loss-path coverage: packets_sent/packets_dropped accounting
and the fire-and-forget guarantee of UNRELIABLE VIs."""

import pytest

from repro.errors import QueueEmpty
from repro.hw.physmem import PAGE_SIZE
from repro.via.constants import VIP_SUCCESS, ReliabilityLevel
from repro.via.descriptor import Descriptor
from repro.via.machine import connected_pair


def unreliable_pair(seed=0, **kwargs):
    return connected_pair("kiobuf",
                          reliability=ReliabilityLevel.UNRELIABLE,
                          seed=seed, **kwargs)


def post_recv_buffer(ua, vi, npages=2):
    va = ua.task.mmap(npages)
    reg = ua.register_mem(va, npages * PAGE_SIZE)
    desc = Descriptor.recv([ua.segment(reg)])
    ua.post_recv(vi, desc)
    return va, reg, desc


class TestLossAccounting:
    def test_no_loss_counts_sent_only(self):
        cluster, ua_s, ua_r, vi_s, vi_r = unreliable_pair()
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        for i in range(10):
            post_recv_buffer(ua_r, vi_r)
            ua_s.send_bytes(vi_s, sreg, b"x" * 32)
        assert cluster.fabric.packets_sent == 10
        assert cluster.fabric.packets_dropped == 0

    def test_total_loss_drops_every_packet(self):
        cluster, ua_s, ua_r, vi_s, vi_r = unreliable_pair()
        cluster.fabric.loss_rate = 1.0
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        for i in range(10):
            post_recv_buffer(ua_r, vi_r)
            ua_s.send_bytes(vi_s, sreg, b"x" * 32)
        assert cluster.fabric.packets_sent == 10
        assert cluster.fabric.packets_dropped == 10
        assert ua_r.nic.recvs_completed == 0

    def test_partial_loss_sums_delivered_and_dropped(self):
        cluster, ua_s, ua_r, vi_s, vi_r = unreliable_pair(seed=7)
        cluster.fabric.loss_rate = 0.5
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        n = 40
        for i in range(n):
            post_recv_buffer(ua_r, vi_r)
            ua_s.send_bytes(vi_s, sreg, b"x" * 32)
        fabric = cluster.fabric
        assert fabric.packets_sent == n
        assert 0 < fabric.packets_dropped < n
        # every packet either arrived or was dropped — none vanished
        assert ua_r.nic.recvs_completed == n - fabric.packets_dropped

    def test_loss_events_are_traced(self):
        cluster, ua_s, ua_r, vi_s, vi_r = unreliable_pair()
        cluster.fabric.loss_rate = 1.0
        post_recv_buffer(ua_r, vi_r)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        ua_s.send_bytes(vi_s, sreg, b"gone")
        assert cluster.trace.count("packet_lost") == 1


class TestUnreliableNeverRaises:
    def test_drop_completes_send_with_success(self):
        """The UNRELIABLE sender can never tell: the descriptor completes
        VIP_SUCCESS, nothing raises, and the receiver simply sees
        nothing."""
        cluster, ua_s, ua_r, vi_s, vi_r = unreliable_pair()
        cluster.fabric.loss_rate = 1.0
        post_recv_buffer(ua_r, vi_r)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        desc = ua_s.send_bytes(vi_s, sreg, b"lost")
        assert desc.status == VIP_SUCCESS
        assert desc.done
        with pytest.raises(QueueEmpty):
            ua_r.recv_done(vi_r)

    def test_vi_stays_connected_through_sustained_loss(self):
        from repro.via.constants import ViState
        cluster, ua_s, ua_r, vi_s, vi_r = unreliable_pair()
        cluster.fabric.loss_rate = 1.0
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        for _ in range(20):
            desc = ua_s.send_bytes(vi_s, sreg, b"spray")
            assert desc.status == VIP_SUCCESS
        assert vi_s.state == ViState.CONNECTED
        assert vi_r.state == ViState.CONNECTED

    def test_deterministic_given_seed(self):
        def run():
            cluster, ua_s, ua_r, vi_s, vi_r = unreliable_pair(seed=3)
            cluster.fabric.loss_rate = 0.3
            sva = ua_s.task.mmap(1)
            sreg = ua_s.register_mem(sva, PAGE_SIZE)
            for i in range(30):
                post_recv_buffer(ua_r, vi_r)
                ua_s.send_bytes(vi_s, sreg, b"y" * 16)
            return cluster.fabric.packets_dropped
        assert run() == run()
