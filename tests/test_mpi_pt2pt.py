"""Tests for MPI point-to-point: matching, wildcards, eager/rendezvous,
unexpected messages, requests."""

import numpy as np
import pytest

from repro.errors import ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.mpi import ANY_SOURCE, ANY_TAG, MpiWorld


@pytest.fixture(scope="module")
def world():
    return MpiWorld(3, num_frames=2048, eager_threshold=16 * 1024)


@pytest.fixture
def bufs(world):
    """Fresh 32-page buffers on each rank."""
    out = []
    for r in world.ranks:
        va = r.task.mmap(32)
        r.task.touch_pages(va, 32)
        out.append(va)
    return out


def rand(n: int, seed: int = 0) -> bytes:
    return bytes(np.random.default_rng(seed).integers(0, 256, n,
                                                      dtype=np.uint8))


class TestEager:
    def test_roundtrip(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        r0.task.write(bufs[0], b"eager payload")
        req = r0.isend(1, 3, bufs[0], 13)
        st = r1.recv(0, 3, bufs[1], PAGE_SIZE)
        assert st.nbytes == 13 and st.source == 0 and st.tag == 3
        assert r1.task.read(bufs[1], 13) == b"eager payload"
        assert req.wait().nbytes == 13

    def test_multi_chunk_eager(self, world, bufs):
        """A message larger than one chunk but below the rendezvous
        threshold must reassemble."""
        r0, r1 = world.rank(0), world.rank(1)
        data = rand(3 * PAGE_SIZE, seed=1)   # 12 KiB < 16 KiB threshold
        r0.task.write(bufs[0], data)
        r0.isend(1, 9, bufs[0], len(data))
        r1.recv(0, 9, bufs[1], len(data))
        assert r1.task.read(bufs[1], len(data)) == data
        assert r0.eager_sent >= 1

    def test_zero_length_message(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        r0.isend(1, 11, bufs[0], 0)
        st = r1.recv(0, 11, bufs[1], 16)
        assert st.nbytes == 0

    def test_unexpected_message_buffered(self, world, bufs):
        """Send before the receive is posted: buffered, then matched."""
        r0, r1 = world.rank(0), world.rank(1)
        r0.task.write(bufs[0], b"early bird")
        r0.isend(1, 21, bufs[0], 10)
        assert r1.unexpected_count >= 1
        st = r1.recv(0, 21, bufs[1], 64)
        assert st.nbytes == 10
        assert r1.task.read(bufs[1], 10) == b"early bird"
        assert r1.unexpected_count == 0

    def test_ordering_within_pair_and_tag(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        for i in range(4):
            r0.task.write(bufs[0] + i * 16, f"msg{i}".encode())
            r0.isend(1, 30, bufs[0] + i * 16, 4)
        for i in range(4):
            r1.recv(0, 30, bufs[1], 16)
            assert r1.task.read(bufs[1], 4) == f"msg{i}".encode()

    def test_truncation_rejected(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        r0.isend(1, 40, bufs[0], 100)
        with pytest.raises(ViaError):
            r1.recv(0, 40, bufs[1], 10)


class TestRendezvous:
    def test_large_message_zero_copy(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        data = rand(96 * 1024, seed=2)
        r0.task.write(bufs[0], data)
        copies0 = (r0.endpoints[1].copies_bytes
                   + r1.endpoints[0].copies_bytes)
        req = r0.isend(1, 50, bufs[0], len(data))
        r1.recv(0, 50, bufs[1], len(data))
        req.wait()
        assert r1.task.read(bufs[1], len(data)) == data
        # Only control chunks were copied, not the payload.
        copied = (r0.endpoints[1].copies_bytes
                  + r1.endpoints[0].copies_bytes - copies0)
        assert copied < 2048
        assert r0.rendezvous_sent >= 1

    def test_rts_before_recv_posted(self, world, bufs):
        """RTS arrives unexpected; the later recv grants it."""
        r0, r1 = world.rank(0), world.rank(1)
        data = rand(64 * 1024, seed=3)
        r0.task.write(bufs[0], data)
        req = r0.isend(1, 51, bufs[0], len(data))
        assert not req.done                  # waiting for the grant
        assert r1.unexpected_count >= 1
        r1.recv(0, 51, bufs[1], len(data))
        assert req.done
        assert r1.task.read(bufs[1], len(data)) == data

    def test_recv_posted_before_rts(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        data = rand(64 * 1024, seed=4)
        r0.task.write(bufs[0], data)
        rreq = r1.irecv(0, 52, bufs[1], len(data))
        sreq = r0.isend(1, 52, bufs[0], len(data))
        rreq.wait()
        sreq.wait()
        assert r1.task.read(bufs[1], len(data)) == data

    def test_rendezvous_truncation_rejected(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        r0.isend(1, 53, bufs[0], 64 * 1024)
        with pytest.raises(ViaError):
            r1.recv(0, 53, bufs[1], 1024)


class TestWildcards:
    def test_any_source(self, world, bufs):
        r0, r1, r2 = world.ranks
        r0.task.write(bufs[0], b"from-zero")
        r2.task.write(bufs[2], b"from-two!")
        r0.isend(1, 60, bufs[0], 9)
        r2.isend(1, 60, bufs[2], 9)
        sources = set()
        for _ in range(2):
            st = r1.recv(ANY_SOURCE, 60, bufs[1], 64)
            sources.add(st.source)
        assert sources == {0, 2}

    def test_any_tag(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        r0.isend(1, 61, bufs[0], 4)
        st = r1.recv(0, ANY_TAG, bufs[1], 64)
        assert st.tag == 61

    def test_tag_selectivity(self, world, bufs):
        """A recv for tag B must skip a buffered tag-A message."""
        r0, r1 = world.rank(0), world.rank(1)
        r0.task.write(bufs[0], b"AAAA")
        r0.isend(1, 70, bufs[0], 4)
        r0.task.write(bufs[0] + 64, b"BBBB")
        r0.isend(1, 71, bufs[0] + 64, 4)
        st = r1.recv(0, 71, bufs[1], 64)
        assert st.tag == 71
        assert r1.task.read(bufs[1], 4) == b"BBBB"
        st = r1.recv(0, 70, bufs[1], 64)
        assert r1.task.read(bufs[1], 4) == b"AAAA"
        del st


class TestRequests:
    def test_irecv_test_polls(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        req = r1.irecv(0, 80, bufs[1], 64)
        assert not req.test()
        r0.isend(1, 80, bufs[0], 8)
        assert req.test()
        assert req.status.nbytes == 8

    def test_wait_detects_deadlock(self, world, bufs):
        r1 = world.rank(1)
        req = r1.irecv(0, 9999, bufs[1], 64)
        with pytest.raises(ViaError):
            req.wait()
        r1._posted.remove(req)   # clean up for other tests

    def test_send_request_completes(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        req = r0.isend(1, 81, bufs[0], 16)
        assert req.done      # eager completes locally
        r1.recv(0, 81, bufs[1], 64)


class TestValidation:
    def test_self_send_rejected(self, world, bufs):
        with pytest.raises(ViaError):
            world.rank(0).isend(0, 1, bufs[0], 4)

    def test_bad_tag_rejected(self, world, bufs):
        with pytest.raises(ViaError):
            world.rank(0).isend(1, -5, bufs[0], 4)

    def test_unknown_peer_rejected(self, world, bufs):
        with pytest.raises(ViaError):
            world.rank(0).isend(7, 1, bufs[0], 4)
