"""Tests for the trace ring buffer."""

import warnings

import pytest

from repro.sim.clock import SimClock
from repro.sim.trace import Trace, TraceEvicted, TraceEvictionWarning


def make() -> tuple[SimClock, Trace]:
    clock = SimClock()
    return clock, Trace(clock, maxlen=8)


class TestTrace:
    def test_emit_and_count(self):
        clock, t = make()
        t.emit("a", x=1)
        t.emit("a", x=2)
        t.emit("b")
        assert t.count("a") == 2
        assert t.count("b") == 1
        assert t.count("c") == 0
        assert len(t) == 3

    def test_events_carry_timestamp_and_detail(self):
        clock, t = make()
        clock.charge(42)
        t.emit("swap_out", frame=7)
        ev = t.last("swap_out")
        assert ev is not None
        assert ev.ts_ns == 42
        assert ev["frame"] == 7

    def test_of_kind_and_where(self):
        _, t = make()
        t.emit("k", v=1)
        t.emit("k", v=2)
        t.emit("other")
        assert [e["v"] for e in t.of_kind("k")] == [1, 2]
        assert len(t.where(lambda e: e.detail.get("v") == 2)) == 1

    def test_ring_eviction_keeps_counts(self):
        _, t = make()
        for i in range(20):
            t.emit("x", i=i)
        assert len(t) == 8            # ring evicted
        assert t.count("x") == 20     # counter did not

    def test_disabled_drops_events(self):
        _, t = make()
        t.enabled = False
        t.emit("x")
        assert t.count("x") == 0
        t.enabled = True
        t.emit("x")
        assert t.count("x") == 1

    def test_last_returns_none_when_absent(self):
        _, t = make()
        assert t.last("nope") is None

    def test_clear(self):
        _, t = make()
        t.emit("x")
        t.clear()
        assert len(t) == 0
        assert t.count("x") == 0


class TestEvictionVisibility:
    """Regression: ring eviction used to be silent — ``of_kind`` would
    return a partial list with nothing to tell it apart from a full one."""

    def test_dropped_count_tracks_evictions_per_kind(self):
        _, t = make()
        for i in range(12):
            t.emit("x", i=i)
        t.emit("y")
        # maxlen=8: 13 emits → 5 evictions, all of kind "x".
        assert t.dropped_count("x") == 5
        assert t.dropped_count("y") == 0
        assert t.count("x") - t.dropped_count("x") == \
            len([e for e in t if e.kind == "x"])

    def test_of_kind_warns_once_per_kind_on_partial_view(self):
        _, t = make()
        for i in range(20):
            t.emit("x", i=i)
        with pytest.warns(TraceEvictionWarning, match="evicted 12 of 20"):
            events = t.of_kind("x")
        assert len(events) == 8
        with warnings.catch_warnings():
            warnings.simplefilter("error")   # second query: no re-warn
            t.of_kind("x")

    def test_last_also_checks_eviction(self):
        _, t = make()
        for i in range(20):
            t.emit("x", i=i)
        with pytest.warns(TraceEvictionWarning):
            ev = t.last("x")
        assert ev is not None and ev["i"] == 19

    def test_strict_mode_raises_instead_of_warning(self):
        clock = SimClock()
        t = Trace(clock, maxlen=4, strict=True)
        for i in range(6):
            t.emit("x", i=i)
        with pytest.raises(TraceEvicted):
            t.of_kind("x")
        with pytest.raises(TraceEvicted):
            t.last("x")
        # Unevicted kinds stay queryable.
        t.emit("y")
        assert t.of_kind("y")

    def test_unaffected_kind_does_not_warn(self):
        _, t = make()
        for i in range(20):
            t.emit("x", i=i)
        t.emit("y")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(t.of_kind("y")) == 1

    def test_clear_resets_eviction_state(self):
        _, t = make()
        for i in range(20):
            t.emit("x", i=i)
        t.clear()
        assert t.dropped_count("x") == 0
        t.emit("x")
        with warnings.catch_warnings():
            warnings.simplefilter("error")   # warn-once memory also reset
            assert len(t.of_kind("x")) == 1


class TestDetailSnapshot:
    """Regression: ``TraceEvent.detail`` used to alias caller-owned
    mutables — mutating the list after ``emit`` rewrote history."""

    def test_dict_mutation_after_emit_is_invisible(self):
        _, t = make()
        detail_frames = [1, 2, 3]
        t.emit("swap", frames=detail_frames, pid=9)
        detail_frames.append(4)
        ev = t.last("swap")
        assert ev["frames"] == [1, 2, 3]

    def test_set_and_dict_values_are_copied(self):
        _, t = make()
        pins = {10, 11}
        owners = {"a": 1}
        t.emit("pin", pins=pins, owners=owners)
        pins.add(12)
        owners["b"] = 2
        ev = t.last("pin")
        assert ev["pins"] == {10, 11}
        assert ev["owners"] == {"a": 1}

    def test_scalars_and_unknown_types_pass_through(self):
        _, t = make()
        marker = object()
        t.emit("k", n=3, s="x", o=marker)
        ev = t.last("k")
        assert ev["n"] == 3 and ev["s"] == "x" and ev["o"] is marker
