"""Tests for the trace ring buffer."""

from repro.sim.clock import SimClock
from repro.sim.trace import Trace


def make() -> tuple[SimClock, Trace]:
    clock = SimClock()
    return clock, Trace(clock, maxlen=8)


class TestTrace:
    def test_emit_and_count(self):
        clock, t = make()
        t.emit("a", x=1)
        t.emit("a", x=2)
        t.emit("b")
        assert t.count("a") == 2
        assert t.count("b") == 1
        assert t.count("c") == 0
        assert len(t) == 3

    def test_events_carry_timestamp_and_detail(self):
        clock, t = make()
        clock.charge(42)
        t.emit("swap_out", frame=7)
        ev = t.last("swap_out")
        assert ev is not None
        assert ev.ts_ns == 42
        assert ev["frame"] == 7

    def test_of_kind_and_where(self):
        _, t = make()
        t.emit("k", v=1)
        t.emit("k", v=2)
        t.emit("other")
        assert [e["v"] for e in t.of_kind("k")] == [1, 2]
        assert len(t.where(lambda e: e.detail.get("v") == 2)) == 1

    def test_ring_eviction_keeps_counts(self):
        _, t = make()
        for i in range(20):
            t.emit("x", i=i)
        assert len(t) == 8            # ring evicted
        assert t.count("x") == 20     # counter did not

    def test_disabled_drops_events(self):
        _, t = make()
        t.enabled = False
        t.emit("x")
        assert t.count("x") == 0
        t.enabled = True
        t.emit("x")
        assert t.count("x") == 1

    def test_last_returns_none_when_absent(self):
        _, t = make()
        assert t.last("nope") is None

    def test_clear(self):
        _, t = make()
        t.emit("x")
        t.clear()
        assert len(t) == 0
        assert t.count("x") == 0
