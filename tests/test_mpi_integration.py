"""MPI layer under memory pressure — the paper's thesis at the highest
level of the stack: with the kiobuf backend an entire MPI application
survives aggressive reclaim; with the refcount backend its rendezvous
payloads silently corrupt."""

import numpy as np
import pytest

from repro.core.audit import audit_kernel_invariants
from repro.hw.physmem import PAGE_SIZE
from repro.mpi import MpiWorld
from repro.workloads.allocator import MemoryHog


def build(backend: str, num_frames: int = 1024) -> tuple:
    world = MpiWorld(2, num_frames=num_frames, backend=backend,
                     eager_threshold=8 * 1024)
    r0, r1 = world.rank(0), world.rank(1)
    src = r0.task.mmap(24)
    r0.task.touch_pages(src, 24)
    dst = r1.task.mmap(24)
    r1.task.touch_pages(dst, 24)
    return world, r0, r1, src, dst


class TestMpiUnderPressure:
    def test_kiobuf_world_survives_churn(self):
        world, r0, r1, src, dst = build("kiobuf")
        hogs = [MemoryHog(m.kernel, "hog") for m in
                world.cluster.machines]
        for hog, m in zip(hogs, world.cluster.machines):
            hog.grow(m.kernel.pagemap.num_frames)
        rng = np.random.default_rng(0)
        for i in range(20):
            size = int(rng.integers(1024, 24 * PAGE_SIZE - 64))
            payload = bytes(rng.integers(0, 256, size, dtype=np.uint8))
            r0.task.write(src, payload)
            r0.isend(1, i, src, size)
            st = r1.recv(0, i, dst, 24 * PAGE_SIZE)
            assert st.nbytes == size
            assert r1.task.read(dst, size) == payload
            if i % 5 == 0:
                for hog in hogs:
                    hog.churn()
                for m in world.cluster.machines:
                    audit_kernel_invariants(m.kernel)
        assert all(m.kernel.swap.writes > 0
                   for m in world.cluster.machines)

    @pytest.mark.san_suppress("swap-registered")
    def test_refcount_world_breaks_under_pressure(self):
        """With the broken backend, pressure between registration and
        use corrupts communication.  The failure can surface two ways —
        both are the paper's point:

        * the rendezvous payload lands in orphaned frames (silent data
          corruption), or
        * the endpoint's *bounce buffers* themselves go stale, so even
          the control envelopes arrive garbled (protocol corruption).
        """
        from repro.errors import ViaError
        world, r0, r1, src, dst = build("refcount", num_frames=512)
        size = 16 * PAGE_SIZE   # > eager threshold → rendezvous
        rng = np.random.default_rng(1)
        payload = bytes(rng.integers(0, 256, size, dtype=np.uint8))
        r0.task.write(src, payload)
        # Warm the registration caches (both sides register user bufs).
        r0.isend(1, 0, src, size)
        r1.recv(0, 0, dst, size)
        assert r1.task.read(dst, size) == payload
        # Sustained pressure: the refcount-"pinned" regions (cached user
        # buffers AND the endpoints' bounce pools) get swapped out and
        # refault into fresh frames while the TPT keeps the old ones.
        hog = MemoryHog(r1.machine.kernel, "hog")
        hog.grow(r1.machine.kernel.pagemap.num_frames * 2)
        r1.task.touch_pages(dst, 16)
        payload2 = bytes(rng.integers(0, 256, size, dtype=np.uint8))
        r0.task.write(src, payload2)
        corrupted = False
        try:
            r0.isend(1, 1, src, size)
            r1.recv(0, 1, dst, size)
            corrupted = r1.task.read(dst, size) != payload2
        except ViaError:
            corrupted = True   # protocol-level corruption
        assert corrupted, "refcount backend must corrupt under pressure"

    def test_collectives_survive_pressure_kiobuf(self):
        world, r0, r1, src, dst = build("kiobuf")
        for m in world.cluster.machines:
            MemoryHog(m.kernel).grow(m.kernel.pagemap.num_frames)
        vas, outs = [], []
        for r in world.ranks:
            v = r.task.mmap(2)
            r.task.touch_pages(v, 2)
            vas.append(v)
            o = r.task.mmap(2)
            r.task.touch_pages(o, 2)
            outs.append(o)
        count = 32
        for i, r in enumerate(world.ranks):
            r.task.write(vas[i],
                         np.full(count, float(i + 1)).tobytes())
        world.allreduce(vas, outs, count)
        for r, o in zip(world.ranks, outs):
            got = np.frombuffer(r.task.read(o, count * 8))
            np.testing.assert_allclose(got, 3.0)   # 1 + 2

    @pytest.mark.parametrize("backend", ["kiobuf", "mlock"])
    def test_reliable_backends_audit_clean(self, backend):
        world, r0, r1, src, dst = build(backend)
        MemoryHog(r1.machine.kernel).grow(
            r1.machine.kernel.pagemap.num_frames)
        size = 16 * PAGE_SIZE
        payload = b"\xab" * size
        r0.task.write(src, payload)
        r0.isend(1, 0, src, size)
        r1.recv(0, 0, dst, size)
        assert r1.task.read(dst, size) == payload
        from repro.core.audit import audit_tpt_consistency
        for m in world.cluster.machines:
            assert audit_tpt_consistency(m.agent) == []
