"""Tests for mlock/munlock and the capability machinery (Sec. 3.2)."""

import pytest

from repro.errors import InvalidArgument, PermissionDenied
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.capabilities import CAP_IPC_LOCK, capable


class TestCapabilityGate:
    def test_plain_user_denied(self, kernel):
        t = kernel.create_task(uid=1000)
        va = t.mmap(2)
        with pytest.raises(PermissionDenied):
            kernel.sys_mlock(t, va, 2 * PAGE_SIZE)

    def test_root_allowed(self, kernel):
        t = kernel.create_task(uid=0)
        va = t.mmap(2)
        kernel.sys_mlock(t, va, 2 * PAGE_SIZE)
        assert t.vmas.locked_pages() == 2

    def test_capability_holder_allowed(self, kernel):
        t = kernel.create_task(uid=1000)
        t.capabilities.add(CAP_IPC_LOCK)
        va = t.mmap(1)
        kernel.sys_mlock(t, va, PAGE_SIZE)
        assert t.vmas.locked_pages() == 1

    def test_capable_semantics(self, kernel):
        root = kernel.create_task(uid=0)
        user = kernel.create_task(uid=1000)
        assert capable(root, CAP_IPC_LOCK)
        assert not capable(user, CAP_IPC_LOCK)

    def test_user_dma_patch_path_skips_check(self, kernel):
        """do_mlock directly — the rewritten-do_mlock variant."""
        t = kernel.create_task(uid=1000)
        va = t.mmap(1)
        kernel.do_mlock(t, va, PAGE_SIZE)   # no PermissionDenied
        assert t.vmas.locked_pages() == 1

    def test_cap_dance_locks_and_restores(self, kernel):
        t = kernel.create_task(uid=1000)
        va = t.mmap(1)
        kernel.mlock_with_cap_dance(t, va, PAGE_SIZE)
        assert t.vmas.locked_pages() == 1
        assert CAP_IPC_LOCK not in t.capabilities   # reclaimed

    def test_cap_dance_preserves_existing_capability(self, kernel):
        t = kernel.create_task(uid=1000)
        t.capabilities.add(CAP_IPC_LOCK)
        va = t.mmap(1)
        kernel.mlock_with_cap_dance(t, va, PAGE_SIZE)
        assert CAP_IPC_LOCK in t.capabilities


class TestMlockSemantics:
    def test_mlock_makes_pages_present(self, kernel):
        t = kernel.create_task(uid=0)
        va = t.mmap(4)
        assert t.resident_pages() == 0
        kernel.sys_mlock(t, va, 4 * PAGE_SIZE)
        assert t.resident_pages() == 4

    def test_mlock_splits_vmas(self, kernel):
        t = kernel.create_task(uid=0)
        va = t.mmap(10)
        kernel.sys_mlock(t, va + 2 * PAGE_SIZE, 4 * PAGE_SIZE)
        areas = [(a.start_vpn - t.vpn_of(va), a.end_vpn - t.vpn_of(va),
                  a.locked) for a in t.vmas]
        assert areas == [(0, 2, False), (2, 6, True), (6, 10, False)]

    def test_munlock_merges_back(self, kernel):
        t = kernel.create_task(uid=0)
        va = t.mmap(10)
        kernel.sys_mlock(t, va + 2 * PAGE_SIZE, 4 * PAGE_SIZE)
        kernel.sys_munlock(t, va + 2 * PAGE_SIZE, 4 * PAGE_SIZE)
        assert len(t.vmas) == 1
        assert t.vmas.locked_pages() == 0

    def test_mlock_does_not_nest(self, kernel):
        """The drawback the paper highlights: 'a single unlock operation
        annuls multiple lock operations on the same address'."""
        t = kernel.create_task(uid=0)
        va = t.mmap(2)
        kernel.sys_mlock(t, va, 2 * PAGE_SIZE)
        kernel.sys_mlock(t, va, 2 * PAGE_SIZE)   # lock twice
        kernel.sys_munlock(t, va, 2 * PAGE_SIZE)  # unlock ONCE
        assert t.vmas.locked_pages() == 0         # ... and it is all gone

    def test_mlock_range_with_hole_rejected(self, kernel):
        t = kernel.create_task(uid=0)
        va1 = t.mmap(2)
        t.mmap(2)  # separate area, with the guard gap between
        with pytest.raises(InvalidArgument):
            kernel.sys_mlock(t, va1, 4 * PAGE_SIZE)

    def test_mlock_zero_bytes_rejected(self, kernel):
        t = kernel.create_task(uid=0)
        va = t.mmap(1)
        with pytest.raises(InvalidArgument):
            kernel.sys_mlock(t, va, 0)

    def test_partial_bytes_round_to_pages(self, kernel):
        t = kernel.create_task(uid=0)
        va = t.mmap(4)
        kernel.sys_mlock(t, va + 100, PAGE_SIZE)  # straddles 2 pages
        assert t.vmas.locked_pages() == 2
