"""Tests for the Kernel facade: tasks, mmap/munmap, user access,
virt_to_phys, page cache, stats."""

import pytest

from repro.errors import InvalidArgument, SegmentationFault
from repro.hw.physmem import PAGE_SIZE


class TestTasks:
    def test_pids_unique_and_findable(self, kernel):
        a = kernel.create_task()
        b = kernel.create_task()
        assert a.pid != b.pid
        assert kernel.find_task(a.pid) is a
        with pytest.raises(InvalidArgument):
            kernel.find_task(9999)

    def test_exit_task_releases_memory(self, kernel):
        t = kernel.create_task()
        free0 = kernel.free_pages
        va = t.mmap(8)
        t.touch_pages(va, 8)
        kernel.exit_task(t)
        assert kernel.free_pages == free0
        assert t not in kernel.tasks


class TestMmapMunmap:
    def test_mmap_returns_page_aligned_distinct_ranges(self, kernel):
        t = kernel.create_task()
        a = t.mmap(4)
        b = t.mmap(4)
        assert a % PAGE_SIZE == 0 and b % PAGE_SIZE == 0
        assert abs(b - a) >= 4 * PAGE_SIZE

    def test_mmap_zero_pages_rejected(self, kernel):
        t = kernel.create_task()
        with pytest.raises(InvalidArgument):
            t.mmap(0)

    def test_munmap_frees_frames_and_slots(self, kernel):
        from repro.kernel import paging
        t = kernel.create_task()
        va = t.mmap(4)
        t.touch_pages(va, 4)
        paging.swap_out(kernel, 2)
        used_slots = kernel.swap.slots_in_use
        assert used_slots > 0
        free0 = kernel.free_pages
        t.munmap(va, 4)
        assert kernel.swap.slots_in_use == 0
        assert kernel.free_pages > free0

    def test_munmap_unaligned_rejected(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        with pytest.raises(InvalidArgument):
            t.munmap(va + 1, 1)

    def test_access_after_munmap_segfaults(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        t.write(va, b"x")
        t.munmap(va, 1)
        with pytest.raises(SegmentationFault):
            t.read(va, 1)


class TestUserAccess:
    def test_write_read_roundtrip(self, kernel):
        t = kernel.create_task()
        va = t.mmap(2)
        payload = bytes(range(256)) * 20
        t.write(va + 123, payload)
        assert t.read(va + 123, len(payload)) == payload

    def test_cross_page_write(self, kernel):
        t = kernel.create_task()
        va = t.mmap(2)
        t.write(va + PAGE_SIZE - 2, b"abcd")
        assert t.read(va + PAGE_SIZE - 2, 4) == b"abcd"
        f0, f1 = t.physical_pages(va, 2)
        assert kernel.phys.read(f0, PAGE_SIZE - 2, 2) == b"ab"
        assert kernel.phys.read(f1, 0, 2) == b"cd"

    def test_write_marks_dirty(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        t.write(va, b"x")
        assert t.page_table.lookup(t.vpn_of(va)).dirty


class TestVirtToPhys:
    def test_matches_page_table(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        t.write(va, b"x")
        frame = t.physical_pages(va, 1)[0]
        assert kernel.virt_to_phys(t, va + 17) == frame * PAGE_SIZE + 17

    def test_nonresident_raises(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        with pytest.raises(SegmentationFault):
            kernel.virt_to_phys(t, va)


class TestPageCacheAndStats:
    def test_page_cache_page_flagged(self, kernel):
        pd = kernel.add_page_cache_page()
        assert pd.in_page_cache
        assert pd.frame in kernel.page_cache

    def test_lock_unlock_page(self, kernel):
        pd = kernel.add_page_cache_page()
        kernel.lock_page(pd.frame)
        assert pd.locked
        kernel.unlock_page(pd.frame)
        assert not pd.locked

    def test_memory_stats_shape(self, kernel):
        t = kernel.create_task()
        va = t.mmap(4)
        t.touch_pages(va, 4)
        stats = kernel.memory_stats()
        assert stats["resident_task_pages"] == 4
        assert stats["total_frames"] == 256
        assert stats["orphan_frames"] == 0
        assert stats["free_frames"] == kernel.free_pages
