"""Property-based tests for the registration cache: random acquire/
release sequences must keep cache accounting, kernel pin counts, and
TPT capacity consistent."""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, precondition, rule,
)

from repro.core.audit import audit_kernel_invariants
from repro.core.regcache import RegistrationCache
from repro.hw.physmem import PAGE_SIZE
from repro.sim.costs import FREE
from repro.via.machine import Machine

BUFFER_PAGES = 8
NUM_BUFFERS = 3


class RegCacheOps(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.machine = Machine(num_frames=512, backend="kiobuf",
                               tpt_entries=64, costs=FREE)
        self.task = self.machine.spawn("app")
        self.machine.user_agent(self.task)   # allocates the prot tag
        self.cache = RegistrationCache(self.machine.agent, self.task)
        self.buffers: list[int] = []
        self.held: list[tuple[int, int]] = []   # (va, nbytes) acquired

    @initialize()
    def setup(self) -> None:
        for _ in range(NUM_BUFFERS):
            va = self.task.mmap(BUFFER_PAGES)
            self.task.touch_pages(va, BUFFER_PAGES)
            self.buffers.append(va)

    @rule(buf=st.integers(0, NUM_BUFFERS - 1),
          page=st.integers(0, BUFFER_PAGES - 1),
          pages=st.integers(1, BUFFER_PAGES))
    def acquire(self, buf: int, page: int, pages: int) -> None:
        pages = min(pages, BUFFER_PAGES - page)
        va = self.buffers[buf] + page * PAGE_SIZE
        nbytes = pages * PAGE_SIZE
        try:
            self.cache.acquire(va, nbytes)
        except Exception:
            # capacity failure with everything held is legal
            assert self.held, "capacity failure with nothing held"
            return
        self.held.append((va, nbytes))

    @precondition(lambda self: self.held)
    @rule(idx=st.integers(0, 10**6))
    def release(self, idx: int) -> None:
        va, nbytes = self.held.pop(idx % len(self.held))
        self.cache.release(va, nbytes)

    @rule()
    def flush_unused(self) -> None:
        self.cache.flush()

    # -- invariants ------------------------------------------------------------

    @invariant()
    def users_match_held(self) -> None:
        total_users = sum(e.users for e in self.cache._entries.values())
        assert total_users == len(self.held)

    @invariant()
    def tpt_within_capacity(self) -> None:
        tpt = self.machine.nic.tpt
        assert 0 <= tpt.entries_used <= tpt.capacity_entries

    @invariant()
    def every_cached_entry_registered_and_pinned(self) -> None:
        agent = self.machine.agent
        for entry in self.cache._entries.values():
            reg = entry.registration
            assert reg.handle in agent.registrations
            for frame in reg.region.frames:
                pd = self.machine.kernel.pagemap.page(frame)
                assert pd.pin_count >= 1

    @invariant()
    def kernel_accounting_sound(self) -> None:
        audit_kernel_invariants(self.machine.kernel)


TestRegCacheOps = RegCacheOps.TestCase
TestRegCacheOps.settings = settings(max_examples=30,
                                    stateful_step_count=50,
                                    deadline=None)
