"""Tests for page tables and PTEs."""

from repro.kernel.pagetable import PTE, PageTable


class TestPTE:
    def test_default_not_present(self):
        pte = PTE()
        assert not pte.present
        assert not pte.swapped

    def test_swapped_state(self):
        pte = PTE(present=False, swap_slot=5)
        assert pte.swapped
        pte2 = PTE(present=True, frame=3, swap_slot=5)
        assert not pte2.swapped  # present wins


class TestPageTable:
    def test_lookup_missing(self):
        assert PageTable().lookup(7) is None

    def test_set_mapping(self):
        pt = PageTable()
        pte = pt.set_mapping(10, frame=3, writable=True)
        assert pte.present and pte.frame == 3 and pte.writable
        assert pte.accessed
        assert pt.lookup(10) is pte

    def test_set_swapped_clears_frame(self):
        pt = PageTable()
        pt.set_mapping(10, frame=3, writable=True)
        pte = pt.set_swapped(10, slot=42)
        assert not pte.present
        assert pte.frame == -1
        assert pte.swap_slot == 42
        assert pte.swapped

    def test_remapping_clears_swap_slot(self):
        pt = PageTable()
        pt.set_swapped(10, slot=42)
        pte = pt.set_mapping(10, frame=5, writable=False)
        assert pte.present and pte.swap_slot == -1

    def test_clear(self):
        pt = PageTable()
        pt.set_mapping(10, frame=3, writable=True)
        pt.clear(10)
        assert pt.lookup(10) is None
        pt.clear(10)  # idempotent

    def test_present_entries_sorted(self):
        pt = PageTable()
        pt.set_mapping(30, 1, True)
        pt.set_mapping(10, 2, True)
        pt.set_swapped(20, 0)
        vpns = [vpn for vpn, _ in pt.present_entries()]
        assert vpns == [10, 30]

    def test_entries_in_range(self):
        pt = PageTable()
        for vpn in (5, 10, 15, 20):
            pt.set_mapping(vpn, vpn, True)
        got = [vpn for vpn, _ in pt.entries_in(10, 20)]
        assert got == [10, 15]

    def test_resident_count(self):
        pt = PageTable()
        pt.set_mapping(1, 1, True)
        pt.set_mapping(2, 2, True)
        pt.set_swapped(3, 0)
        assert pt.resident_count() == 2
        assert len(pt) == 3


class TestSortedKeyCache:
    """Walks reuse a sorted-key cache; mutation must invalidate it."""

    def test_insert_after_walk_is_visible(self):
        pt = PageTable()
        pt.set_mapping(5, frame=1, writable=True)
        assert [vpn for vpn, _ in pt.present_entries()] == [5]
        pt.set_mapping(3, frame=2, writable=True)   # out of order
        assert [vpn for vpn, _ in pt.present_entries()] == [3, 5]

    def test_clear_after_walk_is_visible(self):
        pt = PageTable()
        for vpn in (8, 2, 5):
            pt.set_mapping(vpn, frame=vpn, writable=False)
        assert [v for v, _ in pt.entries_in(0, 10)] == [2, 5, 8]
        pt.clear(5)
        assert [v for v, _ in pt.entries_in(0, 10)] == [2, 8]

    def test_clear_of_missing_vpn_keeps_cache(self):
        pt = PageTable()
        pt.set_mapping(1, frame=1, writable=False)
        list(pt.present_entries())
        pt.clear(99)    # no entry — must not corrupt anything
        assert [v for v, _ in pt.present_entries()] == [1]

    def test_ensure_existing_entry_keeps_cache_valid(self):
        pt = PageTable()
        pt.set_mapping(4, frame=1, writable=False)
        list(pt.present_entries())
        pt.set_mapping(4, frame=2, writable=True)   # same vpn, re-map
        assert [v for v, _ in pt.present_entries()] == [4]
        assert pt.lookup(4).frame == 2

    def test_entries_in_bisects_range(self):
        pt = PageTable()
        for vpn in (100, 3, 50, 7):
            pt.ensure(vpn)
        assert [v for v, _ in pt.entries_in(5, 60)] == [7, 50]
        assert list(pt.entries_in(101, 200)) == []
