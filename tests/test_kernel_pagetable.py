"""Tests for page tables and PTEs."""

from repro.kernel.pagetable import PTE, PageTable


class TestPTE:
    def test_default_not_present(self):
        pte = PTE()
        assert not pte.present
        assert not pte.swapped

    def test_swapped_state(self):
        pte = PTE(present=False, swap_slot=5)
        assert pte.swapped
        pte2 = PTE(present=True, frame=3, swap_slot=5)
        assert not pte2.swapped  # present wins


class TestPageTable:
    def test_lookup_missing(self):
        assert PageTable().lookup(7) is None

    def test_set_mapping(self):
        pt = PageTable()
        pte = pt.set_mapping(10, frame=3, writable=True)
        assert pte.present and pte.frame == 3 and pte.writable
        assert pte.accessed
        assert pt.lookup(10) is pte

    def test_set_swapped_clears_frame(self):
        pt = PageTable()
        pt.set_mapping(10, frame=3, writable=True)
        pte = pt.set_swapped(10, slot=42)
        assert not pte.present
        assert pte.frame == -1
        assert pte.swap_slot == 42
        assert pte.swapped

    def test_remapping_clears_swap_slot(self):
        pt = PageTable()
        pt.set_swapped(10, slot=42)
        pte = pt.set_mapping(10, frame=5, writable=False)
        assert pte.present and pte.swap_slot == -1

    def test_clear(self):
        pt = PageTable()
        pt.set_mapping(10, frame=3, writable=True)
        pt.clear(10)
        assert pt.lookup(10) is None
        pt.clear(10)  # idempotent

    def test_present_entries_sorted(self):
        pt = PageTable()
        pt.set_mapping(30, 1, True)
        pt.set_mapping(10, 2, True)
        pt.set_swapped(20, 0)
        vpns = [vpn for vpn, _ in pt.present_entries()]
        assert vpns == [10, 30]

    def test_entries_in_range(self):
        pt = PageTable()
        for vpn in (5, 10, 15, 20):
            pt.set_mapping(vpn, vpn, True)
        got = [vpn for vpn, _ in pt.entries_in(10, 20)]
        assert got == [10, 15]

    def test_resident_count(self):
        pt = PageTable()
        pt.set_mapping(1, 1, True)
        pt.set_mapping(2, 2, True)
        pt.set_swapped(3, 0)
        assert pt.resident_count() == 2
        assert len(pt) == 3
