"""Property-based MPI matching test: random interleavings of isend and
irecv (with wildcards) are verified against a reference matching model.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.physmem import PAGE_SIZE
from repro.mpi import ANY_SOURCE, ANY_TAG, MpiWorld


def _reference_match(sends, recv):
    """First send (in order) matching the recv's criteria; returns its
    index or None.  Mirrors MPI's matching rule."""
    for i, (src, tag, _) in enumerate(sends):
        if (recv[0] in (ANY_SOURCE, src)
                and recv[1] in (ANY_TAG, tag)):
            return i
    return None


# One shared world: building clusters is costly; state is reset by
# using disjoint tags per example via the example counter.
_WORLD = None
_BUFS = None
_COUNTER = [0]


def get_world():
    global _WORLD, _BUFS
    if _WORLD is None:
        _WORLD = MpiWorld(3, num_frames=4096, seed=0)
        # zero-cost model keeps the property test fast
        _BUFS = []
        for r in _WORLD.ranks:
            va = r.task.mmap(64)
            r.task.touch_pages(va, 64)
            _BUFS.append(va)
    return _WORLD, _BUFS


@st.composite
def scenario(draw):
    """A batch of sends from ranks 0/2 to rank 1, plus recv criteria."""
    n_msgs = draw(st.integers(1, 6))
    sends = []
    for k in range(n_msgs):
        src = draw(st.sampled_from([0, 2]))
        tag = draw(st.integers(0, 3))
        size = draw(st.integers(1, 200))
        sends.append((src, tag, size))
    recvs = []
    for _ in range(n_msgs):
        src = draw(st.sampled_from([0, 2, ANY_SOURCE]))
        tag = draw(st.sampled_from([0, 1, 2, 3, ANY_TAG]))
        recvs.append((src, tag))
    return sends, recvs


@given(scenario())
@settings(max_examples=40, deadline=None)
def test_matching_agrees_with_reference(sc):
    sends, recvs = sc
    world, bufs = get_world()
    r1 = world.rank(1)
    assert r1.unexpected_count == 0 and r1.posted_count == 0

    base = _COUNTER[0] * 16
    _COUNTER[0] += 1
    tag_of = lambda t: base % (2**18) + t   # distinct tag space per run

    # Fire all sends first (they land in the unexpected queue).
    payloads = []
    for k, (src, tag, size) in enumerate(sends):
        data = bytes([k + 1]) * size
        world.rank(src).task.write(bufs[src], data)
        world.rank(src).isend(1, tag_of(tag), bufs[src], size)
        payloads.append(data)

    # Reference model over the same arrival order.
    model = [(src, tag, k) for k, (src, tag, _) in enumerate(sends)]

    matched_any = False
    for src, tag in recvs:
        expect = _reference_match(
            [(s, t, k) for s, t, k in model],
            (src, tag))
        if expect is None:
            continue   # would deadlock; reference says skip it too
        s, t, k = model.pop(expect)
        st_ = r1.recv(src, tag_of(t) if tag != ANY_TAG else ANY_TAG,
                      bufs[1], 64 * PAGE_SIZE)
        assert st_.source == s
        assert st_.nbytes == len(payloads[k])
        assert r1.task.read(bufs[1], st_.nbytes) == payloads[k]
        matched_any = True

    # Drain leftovers so the shared world stays clean.
    while r1.unexpected_count:
        r1.recv(ANY_SOURCE, ANY_TAG, bufs[1], 64 * PAGE_SIZE)
    assert r1.posted_count == 0
