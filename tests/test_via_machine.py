"""Tests for the Machine/Cluster facades and connected_pair helper."""

import pytest

from repro.errors import ViaConnectionError
from repro.sim.costs import CostModel
from repro.via.machine import Cluster, Machine, connected_pair
from repro.via.constants import ReliabilityLevel, ViState


class TestMachine:
    def test_defaults(self):
        m = Machine()
        assert m.backend.name == "kiobuf"
        assert m.nic.name == "m0.nic0"
        assert m.nic.fabric is m.fabric

    def test_backend_by_name_and_instance(self):
        from repro.via.locking import make_backend
        assert Machine(backend="mlock").backend.name == "mlock"
        be = make_backend("refcount")
        assert Machine(backend=be).backend is be

    def test_spawn_and_user_agent(self):
        m = Machine()
        t = m.spawn("proc", uid=42)
        assert t.uid == 42
        ua = m.user_agent(t)
        assert ua.task is t
        assert ua.nic is m.nic

    def test_custom_cost_model_propagates(self):
        costs = CostModel().scaled(syscall_ns=12345)
        m = Machine(costs=costs)
        assert m.kernel.costs.syscall_ns == 12345


class TestCluster:
    def test_shared_clock_and_fabric(self):
        c = Cluster(3)
        assert len(c) == 3
        clocks = {id(m.kernel.clock) for m in c.machines}
        assert len(clocks) == 1
        assert all(m.fabric is c.fabric for m in c.machines)
        assert len(c.fabric.nics) == 3

    def test_distinct_backend_instances_per_machine(self):
        c = Cluster(2, backend="mlock")
        assert c[0].backend is not c[1].backend
        assert c[0].backend.name == "mlock"

    def test_indexing(self):
        c = Cluster(2)
        assert c[0].name == "m0"
        assert c[1].name == "m1"

    def test_nic_names_unique_on_fabric(self):
        c = Cluster(2)
        with pytest.raises(ViaConnectionError):
            c.fabric.attach(c[0].nic)


class TestConnectedPair:
    def test_returns_connected_vis(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair()
        assert vi_s.state == ViState.CONNECTED
        assert vi_r.state == ViState.CONNECTED
        assert vi_s.peer == (cluster[1].nic.name, vi_r.vi_id)

    def test_reliability_passthrough(self):
        _, _, _, vi_s, vi_r = connected_pair(
            reliability=ReliabilityLevel.UNRELIABLE)
        assert vi_s.reliability == ReliabilityLevel.UNRELIABLE
        assert vi_r.reliability == ReliabilityLevel.UNRELIABLE

    def test_backend_passthrough(self):
        cluster, *_ = connected_pair("pageflags")
        assert cluster[0].backend.name == "pageflags"
