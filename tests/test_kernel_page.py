"""Tests for page descriptors and the page map."""

import pytest

from repro.errors import OutOfMemory, PageAccountingError
from repro.kernel.flags import PG_LOCKED, PG_REFERENCED, PG_RESERVED
from repro.kernel.page import PageDescriptor
from repro.kernel.pagemap import PageMap
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.trace import Trace


class TestPageDescriptor:
    def test_initially_free(self):
        pd = PageDescriptor(frame=0)
        assert pd.free
        assert not pd.pinned

    def test_flag_helpers(self):
        pd = PageDescriptor(frame=0)
        pd.set_flag(PG_LOCKED)
        assert pd.locked
        pd.set_flag(PG_RESERVED)
        assert pd.reserved and pd.locked
        pd.clear_flag(PG_LOCKED)
        assert not pd.locked and pd.reserved
        pd.set_flag(PG_REFERENCED)
        assert pd.referenced

    def test_get_put(self):
        pd = PageDescriptor(frame=0)
        pd.get()
        pd.get()
        assert pd.count == 2
        assert pd.put() == 1
        assert pd.put() == 0

    def test_put_underflow(self):
        pd = PageDescriptor(frame=0)
        with pytest.raises(PageAccountingError):
            pd.put()

    def test_pin_unpin(self):
        pd = PageDescriptor(frame=0)
        pd.pin()
        pd.pin()
        assert pd.pinned and pd.pin_count == 2
        pd.unpin()
        pd.unpin()
        assert not pd.pinned

    def test_unpin_underflow(self):
        pd = PageDescriptor(frame=0)
        with pytest.raises(PageAccountingError):
            pd.unpin()


def make_map(n: int = 8, reserved: int = 2) -> PageMap:
    clock = SimClock()
    return PageMap(n, clock, CostModel(), Trace(clock), reserved_frames=reserved)


class TestPageMap:
    def test_reserved_frames_marked_and_unallocatable(self):
        pm = make_map(8, reserved=2)
        assert pm.page(0).reserved and pm.page(1).reserved
        assert pm.free_count == 6
        seen = {pm.alloc().frame for _ in range(6)}
        assert 0 not in seen and 1 not in seen

    def test_alloc_sets_fresh_state(self):
        pm = make_map()
        pd = pm.alloc(tag="t")
        assert pd.count == 1
        assert pd.flags == 0
        assert pd.pin_count == 0
        assert pd.tag == "t"

    def test_alloc_exhaustion(self):
        pm = make_map(4, reserved=0)
        for _ in range(4):
            pm.alloc()
        with pytest.raises(OutOfMemory):
            pm.alloc()

    def test_put_frees_only_at_zero(self):
        pm = make_map()
        pd = pm.alloc()
        pm.get_page(pd.frame)
        assert pm.put_page(pd.frame) is False   # still referenced
        assert pm.put_page(pd.frame) is True    # now freed
        assert pm.free_count == 6

    def test_get_page_on_free_frame_rejected(self):
        pm = make_map()
        pd = pm.alloc()
        pm.put_page(pd.frame)
        with pytest.raises(PageAccountingError):
            pm.get_page(pd.frame)

    def test_freeing_pinned_frame_is_accounting_error(self):
        pm = make_map()
        pd = pm.alloc()
        pd.pin()
        with pytest.raises(PageAccountingError):
            pm.put_page(pd.frame)

    def test_free_list_invariant_check(self):
        pm = make_map()
        pm.check_free_list()   # healthy map passes
        pd = pm.alloc()
        pm.put_page(pd.frame)
        pm.check_free_list()

    def test_alloc_reuses_freed_frames(self):
        pm = make_map(4, reserved=0)
        a = pm.alloc().frame
        pm.put_page(a)
        frames = {pm.alloc().frame for _ in range(4)}
        assert a in frames

    def test_orphan_query(self):
        pm = make_map()
        pd = pm.alloc()
        pm.get_page(pd.frame)        # e.g. a driver reference
        pm.put_page(pd.frame)        # "swap_out" drops the mapping ref
        pd.mapping = None
        pd.tag = "orphan"
        assert pd in pm.orphans()
