"""Tests for the simulated clock and cost model."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.costs import FREE, CostModel


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_charge_advances(self):
        c = SimClock()
        c.charge(100, "a")
        c.charge(50, "b")
        assert c.now_ns == 150

    def test_now_us(self):
        c = SimClock()
        c.charge(2500)
        assert c.now_us == pytest.approx(2.5)

    def test_category_totals(self):
        c = SimClock()
        c.charge(100, "dma")
        c.charge(40, "dma")
        c.charge(7, "syscall")
        assert c.category_ns("dma") == 140
        assert c.category_ns("syscall") == 7
        assert c.category_ns("never") == 0
        assert c.categories() == {"dma": 140, "syscall": 7}

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge(-1)

    def test_zero_charge_records_nothing(self):
        c = SimClock()
        c.charge(0, "x")
        assert c.now_ns == 0
        assert c.categories() == {}

    def test_frozen_discards_charges(self):
        c = SimClock()
        with c.frozen():
            c.charge(1000, "setup")
        assert c.now_ns == 0
        c.charge(5, "real")
        assert c.now_ns == 5

    def test_frozen_nests(self):
        c = SimClock()
        with c.frozen():
            with c.frozen():
                c.charge(1)
            c.charge(2)
        c.charge(3)
        assert c.now_ns == 3

    def test_measure_span(self):
        c = SimClock()
        c.charge(10)
        with c.measure() as span:
            c.charge(25)
        c.charge(99)
        assert span.elapsed_ns == 25
        assert span.elapsed_us == pytest.approx(0.025)

    def test_reset(self):
        c = SimClock()
        c.charge(10, "x")
        c.reset()
        assert c.now_ns == 0
        assert c.categories() == {}


class TestCostModel:
    def test_memcpy_scales_with_bytes(self):
        m = CostModel()
        assert m.memcpy_ns(0) == 0
        assert m.memcpy_ns(1000) == int(m.memcpy_per_byte_ns * 1000)

    def test_dma_scales_with_bytes(self):
        m = CostModel()
        assert m.dma_ns(10_000) == int(m.dma_per_byte_ns * 10_000)

    def test_major_fault_dominated_by_disk(self):
        m = CostModel()
        assert m.major_fault_ns() > 100 * m.minor_fault_ns

    def test_scaled_overrides(self):
        m = CostModel().scaled(syscall_ns=0, dma_per_byte_ns=1.0)
        assert m.syscall_ns == 0
        assert m.dma_ns(5) == 5
        # other fields untouched
        assert m.tpt_update_ns == CostModel().tpt_update_ns

    def test_free_model_charges_nothing(self):
        assert FREE.memcpy_ns(10**6) == 0
        assert FREE.major_fault_ns() == 0
        assert FREE.syscall_ns == 0
