"""Golden tests for the vector-clock happens-before race engine.

The feed-mode tests hand-author event streams with explicit ``actor``
fields — each distinct actor is its own context, concurrent unless a
sync edge orders it — and pin down every race class, every sync edge,
and the directional/windowed conflict rules one at a time.  The
live-mode tests arm a real kernel and prove the execution-context
model: the same two calendar callbacks are race-clean in the protocol
order and a reported race in the reversed order.
"""

from __future__ import annotations

import pytest

# Every test here manages its own detector (and provokes races on
# purpose); suite-level arming would double-report and fail teardown.
pytestmark = [pytest.mark.san_suppress, pytest.mark.race_suppress]

from repro.analysis import events as ev
from repro.analysis.races import RACE_KINDS, RaceDetector, RaceViolation
from repro.errors import RaceDetected
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.kernel import Kernel


def detect(events, **kwargs) -> RaceDetector:
    det = RaceDetector(**kwargs)
    det.feed(events)
    return det


def kinds(det: RaceDetector) -> list[str]:
    return [r.race for r in det.races]


# ------------------------------------------------------------- feed mode

class TestDirectionalConflicts:
    def test_unpin_then_dma_races(self):
        det = detect([
            (ev.PIN, {"frames": (7,), "actor": "a"}),
            (ev.UNPIN, {"frames": (7,), "actor": "a"}),
            (ev.DMA_BEGIN, {"frames": (7,), "actor": "b"}),
        ])
        assert kinds(det) == ["unpin-vs-dma"]

    def test_dma_then_unpin_window_open_races(self):
        det = detect([
            (ev.DMA_BEGIN, {"frames": (7,), "actor": "a"}),
            (ev.UNPIN, {"frames": (7,), "actor": "b"}),
        ])
        assert kinds(det) == ["unpin-vs-dma"]

    def test_dma_then_unpin_window_closed_is_teardown(self):
        det = detect([
            (ev.DMA_BEGIN, {"frames": (7,), "actor": "a"}),
            (ev.DMA_END, {"frames": (7,), "actor": "a"}),
            (ev.UNPIN, {"frames": (7,), "actor": "b"}),
        ])
        assert det.races == []

    def test_swap_then_dma_races(self):
        det = detect([
            (ev.SWAP_OUT, {"frame": 3, "actor": "reclaim"}),
            (ev.DMA_BEGIN, {"frames": (3,), "actor": "nic"}),
        ])
        assert kinds(det) == ["swap-vs-dma"]

    def test_invalidate_then_translate_races(self):
        det = detect([
            (ev.TPT_PAGE_INVALIDATE, {"handle": 5, "actor": "a"}),
            (ev.TPT_TRANSLATE, {"handle": 5, "actor": "b"}),
        ])
        assert kinds(det) == ["invalidate-vs-translate"]

    def test_translate_then_invalidate_is_teardown(self):
        det = detect([
            (ev.TPT_TRANSLATE, {"handle": 5, "actor": "a"}),
            (ev.TPT_INVALIDATE, {"handle": 5, "actor": "b"}),
        ])
        assert det.races == []

    def test_service_then_evict_races(self):
        det = detect([
            (ev.FAULT_SERVICE, {"handle": 5, "frames": (9,), "actor": "a"}),
            (ev.ODP_EVICT, {"frame": 9, "actor": "b"}),
        ])
        assert kinds(det) == ["fault-service-vs-evict"]

    def test_evict_then_service_is_refault(self):
        det = detect([
            (ev.ODP_EVICT, {"frame": 9, "actor": "a"}),
            (ev.FAULT_SERVICE, {"handle": 5, "frames": (9,), "actor": "b"}),
        ])
        assert det.races == []

    def test_concurrent_unpin_unpin_is_pin_ledger(self):
        det = detect([
            (ev.UNPIN, {"frames": (2,), "actor": "a"}),
            (ev.UNPIN, {"frames": (2,), "actor": "b"}),
        ])
        assert kinds(det) == ["pin-ledger"]

    def test_pin_then_unpin_concurrent_is_pin_ledger(self):
        det = detect([
            (ev.PIN, {"frames": (2,), "actor": "a"}),
            (ev.UNPIN, {"frames": (2,), "actor": "b"}),
        ])
        assert kinds(det) == ["pin-ledger"]

    def test_same_actor_is_always_ordered(self):
        det = detect([
            (ev.UNPIN, {"frames": (2,), "actor": "a"}),
            (ev.DMA_BEGIN, {"frames": (2,), "actor": "a"}),
            (ev.PIN, {"frames": (2,), "actor": "a"}),
            (ev.UNPIN, {"frames": (2,), "actor": "a"}),
        ])
        assert det.races == []

    def test_distinct_locations_never_conflict(self):
        det = detect([
            (ev.UNPIN, {"frames": (1,), "actor": "a"}),
            (ev.DMA_BEGIN, {"frames": (2,), "actor": "b"}),
            (ev.TPT_PAGE_INVALIDATE, {"handle": 1, "actor": "a"}),
            (ev.TPT_TRANSLATE, {"handle": 2, "actor": "b"}),
        ])
        assert det.races == []


class TestSyncEdges:
    def test_doorbell_completion_orders_contexts(self):
        det = detect([
            (ev.PIN, {"frames": (4,), "actor": "app"}),
            (ev.DMA_BEGIN, {"frames": (4,), "actor": "nic"}),
            (ev.DMA_END, {"frames": (4,), "actor": "nic"}),
            (ev.DOORBELL, {"token": 1, "actor": "nic"}),
            (ev.COMPLETION, {"token": 1, "actor": "app"}),
            (ev.UNPIN, {"frames": (4,), "actor": "app"}),
        ])
        assert det.races == []

    def test_unpin_without_completion_races_open_window(self):
        det = detect([
            (ev.PIN, {"frames": (4,), "actor": "app"}),
            (ev.DMA_BEGIN, {"frames": (4,), "actor": "nic"}),
            (ev.UNPIN, {"frames": (4,), "actor": "app"}),
        ])
        assert kinds(det) == ["unpin-vs-dma"]

    def test_completion_of_other_token_does_not_order(self):
        det = detect([
            (ev.PIN, {"frames": (4,), "actor": "app"}),
            (ev.UNPIN, {"frames": (4,), "actor": "app"}),
            (ev.DOORBELL, {"token": 1, "actor": "app"}),
            (ev.COMPLETION, {"token": 2, "actor": "nic"}),
            (ev.DMA_BEGIN, {"frames": (4,), "actor": "nic"}),
        ])
        assert kinds(det) == ["unpin-vs-dma"]

    def test_fault_suspend_service_resume_chain(self):
        # suspend releases; service acquires it and releases its own
        # work; resume acquires the service — the full ODP protocol is
        # one happens-before chain across three contexts.
        det = detect([
            (ev.DMA_SUSPEND, {"handle": 5, "token": 9, "actor": "nic"}),
            (ev.FAULT_SERVICE, {"handle": 5, "token": 9, "frames": (6,),
                                "actor": "agent"}),
            (ev.DMA_RESUME, {"handle": 5, "token": 9, "actor": "nic"}),
            (ev.ODP_EVICT, {"frame": 6, "actor": "agent"}),
        ])
        assert det.races == []

    def test_fence_orders_eviction_before_service(self):
        det = detect([
            (ev.FAULT_SERVICE, {"handle": 5, "frames": (6,),
                                "actor": "agent"}),
            (ev.FENCE, {"handle": 5, "frame": 6, "actor": "agent"}),
            (ev.ODP_EVICT, {"frame": 6, "actor": "evictor"}),
        ])
        # service then evict by another actor *would* race, but here
        # there is no edge from agent to evictor, so it still does:
        assert kinds(det) == ["fault-service-vs-evict"]
        det = detect([
            (ev.FENCE, {"handle": 5, "frame": 6, "actor": "evictor"}),
            (ev.ODP_EVICT, {"frame": 6, "actor": "evictor"}),
            (ev.FAULT_SERVICE, {"handle": 5, "frames": (6,),
                                "actor": "agent"}),
            (ev.ODP_EVICT, {"frame": 6, "actor": "evictor2"}),
        ])
        # ...whereas a service that acquired the fence is ordered after
        # the evictor; the second evictor saw nothing and still races.
        assert kinds(det) == ["fault-service-vs-evict"]
        assert det.races[0].current_actor == "evictor2"

    def test_feed_actor_fallbacks(self):
        det = detect([
            (ev.PIN, {"frames": (1,), "pid": 42}),
            (ev.UNPIN, {"frames": (1,), "pid": 42}),
            (ev.DMA_BEGIN, {"frames": (1,), "engine": "dma0"}),
        ])
        assert kinds(det) == ["unpin-vs-dma"]
        assert det.races[0].prior_actor == "task:42"
        assert det.races[0].current_actor == "dma0"


class TestReporting:
    RACY = [
        (ev.PIN, {"frames": (7,), "actor": "a"}),
        (ev.UNPIN, {"frames": (7,), "actor": "a"}),
        (ev.DMA_BEGIN, {"frames": (7,), "actor": "b"}),
    ]

    def test_violation_carries_both_trails(self):
        det = detect(self.RACY)
        race = det.races[0]
        assert isinstance(race, RaceViolation)
        assert race.location == ("frame", 7)
        assert race.prior.kind == ev.UNPIN
        assert race.current.kind == ev.DMA_BEGIN
        assert [e.kind for e in race.prior_trail] == [ev.PIN, ev.UNPIN]
        assert [e.kind for e in race.current_trail] == [ev.DMA_BEGIN]
        text = race.format()
        assert "unpin-vs-dma" in text
        assert "prior access by a" in text
        assert "current access by b" in text
        assert "=>" in text

    def test_strict_raises_at_the_closing_access(self):
        det = RaceDetector(strict=True)
        with pytest.raises(RaceDetected) as exc_info:
            det.feed(self.RACY)
        assert exc_info.value.violation.race == "unpin-vs-dma"

    def test_duplicate_pairs_report_once(self):
        det = detect(self.RACY + [
            (ev.DMA_BEGIN, {"frames": (7,), "actor": "b"}),
        ])
        assert kinds(det) == ["unpin-vs-dma"]

    def test_counts_cover_all_kinds(self):
        det = detect(self.RACY)
        assert set(det.counts) == set(RACE_KINDS)
        assert det.counts["unpin-vs-dma"] == 1
        assert det.counts["swap-vs-dma"] == 0

    def test_suppress_and_unsuppress(self):
        det = RaceDetector(suppress=("unpin-vs-dma",))
        det.feed(self.RACY)
        assert det.races == []
        det.unsuppress("unpin-vs-dma")
        det.feed([(ev.DMA_BEGIN, {"frames": (7,), "actor": "c"})])
        assert kinds(det) == ["unpin-vs-dma"]

    def test_suppress_checks_spelling(self):
        with pytest.raises(ValueError, match="unknown race kind"):
            RaceDetector(suppress=("unpin_vs_dma",))


# ------------------------------------------------------------- live mode

def _pinned_kernel() -> tuple[Kernel, int, int]:
    kernel = Kernel(num_frames=64, seed=0)
    task = kernel.create_task(name="app")
    va = task.mmap(1)
    task.write(va, b"x")
    frame = kernel.pin_user_page(task, va // PAGE_SIZE)
    return kernel, frame, task.pid


class TestLiveCalendarContexts:
    def test_protocol_order_is_clean(self):
        kernel, frame, pid = _pinned_kernel()
        det = RaceDetector().arm(kernel)
        kernel.clock.schedule_after(
            100, lambda now: kernel.dma.read(frame * PAGE_SIZE, 16),
            name="dma")
        kernel.clock.schedule_after(
            100, lambda now: kernel.unpin_user_page(frame, pid),
            name="unpin")
        kernel.clock.charge(100, "test")
        det.disarm()
        assert det.races == []
        assert det.events_seen > 0

    def test_reversed_order_races(self):
        kernel, frame, pid = _pinned_kernel()
        det = RaceDetector().arm(kernel)
        kernel.clock.schedule_after(
            100, lambda now: kernel.unpin_user_page(frame, pid),
            name="unpin")
        kernel.clock.schedule_after(
            100, lambda now: kernel.dma.read(frame * PAGE_SIZE, 16),
            name="dma")
        kernel.clock.charge(100, "test")
        det.disarm()
        assert kinds(det) == ["unpin-vs-dma"]
        race = det.races[0]
        assert "ev" in race.prior_actor and "unpin" in race.prior_actor
        assert "dma" in race.current_actor

    def test_sequential_deadlines_are_ordered(self):
        kernel, frame, pid = _pinned_kernel()
        det = RaceDetector().arm(kernel)
        kernel.clock.schedule_after(
            100, lambda now: kernel.unpin_user_page(frame, pid),
            name="unpin")
        kernel.clock.schedule_after(
            200, lambda now: kernel.dma.read(frame * PAGE_SIZE, 16),
            name="dma")
        kernel.clock.charge(200, "test")
        det.disarm()
        # different deadlines: the unpin firing happens-before the DMA
        # firing through the completed-frontier join — teardown order,
        # not a race (the sanitizer owns flagging the stale DMA itself).
        assert det.races == []

    def test_main_is_ordered_after_callbacks(self):
        kernel, frame, pid = _pinned_kernel()
        det = RaceDetector().arm(kernel)
        kernel.clock.schedule_after(
            100, lambda now: kernel.unpin_user_page(frame, pid),
            name="unpin")
        kernel.clock.charge(100, "test")
        kernel.dma.read(frame * PAGE_SIZE, 16)   # main, after the fold
        det.disarm()
        assert det.races == []

    def test_live_transfer_emits_doorbell_and_completion(self):
        from repro.via.descriptor import Descriptor
        from repro.via.machine import connected_pair

        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        cq = ua_r.create_cq()
        vi_r2 = ua_r.create_vi(recv_cq=cq)
        vi_s2 = ua_s.create_vi()
        cluster.connect(vi_s2, cluster[0], vi_r2, cluster[1])
        det = RaceDetector().arm(cluster)
        seen: list = []
        unsubs = [m.kernel.events.subscribe(seen.append)
                  for m in cluster.machines]

        va = ua_r.task.mmap(1)
        reg_r = ua_r.register_mem(va, PAGE_SIZE)
        ua_r.post_recv(vi_r2, Descriptor.recv([ua_r.segment(reg_r)]))
        va_s = ua_s.task.mmap(1)
        ua_s.task.write(va_s, b"hello")
        reg_s = ua_s.register_mem(va_s, PAGE_SIZE)
        ua_s.post_send(vi_s2, Descriptor.send([ua_s.segment(reg_s)]))
        completion = cq.poll()
        assert completion is not None

        for unsub in unsubs:
            unsub()
        det.disarm()
        assert det.races == []
        # tokens count per NIC, so key by (host, token): the posting
        # doorbell and the observing completion share both
        doorbells = {(e.host, e.get("token"))
                     for e in seen if e.kind == ev.DOORBELL}
        completions = [e for e in seen if e.kind == ev.COMPLETION]
        assert len(doorbells) >= 2          # the recv and the send post
        assert completions and all(
            (c.host, c.get("token")) in doorbells for c in completions)

    def test_dispatch_groups_record_ties_and_locations(self):
        kernel, frame, pid = _pinned_kernel()
        det = RaceDetector().arm(kernel)
        kernel.clock.schedule_after(
            100, lambda now: kernel.dma.read(frame * PAGE_SIZE, 16),
            name="dma")
        kernel.clock.schedule_after(
            100, lambda now: kernel.unpin_user_page(frame, pid),
            name="unpin")
        kernel.clock.schedule_after(
            300, lambda now: None, name="lone")
        kernel.clock.charge(300, "test")
        det.disarm()
        groups = det.dispatch_groups()
        assert len(groups) == 1                  # lone event: no tie
        _deadline, members = groups[0]
        assert len(members) == 2
        assert all(("frame", frame) in locs for _seq, locs in members)
