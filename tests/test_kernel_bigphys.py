"""Tests for the Bigphysarea reservation and its locking backend."""

import pytest

from repro.errors import InvalidArgument, OutOfMemory
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.kernel.bigphys import BigPhysArea
from repro.via.locking.bigphys import BigphysLocking


@pytest.fixture
def area(kernel):
    return BigPhysArea(kernel, 32)


class TestReservation:
    def test_reserves_frames_at_boot(self, kernel, area):
        assert area.total_pages == 32
        for frame in area.frames:
            pd = kernel.pagemap.page(frame)
            assert pd.reserved
            assert pd.tag == "bigphysarea"

    def test_reservation_removes_frames_from_general_use(self, kernel):
        free0 = kernel.free_pages
        BigPhysArea(kernel, 32)
        assert kernel.free_pages == free0 - 32

    def test_oversized_reservation_rejected(self, kernel):
        with pytest.raises(OutOfMemory):
            BigPhysArea(kernel, kernel.pagemap.num_frames)

    def test_wastes_memory_even_when_unused(self):
        """The documented drawback: the reservation shrinks everyone
        else's memory whether or not it is exported later — a working
        set that fits comfortably without the reservation is forced to
        swap with it."""
        from repro.kernel.kernel import Kernel
        workload = 40
        without = Kernel(num_frames=64, swap_slots=1024)
        t = without.create_task()
        va = t.mmap(workload)
        t.touch_pages(va, workload)
        assert without.swap.writes == 0          # fits in RAM

        with_resv = Kernel(num_frames=64, swap_slots=1024)
        BigPhysArea(with_resv, 30)               # half of RAM reserved
        t2 = with_resv.create_task()
        va2 = t2.mmap(workload)
        t2.touch_pages(va2, workload)            # same workload...
        assert with_resv.swap.writes > 0         # ...now thrashes


class TestSpecialMalloc:
    def test_alloc_maps_resident_reserved_pages(self, kernel, area):
        t = kernel.create_task()
        va = area.alloc(t, 4)
        assert t.resident_pages() == 4
        t.write(va, b"comm buffer")
        assert t.read(va, 11) == b"comm buffer"
        assert area.free_pages == 28

    def test_pages_never_swapped(self, kernel, area):
        t = kernel.create_task()
        va = area.alloc(t, 8)
        t.write(va, b"pinned by reservation")
        frames = t.physical_pages(va, 8)
        paging.swap_out(kernel, kernel.pagemap.num_frames)
        assert t.physical_pages(va, 8) == frames

    def test_free_returns_to_pool(self, kernel, area):
        t = kernel.create_task()
        va = area.alloc(t, 4)
        area.free(t, va)
        assert area.free_pages == 32
        from repro.errors import SegmentationFault
        with pytest.raises(SegmentationFault):
            t.read(va, 1)

    def test_pool_exhaustion(self, kernel, area):
        t = kernel.create_task()
        area.alloc(t, 32)
        with pytest.raises(OutOfMemory):
            area.alloc(t, 1)

    def test_free_unknown_grant_rejected(self, kernel, area):
        t = kernel.create_task()
        with pytest.raises(InvalidArgument):
            area.free(t, 0x1234000)

    def test_accounting_invariants_hold(self, kernel, area):
        from repro.core.audit import audit_kernel_invariants
        t = kernel.create_task()
        va = area.alloc(t, 4)
        audit_kernel_invariants(kernel)
        area.free(t, va)
        audit_kernel_invariants(kernel)


class TestBigphysBackend:
    def test_accepts_bigphys_buffers(self, kernel, area):
        be = BigphysLocking(area)
        t = kernel.create_task()
        va = area.alloc(t, 4)
        res = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        assert res.frames == t.physical_pages(va, 4)
        be.unlock(kernel, res.cookie)

    def test_rejects_ordinary_memory(self, kernel, area):
        """The architecture-independence violation: plain mmap'd user
        buffers cannot be registered."""
        be = BigphysLocking(area)
        t = kernel.create_task()
        va = t.mmap(4)
        t.touch_pages(va, 4)
        with pytest.raises(InvalidArgument):
            be.lock(kernel, t, va, 4 * PAGE_SIZE)

    def test_reliable_under_pressure(self, kernel, area):
        be = BigphysLocking(area)
        t = kernel.create_task()
        va = area.alloc(t, 8)
        res = be.lock(kernel, t, va, 8 * PAGE_SIZE)
        paging.swap_out(kernel, kernel.pagemap.num_frames)
        assert t.physical_pages(va, 8) == res.frames

    def test_multiple_registrations_trivially_safe(self, kernel, area):
        be = BigphysLocking(area)
        t = kernel.create_task()
        va = area.alloc(t, 4)
        r1 = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        r2 = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        be.unlock(kernel, r1.cookie)
        paging.swap_out(kernel, kernel.pagemap.num_frames)
        assert t.physical_pages(va, 4) == r2.frames
        be.unlock(kernel, r2.cookie)

    def test_capability_summary(self, area):
        caps = BigphysLocking(area).describe()
        assert caps["reliable"]
        assert caps["supports_multiple_registration"]
