"""Tests for VIs, doorbells, and completion queues."""

import pytest

from repro.errors import ViaConnectionError
from repro.via.constants import ReliabilityLevel, ViState
from repro.via.cq import Completion, CompletionQueue
from repro.via.descriptor import Descriptor
from repro.via.vi import Doorbell, VirtualInterface


class TestDoorbell:
    def test_owner_can_ring(self):
        db = Doorbell(1, "send", owner_pid=42)
        db.ring(42)
        assert db.rings == 1

    def test_foreign_pid_rejected(self):
        """Doorbell protection: the page is mapped into one process
        only — another pid cannot reach it."""
        db = Doorbell(1, "send", owner_pid=42)
        with pytest.raises(ViaConnectionError):
            db.ring(43)


class TestVirtualInterface:
    def test_initial_state(self):
        vi = VirtualInterface(1, owner_pid=10, prot_tag=0x100)
        assert vi.state == ViState.IDLE
        assert not vi.connected
        assert vi.send_doorbell.owner_pid == 10
        assert vi.reliability == ReliabilityLevel.RELIABLE_DELIVERY

    def test_require_connected(self):
        vi = VirtualInterface(1, owner_pid=10, prot_tag=0x100)
        with pytest.raises(ViaConnectionError):
            vi.require_connected()
        vi.state = ViState.CONNECTED
        vi.require_connected()

    def test_enter_error(self):
        vi = VirtualInterface(1, owner_pid=10, prot_tag=0x100)
        vi.state = ViState.CONNECTED
        vi.enter_error()
        assert vi.state == ViState.ERROR

    def test_completion_routing_without_cq(self):
        vi = VirtualInterface(1, owner_pid=10, prot_tag=0x100)
        d = Descriptor.send([])
        vi.complete_send(d)
        assert list(vi.send_done) == [d]

    def test_completion_routing_with_cq(self):
        cq = CompletionQueue()
        vi = VirtualInterface(1, owner_pid=10, prot_tag=0x100)
        vi.recv_cq = cq
        d = Descriptor.recv([])
        vi.complete_recv(d)
        assert not vi.recv_done
        comp = cq.poll()
        assert comp == Completion(1, "recv", d)


class TestCompletionQueue:
    def test_fifo_order(self):
        cq = CompletionQueue()
        a = Completion(1, "send", Descriptor.send([]))
        b = Completion(2, "recv", Descriptor.recv([]))
        cq.post(a)
        cq.post(b)
        assert cq.poll() is a
        assert cq.poll() is b
        assert cq.poll() is None

    def test_overflow_drops_and_counts(self):
        cq = CompletionQueue(depth=1)
        cq.post(Completion(1, "send", Descriptor.send([])))
        cq.post(Completion(1, "send", Descriptor.send([])))
        assert len(cq) == 1
        assert cq.overflows == 1
