"""The vectorized frame table: columnar state, incremental index sets,
and the fast audit paths they enable."""

import pytest

from repro.core.audit import audit_kernel_invariants, audit_pin_leaks
from repro.errors import PageAccountingError
from repro.kernel.pagemap import PageMap
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel


@pytest.fixture
def pm():
    return PageMap(64, SimClock(), CostModel(), reserved_frames=4)


class TestViewCompatibility:
    def test_views_are_identity_stable(self, pm):
        pd = pm.alloc("buf")
        assert pm.page(pd.frame) is pd
        assert pm.pages[pd.frame] is pd

    def test_view_writes_land_in_the_columns(self, pm):
        pd = pm.alloc("buf")
        pd.age = 3
        pd.cow_shares = 2
        pd.mapping = (7, 42)
        assert pm.table.ages[pd.frame] == 3
        assert pm.table.cow_shares[pd.frame] == 2
        assert pm.table.mappings[pd.frame] == (7, 42)

    def test_alloc_resets_every_column(self, pm):
        pd = pm.alloc("first")
        pd.age = 9
        pd.mapping = (1, 2)
        pd.cow_shares = 3
        frame = pd.frame
        pm.put_page(frame)
        pd2 = pm.alloc("second")
        assert pd2.frame == frame      # LIFO free list hands it back
        assert (pd2.count, pd2.age, pd2.cow_shares) == (1, 0, 0)
        assert pd2.mapping is None
        assert pd2.tag == "second"


class TestPinnedSet:
    def test_pin_unpin_maintains_the_set(self, pm):
        pd = pm.alloc()
        assert pm.table.pinned == set()
        pd.pin()
        pd.pin()
        assert pm.table.pinned == {pd.frame}
        pd.unpin()
        assert pm.table.pinned == {pd.frame}
        pd.unpin()
        assert pm.table.pinned == set()

    def test_pin_count_setter_maintains_the_set(self, pm):
        pd = pm.alloc()
        pd.pin_count = 5
        assert pm.pinned_frames() == [pd.frame]
        pd.pin_count = 0
        assert pm.pinned_frames() == []

    def test_pinned_frames_sorted(self, pm):
        frames = [pm.alloc() for _ in range(3)]
        for pd in frames:
            pd.pin()
        assert pm.pinned_frames() == sorted(pd.frame for pd in frames)


class TestOrphanCandidates:
    def test_tag_writes_maintain_the_candidate_set(self, pm):
        pd = pm.alloc("buf")
        assert pm.table.orphan_candidates == set()
        pd.tag = "orphan"
        assert pm.table.orphan_candidates == {pd.frame}
        pd.tag = ""
        assert pm.table.orphan_candidates == set()

    def test_orphans_query_filters_candidates(self, pm):
        orphan = pm.alloc()
        orphan.tag = "orphan"
        orphan.mapping = None
        mapped = pm.alloc()
        mapped.tag = "orphan"
        mapped.mapping = (1, 2)      # still mapped: not an orphan
        assert pm.orphans() == [orphan]
        assert pm.orphan_count() == 1

    def test_freed_frame_leaves_the_candidate_set(self, pm):
        pd = pm.alloc()
        pd.tag = "orphan"
        pm.put_page(pd.frame)
        assert pm.table.orphan_candidates == set()
        assert pm.orphans() == []


class TestFreeListAudit:
    def test_fast_and_full_paths_accept_a_clean_map(self, pm):
        pm.alloc()
        pm.check_free_list()
        pm.check_free_list(full_scan=True)

    def test_both_paths_catch_nonzero_count_on_free_frame(self, pm):
        frame = pm._free[-1]
        pm.table.counts[frame] = 1       # corrupt behind the map's back
        with pytest.raises(PageAccountingError, match="refcount"):
            pm.check_free_list()
        with pytest.raises(PageAccountingError, match="refcount"):
            pm.check_free_list(full_scan=True)

    def test_both_paths_catch_a_duplicate_free_entry(self, pm):
        pm._free.append(pm._free[-1])    # corrupt: same frame twice
        with pytest.raises(PageAccountingError):
            pm.check_free_list()
        with pytest.raises(PageAccountingError, match="twice"):
            pm.check_free_list(full_scan=True)


class TestFastAudits:
    def test_pin_leak_fast_path_matches_full_scan(self, kernel):
        pd = kernel.pagemap.alloc("leak")
        pd.pin()
        fast = audit_pin_leaks(kernel)
        full = audit_pin_leaks(kernel, full_scan=True)
        assert fast == full
        assert len(fast) == 1 and fast[0].frame == pd.frame
        pd.unpin()
        kernel.pagemap.put_page(pd.frame)
        assert audit_pin_leaks(kernel) == []

    def test_invariants_fast_path_catches_pinned_but_free(self, kernel):
        pd = kernel.pagemap.alloc()
        frame = pd.frame
        kernel.pagemap.table.counts[frame] = 0     # corrupt directly
        kernel.pagemap.table.set_pin_count(frame, 1)
        with pytest.raises(PageAccountingError, match="pinned"):
            audit_kernel_invariants(kernel)
        with pytest.raises(PageAccountingError, match="pinned"):
            audit_kernel_invariants(kernel, full_scan=True)
        kernel.pagemap.table.set_pin_count(frame, 0)
        kernel.pagemap.table.counts[frame] = 1
        kernel.pagemap.put_page(frame)

    def test_invariants_fast_path_catches_negative_counters(self, kernel):
        pd = kernel.pagemap.alloc()
        frame = pd.frame
        kernel.pagemap.table.counts[frame] = -1
        with pytest.raises(PageAccountingError, match="negative"):
            audit_kernel_invariants(kernel)
        with pytest.raises(PageAccountingError, match="negative"):
            audit_kernel_invariants(kernel, full_scan=True)
        kernel.pagemap.table.counts[frame] = 1
        kernel.pagemap.put_page(frame)
