"""Tests for paths not exercised elsewhere: CQ-driven completion,
unreliable-mode protection faults, stale-delivery rejection, cap-dance-
free mlock backend, pressure helper, and segment trimming errors."""

import pytest

from repro.errors import DescriptorError, QueueEmpty
from repro.hw.physmem import PAGE_SIZE
from repro.via.constants import (
    VIP_ERROR_CONN_LOST, VIP_SUCCESS,
    DescriptorType, ReliabilityLevel, ViState,
)
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.fabric import Packet
from repro.via.machine import Machine, connected_pair
from repro.via.nic import _trim_segments


class TestCompletionQueues:
    def test_cq_driven_receive(self):
        """A VI with an attached CQ routes completions there, and
        VipCQDone pops them."""
        cluster, ua_s, ua_r, _, _ = connected_pair("kiobuf")
        cq = ua_r.create_cq()
        vi_s2 = ua_s.create_vi()
        vi_r2 = ua_r.create_vi(recv_cq=cq)
        cluster.fabric.connect(cluster[0].nic, vi_s2.vi_id,
                               cluster[1].nic, vi_r2.vi_id)
        rva = ua_r.task.mmap(1)
        rreg = ua_r.register_mem(rva, PAGE_SIZE)
        ua_r.post_recv(vi_r2, Descriptor.recv([ua_r.segment(rreg)]))
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        ua_s.send_bytes(vi_s2, sreg, b"to the cq")
        completion = ua_r.cq_done(cq)
        assert completion.vi_id == vi_r2.vi_id
        assert completion.queue == "recv"
        assert completion.descriptor.status == VIP_SUCCESS
        with pytest.raises(QueueEmpty):
            ua_r.cq_done(cq)
        # the per-VI done list stayed empty
        with pytest.raises(QueueEmpty):
            ua_r.recv_done(vi_r2)


class TestUnreliableErrorHandling:
    def test_protection_fault_does_not_break_unreliable_vi(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair(
            "kiobuf", reliability=ReliabilityLevel.UNRELIABLE)
        # Send referencing a bogus handle: local translation fails.
        desc = Descriptor.send([DataSegment(99999, 0, 4)])
        ua_s.post_send(vi_s, desc)
        assert desc.status == "VIP_INVALID_MEMORY"
        assert vi_s.state == ViState.CONNECTED    # still usable

    def test_rdma_protfault_silent_for_unreliable(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair(
            "kiobuf", reliability=ReliabilityLevel.UNRELIABLE)
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        rva = ua_r.task.mmap(1)
        rreg = ua_r.register_mem(rva, PAGE_SIZE)   # rdma NOT enabled
        desc = Descriptor.rdma_write(
            [DataSegment(sreg.handle, sva, 4)],
            remote_handle=rreg.handle, remote_va=rva)
        ua_s.post_send(vi_s, desc)
        # Fire-and-forget: the sender sees success, the write was
        # dropped at the target, connections stay up.
        assert desc.status == VIP_SUCCESS
        assert vi_r.state == ViState.CONNECTED
        assert ua_r.nic.protection_faults == 1


class TestStaleDelivery:
    def test_packet_for_unknown_vi_rejected(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        pkt = Packet(kind=DescriptorType.SEND,
                     src_nic=cluster[0].nic.name, src_vi=vi_s.vi_id,
                     dst_nic=cluster[1].nic.name, dst_vi=999,
                     payload=b"x")
        status = cluster[1].nic.deliver(
            pkt, ReliabilityLevel.RELIABLE_DELIVERY)
        assert status == VIP_ERROR_CONN_LOST

    def test_packet_with_wrong_peer_rejected(self):
        """A packet claiming the wrong source VI (stale/forged route)
        is refused — the check backing VI point-to-point isolation."""
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        pkt = Packet(kind=DescriptorType.SEND,
                     src_nic=cluster[0].nic.name, src_vi=vi_s.vi_id + 7,
                     dst_nic=cluster[1].nic.name, dst_vi=vi_r.vi_id,
                     payload=b"x")
        status = cluster[1].nic.deliver(
            pkt, ReliabilityLevel.RELIABLE_DELIVERY)
        assert status == VIP_ERROR_CONN_LOST

    def test_rdma_read_on_dead_connection(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        pkt = Packet(kind=DescriptorType.RDMA_READ,
                     src_nic=cluster[0].nic.name, src_vi=vi_s.vi_id,
                     dst_nic=cluster[1].nic.name, dst_vi=999,
                     remote_handle=1, remote_va=0, read_length=4)
        status, payload = cluster[1].nic.serve_rdma_read(
            pkt, ReliabilityLevel.RELIABLE_DELIVERY)
        assert status == VIP_ERROR_CONN_LOST and payload == b""


class TestMiscKernelPaths:
    def test_apply_pressure_helper(self, kernel):
        t = kernel.create_task()
        va = t.mmap(16)
        t.touch_pages(va, 16)
        freed = kernel.apply_pressure()
        assert freed > 0
        assert kernel.trace.count("swap_out") > 0

    def test_mlock_backend_without_cap_dance(self, kernel):
        from repro.via.locking.vma_mlock import MlockLocking
        be = MlockLocking(track_ranges=True, use_cap_dance=False)
        t = kernel.create_task(uid=1000)
        va = t.mmap(2)
        res = be.lock(kernel, t, va, 2 * PAGE_SIZE)   # do_mlock direct
        assert t.vmas.locked_pages() == 2
        be.unlock(kernel, res.cookie)

    def test_deregister_before_delivery_faults_cleanly(self):
        """A posted receive whose region is deregistered before the
        matching send arrives completes with VIP_INVALID_MEMORY."""
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        rva = ua_r.task.mmap(1)
        rreg = ua_r.register_mem(rva, PAGE_SIZE)
        desc = Descriptor.recv([ua_r.segment(rreg)])
        ua_r.post_recv(vi_r, desc)
        ua_r.deregister_mem(rreg)          # pulled out from under it
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        ua_s.send_bytes(vi_s, sreg, b"x")
        got = ua_r.recv_done(vi_r)
        assert got.status == "VIP_INVALID_MEMORY"


class TestTrimSegments:
    def test_trims_exactly(self):
        segs = [(0, 10), (100, 10)]
        assert _trim_segments(segs, 15) == [(0, 10), (100, 5)]
        assert _trim_segments(segs, 10) == [(0, 10)]
        assert _trim_segments(segs, 0) == []

    def test_insufficient_coverage_rejected(self):
        with pytest.raises(DescriptorError):
            _trim_segments([(0, 4)], 10)


class TestRegcacheRdmaRead:
    def test_rdma_read_attr_cached_separately(self):
        from repro.core.regcache import RegistrationCache
        m = Machine(num_frames=256, backend="kiobuf")
        t = m.spawn()
        m.user_agent(t)
        cache = RegistrationCache(m.agent, t)
        va = t.mmap(2)
        cache.acquire(va, PAGE_SIZE)
        cache.acquire(va, PAGE_SIZE, rdma_read=True)
        assert cache.stats.misses == 2
        cache.acquire(va, PAGE_SIZE, rdma_read=True)
        assert cache.stats.hits == 1
