"""Property-based tests: kernel accounting invariants under random
operation sequences.

A stateful Hypothesis machine drives the simulated kernel with an
arbitrary interleaving of mmap/touch/munmap/swap-pressure/mlock/kiobuf
operations and checks, after every step, that the accounting invariants
of :func:`repro.core.audit.audit_kernel_invariants` hold and that data
written through a task's address space reads back intact.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, precondition, rule,
)

from repro.core.audit import audit_kernel_invariants
from repro.errors import OutOfMemory
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.kernel.kernel import Kernel
from repro.sim.costs import FREE


class KernelOps(RuleBasedStateMachine):
    """Random interleavings of memory-management operations."""

    def __init__(self) -> None:
        super().__init__()
        self.kernel = Kernel(num_frames=96, swap_slots=1024, costs=FREE,
                             min_free_pages=4)
        self.tasks = []
        self.regions = []      # (task, va, npages, stamp)
        self.kiobufs = []      # live kiobufs
        self.stamp = 0

    # -- setup -----------------------------------------------------------

    @initialize()
    def boot(self) -> None:
        for i in range(2):
            self.tasks.append(self.kernel.create_task(name=f"t{i}"))

    # -- operations --------------------------------------------------------

    @rule(task_i=st.integers(0, 1), npages=st.integers(1, 6))
    def mmap_region(self, task_i: int, npages: int) -> None:
        task = self.tasks[task_i]
        va = task.mmap(npages)
        self.regions.append([task, va, npages, None])

    @precondition(lambda self: self.regions)
    @rule(idx=st.integers(0, 10**6), data=st.binary(min_size=1,
                                                    max_size=64))
    def write_region(self, idx: int, data: bytes) -> None:
        task, va, npages, _ = self.regions[idx % len(self.regions)]
        self.stamp += 1
        stamped = data + self.stamp.to_bytes(4, "little")
        try:
            task.write(va, stamped)
        except OutOfMemory:
            return   # legal when everything else is pinned
        self.regions[idx % len(self.regions)][3] = stamped

    @precondition(lambda self: self.regions)
    @rule(idx=st.integers(0, 10**6))
    def read_back(self, idx: int) -> None:
        task, va, npages, stamped = self.regions[idx % len(self.regions)]
        if stamped is None:
            return
        try:
            got = task.read(va, len(stamped))
        except OutOfMemory:
            return
        assert got == stamped, "data lost through swap round-trip"

    @rule(want=st.integers(1, 8))
    def pressure(self, want: int) -> None:
        paging.swap_out(self.kernel, want)

    @rule(budget=st.integers(1, 32))
    def cache_pressure(self, budget: int) -> None:
        paging.shrink_mmap(self.kernel, budget)

    @precondition(lambda self: self.regions)
    @rule(idx=st.integers(0, 10**6))
    def map_kiobuf(self, idx: int) -> None:
        task, va, npages, _ = self.regions[idx % len(self.regions)]
        try:
            kio = self.kernel.map_user_kiobuf(task, va,
                                              npages * PAGE_SIZE)
        except OutOfMemory:
            return
        self.kiobufs.append(kio)

    @precondition(lambda self: self.kiobufs)
    @rule(idx=st.integers(0, 10**6))
    def unmap_kiobuf(self, idx: int) -> None:
        kio = self.kiobufs.pop(idx % len(self.kiobufs))
        self.kernel.unmap_kiobuf(kio)

    @precondition(lambda self: self.regions)
    @rule(idx=st.integers(0, 10**6))
    def mlock_region(self, idx: int) -> None:
        task, va, npages, _ = self.regions[idx % len(self.regions)]
        try:
            self.kernel.do_mlock(task, va, npages * PAGE_SIZE)
        except OutOfMemory:
            return

    @precondition(lambda self: self.regions)
    @rule(idx=st.integers(0, 10**6))
    def munlock_region(self, idx: int) -> None:
        task, va, npages, _ = self.regions[idx % len(self.regions)]
        self.kernel.do_munlock(task, va, npages * PAGE_SIZE)

    @precondition(lambda self: self.regions)
    @rule(idx=st.integers(0, 10**6))
    def munmap_region(self, idx: int) -> None:
        i = idx % len(self.regions)
        task, va, npages, _ = self.regions.pop(i)
        # Kiobufs over this region keep their frames alive legally; the
        # invariant checker accepts unmapped-but-pinned frames.
        task.munmap(va, npages)

    @rule()
    def add_cache_page(self) -> None:
        try:
            self.kernel.add_page_cache_page()
        except OutOfMemory:
            pass

    # -- invariants -------------------------------------------------------------

    @invariant()
    def accounting_holds(self) -> None:
        audit_kernel_invariants(self.kernel)

    @invariant()
    def frame_conservation(self) -> None:
        """Every frame is either free or has a positive refcount, and
        the free count never exceeds the installed total."""
        pm = self.kernel.pagemap
        assert 0 <= pm.free_count <= pm.num_frames
        in_use = sum(1 for pd in pm if pd.count > 0)
        assert in_use + pm.free_count == pm.num_frames

    @invariant()
    def pinned_pages_resident(self) -> None:
        """A pinned page can never be on the swap device: no PTE that is
        swapped may correspond to a live kiobuf's pages."""
        for kio in self.kiobufs:
            for frame in kio.frames:
                assert self.kernel.pagemap.page(frame).count > 0


TestKernelOps = KernelOps.TestCase
TestKernelOps.settings = settings(max_examples=40,
                                  stateful_step_count=60,
                                  deadline=None)


@pytest.mark.parametrize("seed", range(5))
def test_heavy_churn_preserves_data_and_invariants(seed):
    """Deterministic heavy-churn scenario: two tasks write stamped pages
    while pressure and kiobuf pinning interleave; everything must read
    back and invariants must hold at every checkpoint."""
    kernel = Kernel(num_frames=128, swap_slots=2048, costs=FREE,
                    seed=seed)
    tasks = [kernel.create_task(name=f"w{i}") for i in range(3)]
    regions = []
    for i, t in enumerate(tasks):
        va = t.mmap(16)
        for p in range(16):
            t.write(va + p * PAGE_SIZE, f"{i}-{p}-{seed}".encode())
        regions.append((t, va))
    kio = kernel.map_user_kiobuf(tasks[0], regions[0][1], 16 * PAGE_SIZE)
    for round_ in range(6):
        paging.swap_out(kernel, 32)
        audit_kernel_invariants(kernel)
        for i, (t, va) in enumerate(regions):
            for p in range(0, 16, 5):
                expect = f"{i}-{p}-{seed}".encode()
                assert t.read(va + p * PAGE_SIZE, len(expect)) == expect
    # Pinned task-0 pages never moved.
    assert tasks[0].physical_pages(regions[0][1], 16) == kio.frames
    kernel.unmap_kiobuf(kio)
    audit_kernel_invariants(kernel)
