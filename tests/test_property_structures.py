"""Property-based tests on core data structures: VMA lists, TPT
translation, the registration cache, and page descriptors."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regcache import aligned_range
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.flags import VM_LOCKED, VM_READ, VM_WRITE
from repro.kernel.vma import VMArea, VMAList
from repro.via.tpt import TranslationProtectionTable

RW = VM_READ | VM_WRITE


# ---------------------------------------------------------------------------
# VMA list
# ---------------------------------------------------------------------------

@st.composite
def disjoint_ranges(draw, max_ranges: int = 5, space: int = 64):
    """A list of disjoint, sorted (start, end) vpn ranges."""
    cuts = sorted(draw(st.sets(st.integers(0, space), min_size=2,
                               max_size=2 * max_ranges)))
    ranges = []
    for a, b in zip(cuts[::2], cuts[1::2]):
        if a < b:
            ranges.append((a, b))
    return ranges


class TestVMAProperties:
    @given(disjoint_ranges())
    def test_find_agrees_with_membership(self, ranges):
        vl = VMAList()
        for a, b in ranges:
            vl.insert(VMArea(a, b, RW))
        for vpn in range(70):
            hit = vl.find(vpn)
            member = any(a <= vpn < b for a, b in ranges)
            assert (hit is not None) == member

    @given(disjoint_ranges(), st.integers(0, 64), st.integers(1, 16))
    def test_split_then_merge_is_identity(self, ranges, start, length):
        vl = VMAList()
        for a, b in ranges:
            vl.insert(VMArea(a, b, RW))
        before = [(a.start_vpn, a.end_vpn) for a in vl]
        total_before = vl.total_pages()
        vl.split_range(start, start + length)
        assert vl.total_pages() == total_before   # splits conserve pages
        vl.merge_adjacent()
        after = [(a.start_vpn, a.end_vpn) for a in vl]
        assert after == before

    @given(disjoint_ranges(), st.integers(0, 64), st.integers(1, 16))
    def test_lock_unlock_roundtrip(self, ranges, start, length):
        vl = VMAList()
        for a, b in ranges:
            vl.insert(VMArea(a, b, RW))
        vl.split_range(start, start + length)
        vl.set_flags_range(start, start + length, set_bits=VM_LOCKED)
        vl.set_flags_range(start, start + length, clear_bits=VM_LOCKED)
        assert vl.locked_pages() == 0

    @given(disjoint_ranges())
    def test_covers_iff_no_holes(self, ranges):
        vl = VMAList()
        for a, b in ranges:
            vl.insert(VMArea(a, b, RW))
        for a, b in ranges:
            assert vl.covers(a, b)
        # Any span strictly wider than one range (into a gap) fails.
        for (a, b), nxt in zip(ranges, ranges[1:]):
            if b < nxt[0]:
                assert not vl.covers(a, b + 1)


# ---------------------------------------------------------------------------
# TPT translation
# ---------------------------------------------------------------------------

class TestTPTProperties:
    @given(st.integers(0, 1000), st.integers(1, 16),
           st.data())
    @settings(max_examples=60)
    def test_translation_covers_exact_bytes_in_order(self, base_vpn,
                                                     npages, data):
        """Whatever the segmentation (coalesced extents or per-page),
        every byte of the span must map to the frame recorded for its
        page, in order."""
        tpt = TranslationProtectionTable()
        # Non-contiguous frames with a contiguous run in the middle, so
        # both coalesced and split extents are exercised.
        frames = data.draw(st.lists(
            st.integers(100, 400), min_size=npages, max_size=npages,
            unique=True))
        va_base = base_vpn * PAGE_SIZE
        region = tpt.install(va_base=va_base, nbytes=npages * PAGE_SIZE,
                             prot_tag=1, frames=frames)
        offset = data.draw(st.integers(0, npages * PAGE_SIZE - 1))
        length = data.draw(st.integers(1, npages * PAGE_SIZE - offset))
        segs = tpt.translate(region.handle, va_base + offset, length, 1)
        # Property 1: lengths sum exactly.
        assert sum(n for _, n in segs) == length
        # Property 2: flattened byte-for-byte, each byte lands in the
        # frame recorded for its page at the right offset.
        expect = offset
        for addr, n in segs:
            # check the mapping at every page boundary inside the segment
            pos = 0
            while pos < n:
                off = expect + pos
                assert addr + pos == frames[off // PAGE_SIZE] * PAGE_SIZE \
                    + off % PAGE_SIZE
                pos += PAGE_SIZE - (off % PAGE_SIZE)
            expect += n
        # Property 3: the legacy per-page walk agrees once adjacent
        # segments are merged.
        tpt.coalesce_extents = False
        tpt.translation_cache_entries = 0
        legacy = tpt.translate(region.handle, va_base + offset, length, 1)

        def merged(segments):
            spans = []
            for a, ln in segments:
                if spans and spans[-1][0] + spans[-1][1] == a:
                    spans[-1][1] += ln
                else:
                    spans.append([a, ln])
            return [tuple(s) for s in spans]

        assert merged(segs) == merged(legacy)

    @given(st.integers(1, 8), st.integers(1, 8))
    def test_entry_accounting_balances(self, n_a, n_b):
        tpt = TranslationProtectionTable(64)
        a = tpt.install(0, n_a * PAGE_SIZE, 1, list(range(n_a)))
        b = tpt.install(10 * PAGE_SIZE * 1024, n_b * PAGE_SIZE, 1,
                        list(range(n_b)))
        assert tpt.entries_used == n_a + n_b
        tpt.remove(a.handle)
        assert tpt.entries_used == n_b
        tpt.remove(b.handle)
        assert tpt.entries_used == 0


# ---------------------------------------------------------------------------
# Alignment helper
# ---------------------------------------------------------------------------

class TestAlignmentProperties:
    @given(st.integers(0, 2**40), st.integers(1, 2**24))
    def test_aligned_range_covers_and_is_aligned(self, va, nbytes):
        base, length = aligned_range(va, nbytes)
        assert base % PAGE_SIZE == 0
        assert length % PAGE_SIZE == 0
        assert base <= va
        assert va + nbytes <= base + length
        # minimality: shrinking by one page uncovers the request
        assert base + PAGE_SIZE > va or va + nbytes > base + length - \
            PAGE_SIZE
