"""Tests for the Section 3.1 locktest experiment — the paper's central
empirical claim, reproduced end to end."""

import pytest

from repro.core.locktest import (
    DMA_STAMP, LocktestExperiment, run_matrix,
)


@pytest.mark.san_suppress("swap-registered")
class TestRefcountFailure:
    """The negative result: refcount-only registration fails."""

    @pytest.fixture(scope="class")
    def result(self):
        return LocktestExperiment("refcount", buffer_pages=32,
                                  num_frames=256).run()

    def test_all_pages_relocated(self, result):
        """'In most cases we observed ... all physical addresses had
        changed.'"""
        assert result.pages_relocated == result.npages

    def test_dma_write_invisible(self, result):
        """'The first page still contained its original value' — the
        DMA stamp landed in the orphaned frame."""
        assert not result.dma_write_visible

    def test_process_data_survives(self, result):
        """The *process* loses nothing — its data went to swap and came
        back; only the NIC's view is stale."""
        assert result.process_data_intact

    def test_frames_orphaned_not_freed(self, result):
        """'The page is not really released ... it is still in use.'"""
        assert result.orphan_frames_during == result.npages

    def test_orphans_freed_on_deregistration(self, result):
        """'System stability is not affected by this lapse.'"""
        assert result.orphan_frames_after == 0

    def test_tpt_fully_stale(self, result):
        assert result.stale_tpt_entries == result.npages

    def test_failure_caused_by_swap_out(self, result):
        """The causal chain: every registered page was stolen by
        swap_out."""
        assert result.registered_pages_swapped == result.npages

    def test_not_survived(self, result):
        assert not result.registration_survived


class TestReliableBackends:
    @pytest.mark.parametrize("backend", ["pageflags", "mlock_naive",
                                         "mlock", "kiobuf"])
    def test_registration_survives_pressure(self, backend):
        result = LocktestExperiment(backend, buffer_pages=32,
                                    num_frames=256).run()
        assert result.registration_survived
        assert result.pages_relocated == 0
        assert result.dma_write_visible
        assert result.stale_tpt_entries == 0
        assert result.orphan_frames_during == 0
        assert result.registered_pages_swapped == 0
        assert result.process_data_intact


class TestExperimentMechanics:
    @pytest.mark.san_suppress("swap-registered")
    def test_matrix_runs_all_backends(self):
        results = run_matrix(["refcount", "kiobuf"], buffer_pages=16,
                             num_frames=192)
        assert [r.backend for r in results] == ["refcount", "kiobuf"]
        assert not results[0].registration_survived
        assert results[1].registration_survived

    def test_pressure_actually_happened(self):
        r = LocktestExperiment("kiobuf", buffer_pages=16,
                               num_frames=192).run()
        assert "swapped" in r.notes[0]
        # the allocator must have pushed something out
        assert int(r.notes[0].split()[4]) > 0

    @pytest.mark.san_suppress("swap-registered")
    def test_deterministic_given_seed(self):
        a = LocktestExperiment("refcount", buffer_pages=16,
                               num_frames=192, seed=7).run()
        b = LocktestExperiment("refcount", buffer_pages=16,
                               num_frames=192, seed=7).run()
        assert a == b

    def test_timings_recorded(self):
        r = LocktestExperiment("kiobuf", buffer_pages=16,
                               num_frames=192).run()
        assert r.register_ns > 0
        assert r.deregister_ns > 0

    def test_dma_stamp_constant_sane(self):
        assert 0 < len(DMA_STAMP) < 64
