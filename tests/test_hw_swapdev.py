"""Tests for the swap device."""

import pytest

from repro.errors import BadSwapSlot, SwapFull
from repro.hw.physmem import PAGE_SIZE
from repro.hw.swapdev import SwapDevice
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel


def make(slots: int = 4) -> tuple[SwapDevice, SimClock]:
    clock = SimClock()
    return SwapDevice(slots, clock, CostModel()), clock


class TestSwapDevice:
    def test_alloc_free_cycle(self):
        dev, _ = make(2)
        a = dev.alloc_slot()
        b = dev.alloc_slot()
        assert a != b
        assert dev.slots_in_use == 2
        dev.free_slot(a)
        assert dev.slots_in_use == 1
        assert dev.slots_free == 1

    def test_exhaustion(self):
        dev, _ = make(1)
        dev.alloc_slot()
        with pytest.raises(SwapFull):
            dev.alloc_slot()

    def test_write_read_roundtrip(self):
        dev, _ = make()
        s = dev.alloc_slot()
        dev.write_page(s, b"swapped page")
        data = dev.read_page(s)
        assert data[:12] == b"swapped page"
        assert len(data) == PAGE_SIZE

    def test_io_charges_disk_cost(self):
        dev, clock = make()
        s = dev.alloc_slot()
        dev.write_page(s, b"x")
        dev.read_page(s)
        assert clock.category_ns("disk_io") == 2 * CostModel().disk_io_page_ns

    def test_io_counters(self):
        dev, _ = make()
        s = dev.alloc_slot()
        dev.write_page(s, b"x")
        dev.write_page(s, b"y")
        dev.read_page(s)
        assert dev.writes == 2
        assert dev.reads == 1

    def test_unallocated_slot_rejected(self):
        dev, _ = make()
        with pytest.raises(BadSwapSlot):
            dev.write_page(0, b"x")
        with pytest.raises(BadSwapSlot):
            dev.read_page(0)
        with pytest.raises(BadSwapSlot):
            dev.free_slot(0)

    def test_read_never_written_slot_rejected(self):
        dev, _ = make()
        s = dev.alloc_slot()
        with pytest.raises(BadSwapSlot):
            dev.read_page(s)

    def test_oversize_page_rejected(self):
        dev, _ = make()
        s = dev.alloc_slot()
        with pytest.raises(BadSwapSlot):
            dev.write_page(s, b"x" * (PAGE_SIZE + 1))

    def test_freed_slot_forgets_data(self):
        dev, _ = make()
        s = dev.alloc_slot()
        dev.write_page(s, b"old")
        dev.free_slot(s)
        s2 = dev.alloc_slot()
        assert s2 == s  # LIFO reuse
        with pytest.raises(BadSwapSlot):
            dev.read_page(s2)
