"""Cross-layer integration tests: the full stack under combined load.

These scenarios combine everything — multiple processes, fork, memory
pressure, registration caching, messaging, audits — and assert the end
state is exactly what the paper's mechanism promises.
"""

import numpy as np
import pytest

from repro.core.audit import (
    audit_kernel_invariants, audit_tpt_consistency,
)
from repro.core.regcache import RegistrationCache
from repro.core.registration import MemoryRegistrar
from repro.hw.physmem import PAGE_SIZE
from repro.msg.endpoint import make_pair
from repro.msg.mpi_like import MpiPair
from repro.via.machine import Cluster, Machine
from repro.workloads.allocator import MemoryHog
from repro.workloads.patterns import buffer_reuse_trace


class TestMessagingUnderSustainedPressure:
    """An MPI-style app exchanging messages while a hog churns memory on
    both machines — every payload must verify and every audit must be
    clean (kiobuf backend)."""

    def test_fifty_transfers_with_churn(self):
        cluster = Cluster(2, num_frames=1024, backend="kiobuf")
        s, r = make_pair(cluster)
        mpi = MpiPair(s, r)
        hogs = [MemoryHog(m.kernel, "churner") for m in cluster.machines]
        for hog, m in zip(hogs, cluster.machines):
            # Touch more than installed RAM so reclaim must run.
            hog.grow(m.kernel.pagemap.num_frames)

        pages = 40
        src = s.task.mmap(pages)
        s.task.touch_pages(src, pages)
        dst = r.task.mmap(pages)
        r.task.touch_pages(dst, pages)
        rng = np.random.default_rng(0)

        for i in range(50):
            size = int(rng.integers(64, pages * PAGE_SIZE - 64))
            payload = bytes(rng.integers(0, 256, size, dtype=np.uint8))
            s.task.write(src, payload)
            res = mpi.sendrecv(src, dst, size)
            assert res.ok, f"transfer {i} ({size}B) corrupted"
            if i % 10 == 0:
                for hog in hogs:
                    hog.churn()
                for m in cluster.machines:
                    audit_kernel_invariants(m.kernel)
                    assert audit_tpt_consistency(m.agent) == []

        # Pressure really happened on both machines.
        for m in cluster.machines:
            assert m.kernel.swap.writes > 0

    @pytest.mark.san_suppress("swap-registered")
    def test_unreliable_backend_detected_by_audit(self):
        """The same workload on the refcount backend: the audit oracle
        flags stale TPT entries once the cache's pinned-by-nothing
        regions are hit by reclaim."""
        cluster = Cluster(2, num_frames=384, backend="refcount")
        s, r = make_pair(cluster)
        mpi = MpiPair(s, r, zerocopy_threshold=16 * 1024)
        pages = 16
        src = s.task.mmap(pages)
        s.task.touch_pages(src, pages)
        dst = r.task.mmap(pages)
        r.task.touch_pages(dst, pages)
        payload = bytes(np.random.default_rng(0).integers(
            0, 256, 16 * 1024, dtype=np.uint8))
        s.task.write(src, payload)
        mpi.sendrecv(src, dst, 16 * 1024)   # warms the regcache
        hog = MemoryHog(r.machine.kernel)
        hog.grow(r.machine.kernel.pagemap.num_frames * 2)
        r.task.touch_pages(dst, pages)
        stale = audit_tpt_consistency(r.machine.agent)
        assert stale, "refcount-backed cached regions must go stale"


class TestRegistrarWithForkAndCache:
    def test_trace_replay_with_audits(self):
        m = Machine(num_frames=2048, backend="kiobuf")
        t = m.spawn("app")
        ua = m.user_agent(t)
        del ua
        cache = RegistrationCache(m.agent, t)
        buffers = [t.mmap(16) for _ in range(6)]
        for va in buffers:
            t.touch_pages(va, 16)
        for op in buffer_reuse_trace(6, 16, operations=120, seed=1):
            va = buffers[op.buffer_index] + op.offset
            cache.acquire(va, op.nbytes)
            cache.release(va, op.nbytes)
            if op.buffer_index == 0:
                audit_kernel_invariants(m.kernel)
        assert cache.stats.hit_rate > 0.5
        assert audit_tpt_consistency(m.agent) == []

    def test_registered_parent_forks_safely(self):
        """Fork while memory is registered: accounting stays sound and
        the parent's live registrations stay valid (shared pages are
        pinned, so COW never relocates them under the NIC)."""
        m = Machine(num_frames=512, backend="kiobuf")
        reg = MemoryRegistrar(m)
        parent = m.spawn("parent")
        va = parent.mmap(8)
        parent.touch_pages(va, 8)
        lease = reg.register(parent, va, 8 * PAGE_SIZE)
        child = m.kernel.fork_task(parent)
        MemoryHog(m.kernel).grow(m.kernel.pagemap.num_frames)
        audit_kernel_invariants(m.kernel)
        assert reg.audit() == []
        assert parent.physical_pages(va, 8) == lease.frames
        assert child.read(va, 4) == parent.read(va, 4)
        lease.release()
        audit_kernel_invariants(m.kernel)


class TestRingTopology:
    def test_message_travels_a_four_machine_ring(self):
        """Four machines, VIs connected in a ring; a payload forwarded
        all the way around must arrive intact with pressure applied at
        every hop (store-and-forward via each rank's own buffers)."""
        cluster = Cluster(4, num_frames=768, backend="kiobuf")
        from repro.msg.endpoint import Endpoint, connect_endpoints
        # Each machine hosts two endpoints: 'rx from left', 'tx to right'.
        rx = [Endpoint(m) for m in cluster.machines]
        tx = [Endpoint(m) for m in cluster.machines]
        for i, m in enumerate(cluster.machines):
            j = (i + 1) % 4
            connect_endpoints(cluster, tx[i], rx[j])
        mpis = [MpiPair(tx[i], rx[(i + 1) % 4]) for i in range(4)]

        size = 24 * 1024
        payload = bytes(np.random.default_rng(5).integers(
            0, 256, size, dtype=np.uint8))
        bufs = []
        for m, r_ep, t_ep in zip(cluster.machines, rx, tx):
            src = t_ep.task.mmap(8)
            t_ep.task.touch_pages(src, 8)
            dst = r_ep.task.mmap(8)
            r_ep.task.touch_pages(dst, 8)
            bufs.append((src, dst))
        tx[0].task.write(bufs[0][0], payload)
        for hop in range(4):
            nxt = (hop + 1) % 4
            res = mpis[hop].sendrecv(bufs[hop][0], bufs[nxt][1], size)
            assert res.ok
            if nxt != 0:
                # forward: copy from rx buffer to this rank's tx buffer
                data = rx[nxt].task.read(bufs[nxt][1], size)
                tx[nxt].task.write(bufs[nxt][0], data)
                MemoryHog(cluster.machines[nxt].kernel).grow(
                    cluster.machines[nxt].kernel.pagemap.num_frames // 2)
        assert rx[0].task.read(bufs[0][1], size) == payload
        for m in cluster.machines:
            audit_kernel_invariants(m.kernel)


class TestManyProcessesOneNic:
    def test_isolation_between_ten_processes(self):
        """Ten processes register memory on one NIC; each VI can only
        touch its owner's regions (protection-tag isolation at scale)."""
        m = Machine(num_frames=2048, backend="kiobuf")
        agents = []
        for i in range(10):
            t = m.spawn(f"p{i}")
            ua = m.user_agent(t)
            va = t.mmap(4)
            reg = ua.register_mem(va, 4 * PAGE_SIZE)
            agents.append((ua, va, reg))
        tags = {ua.prot_tag for ua, _, _ in agents}
        assert len(tags) == 10
        # Cross-translation fails for every foreign pairing probed.
        from repro.errors import ProtectionError
        for i in range(10):
            ua_i, _, _ = agents[i]
            _, va_j, reg_j = agents[(i + 1) % 10]
            with pytest.raises(ProtectionError):
                m.nic.tpt.translate(reg_j.handle, va_j, 16,
                                    ua_i.prot_tag)
        audit_kernel_invariants(m.kernel)
