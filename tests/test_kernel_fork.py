"""Tests for fork() and copy-on-write sharing."""

import pytest

from repro.core.audit import audit_kernel_invariants
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging


@pytest.fixture
def family(kernel):
    parent = kernel.create_task(name="parent")
    va = parent.mmap(4)
    for i in range(4):
        parent.write(va + i * PAGE_SIZE, f"inherit-{i}".encode())
    child = kernel.fork_task(parent)
    return kernel, parent, child, va


class TestFork:
    def test_child_sees_parent_data(self, family):
        kernel, parent, child, va = family
        for i in range(4):
            assert child.read(va + i * PAGE_SIZE, 9) == \
                f"inherit-{i}".encode()

    def test_pages_shared_not_copied(self, family):
        kernel, parent, child, va = family
        assert parent.physical_pages(va, 4) == child.physical_pages(va, 4)
        for frame in parent.physical_pages(va, 4):
            pd = kernel.pagemap.page(frame)
            assert pd.count == 2
            assert pd.cow_shares == 2

    def test_child_write_breaks_cow(self, family):
        kernel, parent, child, va = family
        child.write(va, b"child version")
        assert parent.read(va, 9) == b"inherit-0"
        assert child.read(va, 13) == b"child version"
        assert parent.physical_pages(va, 1) != child.physical_pages(va, 1)
        audit_kernel_invariants(kernel)

    def test_parent_write_preserves_child_view(self, family):
        kernel, parent, child, va = family
        parent.write(va, b"parent v2")
        assert child.read(va, 9) == b"inherit-0"

    def test_unshared_page_regains_write_in_place(self, family):
        kernel, parent, child, va = family
        child.write(va, b"break")            # copy made for child
        frame_parent = parent.physical_pages(va, 1)[0]
        parent.write(va, b"parent again")    # last sharer: reuse in place
        assert parent.physical_pages(va, 1)[0] == frame_parent
        audit_kernel_invariants(kernel)

    def test_shared_pages_not_swapped(self, family):
        kernel, parent, child, va = family
        assert paging.swap_out(kernel, 8) == 0
        assert any(e["reason"] == "cow_shared"
                   for e in kernel.trace.of_kind("swap_skip"))

    def test_fork_faults_swapped_pages_back(self, kernel):
        parent = kernel.create_task()
        va = parent.mmap(2)
        parent.write(va, b"before swap")
        paging.swap_out(kernel, 2)
        assert parent.resident_pages() == 0
        child = kernel.fork_task(parent)
        assert child.read(va, 11) == b"before swap"

    def test_child_exit_releases_shares(self, family):
        kernel, parent, child, va = family
        frames = parent.physical_pages(va, 4)
        kernel.exit_task(child)
        for frame in frames:
            pd = kernel.pagemap.page(frame)
            assert pd.count == 1
        # Parent can write again (in place, via the count==1 fast path).
        parent.write(va, b"post-exit")
        assert parent.read(va, 9) == b"post-exit"
        audit_kernel_invariants(kernel)

    def test_grandchild_shares_three_ways(self, family):
        kernel, parent, child, va = family
        grandchild = kernel.fork_task(child)
        frame = parent.physical_pages(va, 1)[0]
        pd = kernel.pagemap.page(frame)
        assert pd.count == 3 and pd.cow_shares == 3
        assert grandchild.read(va, 9) == b"inherit-0"

    def test_fork_copies_capabilities_and_vmas(self, kernel):
        parent = kernel.create_task(uid=1000)
        parent.capabilities.add("CAP_IPC_LOCK")
        va = parent.mmap(2, name="data")
        parent.touch_pages(va, 2)
        child = kernel.fork_task(parent, name="kid")
        assert child.capabilities == {"CAP_IPC_LOCK"}
        assert child.uid == 1000
        assert [(a.start_vpn, a.end_vpn, a.name) for a in child.vmas] == \
            [(a.start_vpn, a.end_vpn, a.name) for a in parent.vmas]

    def test_registered_memory_in_parent_unaffected_by_fork(self, kernel):
        """Fork + COW must not disturb a kiobuf registration: the pinned
        frames stay valid for the NIC even while shared."""
        parent = kernel.create_task()
        va = parent.mmap(2)
        parent.touch_pages(va, 2)
        kio = kernel.map_user_kiobuf(parent, va, 2 * PAGE_SIZE)
        child = kernel.fork_task(parent)
        # Parent writes: with COW the parent could get a *new* frame and
        # the NIC would write to the old one — the classic fork-vs-RDMA
        # hazard.  Here we only assert accounting stays sound and the
        # kiobuf's frames remain alive.
        parent.write(va, b"x")
        for frame in kio.frames:
            assert kernel.pagemap.page(frame).count >= 1
        audit_kernel_invariants(kernel)
        del child
