"""Tests for the four memory-locking backends.

These test the *mechanisms*; the full Sec. 3.1 experiment (registration →
pressure → DMA probe → comparison) lives in ``test_core_locktest.py``.
"""

import pytest

from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.kernel.flags import PG_LOCKED, PG_RESERVED
from repro.kernel.kernel import Kernel
from repro.via.locking import BACKENDS, make_backend
from repro.via.locking.vma_mlock import MlockLocking


@pytest.fixture
def setup(kernel):
    t = kernel.create_task(name="app")
    va = t.mmap(8)
    return kernel, t, va


def pressure(kernel: Kernel, rounds: int = 4) -> None:
    """Apply heavy reclaim pressure."""
    for _ in range(rounds):
        paging.swap_out(kernel, kernel.pagemap.num_frames)


class TestRegistry:
    def test_all_names_construct(self):
        for name in BACKENDS:
            be = make_backend(name)
            assert be.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_backend("nonsense")

    def test_capability_matrix(self):
        """The capability matrix the paper's abstract summarises."""
        caps = {n: make_backend(n).describe() for n in BACKENDS}
        assert not caps["refcount"]["reliable"]
        assert caps["refcount"]["supports_multiple_registration"]
        assert caps["pageflags"]["reliable"]
        assert not caps["pageflags"]["supports_multiple_registration"]
        assert caps["mlock_naive"]["reliable"]
        assert not caps["mlock_naive"]["supports_multiple_registration"]
        assert caps["mlock"]["reliable"]
        assert caps["mlock"]["supports_multiple_registration"]
        assert caps["kiobuf"]["reliable"]
        assert caps["kiobuf"]["supports_multiple_registration"]
        assert caps["odp"]["reliable"]          # reliable by repair
        assert caps["odp"]["supports_multiple_registration"]
        # only kiobuf and odp keep the driver out of the page tables
        assert not caps["kiobuf"]["walks_page_tables"]
        assert not caps["odp"]["walks_page_tables"]
        for name in ("refcount", "pageflags", "mlock", "mlock_naive"):
            assert caps[name]["walks_page_tables"]


#: The backends that pin (and therefore resolve frames) at lock time.
#: ``odp`` deliberately does neither — its registration-time contract
#: is exercised in ``test_via_odp.py``.
EAGER_BACKENDS = sorted(set(BACKENDS) - {"odp"})


class TestAllBackendsCommon:
    """Behaviours every *eager* backend shares."""

    @pytest.mark.parametrize("name", EAGER_BACKENDS)
    def test_lock_returns_resident_frames(self, setup, name):
        kernel, t, va = setup
        be = make_backend(name)
        res = be.lock(kernel, t, va, 8 * PAGE_SIZE)
        assert len(res.frames) == 8
        assert res.frames == t.physical_pages(va, 8)

    @pytest.mark.parametrize("name", EAGER_BACKENDS)
    def test_lock_faults_in_nonresident_pages(self, setup, name):
        kernel, t, va = setup
        be = make_backend(name)
        assert t.resident_pages() == 0
        be.lock(kernel, t, va, 8 * PAGE_SIZE)
        assert t.resident_pages() == 8

    @pytest.mark.parametrize("name", EAGER_BACKENDS)
    def test_unlock_restores_page_state(self, setup, name):
        kernel, t, va = setup
        be = make_backend(name)
        res = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        be.unlock(kernel, res.cookie)
        for frame in res.frames:
            pd = kernel.pagemap.page(frame)
            assert pd.count == 1            # only the mapping
            assert pd.pin_count == 0
            assert not pd.locked and not pd.reserved
        assert t.vmas.locked_pages() == 0

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_partial_bytes_cover_whole_pages(self, setup, name):
        kernel, t, va = setup
        be = make_backend(name)
        res = be.lock(kernel, t, va + 100, PAGE_SIZE)  # straddles 2 pages
        assert len(res.frames) == 2


class TestRefcountBackend:
    def test_unreliable_under_pressure(self, setup):
        """Pages relocate despite the registration — the paper's bug."""
        kernel, t, va = setup
        be = make_backend("refcount")
        res = be.lock(kernel, t, va, 8 * PAGE_SIZE)
        pressure(kernel)
        t.touch_pages(va, 8)           # fault everything back (step 4)
        assert t.physical_pages(va, 8) != res.frames
        # The original frames are orphans.
        orphans = kernel.pagemap.orphans()
        assert {pd.frame for pd in orphans} == set(res.frames)

    def test_unlock_after_orphaning_frees_orphans(self, setup):
        kernel, t, va = setup
        be = make_backend("refcount")
        res = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        pressure(kernel)
        t.touch_pages(va, 4)
        be.unlock(kernel, res.cookie)
        assert kernel.pagemap.orphans() == []


class TestPageFlagBackend:
    def test_reliable_while_registered(self, setup):
        kernel, t, va = setup
        be = make_backend("pageflags")
        res = be.lock(kernel, t, va, 8 * PAGE_SIZE)
        pressure(kernel)
        assert t.physical_pages(va, 8) == res.frames

    def test_sets_both_flags(self, setup):
        kernel, t, va = setup
        be = make_backend("pageflags")
        res = be.lock(kernel, t, va, 2 * PAGE_SIZE)
        for frame in res.frames:
            pd = kernel.pagemap.page(frame)
            assert pd.test_flag(PG_LOCKED) and pd.test_flag(PG_RESERVED)

    def test_unconditional_clear_clobbers_kernel_lock(self, setup):
        """The 'risky' hazard: deregistration clears PG_locked even when
        the *kernel* holds it for I/O."""
        kernel, t, va = setup
        be = make_backend("pageflags")
        res = be.lock(kernel, t, va, PAGE_SIZE)
        frame = res.frames[0]
        kernel.lock_page(frame)        # kernel I/O in flight
        be.unlock(kernel, res.cookie)
        assert not kernel.pagemap.page(frame).locked   # clobbered!

    def test_overlapping_registration_loses_protection(self, setup):
        """First deregistration strips the flags off the still-live
        second registration."""
        kernel, t, va = setup
        be = make_backend("pageflags")
        r1 = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        r2 = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        be.unlock(kernel, r1.cookie)
        pressure(kernel)
        # r2 should still protect the pages, but does not:
        t.touch_pages(va, 4)
        assert t.physical_pages(va, 4) != r2.frames
        be.unlock(kernel, r2.cookie)


class TestMlockBackends:
    def test_naive_reliable_for_single_registration(self, setup):
        kernel, t, va = setup
        be = make_backend("mlock_naive")
        res = be.lock(kernel, t, va, 8 * PAGE_SIZE)
        pressure(kernel)
        assert t.physical_pages(va, 8) == res.frames

    def test_naive_multiple_registration_broken(self, setup):
        """'A single unlock operation annuls multiple lock operations' —
        without driver bookkeeping the first deregister unlocks all."""
        kernel, t, va = setup
        be = make_backend("mlock_naive")
        r1 = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        r2 = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        be.unlock(kernel, r1.cookie)
        assert t.vmas.locked_pages() == 0     # r2's protection is gone
        pressure(kernel)
        t.touch_pages(va, 4)
        assert t.physical_pages(va, 4) != r2.frames

    def test_tracked_multiple_registration_survives(self, setup):
        kernel, t, va = setup
        be = make_backend("mlock")
        r1 = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        r2 = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        be.unlock(kernel, r1.cookie)
        assert t.vmas.locked_pages() == 4     # still locked for r2
        pressure(kernel)
        assert t.physical_pages(va, 4) == r2.frames
        be.unlock(kernel, r2.cookie)
        assert t.vmas.locked_pages() == 0

    def test_tracked_partial_overlap(self, setup):
        """Overlapping but non-identical ranges release correctly."""
        kernel, t, va = setup
        be = make_backend("mlock")
        r1 = be.lock(kernel, t, va, 4 * PAGE_SIZE)             # pages 0-3
        r2 = be.lock(kernel, t, va + 2 * PAGE_SIZE,
                     4 * PAGE_SIZE)                            # pages 2-5
        be.unlock(kernel, r1.cookie)
        # pages 2-5 must stay locked; 0-1 released
        assert t.vmas.locked_pages() == 4
        base_vpn = t.vpn_of(va)
        assert be.lock_count(t.pid, base_vpn) == 0
        assert be.lock_count(t.pid, base_vpn + 2) == 1
        be.unlock(kernel, r2.cookie)
        assert t.vmas.locked_pages() == 0
        del r2

    def test_cap_dance_leaves_capabilities_clean(self, setup):
        kernel, t, va = setup
        be = MlockLocking(track_ranges=True, use_cap_dance=True)
        res = be.lock(kernel, t, va, PAGE_SIZE)
        assert t.capabilities == set()
        be.unlock(kernel, res.cookie)


class TestKiobufBackend:
    def test_reliable_under_pressure(self, setup):
        kernel, t, va = setup
        be = make_backend("kiobuf")
        res = be.lock(kernel, t, va, 8 * PAGE_SIZE)
        pressure(kernel)
        assert t.physical_pages(va, 8) == res.frames
        assert kernel.trace.where(
            lambda e: e.kind == "swap_skip"
            and e.detail.get("reason") == "pinned")

    def test_multiple_registrations_nest(self, setup):
        kernel, t, va = setup
        be = make_backend("kiobuf")
        r1 = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        r2 = be.lock(kernel, t, va, 4 * PAGE_SIZE)
        be.unlock(kernel, r1.cookie)
        pressure(kernel)
        assert t.physical_pages(va, 4) == r2.frames   # still pinned
        be.unlock(kernel, r2.cookie)
        pressure(kernel)
        assert t.resident_pages() == 0                # now stealable

    def test_kernel_io_lock_unaffected(self, setup):
        """Unlike pageflags, deregistration cannot strip a kernel-held
        PG_locked bit."""
        kernel, t, va = setup
        be = make_backend("kiobuf")
        res = be.lock(kernel, t, va, PAGE_SIZE)
        frame = res.frames[0]
        kernel.lock_page(frame)
        be.unlock(kernel, res.cookie)
        assert kernel.pagemap.page(frame).locked   # untouched
