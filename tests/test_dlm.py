"""The crash-tolerant distributed lock manager workload.

Three lock designs — server-centric message queue, client-bypass spin
CAS, and the DecLock-style FETCH_ADD ticket — behind one client API,
each lease-based and crash-recoverable.  The oracle inside the harness
asserts mutual exclusion, bounded bypass, holder-only data updates, and
reclaim legality on every event; these tests assert the oracle stayed
quiet and the bookkeeping converged (no leaked pins, nothing left for
the post-chaos reaper).

The kill sweep is the acceptance matrix: every ``dlm.*`` crash point ×
every design × both locking backends, survivors must reacquire within
one lease period (plus slack) and the protected words must equal the
oracle's increment counts.
"""

import os

import pytest

from repro.sim.faults import DLM_CRASH_POINTS
from repro.workloads.dlm import DESIGNS, DLMConfig, run_dlm

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def _config(**kwargs):
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("n_clients", 4)
    kwargs.setdefault("cs_per_client", 4)
    return DLMConfig(**kwargs)


def _assert_clean(report, config):
    assert report.violations == []
    assert report.sanitizer_violations == 0
    assert report.leaked_pins == 0
    assert report.reaper_post_reclaimed == 0
    assert report.data_final == report.data_expected


class TestConfigValidation:
    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            DLMConfig(design="mutex9000")

    def test_declock_requires_janitor(self):
        with pytest.raises(ValueError, match="janitor"):
            DLMConfig(design="declock", janitor=False)

    def test_client_count_bounds(self):
        with pytest.raises(ValueError, match="n_clients"):
            DLMConfig(n_clients=1)
        with pytest.raises(ValueError, match="n_clients"):
            DLMConfig(n_clients=49)

    def test_lease_must_outlast_critical_section_span(self):
        # A lease shorter than the worst-case CS span would "reclaim"
        # locks from live holders — the tuning bug the oracle caught.
        with pytest.raises(ValueError, match="lease_ns"):
            DLMConfig(lease_ns=100_000)


class TestBasicRuns:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_clean_run_completes_every_critical_section(self, design):
        config = _config(design=design, n_locks=2)
        report = run_dlm(config)
        _assert_clean(report, config)
        assert report.crashes == 0
        assert report.acquisitions == config.n_clients * \
            config.cs_per_client
        assert report.releases == report.acquisitions
        assert report.reclaims == 0
        # queue-ordered designs grant strictly FIFO
        if design in ("server", "declock"):
            assert report.max_bypass == 0

    def test_two_locks_count_independently(self):
        config = _config(design="spin", n_locks=2)
        report = run_dlm(config)
        assert set(report.data_final) == {0, 1}
        assert sum(report.data_final.values()) == report.increments


class TestKillSweep:
    """Kill a client at every instrumented step of the lock protocol."""

    @pytest.mark.parametrize("backend", ["kiobuf", "mlock"])
    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("point", DLM_CRASH_POINTS)
    def test_kill_at_point(self, point, design, backend):
        config = _config(design=design, backend=backend, n_locks=1,
                         crash_point=point)
        report = run_dlm(config)
        _assert_clean(report, config)
        assert report.crashes == 1
        assert report.reclaims >= 1
        # survivors reacquired within one lease period (plus slack)
        assert report.recovery_ns, "no survivor ever reacquired"
        bound = config.lease_ns + config.recovery_slack_ns
        assert all(ns <= bound for ns in report.recovery_ns), \
            f"recovery {max(report.recovery_ns)} ns exceeds {bound} ns"

    def test_spin_recovers_by_lease_expiry_without_janitor(self):
        # Pure client-bypass recovery: nobody watches VI errors, the
        # next waiter reclaims only once the holder's lease runs out.
        config = _config(design="spin", n_locks=1,
                         crash_point="dlm.cs_write", janitor=False)
        report = run_dlm(config)
        _assert_clean(report, config)
        assert report.crashes == 1
        assert report.reclaims >= 1
        assert report.reclaims_by.get("waiter", 0) >= 1
        assert report.recovery_ns
        # the recovery sample brackets one lease period
        assert min(report.recovery_ns) >= int(config.lease_ns * 0.8)
        assert max(report.recovery_ns) <= \
            config.lease_ns + config.recovery_slack_ns


class TestWireChaos:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_lossy_duplicating_fabric(self, design):
        # Loss + duplication exercise the atomic dedup path underneath
        # every design; the oracle still requires exact counts from the
        # clients the harness kept (conn casualties are torn down).
        config = _config(design=design, n_locks=1, loss_rate=0.05,
                         duplicate_rate=0.05)
        report = run_dlm(config)
        _assert_clean(report, config)
        assert report.crashes == 0
