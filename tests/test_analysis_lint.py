"""repro-lint: fixture corpus, pragma handling, and repo cleanliness."""

from pathlib import Path

import pytest

from repro.analysis.lint import RULES, Linter, lint_paths

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src"


def lint_fixture(name: str, relpath: str = "repro/fixture.py",
                 rules=None) -> list:
    """Lint one fixture file under a chosen virtual relpath."""
    source = (FIXTURES / name).read_text()
    return Linter(rules).check_source(source, path=name, relpath=relpath)


def rules_of(findings) -> list:
    return [f.rule for f in findings]


# ---------------------------------------------------------------- broad-except

def test_broad_except_flags_swallowing_handlers():
    findings = lint_fixture("bad_broad_except.py")
    assert rules_of(findings) == ["broad-except"] * 3
    # One finding per handler, at the handler's line.
    assert len({f.line for f in findings}) == 3


def test_broad_except_accepts_reraise_and_protection():
    assert lint_fixture("good_broad_except.py") == []


# ------------------------------------------------------------------ wall-clock

def test_wall_clock_flags_time_and_randomness():
    findings = lint_fixture("bad_wall_clock.py")
    assert rules_of(findings) == ["wall-clock"] * 6
    messages = " ".join(f.message for f in findings)
    # Aliased and from-imported call sites resolve to their origin.
    assert "time.time" in messages
    assert "time.monotonic" in messages
    assert "numpy.random.default_rng" in messages


def test_wall_clock_accepts_sim_time_and_seeded_rng():
    assert lint_fixture("good_wall_clock.py") == []


def test_wall_clock_exempts_the_rng_module():
    source = "import numpy as np\nrng = np.random.default_rng(0)\n"
    linter = Linter(["wall-clock"])
    assert linter.check_source(source, relpath="repro/sim/rng.py") == []
    assert len(linter.check_source(
        source, relpath="repro/sim/clock.py")) == 1


# --------------------------------------------------------------- obs-unguarded

def test_obs_unguarded_flags_bare_registry_access():
    findings = lint_fixture("bad_obs_unguarded.py")
    assert rules_of(findings) == ["obs-unguarded"] * 3


def test_obs_unguarded_accepts_guards_facade_and_pragma():
    assert lint_fixture("good_obs_unguarded.py") == []


def test_obs_unguarded_exempts_the_obs_package():
    source = "def f(self):\n    self.metrics.counter('x').inc()\n"
    linter = Linter(["obs-unguarded"])
    assert linter.check_source(
        source, relpath="repro/obs/__init__.py") == []
    assert len(linter.check_source(
        source, relpath="repro/via/nic.py")) == 1


# ------------------------------------------------------------- kernel-mutation

def test_kernel_mutation_flags_driver_layer_pokes():
    findings = lint_fixture(
        "bad_kernel_mutation.py", relpath="repro/via/locking/bad.py")
    assert rules_of(findings) == ["kernel-mutation"] * 4


def test_kernel_mutation_accepts_audited_entry_points():
    assert lint_fixture(
        "good_kernel_mutation.py",
        relpath="repro/via/locking/good.py") == []


def test_kernel_mutation_scoped_to_layers_above_the_kernel():
    # The same pokes inside the kernel layer are the kernel's business.
    assert lint_fixture(
        "bad_kernel_mutation.py", relpath="repro/kernel/paging.py") == []


# -------------------------------------------------------- faultplan-validation

def test_faultplan_flags_unvalidated_knobs():
    findings = lint_fixture("bad_faultplan.py")
    assert rules_of(findings) == ["faultplan-validation"] * 2
    flagged = " ".join(f.message for f in findings)
    assert "burst_len" in flagged and "jitter_rate" in flagged


def test_faultplan_flags_missing_post_init():
    findings = lint_fixture("bad_faultplan_no_post_init.py")
    assert rules_of(findings) == ["faultplan-validation"]
    assert "no __post_init__" in findings[0].message


def test_faultplan_accepts_direct_and_getattr_validation():
    assert lint_fixture("good_faultplan.py") == []


# ------------------------------------------------------------- clock-subscribe

def test_clock_subscribe_flags_watcher_wiring():
    findings = lint_fixture("bad_clock_subscribe.py")
    assert rules_of(findings) == ["clock-subscribe"] * 3


def test_clock_subscribe_accepts_calendar_hub_and_pragma():
    assert lint_fixture("good_clock_subscribe.py") == []


def test_clock_subscribe_exempts_the_clock_module():
    source = "def start(self):\n    self.clock.subscribe(self._fn)\n"
    linter = Linter(["clock-subscribe"])
    assert linter.check_source(
        source, relpath="repro/sim/clock.py") == []
    assert len(linter.check_source(
        source, relpath="repro/kernel/reaper.py")) == 1


# -------------------------------------------------------------- hub-emit-unguarded

def test_hub_emit_flags_unguarded_emissions():
    findings = lint_fixture("bad_hub_emit.py")
    assert rules_of(findings) == ["hub-emit-unguarded"] * 3
    assert len({f.line for f in findings}) == 3


def test_hub_emit_accepts_guards_truthiness_and_pragma():
    assert lint_fixture("good_hub_emit.py") == []


def test_hub_emit_exempts_the_analysis_package():
    source = ("def f(self, frame):\n"
              "    self.events.emit('pin', frames=(frame,))\n")
    linter = Linter(["hub-emit-unguarded"])
    assert linter.check_source(
        source, relpath="repro/analysis/events.py") == []
    assert len(linter.check_source(
        source, relpath="repro/kernel/kernel.py")) == 1


# ------------------------------------------------------------------- machinery

def test_rules_are_individually_toggleable():
    source = (FIXTURES / "bad_wall_clock.py").read_text()
    only_broad = Linter(["broad-except"]).check_source(
        source, relpath="repro/fixture.py")
    assert only_broad == []


def test_unknown_rule_name_is_rejected():
    with pytest.raises(ValueError, match="unknown lint rule"):
        Linter(["wall-clok"])


def test_pragma_on_preceding_line_suppresses():
    source = ("def f(obs):\n"
              "    # repro-lint: allow(obs-unguarded)\n"
              "    obs.metrics.counter('x').inc()\n")
    assert Linter(["obs-unguarded"]).check_source(
        source, relpath="repro/via/x.py") == []


def test_syntax_error_is_a_finding_not_a_crash():
    findings = Linter().check_source("def broken(:\n",
                                     relpath="repro/x.py")
    assert len(findings) == 1
    assert "does not parse" in findings[0].message


def test_finding_format_is_path_line_col():
    findings = lint_fixture("bad_faultplan.py")
    assert findings[0].format().startswith("bad_faultplan.py:")
    assert ": faultplan-validation: " in findings[0].format()


# -------------------------------------------------------------- the repo itself

def test_src_repro_is_lint_clean():
    """The gate CI enforces: the whole package passes every rule."""
    findings = lint_paths([SRC / "repro"])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_real_faultplan_validates_every_knob():
    findings = Linter(["faultplan-validation"]).check_tree(SRC / "repro")
    assert findings == []
