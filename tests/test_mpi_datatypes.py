"""Tests for MPI datatypes and typed/persistent communication."""

import numpy as np
import pytest

from repro.errors import InvalidArgument, ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.mpi import Contiguous, Indexed, MpiWorld, Vector
from repro.mpi.datatypes import pack, unpack


@pytest.fixture(scope="module")
def world():
    return MpiWorld(2, num_frames=2048, eager_threshold=16 * 1024)


@pytest.fixture
def bufs(world):
    out = []
    for r in world.ranks:
        va = r.task.mmap(32)
        r.task.touch_pages(va, 32)
        out.append(va)
    return out


class TestDatatypeShapes:
    def test_contiguous(self):
        d = Contiguous(100)
        assert d.size == 100 and d.extent == 100
        assert list(d.blocks()) == [(0, 100)]

    def test_vector(self):
        d = Vector(count=3, blocklen=8, stride=32)
        assert d.size == 24
        assert d.extent == 2 * 32 + 8
        assert list(d.blocks()) == [(0, 8), (32, 8), (64, 8)]

    def test_indexed(self):
        d = Indexed(((10, 4), (0, 2), (50, 6)))
        assert d.size == 12
        assert d.extent == 56
        assert list(d.blocks()) == [(10, 4), (0, 2), (50, 6)]

    def test_empty_shapes(self):
        assert Contiguous(0).size == 0
        assert list(Contiguous(0).blocks()) == []
        assert Vector(0, 8, 16).extent == 0
        assert Indexed(()).extent == 0

    def test_validation(self):
        with pytest.raises(InvalidArgument):
            Contiguous(-1)
        with pytest.raises(InvalidArgument):
            Vector(2, 16, 8)   # overlapping blocks
        with pytest.raises(InvalidArgument):
            Indexed(((-1, 4),))


class TestPackUnpack:
    def test_vector_roundtrip(self, world, bufs):
        t = world.rank(0).task
        matrix = np.arange(64, dtype=np.uint8).reshape(8, 8)
        t.write(bufs[0], matrix.tobytes())
        # Column 3 of a row-major 8x8 byte matrix.
        col = Vector(count=8, blocklen=1, stride=8)
        data = pack(t, bufs[0] + 3, col)
        assert data == matrix[:, 3].tobytes()
        unpack(t, bufs[0] + 5, col, data)
        got = np.frombuffer(t.read(bufs[0], 64),
                            dtype=np.uint8).reshape(8, 8)
        assert (got[:, 5] == matrix[:, 3]).all()

    def test_unpack_size_checked(self, world, bufs):
        t = world.rank(0).task
        with pytest.raises(InvalidArgument):
            unpack(t, bufs[0], Contiguous(8), b"short")


class TestTypedTransfer:
    def test_matrix_column_send(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        matrix = np.arange(256, dtype=np.uint8).reshape(16, 16)
        r0.task.write(bufs[0], matrix.tobytes())
        col = Vector(count=16, blocklen=1, stride=16)
        r1.task.write(bufs[1], bytes(256))
        # Co-sim: the send is blocking but eager, so the message is
        # buffered as unexpected and the recv completes it.
        r0.send_typed(1, 5, bufs[0] + 7, col)
        r1.recv_typed(0, 5, bufs[1] + 2, col)
        got = np.frombuffer(r1.task.read(bufs[1], 256),
                            dtype=np.uint8).reshape(16, 16)
        assert (got[:, 2] == matrix[:, 7]).all()

    def test_indexed_to_contiguous(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        r0.task.write(bufs[0], b"AABBBBCCCCCCDD")
        dt = Indexed(((0, 2), (6, 6)))
        r0.send_typed(1, 6, bufs[0], dt)
        r1.recv_typed(0, 6, bufs[1], Contiguous(8))
        assert r1.task.read(bufs[1], 8) == b"AACCCCCC"

    def test_oversize_typed_rejected(self, world, bufs):
        r0 = world.rank(0)
        huge = Contiguous(r0.TYPED_SCRATCH_PAGES * PAGE_SIZE + 1)
        with pytest.raises(ViaError):
            r0.send_typed(1, 7, bufs[0], huge)


class TestPersistentRequests:
    def test_send_recv_cycle_reuse(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        nbytes = 2048
        psend = r0.send_init(1, 90, bufs[0], nbytes)
        precv = r1.recv_init(0, 90, bufs[1], nbytes)
        for i in range(5):
            r0.task.write(bufs[0], f"iteration-{i}".encode())
            psend.start()
            precv.start()
            st = precv.wait()
            psend.wait()
            assert st.nbytes == nbytes
            assert r1.task.read(bufs[1], 11) == f"iteration-{i}".encode()
        assert psend.starts == 5 and precv.starts == 5
        psend.free()
        precv.free()

    def test_rendezvous_persistent_preregisters(self, world, bufs):
        """Large persistent requests hold a registration so every start
        is a cache hit — zero registration misses in the loop."""
        r0, r1 = world.rank(0), world.rank(1)
        nbytes = 64 * 1024      # > eager threshold
        payload = bytes(np.random.default_rng(0).integers(
            0, 256, nbytes, dtype=np.uint8))
        r0.task.write(bufs[0], payload)
        psend = r0.send_init(1, 91, bufs[0], nbytes)
        precv = r1.recv_init(0, 91, bufs[1], nbytes)
        misses0 = (r0.endpoints[1].cache.stats.misses
                   + r1.endpoints[0].cache.stats.misses)
        for _ in range(4):
            psend.start()
            precv.start()
            precv.wait()
            psend.wait()
        misses = (r0.endpoints[1].cache.stats.misses
                  + r1.endpoints[0].cache.stats.misses - misses0)
        assert misses == 0
        assert r1.task.read(bufs[1], nbytes) == payload
        psend.free()
        precv.free()
        # Pins released after free: pages become evictable.
        frame = r1.task.physical_pages(bufs[1], 1)[0]
        r1.endpoints[0].cache.flush()
        assert r1.machine.kernel.pagemap.page(frame).pin_count == 0

    def test_double_start_rejected(self, world, bufs):
        r0, r1 = world.rank(0), world.rank(1)
        precv = r1.recv_init(0, 92, bufs[1], 64)
        precv.start()
        with pytest.raises(ViaError):
            precv.start()
        r0.isend(1, 92, bufs[0], 8)
        precv.wait()
        precv.free()

    def test_free_while_active_rejected(self, world, bufs):
        r1 = world.rank(1)
        precv = r1.recv_init(0, 93, bufs[1], 64)
        precv.start()
        with pytest.raises(ViaError):
            precv.free()
        # clean up: satisfy the recv
        world.rank(0).isend(1, 93, bufs[0], 4)
        precv.wait()
        precv.free()
        precv.free()   # idempotent

    def test_wait_before_start_rejected(self, world, bufs):
        r1 = world.rank(1)
        precv = r1.recv_init(0, 94, bufs[1], 64)
        with pytest.raises(ViaError):
            precv.wait()
        precv.free()
