"""Tests for the error hierarchy and public-API hygiene."""

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_layer_branches(self):
        assert issubclass(errors.BadPhysicalAddress, errors.HardwareError)
        assert issubclass(errors.SegmentationFault, errors.KernelError)
        assert issubclass(errors.ProtectionError, errors.ViaError)
        assert not issubclass(errors.KernelError, errors.HardwareError)

    def test_via_errors_carry_vip_status(self):
        assert errors.ProtectionError("x").status == \
            "VIP_PROTECTION_ERROR"
        assert errors.NotRegistered("x").status == "VIP_INVALID_MEMORY"
        assert errors.DescriptorError("x").status == \
            "VIP_INVALID_PARAMETER"
        assert errors.QueueEmpty("x").status == "VIP_NOT_DONE"
        assert errors.ViaError("x").status == "VIP_ERROR"
        assert errors.ViaError("x", status="CUSTOM").status == "CUSTOM"

    def test_package_root_exports(self):
        assert repro.__version__
        assert repro.Kernel is not None
        assert repro.Machine is not None   # lazy attribute
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestDeprecatedAliases:
    """Regression: ``errors.ConnectionError_`` resolved silently — code
    could keep using the dead name forever without a single warning."""

    def test_connection_error_alias_warns(self):
        with pytest.warns(DeprecationWarning,
                          match="use ViaConnectionError"):
            alias = errors.ConnectionError_
        assert alias is errors.ViaConnectionError

    def test_alias_warns_on_every_access(self):
        # Module __getattr__ fires per lookup: no warn-once cache that
        # would hide later uses added after the first was fixed.
        for _ in range(2):
            with pytest.warns(DeprecationWarning):
                errors.ConnectionError_

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="NoSuchError"):
            errors.NoSuchError


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


class TestApiHygiene:
    def test_every_module_has_a_docstring(self):
        missing = [m.__name__ for m in _walk_modules()
                   if not (m.__doc__ or "").strip()]
        assert missing == []

    def test_every_public_class_documented(self):
        missing = []
        for module in _walk_modules():
            for name, obj in vars(module).items():
                if (inspect.isclass(obj) and not name.startswith("_")
                        and obj.__module__ == module.__name__
                        and not (obj.__doc__ or "").strip()):
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_every_public_function_documented(self):
        missing = []
        for module in _walk_modules():
            for name, obj in vars(module).items():
                if (inspect.isfunction(obj) and not name.startswith("_")
                        and obj.__module__ == module.__name__
                        and not (obj.__doc__ or "").strip()):
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_public_methods_documented(self):
        missing = []
        for module in _walk_modules():
            for cname, cls in vars(module).items():
                if not (inspect.isclass(cls)
                        and cls.__module__ == module.__name__):
                    continue
                for mname, meth in vars(cls).items():
                    if not (inspect.isfunction(meth)
                            and not mname.startswith("_")):
                        continue
                    # inspect.getdoc follows the MRO, so an override of
                    # a documented base method (e.g. a LockingBackend
                    # implementation) counts as documented.
                    if not (inspect.getdoc(getattr(cls, mname))
                            or "").strip():
                        missing.append(
                            f"{module.__name__}.{cname}.{mname}")
        assert missing == []
