"""Tests for the observability layer (repro.obs).

Covers the metric primitives, the span recorder's nesting and exports,
the facade's enabled/disabled gating, and end-to-end snapshots of an
instrumented workload (including determinism under a fixed seed).
"""

import json

import pytest

from repro.msg.endpoint import make_pair
from repro.msg.protocols import RendezvousZeroCopyProtocol
from repro.obs import Observability
from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, NS_BUCKETS, SIZE_BUCKETS,
)
from repro.obs.spans import SpanRecorder
from repro.sim.clock import SimClock
from repro.via.machine import Cluster


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5

    def test_negative_increment_rejected(self):
        c = Counter("x")
        with pytest.raises(ValueError, match="negative"):
            c.inc(-1)

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_tracks_extremes(self):
        g = Gauge("depth")
        g.set(5)
        g.set(2)
        g.set(9)
        assert g.snapshot() == {"value": 9, "max": 9, "min": 2}

    def test_inc_dec(self):
        g = Gauge("depth")
        g.inc(3)
        g.dec(1)
        assert g.value == 2
        assert g.max_value == 3

    def test_reset(self):
        g = Gauge("depth")
        g.set(7)
        g.reset()
        assert g.snapshot() == {"value": 0, "max": None, "min": None}


class TestHistogram:
    def test_observe_buckets_by_upper_bound(self):
        h = Histogram("lat", buckets=(10, 100, 1000))
        for v in (5, 10, 11, 5000):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == {"le_10": 2, "le_100": 1,
                                   "le_1000": 0, "inf": 1}
        assert snap["min"] == 5 and snap["max"] == 5000
        assert snap["mean"] == pytest.approx((5 + 10 + 11 + 5000) / 4)

    def test_quantile(self):
        h = Histogram("lat", buckets=(10, 100, 1000))
        for v in (1, 2, 3, 50, 5000):
            h.observe(v)
        assert h.quantile(0.5) == 10       # 3rd of 5 lands in le_10
        assert h.quantile(1.0) == float("inf")
        assert Histogram("e").quantile(0.5) is None
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_non_ascending_buckets_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("bad", buckets=(10, 5))

    def test_default_bucket_tables_are_ascending(self):
        assert list(NS_BUCKETS) == sorted(NS_BUCKETS)
        assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already exists as counter"):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.counter("a.first").inc(2)
        assert list(reg.snapshot()) == ["a.first", "z.last"]

    def test_contains_len_get(self):
        reg = MetricsRegistry()
        reg.gauge("g")
        assert "g" in reg and "h" not in reg
        assert len(reg) == 1
        assert reg.get("g").kind == "gauge"
        assert reg.get("h") is None

    def test_reset_keeps_names(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(9)
        reg.reset()
        assert reg.counter("c").value == 0
        assert "c" in reg


class TestSpanRecorder:
    def make(self):
        clock = SimClock()
        return clock, SpanRecorder(clock)

    def test_span_records_sim_elapsed(self):
        clock, rec = self.make()
        with rec.span("work"):
            clock.charge(500)
        (s,) = rec.of_name("work")
        assert s.duration_ns == 500
        assert s.depth == 0 and s.parent is None

    def test_nesting_depth_and_parent(self):
        clock, rec = self.make()
        with rec.span("outer"):
            clock.charge(10)
            with rec.span("inner"):
                clock.charge(5)
        (inner,) = rec.of_name("inner")
        (outer,) = rec.of_name("outer")
        assert inner.depth == 1
        assert inner.parent == outer.index
        assert outer.duration_ns == 15
        assert rec.open_depth == 0

    def test_mismatched_exit_unwinds_children(self):
        clock, rec = self.make()
        outer = rec.enter("outer")
        rec.enter("inner")
        rec.exit(outer)            # closes inner too
        assert rec.open_depth == 0
        assert len(rec.of_name("inner")) == 1
        with pytest.raises(ValueError, match="not open"):
            rec.exit(outer)

    def test_ring_eviction_counts_dropped(self):
        clock = SimClock()
        rec = SpanRecorder(clock, maxlen=4)
        for _ in range(6):
            with rec.span("s"):
                clock.charge(1)
        assert len(rec) == 4
        assert rec.dropped == 2
        assert rec.summary()["dropped"] == 2

    def test_summary_aggregates_per_name(self):
        clock, rec = self.make()
        for ns in (100, 300):
            with rec.span("a"):
                clock.charge(ns)
        with rec.span("b"):
            clock.charge(50)
        summary = rec.summary()
        assert summary["by_name"]["a"] == {
            "count": 2, "total_ns": 400, "mean_ns": 200.0}
        assert list(summary["by_name"]) == ["a", "b"]

    def test_chrome_export_round_trips(self):
        clock, rec = self.make()
        with rec.span("xfer", nbytes=4096):
            clock.charge(2000)
        doc = json.loads(json.dumps(rec.to_chrome()))
        (ev,) = doc["traceEvents"]
        assert ev["name"] == "xfer" and ev["ph"] == "X"
        assert ev["ts"] == 0.0 and ev["dur"] == 2.0   # µs
        assert ev["args"] == {"nbytes": 4096, "depth": 0}

    def test_jsonl_export_one_object_per_line(self):
        clock, rec = self.make()
        with rec.span("a"):
            clock.charge(1)
        with rec.span("b"):
            clock.charge(2)
        lines = rec.to_jsonl().splitlines()
        assert [json.loads(li)["name"] for li in lines] == ["a", "b"]


class TestObservabilityFacade:
    def make(self):
        clock = SimClock()
        return clock, Observability(clock)

    def test_disabled_by_default_and_emits_nothing(self):
        _, obs = self.make()
        assert not obs.enabled
        obs.inc("c")
        obs.set_gauge("g", 1)
        obs.observe("h", 5)
        with obs.span("s"):
            pass
        assert len(obs.metrics) == 0
        assert len(obs.spans) == 0

    def test_disabled_span_is_shared_noop(self):
        from repro.obs import _NULL_SPAN
        _, obs = self.make()
        assert obs.span("a") is obs.span("b") is _NULL_SPAN

    def test_enable_disable_chain(self):
        _, obs = self.make()
        assert obs.enable() is obs
        obs.inc("c", 2)
        assert obs.disable() is obs
        obs.inc("c", 100)                       # ignored
        assert obs.counter("c").value == 2      # accumulations survive

    def test_reset_drops_everything(self):
        clock, obs = self.make()
        obs.enable()
        obs.inc("c")
        with obs.span("s"):
            clock.charge(1)
        obs.reset()
        assert obs.counter("c").value == 0
        assert len(obs.spans) == 0

    def test_snapshot_shape(self):
        clock, obs = self.make()
        obs.enable()
        obs.inc("a.count", 3)
        obs.set_gauge("a.depth", 2)
        obs.observe("a.lat", 150)
        with obs.span("a.work"):
            clock.charge(42)
        snap = obs.snapshot()
        assert snap["enabled"] is True
        assert snap["now_ns"] == clock.now_ns
        assert snap["metrics"]["a.count"] == 3
        assert snap["metrics"]["a.depth"]["value"] == 2
        assert snap["metrics"]["a.lat"]["count"] == 1
        assert snap["spans"]["by_name"]["a.work"]["total_ns"] == 42
        json.dumps(snap)                        # JSON-safe throughout


def run_workload(seed: int) -> dict:
    """One seeded two-machine transfer workload, observability on."""
    cluster = Cluster(2, num_frames=1024, backend="kiobuf", seed=seed)
    cluster.obs.enable()
    s, r = make_pair(cluster)
    src = s.task.mmap(8)
    s.task.touch_pages(src, 8)
    dst = r.task.mmap(8)
    r.task.touch_pages(dst, 8)
    s.task.write(src, b"\x5a" * 8192)
    proto = RendezvousZeroCopyProtocol(use_cache=True)
    for _ in range(4):
        assert proto.transfer(s, r, src, dst, 8192).ok
    return cluster.obs.snapshot()


class TestEndToEnd:
    def test_instrumented_workload_populates_metrics(self):
        snap = run_workload(seed=0)
        metrics = snap["metrics"]
        assert metrics["via.nic.completions.send"] > 0
        assert metrics["via.nic.doorbell_to_completion_ns"]["count"] > 0
        assert metrics["hw.dma.bursts"] > 0
        assert metrics["msg.transfers.rendezvous-zerocopy+cache"] == 4
        assert metrics["core.regcache.hit_rate"]["value"] > 0
        assert snap["spans"]["by_name"][
            "msg.transfer.rendezvous-zerocopy+cache"]["count"] == 4

    @pytest.mark.san_suppress   # suite gauges differ between the runs
    def test_snapshot_deterministic_under_fixed_seed(self):
        a = run_workload(seed=7)
        b = run_workload(seed=7)
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True)

    def test_cluster_shares_one_observability(self):
        cluster = Cluster(2)
        assert cluster[0].obs is cluster[1].obs is cluster.obs

    def test_watchdog_violation_carries_metrics_snapshot(self):
        """core.audit attaches the full observability snapshot to every
        InvariantViolation."""
        from repro.core.audit import InvariantWatchdog
        from repro.errors import InvariantViolation
        from repro.via.machine import Machine
        m = Machine()
        m.obs.enable()
        m.kernel.obs.inc("test.marker", 9)
        watchdog = InvariantWatchdog().arm(m)
        t = m.spawn("victim")
        va = t.mmap(1)
        t.touch_pages(va, 1)
        # Corrupt accounting on purpose: pin a frame, then free it.
        pte = t.page_table.lookup(va // 4096)
        m.kernel.pagemap.page(pte.frame).pin_count += 1
        with pytest.raises(InvariantViolation) as exc_info:
            watchdog.check()
        snap = exc_info.value.snapshot["metrics"]
        assert snap["metrics"]["test.marker"] == 9
        watchdog.disarm()
