"""ProcessKilled must propagate, never be masked or swallowed.

A crash point fires mid-operation and the kernel's kill path has
already torn the process down; any ``except Exception`` handler on the
unwind route that "compensates" (or swallows) turns a modelled process
death into a double release or a silent success.  These are the
regression tests for the handlers repro-lint's ``broad-except`` rule
polices.
"""

import pytest

from repro.core.audit import audit_pin_leaks, audit_tpt_consistency
from repro.errors import InvalidArgument, ProcessKilled
from repro.hw.physmem import PAGE_SIZE
from repro.sim.faults import (
    CRASH_POINTS, KERNEL_CRASH_POINTS, REGISTRATION_CRASH_POINTS,
    FaultPlan,
)
from repro.via.machine import Machine


def crashing_machine(point, backend="kiobuf"):
    m = Machine("m0", num_frames=256, backend=backend)
    m.inject_faults(FaultPlan(crash_point=point))
    t = m.spawn("victim")
    ua = m.user_agent(t)
    va = t.mmap(8)
    t.touch_pages(va, 8)
    return m, t, ua, va


class TestKiobufPinCrash:
    """Death mid-``map_user_kiobuf``: pins taken so far predate the
    kiobuf record, so the exit sweep cannot see them — the pin loop's
    unwind handler must release them *and* re-raise ProcessKilled."""

    def test_processkilled_propagates(self):
        m, t, ua, va = crashing_machine("kiobuf.pin")
        with pytest.raises(ProcessKilled) as err:
            ua.register_mem(va, 8 * PAGE_SIZE)
        assert err.value.point == "kiobuf.pin"
        assert t.pid not in {task.pid for task in m.kernel.tasks}

    def test_no_pins_leak(self):
        m, t, ua, va = crashing_machine("kiobuf.pin")
        with pytest.raises(ProcessKilled):
            ua.register_mem(va, 8 * PAGE_SIZE)
        assert audit_pin_leaks(m.kernel, m.agent) == []
        assert all(pd.pin_count == 0 for pd in m.kernel.pagemap)

    def test_unwind_is_sanitizer_clean(self):
        # The unwind's UNPINs must pair with the PINs already emitted:
        # armed strict, the crash produces zero violations.
        m, t, ua, va = crashing_machine("kiobuf.pin")
        san = m.arm_sanitizer(strict=True)
        with pytest.raises(ProcessKilled):
            ua.register_mem(va, 8 * PAGE_SIZE)
        assert sum(san.counts.values()) == 0
        san.disarm()


class TestRegisterInstallCrash:
    """Death inside the TPT-install window: the kill's exit path has
    already swept the kiobuf, so the driver's compensation handler
    must NOT unlock again — and must not let the double-release error
    mask ProcessKilled."""

    def test_processkilled_not_masked(self):
        m, t, ua, va = crashing_machine("register.install")
        with pytest.raises(ProcessKilled) as err:
            ua.register_mem(va, 8 * PAGE_SIZE)
        assert err.value.point == "register.install"

    @pytest.mark.parametrize("backend",
                             ["kiobuf", "mlock", "mlock_naive"])
    def test_clean_state_after_install_crash(self, backend):
        m, t, ua, va = crashing_machine("register.install",
                                        backend=backend)
        with pytest.raises(ProcessKilled):
            ua.register_mem(va, 8 * PAGE_SIZE)
        assert m.agent.registrations == {}
        assert audit_tpt_consistency(m.agent) == []
        assert audit_pin_leaks(m.kernel, m.agent) == []


class TestAuditExceptionDiscipline:
    """``audit_tpt_consistency`` absorbs only the dangling-owner lookup
    failure; a crash point firing under an audit must still unwind."""

    def test_dangling_registration_is_skipped(self):
        m = Machine("m0", num_frames=256)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(4)
        ua.register_mem(va, 4 * PAGE_SIZE)

        def find_task_gone(pid):
            raise InvalidArgument(f"no task with pid {pid}")

        m.kernel.find_task = find_task_gone
        assert audit_tpt_consistency(m.agent) == []

    def test_processkilled_propagates_through_audit(self):
        m = Machine("m0", num_frames=256)
        t = m.spawn("app")
        ua = m.user_agent(t)
        va = t.mmap(4)
        ua.register_mem(va, 4 * PAGE_SIZE)

        def find_task_killed(pid):
            raise ProcessKilled(f"pid {pid} killed", pid=pid,
                                point="audit")

        m.kernel.find_task = find_task_killed
        with pytest.raises(ProcessKilled):
            audit_tpt_consistency(m.agent)
        del m.kernel.find_task   # restore for the post-hoc audit


def test_kiobuf_pin_is_a_registered_crash_point():
    assert KERNEL_CRASH_POINTS == ("kiobuf.pin", "mlock.cap_raised")
    assert "kiobuf.pin" in CRASH_POINTS
    assert "mlock.cap_raised" in CRASH_POINTS
    assert "register.install" in REGISTRATION_CRASH_POINTS
    # A plan naming them validates.
    FaultPlan(crash_point="kiobuf.pin")
    FaultPlan(crash_point="mlock.cap_raised")
    FaultPlan(crash_point="register.install")
