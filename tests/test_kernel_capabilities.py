"""The capability model gating mlock, and the Kernel Agent's
cap_raise/do_mlock/cap_lower dance — including its exception safety.

Section 3.2: "only root processes have got the CAP_IPC_LOCK capability
for locking memory"; the Kernel Agent "can grant that capability to the
current process by means of cap_raise(), then call do_mlock and reclaim
the capability again by cap_lower()".  The reclaim half must hold on
*every* exit path: a failed mlock — or the process dying inside the
raised window — must not mint a permanently privileged task.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgument, PermissionDenied, ProcessKilled
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.capabilities import (
    CAP_IPC_LOCK, ROOT_UID, cap_lower, cap_raise, capable,
)
from repro.kernel.kernel import Kernel
from repro.kernel.mlock import mlock_with_cap_dance, sys_mlock
from repro.sim.faults import FaultPlan
from repro.via.machine import Machine


class TestCapableSemantics:
    def test_non_root_starts_without_cap_ipc_lock(self):
        kernel = Kernel()
        task = kernel.create_task(uid=1000)
        assert not capable(task, CAP_IPC_LOCK)

    def test_root_is_implicitly_capable(self):
        """Root holds every capability without an explicit grant."""
        kernel = Kernel()
        root = kernel.create_task(uid=ROOT_UID)
        assert CAP_IPC_LOCK not in root.capabilities
        assert capable(root, CAP_IPC_LOCK)
        assert capable(root, "CAP_SYS_ADMIN")

    def test_raise_then_lower_round_trips(self):
        kernel = Kernel()
        task = kernel.create_task(uid=1000)
        cap_raise(task, CAP_IPC_LOCK)
        assert capable(task, CAP_IPC_LOCK)
        cap_lower(task, CAP_IPC_LOCK)
        assert not capable(task, CAP_IPC_LOCK)

    def test_cap_lower_is_idempotent(self):
        """Lowering a capability the task does not hold is a no-op, so
        error paths may lower unconditionally."""
        kernel = Kernel()
        task = kernel.create_task(uid=1000)
        cap_lower(task, CAP_IPC_LOCK)
        cap_lower(task, CAP_IPC_LOCK)
        assert not capable(task, CAP_IPC_LOCK)


class TestSysMlockGate:
    def test_non_root_mlock_denied(self):
        kernel = Kernel()
        task = kernel.create_task(uid=1000)
        va = task.mmap(2)
        with pytest.raises(PermissionDenied):
            sys_mlock(kernel, task, va, 2 * PAGE_SIZE)

    def test_root_mlock_allowed(self):
        kernel = Kernel()
        root = kernel.create_task(uid=ROOT_UID)
        va = root.mmap(2)
        sys_mlock(kernel, root, va, 2 * PAGE_SIZE)
        assert root.resident_pages() >= 2

    def test_agent_registration_succeeds_for_non_root(self):
        """The whole point of the dance: an unprivileged process can
        register memory *through the Kernel Agent* even though its own
        mlock would be denied."""
        machine = Machine(backend="mlock")
        task = machine.spawn("app", uid=1000)
        ua = machine.user_agent(task)
        va = task.mmap(2)
        task.touch_pages(va, 2)
        reg = ua.register_mem(va, 2 * PAGE_SIZE)
        assert reg.handle in machine.agent.registrations
        assert not capable(task, CAP_IPC_LOCK)


class TestCapDanceExceptionSafety:
    def test_dance_restores_unprivileged_set(self):
        kernel = Kernel()
        task = kernel.create_task(uid=1000)
        va = task.mmap(2)
        mlock_with_cap_dance(kernel, task, va, 2 * PAGE_SIZE)
        assert CAP_IPC_LOCK not in task.capabilities

    def test_dance_keeps_preheld_capability(self):
        """A task that already held CAP_IPC_LOCK keeps it afterwards —
        the dance restores the set exactly, it does not blindly lower."""
        kernel = Kernel()
        task = kernel.create_task(uid=1000)
        cap_raise(task, CAP_IPC_LOCK)
        va = task.mmap(2)
        mlock_with_cap_dance(kernel, task, va, 2 * PAGE_SIZE)
        assert CAP_IPC_LOCK in task.capabilities

    def test_failed_mlock_does_not_leak_capability(self):
        kernel = Kernel()
        task = kernel.create_task(uid=1000)
        with pytest.raises(InvalidArgument):
            # unmapped range: sys_mlock raises after the raise half
            mlock_with_cap_dance(kernel, task, 0x7000_0000, PAGE_SIZE)
        assert CAP_IPC_LOCK not in task.capabilities

    def test_death_inside_raised_window_does_not_leak_capability(self):
        """The ``mlock.cap_raised`` crash point: the process dies with
        the capability temporarily raised; the finally-path must still
        reclaim it (a respawned pid must not inherit privilege through
        any leftover task state)."""
        kernel = Kernel()
        kernel.fault_plan = FaultPlan(seed=1,
                                      crash_point="mlock.cap_raised")
        task = kernel.create_task(uid=1000)
        va = task.mmap(2)
        with pytest.raises(ProcessKilled):
            mlock_with_cap_dance(kernel, task, va, 2 * PAGE_SIZE)
        assert CAP_IPC_LOCK not in task.capabilities
        assert not any(t.pid == task.pid for t in kernel.tasks)
