"""Chaos suite: seeded fault plans against the full VIA stack.

Every test here follows the same contract: under an adversarial but
*deterministic* fault plan, a RELIABLE VI either delivers each payload
byte-identical (recovered by retransmission/NACK/dedup) or completes
descriptors with an honest error status — never silent corruption, and
never a leaked pin once the dust settles.
"""

import numpy as np
import pytest

from repro.core.audit import (
    audit_kernel_invariants, audit_pin_leaks, audit_tpt_consistency,
)
from repro.errors import ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.msg.endpoint import make_pair
from repro.msg.protocols import EagerProtocol, RendezvousZeroCopyProtocol
from repro.sim.faults import FaultPlan
from repro.via.constants import (
    VIP_ERROR_CONN_LOST, VIP_ERROR_NIC, VIP_ERROR_RESOURCE, VIP_SUCCESS,
    ReliabilityLevel, ViState,
)
from repro.via.descriptor import Descriptor
from repro.via.machine import Cluster, Machine, connected_pair


def payload_bytes(rng, n: int) -> bytes:
    return bytes(rng.integers(0, 256, n, dtype=np.uint8))


def chaos_pair(plan=None, num_frames=2048, **kwargs):
    """A connected endpoint pair; the plan is armed *after* setup so
    faults hit the communication path, not pool construction."""
    cluster = Cluster(2, num_frames=num_frames)
    s, r = make_pair(cluster, **kwargs)
    if plan is not None:
        cluster.inject_faults(plan)
    return cluster, s, r


def alloc_buffers(s, r, nbytes: int):
    pages = nbytes // PAGE_SIZE + 2
    src = s.task.mmap(pages)
    s.task.touch_pages(src, pages)
    dst = r.task.mmap(pages)
    r.task.touch_pages(dst, pages)
    return src, dst


def run_audits(cluster):
    """The post-chaos oracle: kernel invariants hold, the TPT is not
    stale, and no frame holds a pin that live registrations do not
    explain."""
    for m in cluster.machines:
        audit_kernel_invariants(m.kernel)
        assert audit_tpt_consistency(m.agent) == []
        assert audit_pin_leaks(m.kernel, m.agent) == []


def post_recv_buffer(ua, vi, npages=2):
    va = ua.task.mmap(npages)
    reg = ua.register_mem(va, npages * PAGE_SIZE)
    desc = Descriptor.recv([ua.segment(reg)])
    ua.post_recv(vi, desc)
    return va, reg, desc


class TestReliableSurvivesLoss:
    """Acceptance: loss_rate ≥ 0.2 on a RELIABLE_DELIVERY VI, ≥ 64
    transfers, every payload byte-identical via retransmission."""

    def test_heavy_loss_every_payload_delivered(self):
        plan = FaultPlan(seed=1234, loss_rate=0.25)
        cluster, s, r = chaos_pair(plan)
        rng = np.random.default_rng(99)
        for i in range(64):
            data = payload_bytes(rng, 1024 + i)
            s.send_chunk(data)
            got, _ = r.recv_chunk()
            assert got == data, f"transfer {i} not byte-identical"

        fabric = cluster.fabric
        assert fabric.packets_dropped > 0
        assert plan.stats.drops > 0
        # the recovery machinery visibly did the work
        assert cluster.trace.count("via_retransmit") > 0
        assert cluster.trace.count("via_retransmit_timeout") > 0
        assert cluster[0].nic.retransmits > 0
        run_audits(cluster)

    def test_backoff_grows_under_repeated_loss(self):
        plan = FaultPlan(seed=1234, loss_rate=0.25)
        cluster, s, r = chaos_pair(plan)
        rng = np.random.default_rng(99)
        for i in range(64):
            data = payload_bytes(rng, 512)
            s.send_chunk(data)
            assert r.recv_chunk()[0] == data
        base = cluster[0].kernel.costs.retransmit_timeout_ns
        waits = [e["waited_ns"]
                 for e in cluster.trace.of_kind("via_retransmit_timeout")]
        assert waits and min(waits) == base
        # at least one packet lost twice in a row → doubled timeout
        assert max(waits) >= 2 * base
        cap = cluster[0].kernel.costs.retransmit_timeout_max_ns
        assert max(waits) <= cap

    def test_ack_loss_is_recovered_by_dedup(self):
        """Pure ACK loss: data always arrives, the lost ACK forces a
        retransmit, and the receiver's seq dedup keeps delivery
        exactly-once."""
        plan = FaultPlan(seed=8, loss_rate=0.3)
        cluster, s, r = chaos_pair(plan)
        rng = np.random.default_rng(8)
        n = 32
        for i in range(n):
            data = payload_bytes(rng, 256)
            s.send_chunk(data)
            assert r.recv_chunk()[0] == data
        # nothing extra queued: dedup ate every replayed delivery
        assert r.try_recv_chunk() is None
        if cluster.fabric.acks_dropped:
            assert r.machine.nic.duplicates_dropped > 0


class TestDuplicationAndCorruption:
    def test_duplicates_are_deduplicated(self):
        plan = FaultPlan(seed=5, duplicate_rate=1.0)
        cluster, s, r = chaos_pair(plan)
        rng = np.random.default_rng(5)
        for i in range(8):
            data = payload_bytes(rng, 700)
            s.send_chunk(data)
            assert r.recv_chunk()[0] == data
        assert r.machine.nic.duplicates_dropped >= 8
        assert cluster.trace.count("via_duplicate") >= 8
        assert cluster.trace.count("packet_duplicated") >= 8
        assert r.try_recv_chunk() is None
        run_audits(cluster)

    def test_corruption_is_nacked_and_resent(self):
        plan = FaultPlan(seed=6, corrupt_rate=0.4)
        cluster, s, r = chaos_pair(plan)
        rng = np.random.default_rng(6)
        for i in range(16):
            data = payload_bytes(rng, 900)
            s.send_chunk(data)
            assert r.recv_chunk()[0] == data, "corrupt payload delivered"
        assert cluster.fabric.packets_nacked > 0
        assert cluster.trace.count("packet_nack") > 0
        assert cluster.trace.count("via_retransmit") > 0
        run_audits(cluster)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_mixed_chaos_never_silently_corrupts(self, seed):
        """Property: under combined loss/duplication/corruption/delay,
        every transfer either arrives byte-identical or fails with an
        error status — and the post-mortem audits stay clean."""
        plan = FaultPlan(seed=seed, loss_rate=0.15, duplicate_rate=0.1,
                         corrupt_rate=0.1, delay_rate=0.05)
        cluster, s, r = chaos_pair(plan)
        rng = np.random.default_rng(seed)
        delivered = 0
        errored = False
        for i in range(32):
            data = payload_bytes(rng, int(rng.integers(1, 4097)))
            try:
                s.send_chunk(data)
                got, _ = r.recv_chunk()
            except ViaError as exc:
                # honest failure: the VI went to ERROR, nothing half-done
                assert exc.status == VIP_ERROR_CONN_LOST
                assert s.vi.state == ViState.ERROR \
                    or r.vi.state == ViState.ERROR
                errored = True
                break
            assert got == data, f"seed {seed}: silent corruption at {i}"
            delivered += 1
        assert errored or delivered == 32
        run_audits(cluster)

    def test_protocol_transfer_over_chaotic_fabric(self):
        plan = FaultPlan(seed=11, loss_rate=0.15, duplicate_rate=0.05,
                         corrupt_rate=0.05)
        cluster, s, r = chaos_pair(plan)
        nbytes = 6 * PAGE_SIZE + 123
        src, dst = alloc_buffers(s, r, nbytes)
        data = payload_bytes(np.random.default_rng(11), nbytes)
        s.task.write(src, data)
        res = EagerProtocol().transfer(s, r, src, dst, nbytes)
        assert res.ok and not res.corrupt
        assert r.task.read(dst, nbytes) == data
        assert cluster.fabric.packets_dropped > 0
        run_audits(cluster)


class TestNicReset:
    """Acceptance: an unrecoverable plan (NIC reset) moves the VI to
    ERROR and completes pending descriptors with VIP_ERROR_CONN_LOST."""

    def test_reset_errors_vi_and_flushes_descriptors(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        pending = [post_recv_buffer(ua_r, vi_r)[2] for _ in range(3)]
        plan = FaultPlan(nic_reset_at_ns=0,
                         nic_reset_name=cluster[1].nic.name)
        cluster.inject_faults(plan)

        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        desc = ua_s.send_bytes(vi_s, sreg, b"doomed")

        assert cluster[1].nic.resets == 1
        assert cluster.trace.count("nic_reset") == 1
        assert vi_r.state == ViState.ERROR
        for d in pending:
            assert d.done
            assert d.status == VIP_ERROR_CONN_LOST
        # the sender discovers the loss on its next transmission
        assert desc.status == VIP_ERROR_CONN_LOST
        assert vi_s.state == ViState.ERROR
        # host-side locking state survives the adapter reset intact
        run_audits(cluster)

    def test_reset_mid_stream_surfaces_conn_lost(self):
        cluster, s, r = chaos_pair()
        plan = FaultPlan(nic_reset_at_ns=cluster.clock.now_ns + 1,
                         nic_reset_name=r.machine.nic.name)
        cluster.inject_faults(plan)
        with pytest.raises(ViaError) as exc:
            for i in range(64):
                s.send_chunk(b"x" * 64)
                r.recv_chunk()
        assert exc.value.status == VIP_ERROR_CONN_LOST
        assert r.vi.state == ViState.ERROR
        # every preposted bounce descriptor was flushed, none left limbo
        for slot in r.bounce_slots:
            assert slot.descriptor.done
            assert slot.descriptor.status == VIP_ERROR_CONN_LOST
        run_audits(cluster)


class TestDmaFaults:
    def test_send_side_dma_fault_completes_with_error(self):
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        post_recv_buffer(ua_r, vi_r)
        cluster.inject_faults(FaultPlan(seed=7, dma_fail_rate=1.0))
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        desc = ua_s.send_bytes(vi_s, sreg, b"never leaves")
        assert desc.status == VIP_ERROR_NIC
        assert vi_s.state == ViState.ERROR
        assert ua_s.nic.dma_faults == 1
        assert cluster.trace.count("dma_fault_injected") >= 1
        assert cluster.trace.count("via_dma_fault") == 1
        run_audits(cluster)

    def test_recv_side_dma_fault_is_honest(self):
        """A fault on the receiver's scatter DMA must error both sides —
        the receiver must never complete VIP_SUCCESS over garbage."""
        cluster, ua_s, ua_r, vi_s, vi_r = connected_pair("kiobuf")
        _, _, rdesc = post_recv_buffer(ua_r, vi_r)
        # arm only the receiving machine's engines
        cluster[1].inject_faults(FaultPlan(seed=7, dma_fail_rate=1.0))
        sva = ua_s.task.mmap(1)
        sreg = ua_s.register_mem(sva, PAGE_SIZE)
        desc = ua_s.send_bytes(vi_s, sreg, b"payload")
        assert rdesc.status == VIP_ERROR_NIC
        assert desc.status == VIP_ERROR_NIC
        assert vi_s.state == ViState.ERROR
        assert vi_r.state == ViState.ERROR
        run_audits(cluster)


class TestRegistrationPressure:
    def test_zerocopy_degrades_to_copy_when_registration_fails(self):
        cluster, s, r = chaos_pair()
        nbytes = 8 * PAGE_SIZE
        src, dst = alloc_buffers(s, r, nbytes)
        data = payload_bytes(np.random.default_rng(13), nbytes)
        s.task.write(src, data)
        cluster.inject_faults(FaultPlan(registration_failures=3))

        res = RendezvousZeroCopyProtocol(use_cache=True).transfer(
            s, r, src, dst, nbytes)
        assert res.ok and not res.corrupt
        assert res.degraded
        assert res.registration_retries > 0
        assert r.task.read(dst, nbytes) == data
        assert cluster.trace.count("fault_registration") == 3
        assert cluster.trace.count("regcache_retry") >= 3
        assert cluster.trace.count("protocol_fallback") == 1
        run_audits(cluster)

    def test_transient_registration_failure_is_retried_away(self):
        """One injected failure is absorbed by the cache's bounded
        retry: the transfer stays zero-copy."""
        cluster, s, r = chaos_pair()
        nbytes = 4 * PAGE_SIZE
        src, dst = alloc_buffers(s, r, nbytes)
        data = payload_bytes(np.random.default_rng(14), nbytes)
        s.task.write(src, data)
        cluster.inject_faults(FaultPlan(registration_failures=1))

        res = RendezvousZeroCopyProtocol(use_cache=True).transfer(
            s, r, src, dst, nbytes)
        assert res.ok and not res.degraded
        assert res.registration_retries == 1
        assert r.task.read(dst, nbytes) == data
        run_audits(cluster)

    def test_pin_failures_surface_as_resource_errors(self):
        m = Machine()
        t = m.spawn("pinner")
        ua = m.user_agent(t)
        va = t.mmap(2)
        t.touch_pages(va, 2)
        m.inject_faults(FaultPlan(pin_failures=2))
        for _ in range(2):
            with pytest.raises(ViaError) as exc:
                ua.register_mem(va, PAGE_SIZE)
            assert exc.value.status == VIP_ERROR_RESOURCE
        # budget exhausted: the very same call now succeeds
        reg = ua.register_mem(va, PAGE_SIZE)
        assert reg.handle
        assert m.kernel.trace.count("fault_pin") == 2
        audit_kernel_invariants(m.kernel)
        assert audit_pin_leaks(m.kernel, m.agent) == []


class TestPinLeakAudit:
    def test_clean_machine_has_no_leaks(self):
        cluster, s, r = chaos_pair()
        run_audits(cluster)

    def test_synthetic_leak_is_detected(self):
        """The audit is a real oracle: a pin not backed by a live
        registration is flagged."""
        m = Machine()
        t = m.spawn("leaker")
        va = t.mmap(1)
        t.touch_pages(va, 1)
        pte = t.page_table.lookup(va // PAGE_SIZE)
        m.kernel.pagemap.page(pte.frame).pin()   # orphan pin, no reg
        leaks = audit_pin_leaks(m.kernel, m.agent)
        assert len(leaks) == 1
        assert leaks[0].frame == pte.frame
        assert leaks[0].pin_count == 1
        assert leaks[0].expected == 0
