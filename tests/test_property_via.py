"""Property-based test of the VIA registration layer: random register/
deregister/pressure/traffic sequences on the kiobuf backend must keep
the TPT consistent with the page tables at every step."""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, precondition, rule,
)

from repro.core.audit import audit_kernel_invariants, audit_tpt_consistency
from repro.errors import ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.sim.costs import FREE
from repro.via.constants import VIP_SUCCESS
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.machine import Machine


class ViaRegistrationOps(RuleBasedStateMachine):
    """Random workload against one machine with the kiobuf backend."""

    def __init__(self) -> None:
        super().__init__()
        self.machine = Machine(num_frames=192, backend="kiobuf",
                               tpt_entries=96, costs=FREE,
                               min_free_pages=4)
        self.task = None
        self.ua = None
        self.buffer_va = 0
        self.regs = []           # live registrations

    @initialize()
    def setup(self) -> None:
        self.task = self.machine.spawn("app")
        self.ua = self.machine.user_agent(self.task)
        self.buffer_va = self.task.mmap(24)

    @rule(page=st.integers(0, 20), pages=st.integers(1, 4))
    def register(self, page: int, pages: int) -> None:
        pages = min(pages, 24 - page)
        va = self.buffer_va + page * PAGE_SIZE
        try:
            reg = self.ua.register_mem(va, pages * PAGE_SIZE,
                                       rdma_write=True)
        except ViaError as exc:
            assert exc.status == "VIP_ERROR_RESOURCE"
            return
        self.regs.append(reg)

    @precondition(lambda self: self.regs)
    @rule(idx=st.integers(0, 10**6))
    def deregister(self, idx: int) -> None:
        reg = self.regs.pop(idx % len(self.regs))
        self.ua.deregister_mem(reg)

    @rule(want=st.integers(1, 32))
    def pressure(self, want: int) -> None:
        paging.swap_out(self.machine.kernel, want)

    @precondition(lambda self: self.regs)
    @rule(idx=st.integers(0, 10**6), payload=st.binary(min_size=1,
                                                       max_size=32))
    def loopback_rdma(self, idx: int, payload: bytes) -> None:
        """RDMA-write into a live registration over a loopback VI pair
        and verify the data arrives through the process's own mapping."""
        reg = self.regs[idx % len(self.regs)]
        if len(payload) > reg.nbytes:
            payload = payload[:reg.nbytes]
        other = self.machine.spawn("peer")
        ua2 = self.machine.user_agent(other)
        sva = other.mmap(1)
        try:
            sreg = ua2.register_mem(sva, PAGE_SIZE)
        except ViaError:
            self.machine.kernel.exit_task(other)
            return
        v1 = ua2.create_vi()
        v2 = self.ua.create_vi()
        self.machine.connect_loopback(v1, v2)
        other.write(sva, payload)
        desc = Descriptor.rdma_write(
            [DataSegment(sreg.handle, sva, len(payload))],
            remote_handle=reg.handle, remote_va=reg.va)
        # The receiving VI (v2) is owned by the region's owner, so the
        # remote protection check passes and the data must land where
        # the owner can read it.
        ua2.post_send(v1, desc)
        assert desc.status == VIP_SUCCESS
        assert self.task.read(reg.va, len(payload)) == payload
        ua2.deregister_mem(sreg)
        self.machine.fabric.disconnect(self.machine.nic, v1.vi_id)
        self.machine.kernel.exit_task(other)

    @precondition(lambda self: self.regs)
    @rule(idx=st.integers(0, 10**6), payload=st.binary(min_size=1,
                                                       max_size=32))
    def dma_probe(self, idx: int, payload: bytes) -> None:
        """Raw DMA through the TPT's recorded frames must be visible
        through the owner's page tables (the E1 criterion)."""
        reg = self.regs[idx % len(self.regs)]
        if len(payload) > reg.nbytes:
            payload = payload[:reg.nbytes]
        segs = self.machine.nic.tpt.translate(
            reg.handle, reg.va, len(payload), self.ua.prot_tag)
        self.machine.nic.dma.write_scatter(segs, payload)
        assert self.task.read(reg.va, len(payload)) == payload

    # -- invariants ------------------------------------------------------------

    @invariant()
    def tpt_never_stale(self) -> None:
        assert audit_tpt_consistency(self.machine.agent) == []

    @invariant()
    def kernel_sound(self) -> None:
        audit_kernel_invariants(self.machine.kernel)

    @invariant()
    def tpt_entry_accounting(self) -> None:
        expected = sum(r.region.npages for r in self.regs)
        assert self.machine.nic.tpt.entries_used == expected


TestViaRegistrationOps = ViaRegistrationOps.TestCase
TestViaRegistrationOps.settings = settings(max_examples=25,
                                           stateful_step_count=40,
                                           deadline=None)


def test_smoke_single_sequence():
    """One deterministic long sequence (fast regression guard)."""
    m = Machine(num_frames=192, backend="kiobuf", costs=FREE)
    t = m.spawn()
    ua = m.user_agent(t)
    va = t.mmap(24)
    regs = [ua.register_mem(va + i * PAGE_SIZE, 2 * PAGE_SIZE)
            for i in range(0, 20, 2)]
    paging.swap_out(m.kernel, 256)
    assert audit_tpt_consistency(m.agent) == []
    for reg in regs[::2]:
        ua.deregister_mem(reg)
    paging.swap_out(m.kernel, 256)
    assert audit_tpt_consistency(m.agent) == []
    VIP_SUCCESS  # noqa: B018 - referenced to keep the import honest
