"""Tests for MemoryRegistrar and RegionLease."""

import pytest

from repro.core.registration import MemoryRegistrar
from repro.errors import InvalidArgument
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.via.machine import Machine


@pytest.fixture
def setup():
    m = Machine(num_frames=256, backend="kiobuf")
    reg = MemoryRegistrar(m)
    t = m.spawn("app")
    va = t.mmap(8)
    return m, reg, t, va


class TestConstruction:
    def test_rejects_unreliable_backend_by_default(self):
        m = Machine(backend="refcount")
        with pytest.raises(InvalidArgument):
            MemoryRegistrar(m)

    def test_allow_unreliable_opt_in(self):
        m = Machine(backend="refcount")
        r = MemoryRegistrar(m, allow_unreliable=True)
        assert r.machine is m

    def test_accepts_reliable_backends(self):
        for name in ("kiobuf", "mlock", "pageflags", "mlock_naive"):
            MemoryRegistrar(Machine(backend=name))


class TestLeases:
    def test_lease_lifecycle(self, setup):
        m, reg, t, va = setup
        lease = reg.register(t, va, 4 * PAGE_SIZE)
        assert reg.live_count == 1
        assert len(lease.frames) == 4
        assert lease.nbytes == 4 * PAGE_SIZE
        lease.release()
        assert reg.live_count == 0

    def test_release_idempotent(self, setup):
        m, reg, t, va = setup
        lease = reg.register(t, va, PAGE_SIZE)
        lease.release()
        lease.release()   # no error
        assert reg.deregistrations_total == 1

    def test_context_manager(self, setup):
        m, reg, t, va = setup
        with reg.register(t, va, PAGE_SIZE) as lease:
            assert reg.pin_count(t, va) == 1
            assert lease.handle in m.agent.registrations
        assert reg.pin_count(t, va) == 0

    def test_release_all(self, setup):
        m, reg, t, va = setup
        for i in range(3):
            reg.register(t, va + i * PAGE_SIZE, PAGE_SIZE)
        assert reg.release_all() == 3
        assert reg.live_count == 0


class TestMultipleRegistration:
    def test_pin_accounting_observable(self, setup):
        m, reg, t, va = setup
        l1 = reg.register(t, va, 2 * PAGE_SIZE)
        l2 = reg.register(t, va, 2 * PAGE_SIZE)
        l3 = reg.register(t, va + PAGE_SIZE, PAGE_SIZE)
        assert reg.pin_count(t, va) == 2
        assert reg.pin_count(t, va + PAGE_SIZE) == 3
        assert reg.registration_count(t, va, PAGE_SIZE) == 2
        l1.release()
        assert reg.pin_count(t, va) == 1
        l2.release()
        l3.release()
        assert reg.pin_count(t, va + PAGE_SIZE) == 0

    def test_survives_pressure_until_last_release(self, setup):
        m, reg, t, va = setup
        l1 = reg.register(t, va, 4 * PAGE_SIZE)
        frames = l1.frames
        l2 = reg.register(t, va, 4 * PAGE_SIZE)
        l1.release()
        paging.swap_out(m.kernel, m.kernel.pagemap.num_frames)
        assert t.physical_pages(va, 4) == frames
        assert reg.audit() == []
        l2.release()


class TestAuditAndStats:
    def test_audit_empty_when_healthy(self, setup):
        m, reg, t, va = setup
        reg.register(t, va, 8 * PAGE_SIZE)
        paging.swap_out(m.kernel, m.kernel.pagemap.num_frames)
        assert reg.audit() == []

    @pytest.mark.san_suppress("swap-registered")
    def test_audit_catches_unreliable_backend(self):
        m = Machine(num_frames=256, backend="refcount")
        reg = MemoryRegistrar(m, allow_unreliable=True)
        t = m.spawn()
        va = t.mmap(4)
        reg.register(t, va, 4 * PAGE_SIZE)
        paging.swap_out(m.kernel, m.kernel.pagemap.num_frames)
        t.touch_pages(va, 4)
        assert len(reg.audit()) == 4

    def test_stats_shape(self, setup):
        m, reg, t, va = setup
        lease = reg.register(t, va, 2 * PAGE_SIZE)
        s = reg.stats()
        assert s["live"] == 1
        assert s["registrations_total"] == 1
        assert s["tpt_entries_used"] == 2
        lease.release()
        assert reg.stats()["deregistrations_total"] == 1
