"""Tests for the audit oracle."""

import pytest

from repro.core.audit import (
    audit_kernel_invariants, audit_tpt_consistency,
    frame_ownership_summary, virt_phys_map,
)
from repro.errors import PageAccountingError
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.via.machine import Machine


class TestTptConsistency:
    def test_healthy_registration_is_clean(self):
        m = Machine(num_frames=256, backend="kiobuf")
        t = m.spawn()
        ua = m.user_agent(t)
        va = t.mmap(4)
        ua.register_mem(va, 4 * PAGE_SIZE)
        assert audit_tpt_consistency(m.agent) == []

    @pytest.mark.san_suppress("swap-registered")
    def test_detects_staleness_after_swap(self):
        m = Machine(num_frames=256, backend="refcount")
        t = m.spawn()
        ua = m.user_agent(t)
        va = t.mmap(4)
        reg = ua.register_mem(va, 4 * PAGE_SIZE)
        paging.swap_out(m.kernel, m.kernel.pagemap.num_frames)
        t.touch_pages(va, 4)
        stale = audit_tpt_consistency(m.agent)
        assert len(stale) == 4
        assert all(e.handle == reg.handle for e in stale)
        assert all(e.actual_frame != e.tpt_frame for e in stale)

    @pytest.mark.san_suppress("swap-registered")
    def test_nonresident_pages_reported_as_none(self):
        m = Machine(num_frames=256, backend="refcount")
        t = m.spawn()
        ua = m.user_agent(t)
        va = t.mmap(2)
        ua.register_mem(va, 2 * PAGE_SIZE)
        paging.swap_out(m.kernel, m.kernel.pagemap.num_frames)
        stale = audit_tpt_consistency(m.agent)
        assert len(stale) == 2
        assert all(e.actual_frame is None for e in stale)

    def test_kiobuf_stays_clean_under_pressure(self):
        m = Machine(num_frames=256, backend="kiobuf")
        t = m.spawn()
        ua = m.user_agent(t)
        va = t.mmap(8)
        ua.register_mem(va, 8 * PAGE_SIZE)
        for _ in range(4):
            paging.swap_out(m.kernel, m.kernel.pagemap.num_frames)
        assert audit_tpt_consistency(m.agent) == []


class TestKernelInvariants:
    def test_healthy_kernel_passes(self, kernel):
        t = kernel.create_task()
        va = t.mmap(8)
        t.touch_pages(va, 8)
        paging.swap_out(kernel, 4)
        t.touch_pages(va, 8)
        audit_kernel_invariants(kernel)

    @pytest.mark.no_posthoc_audit
    def test_detects_pte_to_free_frame(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        t.write(va, b"x")
        frame = t.physical_pages(va, 1)[0]
        kernel.pagemap.put_page(frame)   # corrupt: frame freed, PTE live
        with pytest.raises(PageAccountingError):
            audit_kernel_invariants(kernel)

    @pytest.mark.no_posthoc_audit
    def test_detects_shared_swap_slot(self, kernel):
        a = kernel.create_task()
        b = kernel.create_task()
        va_a = a.mmap(1)
        va_b = b.mmap(1)
        a.write(va_a, b"x")
        paging.swap_out(kernel, 1)
        slot = a.page_table.lookup(a.vpn_of(va_a)).swap_slot
        b.page_table.set_swapped(b.vpn_of(va_b), slot)   # corrupt
        with pytest.raises(PageAccountingError):
            audit_kernel_invariants(kernel)


class TestSummaries:
    def test_frame_ownership_sums_to_total(self, kernel):
        t = kernel.create_task()
        va = t.mmap(8)
        t.touch_pages(va, 8)
        kernel.add_page_cache_page()
        summary = frame_ownership_summary(kernel)
        assert sum(summary.values()) == kernel.pagemap.num_frames
        assert summary["mapped"] == 8
        assert summary["page_cache"] == 1
        assert summary["kernel"] == kernel.pagemap.reserved_frames

    def test_orphans_classified(self, kernel):
        t = kernel.create_task()
        va = t.mmap(1)
        t.write(va, b"x")
        frame = t.physical_pages(va, 1)[0]
        kernel.pagemap.get_page(frame)
        paging.swap_out(kernel, kernel.pagemap.num_frames)
        summary = frame_ownership_summary(kernel)
        assert summary["orphan"] == 1

    def test_virt_phys_map(self, kernel):
        t = kernel.create_task()
        va = t.mmap(3)
        t.write(va, b"x")   # only page 0 resident
        vm = virt_phys_map(t, va, 3)
        assert vm[0][1] is not None
        assert vm[1][1] is None and vm[2][1] is None
        assert [vpn for vpn, _ in vm] == [t.vpn_of(va) + i for i in range(3)]
