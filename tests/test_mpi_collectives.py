"""Tests for the MPI collectives (barrier, bcast, reduce, allreduce,
gather, scatter, alltoall, alltoallv)."""

import numpy as np
import pytest

from repro.errors import InvalidArgument
from repro.hw.physmem import PAGE_SIZE
from repro.mpi import MpiWorld


@pytest.fixture(scope="module", params=[2, 3, 4])
def world(request):
    return MpiWorld(request.param, num_frames=2048)


@pytest.fixture
def vas(world):
    out = []
    for r in world.ranks:
        va = r.task.mmap(16)
        r.task.touch_pages(va, 16)
        out.append(va)
    return out


@pytest.fixture
def vas2(world):
    out = []
    for r in world.ranks:
        va = r.task.mmap(16)
        r.task.touch_pages(va, 16)
        out.append(va)
    return out


class TestBarrier:
    def test_completes(self, world):
        world.barrier()   # must simply terminate
        world.barrier()


class TestBcast:
    @pytest.mark.parametrize("root", [0, 1])
    def test_all_ranks_receive(self, world, vas, root):
        payload = f"broadcast from {root}".encode()
        world.ranks[root].task.write(vas[root], payload)
        world.bcast(root, vas, len(payload))
        for r, va in zip(world.ranks, vas):
            assert r.task.read(va, len(payload)) == payload

    def test_large_bcast_uses_rendezvous(self, world, vas):
        data = bytes(np.random.default_rng(0).integers(
            0, 256, 48 * 1024, dtype=np.uint8))
        world.ranks[0].task.write(vas[0], data)
        world.bcast(0, vas, len(data))
        for r, va in zip(world.ranks, vas):
            assert r.task.read(va, len(data)) == data


class TestReduce:
    @pytest.mark.parametrize("op,expected_fn", [
        ("sum", lambda cols: cols.sum(axis=0)),
        ("max", lambda cols: cols.max(axis=0)),
        ("min", lambda cols: cols.min(axis=0)),
        ("prod", lambda cols: cols.prod(axis=0)),
    ])
    def test_ops(self, world, vas, vas2, op, expected_fn):
        count = 16
        rows = []
        for i, (r, va) in enumerate(zip(world.ranks, vas)):
            row = np.arange(1, count + 1, dtype=np.float64) * (i + 1)
            r.task.write(va, row.tobytes())
            rows.append(row)
        world.reduce(0, vas, vas2[0], count, op=op)
        got = np.frombuffer(world.ranks[0].task.read(vas2[0], count * 8),
                            dtype=np.float64)
        np.testing.assert_allclose(got, expected_fn(np.vstack(rows)))

    def test_unknown_op(self, world, vas, vas2):
        with pytest.raises(InvalidArgument):
            world.reduce(0, vas, vas2[0], 4, op="xor")

    def test_inputs_unmodified(self, world, vas, vas2):
        count = 8
        for i, (r, va) in enumerate(zip(world.ranks, vas)):
            r.task.write(va, np.full(count, i + 1.0).tobytes())
        world.reduce(0, vas, vas2[0], count)
        for i, (r, va) in enumerate(zip(world.ranks, vas)):
            got = np.frombuffer(r.task.read(va, count * 8))
            np.testing.assert_allclose(got, i + 1.0)


class TestAllreduce:
    def test_every_rank_gets_result(self, world, vas, vas2):
        count = 8
        for i, (r, va) in enumerate(zip(world.ranks, vas)):
            r.task.write(va, np.full(count, float(i + 1)).tobytes())
        world.allreduce(vas, vas2, count, op="sum")
        expected = sum(range(1, world.size + 1))
        for r, va in zip(world.ranks, vas2):
            got = np.frombuffer(r.task.read(va, count * 8))
            np.testing.assert_allclose(got, expected)


class TestGatherScatter:
    def test_gather(self, world, vas):
        n = world.size
        each = 64
        for i, (r, va) in enumerate(zip(world.ranks, vas)):
            r.task.write(va, bytes([i]) * each)
        dst = world.ranks[0].task.mmap(4)
        world.ranks[0].task.touch_pages(dst, 4)
        world.gather(0, vas, dst, each)
        blob = world.ranks[0].task.read(dst, n * each)
        for i in range(n):
            assert blob[i * each:(i + 1) * each] == bytes([i]) * each

    def test_scatter(self, world, vas):
        n = world.size
        each = 64
        src = world.ranks[0].task.mmap(4)
        world.ranks[0].task.touch_pages(src, 4)
        world.ranks[0].task.write(
            src, b"".join(bytes([i + 10]) * each for i in range(n)))
        world.scatter(0, src, vas, each)
        for i, (r, va) in enumerate(zip(world.ranks, vas)):
            assert r.task.read(va, each) == bytes([i + 10]) * each

    def test_vas_length_checked(self, world, vas):
        with pytest.raises(InvalidArgument):
            world.gather(0, vas[:-1] if world.size > 1 else [], 0, 8)


class TestAlltoall:
    def test_alltoall(self, world, vas, vas2):
        n = world.size
        each = 32
        for i, (r, va) in enumerate(zip(world.ranks, vas)):
            for j in range(n):
                r.task.write(va + j * each, bytes([i * 16 + j]) * each)
        world.alltoall(vas, vas2, each)
        for j, (r, va) in enumerate(zip(world.ranks, vas2)):
            for i in range(n):
                assert r.task.read(va + i * each, each) == \
                    bytes([i * 16 + j]) * each

    def test_alltoallv_variable_counts(self, world, vas, vas2):
        n = world.size
        counts = [[(i + j) % 3 * 16 for j in range(n)] for i in range(n)]
        for i, (r, va) in enumerate(zip(world.ranks, vas)):
            offset = 0
            for j in range(n):
                r.task.write(va + offset,
                             bytes([i * 16 + j]) * counts[i][j])
                offset += counts[i][j]
        recv_counts = world.alltoallv(vas, counts, vas2)
        for j, (r, va) in enumerate(zip(world.ranks, vas2)):
            offset = 0
            for i in range(n):
                nbytes = recv_counts[j][i]
                assert nbytes == counts[i][j]
                assert r.task.read(va + offset, nbytes) == \
                    bytes([i * 16 + j]) * nbytes
                offset += nbytes


class TestWorldConstruction:
    def test_minimum_size(self):
        with pytest.raises(InvalidArgument):
            MpiWorld(1)

    def test_full_mesh(self, world):
        for i, rank in enumerate(world.ranks):
            assert set(rank.endpoints) == \
                set(range(world.size)) - {i}

    def test_collective_traffic_isolated_from_user_tags(self, world,
                                                        vas):
        """Collective messages use the system context, so a wildcard
        user receive never steals them."""
        r0, r1 = world.rank(0), world.rank(1)
        from repro.mpi import ANY_SOURCE, ANY_TAG
        req = r1.irecv(ANY_SOURCE, ANY_TAG, vas[1], PAGE_SIZE)
        world.barrier()
        assert not req.done   # barrier tokens did not match it
        r0.isend(1, 5, vas[0], 4)
        assert req.test()
        assert req.status.tag == 5
