#!/usr/bin/env python
"""Parallel bucket sort over the MPI layer — an IS-style workload.

The NAS Integer Sort kernel (which the collection's evaluation paper
runs over SCI and VIA MPI) is dominated by `allreduce` + `alltoallv`
traffic.  This example distributes random 16-bit keys across ranks,
computes global bucket boundaries with an allreduce histogram, exchanges
keys with alltoallv, sorts locally, and verifies the global order —
every byte of it travelling through the simulated VIA stack with
kiobuf-pinned registrations.

Run:  python examples/parallel_sort.py
"""

import numpy as np

from repro.bench.harness import print_table
from repro.mpi import MpiWorld

N_RANKS = 4
KEYS_PER_RANK = 2048
KEY_DTYPE = np.uint16


def main() -> None:
    world = MpiWorld(N_RANKS, num_frames=4096,
                     eager_threshold=8 * 1024)
    rng = np.random.default_rng(42)

    # Each rank owns a shard of random keys in its own simulated memory.
    keys = [rng.integers(0, 2**16, KEYS_PER_RANK, dtype=KEY_DTYPE)
            for _ in range(N_RANKS)]
    key_vas = []
    for r, shard in zip(world.ranks, keys):
        va = r.task.mmap(64)
        r.task.touch_pages(va, 64)
        r.task.write(va, shard.tobytes())
        key_vas.append(va)

    # --- bucket boundaries: uniform split of the key space -------------
    # (The real IS uses a sampled histogram + allreduce; we do the
    # allreduce over per-bucket counts to size the exchange.)
    edges = np.linspace(0, 2**16, N_RANKS + 1).astype(np.int64)
    counts = []
    for shard in keys:
        c, _ = np.histogram(shard, bins=edges)
        counts.append(c.astype(np.float64))
    hist_vas = [r.task.mmap(2) for r in world.ranks]
    out_vas = [r.task.mmap(2) for r in world.ranks]
    for r, va, o, c in zip(world.ranks, hist_vas, out_vas, counts):
        r.task.touch_pages(va, 2)
        r.task.touch_pages(o, 2)
        r.task.write(va, c.tobytes())
    world.allreduce(hist_vas, out_vas, N_RANKS, op="sum")
    total_per_bucket = np.frombuffer(
        world.ranks[0].task.read(out_vas[0], N_RANKS * 8))

    # --- pack per-destination slices and exchange with alltoallv --------
    send_vas, send_counts = [], []
    for i, (r, shard) in enumerate(zip(world.ranks, keys)):
        order = np.argsort(np.digitize(shard, edges[1:-1]))
        packed = shard[order]
        va = r.task.mmap(64)
        r.task.touch_pages(va, 64)
        r.task.write(va, packed.tobytes())
        send_vas.append(va)
        c, _ = np.histogram(shard, bins=edges)
        send_counts.append([int(x) * KEY_DTYPE().itemsize for x in c])
    recv_vas = []
    for r in world.ranks:
        va = r.task.mmap(128)
        r.task.touch_pages(va, 128)
        recv_vas.append(va)
    recv_counts = world.alltoallv(send_vas, send_counts, recv_vas)

    # --- local sort + global verification --------------------------------
    sorted_shards = []
    for j, r in enumerate(world.ranks):
        nbytes = sum(recv_counts[j])
        raw = r.task.read(recv_vas[j], nbytes)
        shard = np.sort(np.frombuffer(raw, dtype=KEY_DTYPE))
        sorted_shards.append(shard)
        assert len(shard) == int(total_per_bucket[j])

    # Global order: each shard sorted, boundaries respected.
    all_sorted = np.concatenate(sorted_shards)
    reference = np.sort(np.concatenate(keys))
    ok = bool(np.array_equal(all_sorted, reference))

    rows = [[j, len(s),
             int(s[0]) if len(s) else "-",
             int(s[-1]) if len(s) else "-"]
            for j, s in enumerate(sorted_shards)]
    print_table(
        f"Parallel bucket sort: {N_RANKS} ranks x {KEYS_PER_RANK} keys",
        ["rank", "keys after exchange", "min", "max"], rows)
    print(f"\nglobally sorted: {ok}")
    print(f"simulated time: {world.clock.now_ns / 1e6:.2f} ms, "
          f"eager msgs: {sum(r.eager_sent for r in world.ranks)}, "
          f"rendezvous msgs: "
          f"{sum(r.rendezvous_sent for r in world.ranks)}")
    assert ok


if __name__ == "__main__":
    main()
