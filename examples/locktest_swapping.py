#!/usr/bin/env python
"""The paper's Section 3.1 experiment, live.

Runs the 8-step locktest against every registered locking backend and
prints the survival matrix: the refcount-only approach
(Berkeley-VIA/M-VIA) loses every page under memory pressure — its
registered physical addresses go stale and the simulated NIC DMA writes
into orphaned frames the process can never see — while the VMA-,
pageflag-, and kiobuf-based mechanisms keep every translation valid,
and the on-demand-paging backend survives by *repair*: its pages may
move while evicted, but the NIC re-translates at DMA time.

Run:  python examples/locktest_swapping.py
"""

from repro.bench.harness import fmt_ns, print_table
from repro.core.locktest import run_matrix
from repro.via.locking import BACKENDS


def main() -> None:
    results = run_matrix(sorted(BACKENDS), buffer_pages=64,
                         num_frames=512)
    print_table(
        "Locktest survival matrix (Sec. 3.1, 64-page buffer, RAM 2 MiB)",
        ["backend", "pages moved", "DMA visible", "data intact",
         "orphans", "stale TPT", "reg time", "survived"],
        [[r.backend, f"{r.pages_relocated}/{r.npages}",
          r.dma_write_visible, r.process_data_intact,
          r.orphan_frames_during, r.stale_tpt_entries,
          fmt_ns(r.register_ns), r.registration_survived]
         for r in results])

    failing = [r for r in results if not r.registration_survived]
    print(f"\n{len(failing)} of {len(results)} mechanisms fail under "
          f"pressure: {', '.join(r.backend for r in failing)}")
    print("As the paper observes, the failure is silent: the refcount "
          "process's own data survives (swap round-trip), only the "
          "NIC's translations rot — communication corrupts, the system "
          "stays up.")


if __name__ == "__main__":
    main()
