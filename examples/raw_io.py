#!/usr/bin/env python
"""RAW I/O — the kiobuf mechanism's original purpose.

Section 4.2 of the paper introduces kiobufs through their original
consumer: "The RAW I/O mechanism was introduced to the Linux kernel by
Stephen C. Tweedie of RedHat in order to accelerate SCSI disk accesses.
Traditional implementations first read data from disk to kernel buffers
and then copy it to the user buffer."

This example measures both paths on the simulated block device and
shows the pinning guarantee: during a raw transfer the user pages are
kiobuf-pinned, so reclaim cannot steal them mid-DMA.

Run:  python examples/raw_io.py
"""

from repro.bench.harness import fmt_ns, print_table
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.kernel import Kernel
from repro.kernel.rawio import (
    BlockDevice, buffered_read, buffered_write, raw_read, raw_write,
)


def main() -> None:
    kernel = Kernel(num_frames=2048, swap_slots=8192)
    dev = BlockDevice(kernel, num_blocks=512)
    task = kernel.create_task(name="dbms")
    npages = 64
    va = task.mmap(npages)
    task.touch_pages(va, npages)
    nbytes = npages * PAGE_SIZE

    rows = []
    for label, write_fn, read_fn in (
            ("buffered (copy through page cache)",
             buffered_write, buffered_read),
            ("raw (kiobuf, zero-copy DMA)", raw_write, raw_read)):
        task.write(va, f"payload via {label}".encode())
        cpu0 = kernel.clock.category_ns("cpu_copy")
        with kernel.clock.measure() as span:
            write_fn(kernel, task, dev, 0, va, nbytes)
            read_fn(kernel, task, dev, 0, va, nbytes)
        rows.append([label, fmt_ns(span.elapsed_ns),
                     fmt_ns(kernel.clock.category_ns("cpu_copy") - cpu0)])

    print_table(f"RAW vs buffered I/O, {npages} pages round-trip",
                ["path", "total simulated time", "CPU copy time"], rows)

    # The pinning guarantee: frames recorded by a kiobuf stay put even
    # under reclaim pressure (same property VIA registration needs).
    kio = kernel.map_user_kiobuf(task, va, nbytes)
    from repro.kernel import paging
    paging.swap_out(kernel, kernel.pagemap.num_frames)
    still = task.physical_pages(va, npages) == kio.frames
    print(f"\npages pinned during I/O survive reclaim: {still}")
    kernel.unmap_kiobuf(kio)


if __name__ == "__main__":
    main()
