#!/usr/bin/env python
"""Registration caching over an application buffer-reuse trace.

Demonstrates the optimisation the paper points at ("the bad effects can
be remedied by 'caching' registered regions") and the property that
makes it safe: cached entries overlap in-flight registrations, so the
locking mechanism must support multiple registrations — kiobufs do.

Replays a synthetic MPI-style trace (hot and cold buffers) against the
registration cache, reporting hit rate and the kernel calls saved, then
shows the TPT-capacity eviction path.

Run:  python examples/registration_cache.py
"""

from repro.bench.harness import fmt_ns, print_table
from repro.core.regcache import RegistrationCache
from repro.via.machine import Machine
from repro.workloads.patterns import buffer_reuse_trace


def replay(cache_enabled: bool, tpt_entries: int = 8192) -> dict:
    m = Machine(num_frames=4096, backend="kiobuf",
                tpt_entries=tpt_entries)
    t = m.spawn("mpi-app")
    ua = m.user_agent(t)
    num_buffers, buffer_pages = 8, 16
    buffers = [t.mmap(buffer_pages) for _ in range(num_buffers)]
    for va in buffers:
        t.touch_pages(va, buffer_pages)
    cache = RegistrationCache(m.agent, t)
    trace = buffer_reuse_trace(num_buffers, buffer_pages,
                               operations=300, seed=7)
    clock = m.kernel.clock
    start = clock.now_ns
    for op in trace:
        va = buffers[op.buffer_index] + op.offset
        if cache_enabled:
            cache.acquire(va, op.nbytes)
            cache.release(va, op.nbytes)
        else:
            reg = ua.register_mem(va, op.nbytes)
            ua.deregister_mem(reg)
    return {
        "mode": "cached" if cache_enabled else "register-each-time",
        "operations": len(trace),
        "registrations": (cache.stats.misses if cache_enabled
                          else len(trace)),
        "hit_rate": cache.stats.hit_rate if cache_enabled else 0.0,
        "evictions": cache.stats.evictions,
        "sim_time": clock.now_ns - start,
    }


def main() -> None:
    rows = [replay(False), replay(True)]
    print_table(
        "Registration cache vs register-per-message (300-op trace)",
        ["mode", "ops", "kernel registrations", "hit rate", "evictions",
         "sim time"],
        [[r["mode"], r["operations"], r["registrations"],
          f"{r['hit_rate']:.0%}", r["evictions"], fmt_ns(r["sim_time"])]
         for r in rows])
    speedup = rows[0]["sim_time"] / rows[1]["sim_time"]
    print(f"\ncaching speedup on this trace: {speedup:.1f}x")

    # Capacity pressure: a tiny TPT forces LRU evictions.
    tight = replay(True, tpt_entries=64)
    print(f"with a 64-entry TPT: hit rate {tight['hit_rate']:.0%}, "
          f"{tight['evictions']} evictions (LRU under capacity pressure)")


if __name__ == "__main__":
    main()
