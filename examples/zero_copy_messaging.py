#!/usr/bin/env python
"""Zero-copy MPI-style messaging under memory pressure.

The scenario the paper's introduction motivates: an MPI library doing
rendezvous zero-copy transfers must register arbitrary user buffers on
the fly.  This example runs a bandwidth sweep over the three protocols
(eager / rendezvous-copy / rendezvous-zero-copy) *while an allocator
process hammers the receiver's memory*, and shows that with the kiobuf
backend every transfer stays correct — then repeats one transfer with
the broken refcount backend to show silent payload corruption.

Run:  python examples/zero_copy_messaging.py
"""

import numpy as np

from repro.bench.harness import print_series
from repro.hw.physmem import PAGE_SIZE
from repro.msg.endpoint import make_pair
from repro.msg.protocols import (
    EagerProtocol, RendezvousCopyProtocol, RendezvousZeroCopyProtocol,
)
from repro.via.machine import Cluster
from repro.workloads.allocator import apply_memory_pressure


def sweep(backend: str, sizes: list[int]) -> dict[str, list]:
    cluster = Cluster(2, num_frames=4096, backend=backend)
    s, r = make_pair(cluster)
    pages = max(sizes) // PAGE_SIZE + 2
    src = s.task.mmap(pages)
    s.task.touch_pages(src, pages)
    dst = r.task.mmap(pages)
    r.task.touch_pages(dst, pages)
    rng = np.random.default_rng(0)
    protocols = [EagerProtocol(), RendezvousCopyProtocol(),
                 RendezvousZeroCopyProtocol(use_cache=True)]
    series: dict[str, list] = {p.name: [] for p in protocols}
    for size in sizes:
        payload = bytes(rng.integers(0, 256, size, dtype=np.uint8))
        s.task.write(src, payload)
        for proto in protocols:
            res = proto.transfer(s, r, src, dst, size)
            assert res.ok, f"{proto.name} corrupted at {size}B!"
            series[proto.name].append((size, res.bandwidth_mb_s))
    return series


def corruption_demo() -> None:
    """One zero-copy transfer on the refcount backend with pressure
    between registration and use: the payload silently corrupts."""
    cluster = Cluster(2, num_frames=512, backend="refcount")
    s, r = make_pair(cluster)
    size = 16 * PAGE_SIZE
    src = s.task.mmap(20)
    s.task.touch_pages(src, 20)
    dst = r.task.mmap(20)
    r.task.touch_pages(dst, 20)
    payload = bytes(np.random.default_rng(1).integers(
        0, 256, size, dtype=np.uint8))
    s.task.write(src, payload)

    # Register the receive buffer, then let an allocator stomp memory —
    # the registered pages get swapped out and the TPT goes stale.
    rreg = r.ua.register_mem(dst, size, rdma_write=True)
    hog = apply_memory_pressure(r.machine.kernel, factor=2.0)
    r.task.touch_pages(dst, 16)   # fault pages back into NEW frames
    hog.release()

    sreg = s.ua.register_mem(src, size)
    from repro.via.descriptor import DataSegment, Descriptor
    desc = Descriptor.rdma_write(
        [DataSegment(sreg.handle, src, size)],
        remote_handle=rreg.handle, remote_va=dst)
    s.ua.post_send(s.vi, desc)
    got = r.task.read(dst, size)
    print(f"\nrefcount backend, RDMA after pressure: status={desc.status}, "
          f"payload correct: {got == payload}")
    print("(the DMA completed 'successfully' — into orphaned frames)")


def main() -> None:
    sizes = [1 << k for k in range(10, 21)]   # 1 KiB .. 1 MiB
    series = sweep("kiobuf", sizes)
    print_series("Bandwidth under memory pressure, kiobuf backend",
                 "bytes", series, ylabel="MB/s")
    corruption_demo()


if __name__ == "__main__":
    main()
