#!/usr/bin/env python
"""Quickstart: register memory, send a message over VIA, verify delivery.

Builds a two-machine cluster with the paper's kiobuf-based locking
backend, registers a buffer on each side, and does a classic VIA
send/receive plus an RDMA write — the 90-second tour of the public API.

Run:  python examples/quickstart.py
"""

from repro.hw.physmem import PAGE_SIZE
from repro.via.constants import VIP_SUCCESS
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.machine import Cluster


def main() -> None:
    # Two machines, one shared fabric and clock, kiobuf locking.
    cluster = Cluster(2, num_frames=1024, backend="kiobuf")
    sender_machine, receiver_machine = cluster[0], cluster[1]

    # One process on each machine opens the NIC.
    sender = sender_machine.spawn("sender")
    receiver = receiver_machine.spawn("receiver")
    ua_s = sender_machine.user_agent(sender)
    ua_r = receiver_machine.user_agent(receiver)

    # Connect a VI pair.
    vi_s = ua_s.create_vi()
    vi_r = ua_r.create_vi()
    cluster.connect(vi_s, sender_machine, vi_r, receiver_machine)

    # --- registration: the subject of the paper -------------------------
    # Each side registers a buffer; the kiobuf backend pins the pages so
    # the NIC's physical addresses stay valid under any memory pressure.
    send_va = sender.mmap(2)
    send_reg = ua_s.register_mem(send_va, 2 * PAGE_SIZE)
    recv_va = receiver.mmap(2)
    recv_reg = ua_r.register_mem(recv_va, 2 * PAGE_SIZE,
                                 rdma_write=True)

    # --- two-sided send/receive -------------------------------------------
    ua_r.post_recv(vi_r, Descriptor.recv([ua_r.segment(recv_reg)]))
    desc = ua_s.send_bytes(vi_s, send_reg, b"hello, VIA!")
    assert desc.status == VIP_SUCCESS
    done = ua_r.recv_done(vi_r)
    print(f"send/recv : {ua_r.recv_bytes(vi_r, done)!r} "
          f"({done.length_transferred} bytes)")

    # --- one-sided RDMA write ------------------------------------------------
    sender.write(send_va, b"RDMA payload")
    rdma = Descriptor.rdma_write(
        [DataSegment(send_reg.handle, send_va, 12)],
        remote_handle=recv_reg.handle, remote_va=recv_va + 100)
    ua_s.post_send(vi_s, rdma)
    assert rdma.status == VIP_SUCCESS
    print(f"rdma write: {receiver.read(recv_va + 100, 12)!r} "
          f"(no receive descriptor consumed)")

    print(f"simulated time: {cluster.clock.now_us:.1f} us")


if __name__ == "__main__":
    main()
