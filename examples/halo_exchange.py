#!/usr/bin/env python
"""2D Jacobi heat diffusion with halo exchange — the FEM-style workload
the SFB 393 collection is built around ("Numerical Simulation on
Massively Parallel Computers": the physicists' codes are exactly this
shape).

An N x N grid is split into row strips across 4 ranks.  Each iteration
the ranks exchange boundary ("halo") rows over **persistent MPI
requests** — the pre-registered, kiobuf-pinned buffers the paper's
mechanism makes safe — then apply the Jacobi stencil.  The distributed
result is verified bit-for-bit against a single-process reference.

Run:  python examples/halo_exchange.py
"""

import numpy as np

from repro.mpi import MpiWorld

N = 32            # global grid (N x N, float64)
RANKS = 4
ITERATIONS = 25
ROW_BYTES = N * 8


def reference(grid: np.ndarray, iterations: int) -> np.ndarray:
    g = grid.copy()
    for _ in range(iterations):
        new = g.copy()
        new[1:-1, 1:-1] = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1]
                                  + g[1:-1, :-2] + g[1:-1, 2:])
        g = new
    return g


def main() -> None:
    world = MpiWorld(RANKS, num_frames=2048, eager_threshold=4 * 1024)
    rng = np.random.default_rng(7)
    grid = rng.random((N, N))
    grid[0, :] = grid[-1, :] = grid[:, 0] = grid[:, -1] = 1.0

    rows_per = N // RANKS
    # Each rank stores its strip plus two ghost rows in simulated memory.
    strip_vas = []
    for i, rank in enumerate(world.ranks):
        va = rank.task.mmap(((rows_per + 2) * ROW_BYTES) // 4096 + 1)
        rank.task.touch_pages(va, ((rows_per + 2) * ROW_BYTES) // 4096 + 1)
        local = np.zeros((rows_per + 2, N))
        local[1:-1] = grid[i * rows_per:(i + 1) * rows_per]
        rank.task.write(va, local.tobytes())
        strip_vas.append(va)

    # Persistent halo channels: down-going and up-going per boundary.
    HALO_DOWN, HALO_UP = 101, 102
    sends, recvs = [], []
    for i, rank in enumerate(world.ranks):
        va = strip_vas[i]
        chans = {}
        if i + 1 < RANKS:   # exchange with the rank below
            chans["send_down"] = rank.send_init(
                i + 1, HALO_DOWN, va + rows_per * ROW_BYTES, ROW_BYTES)
            chans["recv_up"] = rank.recv_init(
                i + 1, HALO_UP, va + (rows_per + 1) * ROW_BYTES,
                ROW_BYTES)
        if i > 0:           # exchange with the rank above
            chans["send_up"] = rank.send_init(
                i - 1, HALO_UP, va + 1 * ROW_BYTES, ROW_BYTES)
            chans["recv_down"] = rank.recv_init(
                i - 1, HALO_DOWN, va + 0 * ROW_BYTES, ROW_BYTES)
        sends.append(chans)
        recvs.append(chans)

    for _ in range(ITERATIONS):
        # 1. halo exchange (deterministic schedule over all boundaries)
        for i in range(RANKS - 1):
            sends[i]["send_down"].start()
            recvs[i + 1]["recv_down"].start()
            recvs[i + 1]["recv_down"].wait()
            sends[i]["send_down"].wait()
            sends[i + 1]["send_up"].start()
            recvs[i]["recv_up"].start()
            recvs[i]["recv_up"].wait()
            sends[i + 1]["send_up"].wait()
        # 2. Jacobi update on each strip
        for i, rank in enumerate(world.ranks):
            va = strip_vas[i]
            local = np.frombuffer(
                rank.task.read(va, (rows_per + 2) * ROW_BYTES)
            ).reshape(rows_per + 2, N).copy()
            new = local.copy()
            lo = 1 if i > 0 else 2                    # global row 0 fixed
            hi = rows_per + 1 if i < RANKS - 1 else rows_per
            new[lo:hi, 1:-1] = 0.25 * (
                local[lo - 1:hi - 1, 1:-1] + local[lo + 1:hi + 1, 1:-1]
                + local[lo:hi, :-2] + local[lo:hi, 2:])
            rank.task.write(va, new.tobytes())

    # Gather and verify against the reference.
    result = np.vstack([
        np.frombuffer(world.ranks[i].task.read(
            strip_vas[i] + ROW_BYTES, rows_per * ROW_BYTES)
        ).reshape(rows_per, N)
        for i in range(RANKS)])
    expected = reference(grid, ITERATIONS)
    ok = np.array_equal(result, expected)
    print(f"grid {N}x{N}, {RANKS} ranks, {ITERATIONS} Jacobi iterations")
    print(f"halo messages: "
          f"{sum(r.eager_sent + r.rendezvous_sent for r in world.ranks)}")
    print(f"distributed result bit-identical to reference: {ok}")
    print(f"simulated time: {world.clock.now_ns / 1e6:.2f} ms")
    assert ok


if __name__ == "__main__":
    main()
