# Convenience targets for the repro repository.

PY ?= python

.PHONY: install test lint sanitize race bench bench-e18 bench-e19 bench-e20 bench-e21 bench-quick soak tables examples all clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

# Static analysis: the repo-invariant AST linter, plus mypy when it is
# installed (CI always installs it; local runs degrade gracefully).
lint:
	$(PY) tools/repro_lint.py
	@$(PY) -c "import mypy" 2>/dev/null \
		&& $(PY) -m mypy \
		|| echo "mypy not installed; skipping type check"

# The whole suite with the pin sanitizer armed strict on every kernel.
sanitize:
	REPRO_SANITIZE=strict $(PY) -m pytest tests/

# Schedule exploration: every registered scenario re-run over permuted
# same-deadline dispatch orders and crash placements, the race detector
# and pin sanitizer armed on each run.  The seeded goldens must be
# identity-clean yet detected; the workload scenarios must be
# race-clean everywhere.  REPRO_RACE_SCHEDULES scales the candidate
# count; the per-run verdicts land in RACE_REPORT.json.
race:
	$(PY) tools/race_explore.py --report RACE_REPORT.json

# The E17 churn soak at full scale: 8 tenants, 2 simulated hours of
# connect/register/transfer/kill/swap-pressure churn under chaos, with
# the pin sanitizer strict.  SLOs land in BENCH.json.
soak:
	REPRO_SANITIZE=strict $(PY) benchmarks/report.py -o BENCH.json \
		benchmarks/bench_e17_soak.py

# The E18 simulator-core scale-out A/B at full scale: calendar events +
# vectorized frame table + batched posting vs the legacy per-charge /
# full-scan / one-at-a-time core.  Asserts the >=3x whole-cluster
# throughput gate; numbers land in BENCH.json.
bench-e18:
	$(PY) benchmarks/report.py -o BENCH.json \
		benchmarks/bench_e18_cluster_scale.py

# The E19 distributed-lock-manager sweep: three lock designs on the
# remote atomic verbs, clean throughput plus the kill-at-every-step
# lease-recovery SLO (p50/p99); numbers land in BENCH_E19.json.
bench-e19:
	$(PY) benchmarks/report.py -o BENCH_E19.json \
		benchmarks/bench_e19_dlm.py

# The E20 pin-at-register vs pin-on-fault (ODP) pressure sweep:
# registration latency, first-touch DMA latency, fault-service counts,
# resident-pin footprint; numbers land in BENCH_E20.json.
bench-e20:
	$(PY) benchmarks/report.py -o BENCH_E20.json \
		benchmarks/bench_e20_odp.py

# The E21 race-exploration sweep: detection rate over the three seeded
# race scenarios (identity-clean, detected under exploration) plus
# explorer schedules/sec; numbers land in BENCH_E21.json.
bench-e21:
	$(PY) benchmarks/report.py -o BENCH_E21.json \
		benchmarks/bench_e21_races.py

# Full benchmark run aggregated into BENCH.json (simulated-ns tables and
# series plus pytest-benchmark host-time medians).
bench:
	$(PY) benchmarks/report.py

bench-quick:
	$(PY) benchmarks/report.py --quick

# Regenerate every experiment table (E1-E13) with assertions.
tables:
	$(PY) -m pytest benchmarks/ -s

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/locktest_swapping.py
	$(PY) examples/zero_copy_messaging.py
	$(PY) examples/registration_cache.py
	$(PY) examples/raw_io.py
	$(PY) examples/parallel_sort.py
	$(PY) examples/halo_exchange.py

all: test bench

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
