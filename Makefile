# Convenience targets for the repro repository.

PY ?= python

.PHONY: install test bench tables examples all clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Regenerate every experiment table (E1-E11) with assertions.
tables:
	$(PY) -m pytest benchmarks/ -s

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/locktest_swapping.py
	$(PY) examples/zero_copy_messaging.py
	$(PY) examples/registration_cache.py
	$(PY) examples/raw_io.py
	$(PY) examples/parallel_sort.py
	$(PY) examples/halo_exchange.py

all: test bench

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
