"""E3 — registration cost vs region size, per locking mechanism.

Regenerates the performance evaluation the paper announces for its
proposal: simulated register+deregister time as a function of region
size, with pages resident ("hot") and swapped out ("cold").

Expected shape:

* every mechanism is **linear in pages** (per-page walk/pin/TPT work on
  top of a fixed syscall overhead);
* kiobuf ≈ refcount + pin bookkeeping, within a small constant of
  mlock — i.e. reliability costs roughly nothing extra;
* **cold registrations are orders of magnitude slower** — dominated by
  the 4 ms/page swap-ins — which is the quantitative argument for
  keeping buffers registered (the registration cache).
"""

import pytest

from repro.bench.harness import print_series
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.kernel.kernel import Kernel
from repro.via.locking import BACKENDS, make_backend

SIZES = [1, 4, 16, 64, 256]


def cycle_cost_ns(backend_name: str, npages: int, cold: bool) -> int:
    """Simulated ns for one register+deregister of ``npages``."""
    kernel = Kernel(num_frames=2048, swap_slots=8192)
    t = kernel.create_task()
    va = t.mmap(npages)
    t.touch_pages(va, npages)
    if cold:
        # Push the buffer out so registration must fault it back in.
        while t.resident_pages() > 0:
            if paging.swap_out(kernel, kernel.pagemap.num_frames) == 0:
                break
        assert t.resident_pages() == 0
    be = make_backend(backend_name)
    with kernel.clock.measure() as span:
        res = be.lock(kernel, t, va, npages * PAGE_SIZE)
        be.unlock(kernel, res.cookie)
    return span.elapsed_ns


@pytest.fixture(scope="module")
def hot_series():
    return {
        name: [(n, cycle_cost_ns(name, n, cold=False) / 1000.0)
               for n in SIZES]
        for name in sorted(BACKENDS)
    }


@pytest.fixture(scope="module")
def cold_series():
    return {
        name: [(n, cycle_cost_ns(name, n, cold=True) / 1000.0)
               for n in SIZES]
        for name in ("kiobuf", "mlock")
    }


def test_e3_hot_registration_cost(hot_series, report):
    if report("E3: registration cost vs size"):
        print_series("E3a — register+deregister, pages resident",
                     "pages", hot_series, ylabel="simulated us")
    for name, points in hot_series.items():
        # Linear in pages: cost(256)/cost(64) ≈ 4 within slack.
        c64 = dict(points)[64]
        c256 = dict(points)[256]
        assert 2.5 < c256 / c64 < 5.5, f"{name} not linear"
    # Reliability is nearly free: kiobuf within 2x of the broken refcount.
    k = dict(hot_series["kiobuf"])[256]
    r = dict(hot_series["refcount"])[256]
    assert k < 2.0 * r


def test_e3_cold_registration_cost(hot_series, cold_series, report):
    if report("E3b: cold (swapped-out) registration cost"):
        print_series("E3b — register+deregister, pages in swap",
                     "pages", cold_series, ylabel="simulated us")
    # Cold is dominated by page-ins: >100x hot at 64 pages.
    hot = dict(hot_series["kiobuf"])[64]
    cold = dict(cold_series["kiobuf"])[64]
    assert cold > 100 * hot


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_e3_register_cycle(benchmark, backend):
    """Host-time registration cycle of a 64-page region."""
    benchmark(lambda: cycle_cost_ns(backend, 64, cold=False))
