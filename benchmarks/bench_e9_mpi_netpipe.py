"""E9 — MPI-level NetPIPE sweep: latency and bandwidth through the full
stack (matching engine + envelope protocol + VIA + kernel).

The collection's evaluation methodology ("NetPIPE ... a ping-pong loop.
A message of a given size is sent out.  As soon as the peer receives
it, it sends a message of equal size back") applied to our MPI layer.

Expected shapes:

* a visible protocol kink at the eager/rendezvous threshold (the
  "kink at 4 KB ... caused by switching from eager to long protocol");
* rendezvous asymptote near the wire's ≈90 MB/s;
* small-message MPI latency in the tens of µs (the cLAN MPI numbers).
"""

import numpy as np
import pytest

from repro.bench.harness import print_series, print_table
from repro.hw.physmem import PAGE_SIZE
from repro.mpi import MpiWorld

SIZES = [1 << k for k in range(6, 21)]   # 64 B .. 1 MiB
THRESHOLD = 16 * 1024


def build_world() -> tuple[MpiWorld, int, int, int, int]:
    world = MpiWorld(2, num_frames=4096, eager_threshold=THRESHOLD)
    r0, r1 = world.rank(0), world.rank(1)
    pages = max(SIZES) // PAGE_SIZE + 2
    a_tx = r0.task.mmap(pages)
    r0.task.touch_pages(a_tx, pages)
    a_rx = r0.task.mmap(pages)
    r0.task.touch_pages(a_rx, pages)
    b_tx = r1.task.mmap(pages)
    r1.task.touch_pages(b_tx, pages)
    b_rx = r1.task.mmap(pages)
    r1.task.touch_pages(b_rx, pages)
    return world, a_tx, a_rx, b_tx, b_rx


def ping_pong_ns(world: MpiWorld, a_tx: int, a_rx: int, b_tx: int,
                 b_rx: int, size: int) -> int:
    """One warm round trip; returns simulated ns."""
    r0, r1 = world.rank(0), world.rank(1)
    with world.clock.measure() as span:
        r0.isend(1, 1, a_tx, size)
        r1.recv(0, 1, b_rx, size)
        r1.isend(0, 2, b_tx, size)
        r0.recv(1, 2, a_rx, size)
    return span.elapsed_ns


@pytest.fixture(scope="module")
def sweep():
    world, a_tx, a_rx, b_tx, b_rx = build_world()
    rng = np.random.default_rng(0)
    points = []
    for size in SIZES:
        payload = bytes(rng.integers(0, 256, size, dtype=np.uint8))
        world.rank(0).task.write(a_tx, payload)
        world.rank(1).task.write(b_tx, payload)
        ping_pong_ns(world, a_tx, a_rx, b_tx, b_rx, size)   # warm
        rt = ping_pong_ns(world, a_tx, a_rx, b_tx, b_rx, size)
        one_way_ns = rt / 2
        bw = size / (one_way_ns / 1e9) / 1e6
        points.append((size, one_way_ns / 1000.0, bw))
        # Verify payload integrity at every size.
        assert world.rank(1).task.read(b_rx, min(size, 256)) == \
            payload[:min(size, 256)]
    return points


def test_e9_bandwidth_curve(sweep, report):
    if report("E9: MPI NetPIPE sweep"):
        print_series(
            "E9a — MPI one-way bandwidth vs message size "
            f"(eager/rendezvous switch at {THRESHOLD} B)",
            "bytes", {"mpi-kiobuf": [(s, bw) for s, _, bw in sweep]},
            ylabel="MB/s")
        print_table("E9b — MPI one-way latency",
                    ["bytes", "simulated us"],
                    [[s, f"{us:.1f}"] for s, us, _ in sweep[:6]])
    by_size = {s: bw for s, _, bw in sweep}
    # Monotone growth toward the wire asymptote.
    assert by_size[1 << 20] > 60.0
    assert by_size[1 << 20] < 95.0
    # Protocol switch: bandwidth jumps across the threshold.
    below = by_size[8 * 1024]
    above = by_size[64 * 1024]
    assert above > 1.3 * below
    # Era-plausible small-message latency: tens of microseconds.
    lat64 = next(us for s, us, _ in sweep if s == 64)
    assert 5.0 < lat64 < 200.0


def test_e9_ping_pong(benchmark):
    """Host time of one warm 4 KiB MPI ping-pong."""
    world, a_tx, a_rx, b_tx, b_rx = build_world()
    world.rank(0).task.write(a_tx, b"p" * 4096)
    world.rank(1).task.write(b_tx, b"p" * 4096)
    ping_pong_ns(world, a_tx, a_rx, b_tx, b_rx, 4096)
    benchmark(lambda: ping_pong_ns(world, a_tx, a_rx, b_tx, b_rx, 4096))
