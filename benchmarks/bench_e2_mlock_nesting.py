"""E2 — mlock non-nesting (Sec. 3.2) and the capability gate.

Two tables:

1. **Nesting matrix** — register the same range k times, deregister
   once, apply pressure: does the remaining registration survive?
   Expected: mlock_naive loses protection for every k > 1 ("a single
   unlock operation annuls multiple lock operations"); the tracked
   variant and kiobuf survive.
2. **Capability-gate matrix** — who can reach do_mlock: plain user via
   the syscall (denied), root (ok), the User-DMA-patch path (ok), the
   cap_raise/cap_lower dance (ok).
"""

import pytest

from repro.bench.harness import print_table
from repro.errors import PermissionDenied
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.kernel.kernel import Kernel
from repro.via.locking import make_backend

PAGES = 16


def survives_after_one_dereg(backend_name: str, k: int) -> bool:
    kernel = Kernel(num_frames=256, swap_slots=2048)
    t = kernel.create_task()
    va = t.mmap(PAGES)
    be = make_backend(backend_name)
    results = [be.lock(kernel, t, va, PAGES * PAGE_SIZE)
               for _ in range(k)]
    frames = results[-1].frames
    be.unlock(kernel, results[0].cookie)    # deregister ONE of k
    for _ in range(4):
        paging.swap_out(kernel, kernel.pagemap.num_frames)
    survived = t.physical_pages(va, PAGES) == frames
    return survived


@pytest.fixture(scope="module")
def nesting_rows():
    rows = []
    for name in ("mlock_naive", "mlock", "kiobuf"):
        for k in (1, 2, 4, 8):
            if k == 1:
                # deregistering the only registration: pages are *meant*
                # to become stealable; skip the survival question
                continue
            rows.append([name, k, survives_after_one_dereg(name, k)])
    return rows


def test_e2_nesting_matrix(nesting_rows, report):
    if report("E2: mlock nesting (Sec. 3.2)"):
        print_table(
            "E2a — register k times, deregister once, pressure: "
            "does the live registration survive?",
            ["backend", "k", "survives"],
            nesting_rows)
    for name, k, survives in nesting_rows:
        if name == "mlock_naive":
            assert not survives, f"naive mlock must fail at k={k}"
        else:
            assert survives, f"{name} must survive at k={k}"


@pytest.fixture(scope="module")
def gate_rows():
    rows = []

    def attempt(label, uid, how):
        kernel = Kernel(num_frames=128)
        t = kernel.create_task(uid=uid)
        va = t.mmap(2)
        try:
            how(kernel, t, va)
            ok = True
        except PermissionDenied:
            ok = False
        rows.append([label, "uid=%d" % uid, ok])

    attempt("sys_mlock (stock kernel)", 1000,
            lambda k, t, va: k.sys_mlock(t, va, 2 * PAGE_SIZE))
    attempt("sys_mlock (stock kernel)", 0,
            lambda k, t, va: k.sys_mlock(t, va, 2 * PAGE_SIZE))
    attempt("do_mlock (User-DMA patch)", 1000,
            lambda k, t, va: k.do_mlock(t, va, 2 * PAGE_SIZE))
    attempt("cap_raise; sys_mlock; cap_lower", 1000,
            lambda k, t, va: k.mlock_with_cap_dance(t, va, 2 * PAGE_SIZE))
    return rows


def test_e2_capability_gate(gate_rows, report):
    if report("E2b: capability gate"):
        print_table("E2b — routes to do_mlock",
                    ["route", "caller", "allowed"], gate_rows)
    assert gate_rows[0][2] is False    # plain user, stock syscall
    assert gate_rows[1][2] is True     # root
    assert gate_rows[2][2] is True     # patch
    assert gate_rows[3][2] is True     # cap dance


def test_e2_tracked_unlock_cost(benchmark):
    """Host-time cost of the tracked-mlock register/deregister cycle —
    the bookkeeping price the paper's proposal avoids."""

    def cycle():
        kernel = Kernel(num_frames=256)
        t = kernel.create_task()
        va = t.mmap(PAGES)
        be = make_backend("mlock")
        r1 = be.lock(kernel, t, va, PAGES * PAGE_SIZE)
        r2 = be.lock(kernel, t, va, PAGES * PAGE_SIZE)
        be.unlock(kernel, r1.cookie)
        be.unlock(kernel, r2.cookie)

    benchmark(cycle)
