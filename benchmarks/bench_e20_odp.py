"""E20 — pin-at-register vs pin-on-fault (ODP) under the E10 pressure
sweep.

A/B of the two ends of the locking design space on identical machines:
``kiobuf`` pays for the whole buffer at registration and holds one pin
per registered page forever; ``odp`` registers in O(1) with every TPT
entry invalid, pays on the first DMA touch (suspend → fault service →
resume), and pins only the pages a DMA actually used — which reclaim
may take back again under pressure.

Per pressure level the table reports, for each backend: registration
latency, first-touch DMA latency (translating one message's worth of
the buffer through the NIC), fault services run, and the resident-pin
footprint after the first touch.  The acceptance criteria are the
ISSUE's: ODP registers faster than kiobuf, pins strictly fewer pages,
and the sweep ends with zero leaked pins and zero orphaned frames.

Scaling knobs (CI smoke): ``REPRO_E20_FACTORS`` (comma-separated
allocator/RAM ratios), ``REPRO_E20_PAGES``, ``REPRO_E20_FRAMES``,
``REPRO_E20_TOUCH``.
"""

import os

import pytest

from repro.bench.harness import fmt_ns, print_table
from repro.core.audit import (
    audit_kernel_invariants, audit_pin_leaks, audit_tpt_consistency,
)
from repro.hw.physmem import PAGE_SIZE
from repro.via.machine import Machine

FACTORS = [float(f) for f in os.environ.get(
    "REPRO_E20_FACTORS", "0.25,0.75,1.25,1.75,2.0,2.5").split(",")]
BUFFER_PAGES = int(os.environ.get("REPRO_E20_PAGES", "48"))
NUM_FRAMES = int(os.environ.get("REPRO_E20_FRAMES", "512"))
#: pages one "message" DMA-touches — the working set the ODP backend
#: actually ends up pinning
TOUCH_PAGES = int(os.environ.get("REPRO_E20_TOUCH", "8"))


def run_point(backend: str, factor: float, seed: int = 0) -> dict:
    """One sweep point: register under pressure, first-touch a message,
    audit, and report the observables."""
    m = Machine(name=f"e20-{backend}", backend=backend,
                num_frames=NUM_FRAMES, swap_slots=NUM_FRAMES * 8,
                seed=seed)
    app = m.spawn("app")
    ua = m.user_agent(app)
    va = app.mmap(BUFFER_PAGES, name="buffer")
    for i in range(BUFFER_PAGES):
        app.write(va + i * PAGE_SIZE, f"page-{i:04d}".encode())

    with m.kernel.clock.measure() as reg_span:
        reg = ua.register_mem(va, BUFFER_PAGES * PAGE_SIZE)

    hog = m.spawn("hog")
    hog_pages = int(NUM_FRAMES * factor)
    hog_va = hog.mmap(hog_pages, name="hog")
    for i in range(hog_pages):
        hog.write(hog_va + i * PAGE_SIZE, b"HOG")

    # First-touch DMA: translate one message's worth of the buffer the
    # way every DMA path does — for ODP this suspends, fault-services,
    # and resumes; for kiobuf it is a plain TPT walk.
    tag = m.agent.prot_tag(app)
    with m.kernel.clock.measure() as dma_span:
        m.nic._tpt_translate(reg.handle, va, TOUCH_PAGES * PAGE_SIZE, tag)

    resident_pins = sum(
        1 for pd in m.kernel.pagemap if pd.pin_count > 0)
    point = dict(
        backend=backend, factor=factor,
        reg_ns=reg_span.elapsed_ns, dma_ns=dma_span.elapsed_ns,
        faults=m.agent.odp_faults_serviced,
        coalesced=m.agent.odp_faults_coalesced,
        evicted=m.agent.odp_pages_evicted,
        suspensions=m.nic.dma_suspensions,
        resident_pins=resident_pins)

    ua.deregister_mem(reg)
    point["leaked_pins"] = len(audit_pin_leaks(m.kernel, m.agent))
    point["orphans"] = len(m.kernel.pagemap.orphans())
    assert audit_tpt_consistency(m.agent) == []
    audit_kernel_invariants(m.kernel)
    return point


@pytest.fixture(scope="module")
def sweep():
    return {(backend, factor): run_point(backend, factor)
            for factor in FACTORS
            for backend in ("kiobuf", "odp")}


def test_e20_odp_pressure_sweep(sweep, report):
    if report("E20: pin-at-register vs pin-on-fault (ODP)"):
        print_table(
            f"E20 — {BUFFER_PAGES}-page buffer, {NUM_FRAMES}-frame RAM, "
            f"{TOUCH_PAGES}-page first touch",
            ["allocator / RAM", "reg kiobuf", "reg odp",
             "1st-touch kiobuf", "1st-touch odp", "odp faults",
             "pins kiobuf", "pins odp", "odp evicted"],
            [[factor,
              fmt_ns(sweep["kiobuf", factor]["reg_ns"]),
              fmt_ns(sweep["odp", factor]["reg_ns"]),
              fmt_ns(sweep["kiobuf", factor]["dma_ns"]),
              fmt_ns(sweep["odp", factor]["dma_ns"]),
              sweep["odp", factor]["faults"],
              sweep["kiobuf", factor]["resident_pins"],
              sweep["odp", factor]["resident_pins"],
              sweep["odp", factor]["evicted"]]
             for factor in FACTORS])
    for (backend, factor), point in sweep.items():
        # Acceptance: the sweep converges with nothing leaked.
        assert point["leaked_pins"] == 0, (backend, factor)
        assert point["orphans"] == 0, (backend, factor)
    for factor in FACTORS:
        kio, odp = sweep["kiobuf", factor], sweep["odp", factor]
        # Acceptance: O(1) registration beats pin-at-register...
        assert odp["reg_ns"] < kio["reg_ns"], factor
        # ...the bill arrives at first touch instead...
        assert odp["dma_ns"] > kio["dma_ns"], factor
        assert odp["faults"] >= 1 and odp["suspensions"] >= 1, factor
        assert kio["faults"] == 0 and kio["suspensions"] == 0, factor
        # ...and the resident-pin footprint is strictly smaller: pins
        # follow the touched working set, not the registered size.
        assert odp["resident_pins"] < kio["resident_pins"], factor
        assert odp["resident_pins"] <= TOUCH_PAGES, factor


def test_e20_single_point(benchmark):
    """Host time of one ODP sweep point (simulator throughput)."""
    benchmark(lambda: run_point("odp", 1.75))
