"""Shared configuration for the benchmark targets.

Each ``bench_e*.py`` regenerates one experiment of EXPERIMENTS.md: it
prints the experiment's table/series (simulated-time numbers, which are
deterministic) and registers one representative operation with
pytest-benchmark (host-time numbers, which measure the simulator
itself).
"""

import pytest


@pytest.fixture(scope="session")
def report():
    """Print a section header once per experiment module."""
    printed: set[str] = set()

    def _report(title: str) -> bool:
        if title in printed:
            return False
        printed.add(title)
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
        return True

    return _report
