"""E12 — ablation: static reservation (Bigphysarea) vs dynamic pinning
(kiobuf).

The collection's complaint about the pre-VIA approach: reserving
communication memory at boot "'wastes' a part of memory if it is not
really exported later".  This bench measures, for a machine with a
fixed RAM size, how large an application working set runs **without
swapping** as the communication-buffer demand varies:

* **bigphys** — a boot-time reservation sized for the *worst-case*
  communication demand: the app loses that many frames even when the
  actual demand is small;
* **kiobuf** — buffers are pinned dynamically: only the *actual*
  demand is subtracted from the app's memory.

Expected: with kiobuf the swap-free working set shrinks only with the
actual demand; with bigphys it is flat at (RAM − worst case) no matter
how little is used.
"""

import pytest

from repro.bench.harness import print_table
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.bigphys import BigPhysArea
from repro.kernel.kernel import Kernel
from repro.via.locking import make_backend

RAM = 256              #: frames
WORST_CASE = 96        #: frames the bigphys reservation must cover
DEMANDS = [8, 32, 64, 96]


def max_swapfree_appset(comm_demand: int, static: bool) -> int:
    """Largest app working set (pages) touched without any swap-out."""
    kernel = Kernel(num_frames=RAM, swap_slots=4096, min_free_pages=4)
    comm_task = kernel.create_task(name="comm")
    if static:
        area = BigPhysArea(kernel, WORST_CASE)
        va = area.alloc(comm_task, comm_demand)
        be = make_backend("kiobuf")   # unused; reservation is the pin
        del be, va
    else:
        va = comm_task.mmap(comm_demand)
        comm_task.touch_pages(va, comm_demand)
        be = make_backend("kiobuf")
        be.lock(kernel, comm_task, va, comm_demand * PAGE_SIZE)
    app = kernel.create_task(name="app")
    app_va = app.mmap(RAM)
    touched = 0
    for i in range(RAM):
        app.write(app_va + i * PAGE_SIZE, b"A")
        if kernel.swap.writes > 0:
            break
        touched += 1
    return touched


@pytest.fixture(scope="module")
def rows():
    out = []
    for demand in DEMANDS:
        static = max_swapfree_appset(demand, static=True)
        dynamic = max_swapfree_appset(demand, static=False)
        out.append([demand, static, dynamic, dynamic - static])
    return out


def test_e12_waste_table(rows, report):
    if report("E12: static reservation vs dynamic pinning"):
        print_table(
            f"E12 — swap-free app working set (pages) on {RAM}-frame "
            f"RAM, bigphys reserved for worst case {WORST_CASE}",
            ["comm demand", "bigphys app set", "kiobuf app set",
             "kiobuf advantage"],
            rows)
    by_demand = {r[0]: r for r in rows}
    # Static reservation: app set flat regardless of actual demand.
    static_sets = [r[1] for r in rows]
    assert max(static_sets) - min(static_sets) <= 2
    # Dynamic: at low demand the app gets (worst case − demand) more.
    assert by_demand[8][3] >= (WORST_CASE - 8) - 12
    # At worst-case demand the two converge.
    assert abs(by_demand[WORST_CASE][3]) <= 12


def test_e12_point(benchmark):
    """Host time of one measurement point."""
    benchmark(lambda: max_swapfree_appset(32, static=False))
