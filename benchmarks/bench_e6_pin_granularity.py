"""E6 — ablation: per-page pin counters vs a single lock bit.

The design choice DESIGN.md calls out: the kiobuf reconstruction keeps a
per-page *pin counter*, while the Giganet-style backend (and any scheme
built on the single ``PG_locked`` bit) cannot express overlapping
owners.  This bench counts wrongly-unlocked pages in two scenarios:

1. **overlapping registrations** — two regions sharing pages; the
   earlier deregistration must not unprotect the shared pages;
2. **kernel I/O collision** — the kernel locks a page for its own I/O
   while it is registered; deregistration must not strip that lock.

Expected: pageflags wrongly unlocks every shared/kernel-locked page;
kiobuf never does.
"""

import pytest

from repro.bench.harness import print_table
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.kernel import Kernel
from repro.via.locking import make_backend

PAGES = 16
OVERLAP = 8


def overlap_scenario(backend_name: str) -> tuple[int, int]:
    """Two registrations overlapping on OVERLAP pages; deregister the
    first; returns (shared_pages, wrongly_unprotected)."""
    kernel = Kernel(num_frames=256)
    t = kernel.create_task()
    va = t.mmap(PAGES + OVERLAP)
    be = make_backend(backend_name)
    r1 = be.lock(kernel, t, va, PAGES * PAGE_SIZE)
    r2 = be.lock(kernel, t, va + (PAGES - OVERLAP) * PAGE_SIZE,
                 PAGES * PAGE_SIZE)
    shared = set(r1.frames) & set(r2.frames)
    assert len(shared) == OVERLAP
    be.unlock(kernel, r1.cookie)
    wrongly = sum(
        1 for frame in shared
        if not (kernel.pagemap.page(frame).locked
                or kernel.pagemap.page(frame).reserved
                or kernel.pagemap.page(frame).pinned))
    be.unlock(kernel, r2.cookie)
    return len(shared), wrongly


def kernel_io_scenario(backend_name: str) -> tuple[int, int]:
    """Kernel locks every registered page for I/O; then deregistration
    happens; returns (locked_pages, kernel_locks_lost)."""
    kernel = Kernel(num_frames=256)
    t = kernel.create_task()
    va = t.mmap(PAGES)
    be = make_backend(backend_name)
    res = be.lock(kernel, t, va, PAGES * PAGE_SIZE)
    for frame in res.frames:
        kernel.lock_page(frame)       # kernel-held PG_locked
    be.unlock(kernel, res.cookie)
    lost = sum(1 for frame in res.frames
               if not kernel.pagemap.page(frame).locked)
    return len(res.frames), lost


@pytest.fixture(scope="module")
def rows():
    out = []
    for name in ("pageflags", "kiobuf"):
        shared, wrong = overlap_scenario(name)
        locked, lost = kernel_io_scenario(name)
        out.append([name, f"{wrong}/{shared}", f"{lost}/{locked}"])
    return out


def test_e6_pin_granularity(rows, report):
    if report("E6: pin-bookkeeping granularity ablation"):
        print_table(
            "E6 — wrongly-unprotected pages after first deregistration",
            ["backend", "overlap: unprotected/shared",
             "kernel I/O: locks lost/held"],
            rows)
    by_name = {r[0]: r for r in rows}
    assert by_name["pageflags"][1] == f"{OVERLAP}/{OVERLAP}"
    assert by_name["pageflags"][2] == f"{PAGES}/{PAGES}"
    assert by_name["kiobuf"][1] == f"0/{OVERLAP}"
    assert by_name["kiobuf"][2] == f"0/{PAGES}"


@pytest.mark.parametrize("backend", ["pageflags", "kiobuf"])
def test_e6_overlap_cycle(benchmark, backend):
    """Host time of the overlapping-registration scenario."""
    benchmark(lambda: overlap_scenario(backend))
