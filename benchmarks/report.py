"""Aggregate benchmark runs into one machine-readable ``BENCH.json``.

Runs the benchmark suite twice over, in one pytest invocation:

* with ``REPRO_BENCH_RECORD`` pointed at a scratch JSONL file, so every
  table/series/metric the experiments print (simulated-time numbers,
  deterministic) is captured in machine-readable form by
  :func:`repro.bench.harness.record`;
* with ``--benchmark-json``, so pytest-benchmark's host-time statistics
  (which measure the simulator itself, not the simulated hardware) are
  captured alongside.

The two are merged into ``BENCH.json``::

    {"meta":    {...run info...},
     "records": [ ...tables / series / metrics, in emit order... ],
     "metrics": {"<title>": { ...observability snapshot... }},
     "host":    {"<test name>": {"median_s": ..., "mean_s": ...,
                                 "stddev_s": ..., "rounds": ...}}}

``metrics`` collects every ``kind == "metrics"`` record (the
observability snapshots emitted by E15) keyed by title, so the headline
numbers — regcache hit rate, DMA burst histogram, fabric retransmit
counters — are addressable without scanning the record stream.  The run
also points ``REPRO_BENCH_TRACE`` at ``BENCH_TRACE.json`` next to the
output, so E15 drops its Chrome trace (``chrome://tracing``) there for
CI to archive.

Usage::

    python benchmarks/report.py               # full suite
    python benchmarks/report.py --quick       # E13 + E5 only (CI smoke)
    python benchmarks/report.py -o OUT.json BENCH_DIR...

Exit status is pytest's: a failing benchmark assertion fails the report.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent

#: CI smoke selection: the fast-path experiment plus one legacy
#: experiment, both cheap enough for a per-push job.
QUICK = ["bench_e13_fastpath.py", "bench_e5_messaging.py",
         "bench_e15_observability.py"]


def run(targets: list[str], out_path: Path, quick: bool) -> int:
    with tempfile.TemporaryDirectory(prefix="bench-report-") as tmp:
        records_path = Path(tmp) / "records.jsonl"
        hostjson_path = Path(tmp) / "benchmark.json"

        env = dict(os.environ)
        env["REPRO_BENCH_RECORD"] = str(records_path)
        env.setdefault("REPRO_BENCH_TRACE",
                       str(out_path.parent / "BENCH_TRACE.json"))
        env.setdefault("PYTHONPATH", str(REPO / "src"))

        cmd = [sys.executable, "-m", "pytest", "-q", "-s",
               "--benchmark-json", str(hostjson_path),
               *targets]
        proc = subprocess.run(cmd, cwd=REPO, env=env)

        records = []
        if records_path.exists():
            with open(records_path, encoding="utf-8") as fh:
                records = [json.loads(line) for line in fh if line.strip()]

        host = {}
        # pytest-benchmark leaves the file empty (not absent) when the
        # selected targets register no host-time benchmarks.
        if hostjson_path.exists() and hostjson_path.stat().st_size:
            with open(hostjson_path, encoding="utf-8") as fh:
                data = json.load(fh)
            for bench in data.get("benchmarks", []):
                stats = bench.get("stats", {})
                host[bench["name"]] = {
                    "median_s": stats.get("median"),
                    "mean_s": stats.get("mean"),
                    "stddev_s": stats.get("stddev"),
                    "rounds": stats.get("rounds"),
                }

        metrics = {rec["title"]: {k: v for k, v in rec.items()
                                  if k not in ("kind", "title")}
                   for rec in records if rec.get("kind") == "metrics"}

        report = {
            "meta": {
                "quick": quick,
                "targets": targets,
                "python": platform.python_version(),
                "platform": platform.platform(),
                "pytest_exit": proc.returncode,
            },
            "records": records,
            "metrics": metrics,
            "host": host,
        }
        out_path.write_text(json.dumps(report, indent=2) + "\n",
                            encoding="utf-8")
        print(f"\nwrote {out_path} "
              f"({len(records)} records, {len(host)} host benchmarks)")
        return proc.returncode


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("targets", nargs="*",
                    help="bench files/dirs (default: all of benchmarks/)")
    ap.add_argument("--quick", action="store_true",
                    help=f"CI smoke selection: {', '.join(QUICK)}")
    ap.add_argument("-o", "--output", default=str(REPO / "BENCH.json"),
                    help="output path (default: BENCH.json)")
    args = ap.parse_args(argv)

    if args.quick:
        targets = [str(HERE / t) for t in QUICK]
    elif args.targets:
        targets = args.targets
    else:
        targets = [str(HERE)]
    return run(targets, Path(args.output), args.quick)


if __name__ == "__main__":
    raise SystemExit(main())
