"""E8 — small-message latency: PIO vs descriptor-based VIA.

The collection's measurements (Seifert/Balkanski/Rehm, "Comparing MPI
Performance of SCI and VIA"): SCI shared-memory PIO ≈ 2–8 µs,
descriptor-based VIA ≈ tens of µs — "VIA communication is completely
based on explicit descriptor processing.  Hence there is no way to
achieve ultra-low latencies as it can be done in SCI by using simple
memory references."

This bench reports the simulated one-way latency of a 4-byte message
per protocol and asserts that ordering: PIO (memory reference) ≪ eager
(descriptor + bounce copy) < zero-copy (descriptor + handshake +
registration).
"""

import pytest

from repro.bench.harness import print_table
from repro.msg.endpoint import make_pair
from repro.msg.protocols import (
    EagerProtocol, PioProtocol, RendezvousZeroCopyProtocol,
)
from repro.via.machine import Cluster

TINY = 4


@pytest.fixture(scope="module")
def latency_rows():
    cluster = Cluster(2, num_frames=1024, backend="kiobuf")
    s, r = make_pair(cluster)
    src = s.task.mmap(2)
    s.task.touch_pages(src, 2)
    dst = r.task.mmap(2)
    r.task.touch_pages(dst, 2)
    s.task.write(src, b"ping")
    rows = []
    for proto in (PioProtocol(use_cache=True), EagerProtocol(),
                  RendezvousZeroCopyProtocol(use_cache=True)):
        # Warm: first transfer pays one-time registrations.
        proto.transfer(s, r, src, dst, TINY)
        res = proto.transfer(s, r, src, dst, TINY)
        assert res.ok
        rows.append([proto.name, res.sim_ns / 1000.0])
    return rows


def test_e8_latency_ordering(latency_rows, report):
    if report("E8: small-message latency"):
        print_table("E8 — one-way latency of a 4-byte message (warm)",
                    ["protocol", "simulated us"], latency_rows)
    lat = {name: us for name, us in latency_rows}
    # The magnitudes of the era: PIO a few us, descriptor paths tens.
    assert lat["pio"] < 10.0
    assert lat["eager"] > 3 * lat["pio"]
    assert lat["rendezvous-zerocopy+cache"] > lat["eager"]


def test_e8_pio_latency(benchmark):
    """Host time of one warm PIO transfer."""
    cluster = Cluster(2, num_frames=512, backend="kiobuf")
    s, r = make_pair(cluster)
    src = s.task.mmap(1)
    s.task.touch_pages(src, 1)
    dst = r.task.mmap(1)
    r.task.touch_pages(dst, 1)
    s.task.write(src, b"ping")
    proto = PioProtocol(use_cache=True)
    proto.transfer(s, r, src, dst, TINY)
    benchmark(lambda: proto.transfer(s, r, src, dst, TINY))
