"""E21 — race-detector detection rate and explorer throughput.

The three seeded scenarios each plant one known race class
(unpin-vs-dma, invalidate-vs-translate, fault-service-vs-evict) behind
a same-deadline tie that FIFO dispatch happens to resolve safely: the
identity schedule must come back clean, and schedule exploration must
surface exactly the seeded race kind.  The table reports, per scenario,
how many schedules ran vs were DPOR-pruned, the identity verdict, and
the race kinds found; the headline metrics are the detection rate
(found seeded races / seeded races, must be 1.0) and explorer
throughput in schedules per second of host time.

Scaling knob (CI smoke): ``REPRO_E21_SCHEDULES`` — candidate schedules
per scenario, identity included (shares its default with the explorer
CLI's ``REPRO_RACE_SCHEDULES``).
"""

import os
import time

import pytest

from repro.analysis.explore import ExploreConfig, ExploreReport, explore
from repro.analysis.scenarios import SCENARIOS
from repro.bench.harness import fmt_bool, print_table, record

SCHEDULES = int(os.environ.get(
    "REPRO_E21_SCHEDULES",
    os.environ.get("REPRO_RACE_SCHEDULES", "8")))

#: the scenarios that plant a race on purpose — the detection-rate set
SEEDED = [name for name, sc in SCENARIOS.items() if sc.expect_races]


@pytest.fixture(scope="module")
def sweeps() -> dict[str, tuple[ExploreReport, float]]:
    """Explore every seeded scenario, timing each exploration (host
    seconds — this measures the explorer, not the simulated hardware)."""
    out: dict[str, tuple[ExploreReport, float]] = {}
    for name in SEEDED:
        t0 = time.perf_counter()
        report = explore(SCENARIOS[name],
                         ExploreConfig(schedules=SCHEDULES))
        out[name] = (report, time.perf_counter() - t0)
    return out


def test_e21_seeded_detection_rate(sweeps, report):
    if report("E21: race detection rate + explorer throughput"):
        print_table(
            f"E21 — {SCHEDULES} candidate schedules per scenario",
            ["scenario", "seeded race", "ran", "pruned", "ties",
             "identity clean", "detected"],
            [[name, ",".join(SCENARIOS[name].expect_races),
              rep.schedules_run, rep.pruned, len(rep.groups),
              fmt_bool(rep.identity_result.clean),
              fmt_bool(rep.race_kinds_found
                       == set(SCENARIOS[name].expect_races))]
             for name, (rep, _elapsed) in sweeps.items()])

    detected = 0
    for name, (rep, _elapsed) in sweeps.items():
        expected = set(SCENARIOS[name].expect_races)
        # Acceptance: clean under the default schedule...
        assert rep.identity_result.clean, name
        # ...exactly the seeded race under exploration, nothing else...
        assert rep.race_kinds_found == expected, (
            name, rep.race_kinds_found)
        # ...and no sanitizer fallout on any schedule.
        assert all(not r.san_violations for r in rep.results), name
        detected += 1

    runs = sum(rep.schedules_run for rep, _ in sweeps.values())
    elapsed = sum(e for _, e in sweeps.values())
    schedules_per_sec = runs / elapsed if elapsed > 0 else 0.0
    rate = detected / len(SEEDED)
    record("metrics", "E21 race exploration",
           schedules=SCHEDULES, scenarios=SEEDED,
           detection_rate=rate,
           schedules_run=runs,
           pruned=sum(rep.pruned for rep, _ in sweeps.values()),
           schedules_per_sec=round(schedules_per_sec, 2),
           **{f"{name}_kinds": sorted(rep.race_kinds_found)
              for name, (rep, _e) in sweeps.items()})
    assert rate == 1.0


def test_e21_host_time(benchmark):
    """Host-time anchor: one full exploration of the unpin-vs-dma
    scenario (detector + sanitizer armed on every schedule)."""
    def run():
        rep = explore(SCENARIOS["unpin_vs_dma"],
                      ExploreConfig(schedules=SCHEDULES))
        assert rep.race_kinds_found == {"unpin-vs-dma"}
        return rep

    benchmark(run)
