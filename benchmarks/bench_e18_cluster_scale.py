"""E18 — simulator core scale-out.

PR 7 rebuilt the simulator core around three mechanisms: the SimClock
event calendar (daemons ride a lazy min-heap instead of fanning out on
every charge), the vectorized frame table (columnar counters plus
incremental pinned/orphan index sets, so audits stop walking the whole
table), and the batched NIC fast path (``post_*_many`` amortizes the
doorbell/fetch charges; ``drain_batch`` empties a CQ in one call).

This experiment measures what the three buy *together* on a soak-shaped
cluster: two machines, ``TENANTS`` tenants each running a connected VI
pair, with an orphan reaper per machine and one cluster watchdog
sampling invariants on a short cadence.  Both arms move the same
messages under the same daemon cadences — the legacy arm uses the
per-charge subscriber wiring, whole-table audit scans, and one-at-a-time
posting; the new arm uses calendar events, incremental-set audits, and
batched posting/draining.

Asserted gates:

1. whole-cluster throughput (messages/sec of host time) improves by at
   least 3x;
2. host seconds burned per simulated second drop accordingly;
3. the A/B is honest — both arms run the same number of watchdog
   samples and reaper scans, so the speedup comes from mechanism, not
   from skipped work.
"""

import os
import time

import pytest

from repro.bench.harness import print_table, record
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.reaper import OrphanReaper
from repro.via.constants import VIP_SUCCESS
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.machine import Cluster

TENANTS = int(os.environ.get("REPRO_E18_TENANTS", "8"))
ROUNDS = int(os.environ.get("REPRO_E18_ROUNDS", "30"))
BATCH = int(os.environ.get("REPRO_E18_BATCH", "16"))
FRAMES = int(os.environ.get("REPRO_E18_FRAMES", "8192"))
TIMING_ROUNDS = int(os.environ.get("REPRO_E18_TIMING_ROUNDS", "3"))
PAYLOAD = 256                 #: bytes per message
REAPER_NS = 50_000            #: reaper cadence (short: soak-shaped)
WATCHDOG_NS = 20_000          #: invariant sampling cadence


class Tenant:
    """One tenant: a task per machine and a connected VI pair, with
    ``BATCH`` registered buffers on each side reused every round."""

    def __init__(self, cluster: Cluster, index: int, use_cq: bool):
        sender = cluster[0].spawn(f"tenant{index}.s")
        receiver = cluster[1].spawn(f"tenant{index}.r")
        self.ua_s = cluster[0].user_agent(sender)
        self.ua_r = cluster[1].user_agent(receiver)
        self.cq = self.ua_r.create_cq() if use_cq else None
        self.vi_s = self.ua_s.create_vi()
        self.vi_r = self.ua_r.create_vi(recv_cq=self.cq)
        cluster.connect(self.vi_s, cluster[0], self.vi_r, cluster[1])
        self.recv_regs = []
        for _ in range(BATCH):
            va = self.ua_r.task.mmap(1)
            self.recv_regs.append(self.ua_r.register_mem(va, PAGE_SIZE))
        self.send_bufs = []
        for i in range(BATCH):
            va = self.ua_s.task.mmap(1)
            reg = self.ua_s.register_mem(va, PAGE_SIZE)
            self.ua_s.task.write(va, bytes([index % 251]) * PAYLOAD)
            self.send_bufs.append((reg, va))

    def _descriptors(self):
        rdescs = [Descriptor.recv([self.ua_r.segment(reg)])
                  for reg in self.recv_regs]
        sdescs = [Descriptor.send([DataSegment(reg.handle, va, PAYLOAD)])
                  for reg, va in self.send_bufs]
        return rdescs, sdescs

    def round_batched(self) -> int:
        """One round on the new path: batch-post, batch-drain."""
        rdescs, sdescs = self._descriptors()
        self.ua_r.post_recv_many(self.vi_r, rdescs)
        self.ua_s.post_send_many(self.vi_s, sdescs)
        comps = self.cq.drain_batch()
        assert len(comps) == BATCH
        return BATCH

    def round_legacy(self) -> int:
        """The same messages, posted and reaped one at a time."""
        rdescs, sdescs = self._descriptors()
        for desc in rdescs:
            self.ua_r.post_recv(self.vi_r, desc)
        for desc in sdescs:
            self.ua_s.post_send(self.vi_s, desc)
        for i in range(BATCH):
            done = self.ua_r.recv_done(self.vi_r)
            assert done.status == VIP_SUCCESS
        return BATCH


def run_arm(events: bool) -> dict:
    """Build the cluster, run the soak, return the arm's metrics."""
    cluster = Cluster(2, num_frames=FRAMES, backend="kiobuf")
    reapers = [OrphanReaper(m.kernel, agents=[m.agent],
                            interval_ns=REAPER_NS)
               for m in cluster.machines]
    # The reaper is calendar-only now (its legacy subscriber arm was
    # retired); the A/B legacy arm still varies the watchdog cadence,
    # full-scan audits, and one-at-a-time posting.
    for reaper in reapers:
        reaper.start()
    watchdog = cluster.arm_watchdog(interval_ns=WATCHDOG_NS,
                                    use_events=events,
                                    full_scan=not events)
    tenants = [Tenant(cluster, i, use_cq=events) for i in range(TENANTS)]

    def soak() -> int:
        ops = 0
        for _ in range(ROUNDS):
            for tenant in tenants:
                ops += (tenant.round_batched() if events
                        else tenant.round_legacy())
        return ops

    soak()                                   # warm caches and code paths
    sim0 = cluster.clock.now_ns
    checks0, scans0 = watchdog.checks_run, sum(r.scans for r in reapers)
    best = float("inf")
    ops = 0
    for _ in range(TIMING_ROUNDS):
        t0 = time.perf_counter()
        ops = soak()
        best = min(best, time.perf_counter() - t0)
    sim_s = (cluster.clock.now_ns - sim0) / 1e9 / TIMING_ROUNDS
    result = {
        "mode": "events" if events else "legacy",
        "ops_per_sec": ops / best,
        "host_s_per_sim_s": best / sim_s,
        "sim_s": sim_s,
        "watchdog_checks": (watchdog.checks_run - checks0) / TIMING_ROUNDS,
        "reaper_scans": (sum(r.scans for r in reapers) - scans0)
        / TIMING_ROUNDS,
    }
    watchdog.disarm()
    for reaper in reapers:
        reaper.stop()
    return result


@pytest.fixture(scope="module")
def arms():
    return {"legacy": run_arm(False), "events": run_arm(True)}


def test_e18_cluster_ops_speedup(arms, report):
    """The headline gate: >= 3x whole-cluster messages/sec."""
    legacy, events = arms["legacy"], arms["events"]
    if report("E18: simulator core scale-out"):
        print_table(
            f"E18a — {TENANTS}-tenant soak, {ROUNDS}x{BATCH} msgs/tenant, "
            f"{FRAMES} frames",
            ["mode", "msgs/s (host)", "host s / sim s",
             "watchdog checks", "reaper scans"],
            [[a["mode"], a["ops_per_sec"], a["host_s_per_sim_s"],
              a["watchdog_checks"], a["reaper_scans"]]
             for a in (legacy, events)])
    ratio = events["ops_per_sec"] / legacy["ops_per_sec"]
    record("metrics", "E18 cluster scale-out",
           tenants=TENANTS, rounds=ROUNDS, batch=BATCH, frames=FRAMES,
           legacy_ops_per_sec=legacy["ops_per_sec"],
           events_ops_per_sec=events["ops_per_sec"],
           speedup=ratio,
           legacy_host_s_per_sim_s=legacy["host_s_per_sim_s"],
           events_host_s_per_sim_s=events["host_s_per_sim_s"])
    assert ratio >= 3.0, (
        f"calendar + vectorized + batched core must deliver >= 3x "
        f"cluster throughput (got {ratio:.2f}x)")


def test_e18_host_time_per_sim_second(arms):
    """The simulator must burn fewer host seconds per simulated second."""
    assert (arms["events"]["host_s_per_sim_s"]
            < arms["legacy"]["host_s_per_sim_s"])


def test_e18_arms_do_the_same_daemon_work(arms):
    """Honesty check: the speedup must not come from skipped samples.
    Both arms run the same cadences, so their sampling *rates* per
    simulated second must agree (the legacy arm spans more sim time per
    soak — unbatched posting charges more — hence the normalization)."""
    legacy, events = arms["legacy"], arms["events"]
    for key in ("watchdog_checks", "reaper_scans"):
        rates = sorted((legacy[key] / legacy["sim_s"],
                        events[key] / events["sim_s"]))
        assert rates[0] > 0, f"{key}: cadence never fired"
        assert rates[1] / rates[0] < 1.2, (
            f"{key}: per-sim-second rates diverge ({rates})")


def test_e18_batched_soak_round(benchmark):
    """Host time of one tenant round on the new batched path."""
    cluster = Cluster(2, num_frames=FRAMES, backend="kiobuf")
    cluster.start_reapers(interval_ns=REAPER_NS)
    cluster.arm_watchdog(interval_ns=WATCHDOG_NS)
    tenant = Tenant(cluster, 0, use_cq=True)
    tenant.round_batched()           # warm
    benchmark(tenant.round_batched)
