"""E5 — end-to-end messaging under memory pressure.

Three series over a message-size sweep (the textual form of a NetPIPE-
style bandwidth figure):

1. bandwidth per protocol (eager / rendezvous-copy / zero-copy) on the
   kiobuf backend — expected: eager wins small, zero-copy wins large,
   crossover in the few-KiB range;
2. zero-copy with vs without the registration cache on a buffer-reuse
   workload — expected: the cache removes most registrations and closes
   the first-use cliff;
3. correctness under pressure per backend — expected: kiobuf transfers
   all verify; refcount transfers silently corrupt once reclaim has
   moved registered pages.
"""

import numpy as np
import pytest

from repro.bench.harness import print_series, print_table
from repro.hw.physmem import PAGE_SIZE
from repro.msg.endpoint import make_pair
from repro.msg.protocols import (
    EagerProtocol, RendezvousCopyProtocol, RendezvousZeroCopyProtocol,
)
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.machine import Cluster
from repro.workloads.allocator import apply_memory_pressure

SIZES = [1 << k for k in range(8, 21, 2)]   # 256 B .. 1 MiB


def build_pair(backend: str = "kiobuf", num_frames: int = 4096):
    cluster = Cluster(2, num_frames=num_frames, backend=backend)
    s, r = make_pair(cluster)
    pages = max(SIZES) // PAGE_SIZE + 2
    src = s.task.mmap(pages)
    s.task.touch_pages(src, pages)
    dst = r.task.mmap(pages)
    r.task.touch_pages(dst, pages)
    return cluster, s, r, src, dst


@pytest.fixture(scope="module")
def bandwidth_series():
    cluster, s, r, src, dst = build_pair()
    rng = np.random.default_rng(0)
    protocols = [EagerProtocol(), RendezvousCopyProtocol(),
                 RendezvousZeroCopyProtocol(use_cache=True)]
    series: dict[str, list] = {p.name: [] for p in protocols}
    for size in SIZES:
        s.task.write(src, bytes(rng.integers(0, 256, size,
                                             dtype=np.uint8)))
        for proto in protocols:
            res = proto.transfer(s, r, src, dst, size)
            assert res.ok
            series[proto.name].append((size, res.bandwidth_mb_s))
    return series


def test_e5_bandwidth_sweep(bandwidth_series, report):
    if report("E5: messaging bandwidth"):
        print_series("E5a — bandwidth vs message size (kiobuf backend)",
                     "bytes", bandwidth_series, ylabel="MB/s")
    eager = dict(bandwidth_series["eager"])
    zcopy = dict(bandwidth_series["rendezvous-zerocopy+cache"])
    assert eager[256] > zcopy[256], "eager must win tiny messages"
    assert zcopy[1 << 20] > 1.5 * eager[1 << 20], \
        "zero-copy must win large messages clearly"
    # Crossover exists inside the sweep.
    crossed = [n for n in SIZES if zcopy[n] > eager[n]]
    assert crossed and min(crossed) <= 64 * 1024


@pytest.fixture(scope="module")
def cache_rows():
    rows = []
    for use_cache in (False, True):
        cluster, s, r, src, dst = build_pair()
        proto = RendezvousZeroCopyProtocol(use_cache=use_cache)
        size = 256 * 1024
        regs = hits = 0
        total_ns = 0
        for i in range(10):   # the same buffers reused 10 times
            res = proto.transfer(s, r, src, dst, size)
            assert res.ok
            regs += res.registrations
            hits += res.cache_hits
            total_ns += res.sim_ns
        rows.append([proto.name, regs, hits, total_ns / 10 / 1000.0])
    return rows


def test_e5_cache_effect(cache_rows, report):
    if report("E5b: registration cache effect"):
        print_table("E5b — 10 reuses of the same 256 KiB buffers",
                    ["protocol", "registrations", "cache hits",
                     "avg us/transfer"], cache_rows)
    nocache, cache = cache_rows
    assert nocache[1] == 20 and nocache[2] == 0
    assert cache[1] == 2 and cache[2] == 18
    assert cache[3] < nocache[3]


@pytest.fixture(scope="module")
def pressure_rows():
    """Zero-copy RDMA with reclaim running between registration and
    use, per backend."""
    rows = []
    for backend in ("kiobuf", "mlock", "refcount"):
        cluster, s, r, src, dst = build_pair(backend, num_frames=512)
        size = 16 * PAGE_SIZE
        payload = bytes(np.random.default_rng(1).integers(
            0, 256, size, dtype=np.uint8))
        s.task.write(src, payload)
        rreg = r.ua.register_mem(dst, size, rdma_write=True)
        hog = apply_memory_pressure(r.machine.kernel, factor=1.5)
        r.task.touch_pages(dst, size // PAGE_SIZE)
        hog.release()
        sreg = s.ua.register_mem(src, size)
        desc = Descriptor.rdma_write(
            [DataSegment(sreg.handle, src, size)],
            remote_handle=rreg.handle, remote_va=dst)
        s.ua.post_send(s.vi, desc)
        correct = r.task.read(dst, size) == payload
        rows.append([backend, desc.status, correct])
    return rows


def test_e5_correctness_under_pressure(pressure_rows, report):
    if report("E5c: zero-copy correctness under pressure"):
        print_table("E5c — RDMA write after reclaim hit the registered "
                    "buffer",
                    ["backend", "RDMA status", "payload correct"],
                    pressure_rows)
    by_name = {r[0]: r for r in pressure_rows}
    assert by_name["kiobuf"][2] is True
    assert by_name["mlock"][2] is True
    # The silent failure: the RDMA "succeeds" but the data never arrives.
    assert by_name["refcount"][1] == "VIP_SUCCESS"
    assert by_name["refcount"][2] is False


def test_e5_zerocopy_transfer(benchmark):
    """Host time of one cached zero-copy 64 KiB transfer."""
    cluster, s, r, src, dst = build_pair()
    proto = RendezvousZeroCopyProtocol(use_cache=True)
    s.task.write(src, b"q" * (64 * 1024))
    proto.transfer(s, r, src, dst, 64 * 1024)   # warm the cache

    def xfer():
        res = proto.transfer(s, r, src, dst, 64 * 1024)
        assert res.ok

    benchmark(xfer)
