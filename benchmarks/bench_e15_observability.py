"""E15 — the observability layer: populated snapshots, near-free when off.

Two claims are on trial:

1. **Enabled observability sees the stack.**  Running the 1 MiB
   zero-copy loop (plus a lossy phase to exercise the retransmission
   protocol) with observability enabled must populate the snapshot with
   the numbers the paper's evaluation would quote: registration-cache
   hit rate, DMA burst-size histogram, fabric retransmit counters, NIC
   doorbell→completion latency.  The snapshot is recorded into
   ``BENCH.json``'s ``metrics`` section, and the span recorder's Chrome
   trace is exported (``REPRO_BENCH_TRACE``) for the CI artifact.
2. **Disabled observability is near-free.**  Every hot-path emit hides
   behind one ``enabled`` branch, so the shipped default must cost
   < 5 % wall-clock on the same 1 MiB zero-copy loop — the fast-path
   wins of E13 survive carrying the instrumentation.
"""

import json
import os
import time

from repro.analysis.sanitizer import PinSanitizer
from repro.bench.harness import print_table, record
from repro.msg.endpoint import make_pair
from repro.msg.protocols import RendezvousZeroCopyProtocol
from repro.sim.faults import FaultPlan
from repro.via.machine import Cluster

NBYTES = 1 << 20
LOOP = 20
ROUNDS = 5


def build_pair():
    """A connected endpoint pair on a fresh two-machine cluster."""
    cluster = Cluster(2, num_frames=4096, backend="kiobuf")
    s, r = make_pair(cluster)
    pages = NBYTES // 4096 + 2
    src = s.task.mmap(pages)
    s.task.touch_pages(src, pages)
    dst = r.task.mmap(pages)
    r.task.touch_pages(dst, pages)
    s.task.write(src, b"\xa5" * NBYTES)
    return cluster, s, r, src, dst


def timed_loop(proto, s, r, src, dst, loops=LOOP, rounds=ROUNDS):
    """Best-of-``rounds`` host seconds for ``loops`` transfers."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(loops):
            res = proto.transfer(s, r, src, dst, NBYTES)
            assert res.ok
        best = min(best, time.perf_counter() - t0)
    return best


def test_e15_snapshot_populated(report):
    """Enabled observability captures regcache/DMA/fabric/NIC activity."""
    cluster, s, r, src, dst = build_pair()
    cluster.obs.enable()
    # The pin sanitizer rides along: its event/violation gauges fold
    # into the same snapshot, so BENCH.json records the clean bill of
    # health next to the performance numbers.
    san = PinSanitizer(strict=True).arm(cluster)
    proto = RendezvousZeroCopyProtocol(use_cache=True)

    # Healthy phase: populates cache hit rate, DMA bursts, latencies.
    for _ in range(8):
        assert proto.transfer(s, r, src, dst, NBYTES).ok

    # Lossy phase: exercises the retransmission counters.
    cluster.inject_faults(FaultPlan(seed=7, loss_rate=0.2))
    for _ in range(4):
        assert proto.transfer(s, r, src, dst, NBYTES).ok
    cluster.inject_faults(None)

    snap = cluster.obs.snapshot()
    metrics = snap["metrics"]

    hit_rate = metrics["core.regcache.hit_rate"]["value"]
    bursts = metrics["hw.dma.burst_bytes"]
    retransmits = metrics["via.nic.retransmits"]
    latency = metrics["via.nic.doorbell_to_completion_ns"]
    assert hit_rate > 0.5, f"cache should be hot, hit_rate={hit_rate}"
    assert bursts["count"] > 0 and bursts["max"] >= 4096
    assert retransmits > 0, "lossy phase must retransmit"
    assert metrics["via.fabric.packets_dropped"] > 0
    assert latency["count"] > 0 and latency["sum"] > 0
    assert snap["spans"]["by_name"], "transfer spans must be recorded"

    san_events = metrics["analysis.san.events_observed"]["value"]
    assert san_events > 0, "sanitizer must have observed the workload"
    assert metrics["analysis.san.violations_total"]["value"] == 0
    san.disarm()

    record("metrics", "E15 observability snapshot", metrics=metrics,
           spans=snap["spans"])
    if report("E15a: enabled-observability snapshot"):
        print_table(
            "E15a — headline metrics of the instrumented loop",
            ["metric", "value"],
            [["core.regcache.hit_rate", f"{hit_rate:.3f}"],
             ["hw.dma.burst_bytes count", bursts["count"]],
             ["hw.dma.burst_bytes mean", f"{bursts['mean']:.0f}"],
             ["via.nic.retransmits", retransmits],
             ["via.fabric.packets_dropped",
              metrics["via.fabric.packets_dropped"]],
             ["doorbell→completion mean ns", f"{latency['mean']:.0f}"],
             ["analysis.san.events_observed", san_events],
             ["analysis.san.violations_total", 0]])

    # Chrome trace export: must round-trip through json and is written
    # out for the CI artifact when REPRO_BENCH_TRACE names a path.
    chrome = cluster.obs.export_chrome_trace()
    parsed = json.loads(json.dumps(chrome))
    assert parsed["traceEvents"], "trace export must contain spans"
    trace_path = os.environ.get("REPRO_BENCH_TRACE")
    if trace_path:
        with open(trace_path, "w", encoding="utf-8") as fh:
            json.dump(chrome, fh)


def test_e15_disabled_path_overhead(report):
    """The disabled (default) observability path costs < 5 % wall-clock
    on the 1 MiB zero-copy loop.

    Baseline: a never-enabled cluster (the shipped default).  Measured:
    a cluster whose observability was enabled, exercised (registry and
    span recorder populated), then disabled again — the state every
    long-running system returns to after a diagnosis session.
    """
    proto = RendezvousZeroCopyProtocol(use_cache=True)

    cluster_b, s_b, r_b, src_b, dst_b = build_pair()
    assert not cluster_b.obs.enabled
    proto.transfer(s_b, r_b, src_b, dst_b, NBYTES)   # warm
    baseline_s = timed_loop(proto, s_b, r_b, src_b, dst_b)

    cluster_m, s_m, r_m, src_m, dst_m = build_pair()
    cluster_m.obs.enable()
    for _ in range(3):                               # populate the registry
        assert proto.transfer(s_m, r_m, src_m, dst_m, NBYTES).ok
    cluster_m.obs.disable()
    proto.transfer(s_m, r_m, src_m, dst_m, NBYTES)   # warm post-disable
    measured_s = timed_loop(proto, s_m, r_m, src_m, dst_m)

    ratio = measured_s / baseline_s
    record("metric", "E15 disabled-observability overhead", ratio=ratio,
           baseline_ms=baseline_s * 1e3, measured_ms=measured_s * 1e3)
    if report("E15b: disabled-path overhead"):
        print_table(
            "E15b — 1 MiB zero-copy loop, disabled obs vs baseline",
            ["variant", "host ms/loop"],
            [["never-enabled (baseline)", f"{baseline_s * 1e3:.2f}"],
             ["enabled-then-disabled", f"{measured_s * 1e3:.2f}"],
             ["ratio", f"{ratio:.3f}"]])
    assert ratio < 1.05, (
        f"disabled observability must cost < 5% wall-clock "
        f"(got {ratio:.3f}x)")
