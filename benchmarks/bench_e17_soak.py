"""E17 — multi-tenant churn soak: quotas hold for simulated hours.

The registration service's acceptance run: N tenants (default 8) churn
through transfers, direct registrations, ``munmap`` of registered
ranges, process kills (a fraction through the buggy teardown path), and
swap pressure for simulated hours (default 2), under wire/DMA chaos,
with the pin sanitizer armed strict.  The run itself enforces the
budget invariants op-by-op; this wrapper asserts the end state —

* zero sanitizer violations and zero pin/kiobuf leaks at final audit,
* peak total pinned pages ≤ the host ceiling,
* peak per-tenant pinned pages ≤ the per-uid quota,
* admission pressure was actually exercised (degradations or denials),

— and publishes the SLO percentiles plus admission counters into
``BENCH.json``.  Scaled down in CI smoke via ``REPRO_SOAK_TENANTS`` /
``REPRO_SOAK_SIM_SECONDS``.
"""

import os

from repro.bench.harness import print_table, record
from repro.workloads.soak import SoakConfig, run_soak

TENANTS = int(os.environ.get("REPRO_SOAK_TENANTS", "8"))
SIM_SECONDS = float(os.environ.get("REPRO_SOAK_SIM_SECONDS", "7200"))
SEED = int(os.environ.get("REPRO_SOAK_SEED", "0"))


def test_e17_churn_soak(report):
    """Sim-hours of tenant churn: budgets hold, nothing leaks."""
    # Ceiling scales with tenant count (50 pages/tenant — the default
    # 8×50=400) so the scaled-down CI smoke still contends for pins.
    config = SoakConfig(tenants=TENANTS, sim_seconds=SIM_SECONDS,
                        seed=SEED, host_ceiling_pages=50 * TENANTS)
    rep = run_soak(config)

    sim_hours = rep.sim_ns / 3.6e12
    assert rep.sim_ns >= SIM_SECONDS * 1e9
    assert rep.sanitizer_violations == 0, "sanitizer must stay silent"
    assert rep.leaked_pins == 0, "final audit must find no leaked pins"
    assert not rep.notes, f"soak ended unclean: {rep.notes}"
    assert rep.max_host_pinned_pages <= config.host_ceiling_pages
    assert rep.max_tenant_pinned_pages <= config.tenant_quota_pages
    assert rep.kills_clean + rep.kills_dirty > 0, "churn must kill"
    assert rep.transfers_ok > 0 and rep.registrations_sampled > 0

    accepted = denied = degraded = 0
    for snap in rep.admission.values():
        for tenant in snap["tenants"].values():
            accepted += tenant["accepted"]
            denied += tenant["denied"]
            degraded += tenant["degraded"]
    denied += rep.registrations_denied + rep.respawns_denied
    assert accepted > 0
    assert denied + degraded > 0, (
        "the soak must actually contend for the pin budget — raise "
        "tenants or lower the ceiling")

    slo = rep.latency_slo()
    record("metrics", "E17 multi-tenant churn soak",
           tenants=TENANTS, sim_hours=sim_hours,
           ops=rep.ops, transfers_ok=rep.transfers_ok,
           transfers_degraded=rep.transfers_degraded,
           transfers_failed=rep.transfers_failed,
           endpoint_rebuilds=rep.endpoint_rebuilds,
           kills_clean=rep.kills_clean, kills_dirty=rep.kills_dirty,
           admission_accepted=accepted, admission_denied=denied,
           admission_degraded=degraded,
           max_host_pinned_pages=rep.max_host_pinned_pages,
           host_ceiling_pages=config.host_ceiling_pages,
           max_tenant_pinned_pages=rep.max_tenant_pinned_pages,
           tenant_quota_pages=config.tenant_quota_pages,
           reaper_reclaimed=rep.reaper_reclaimed,
           reaper_by_uid=rep.reaper_by_uid,
           sanitizer_violations=rep.sanitizer_violations,
           leaked_pins=rep.leaked_pins, slo=slo)

    if report("E17: multi-tenant churn soak"):
        print_table(
            f"E17 — {TENANTS} tenants, {sim_hours:.2f} sim-hours of churn",
            ["measure", "value"],
            [["ops total", sum(rep.ops.values())],
             ["transfers ok / failed", f"{rep.transfers_ok} / "
              f"{rep.transfers_failed}"],
             ["kills clean / dirty", f"{rep.kills_clean} / "
              f"{rep.kills_dirty}"],
             ["admission accepted / degraded / denied",
              f"{accepted} / {degraded} / {denied}"],
             ["peak host pinned (ceiling)",
              f"{rep.max_host_pinned_pages} ({config.host_ceiling_pages})"],
             ["peak tenant pinned (quota)",
              f"{rep.max_tenant_pinned_pages} "
              f"({config.tenant_quota_pages})"],
             ["register p50 / p99 ns",
              f"{slo['register_p50_ns']} / {slo['register_p99_ns']}"],
             ["transfer p50 / p99 ns",
              f"{slo['transfer_p50_ns']} / {slo['transfer_p99_ns']}"],
             ["reaper reclaimed (tenants attributed)",
              f"{rep.reaper_reclaimed} ({len(rep.reaper_by_uid)})"],
             ["sanitizer violations / leaked pins",
              f"{rep.sanitizer_violations} / {rep.leaked_pins}"]])
