"""E1 — the Section 3.1 swap experiment: registration-survival matrix.

Regenerates the paper's central result for every locking backend:
pages relocated, DMA visibility, orphaned frames, stale TPT entries.

Expected shape (paper): refcount → all pages relocate, DMA write lands
in an orphaned frame ("the first page still contained its original
value"); pageflags / mlock / kiobuf → fully stable; odp → survives by
repair (pages may move while evicted, the NIC re-translates at use).
"""

import pytest

from repro.bench.harness import fmt_ns, print_table
from repro.core.locktest import LocktestExperiment, run_matrix
from repro.via.locking import BACKENDS

BUFFER_PAGES = 64
NUM_FRAMES = 512


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(sorted(BACKENDS), buffer_pages=BUFFER_PAGES,
                      num_frames=NUM_FRAMES)


def test_e1_survival_matrix(matrix, report):
    """Print the E1 table and assert the paper's qualitative result."""
    if report("E1: locktest survival matrix (Sec. 3.1)"):
        print_table(
            f"E1 — {BUFFER_PAGES}-page buffer, "
            f"{NUM_FRAMES * 4 // 1024} MiB RAM, allocator 2x RAM",
            ["backend", "pages moved", "DMA visible", "orphans (during)",
             "orphans (after)", "stale TPT", "reg", "dereg", "survived"],
            [[r.backend, f"{r.pages_relocated}/{r.npages}",
              r.dma_write_visible, r.orphan_frames_during,
              r.orphan_frames_after, r.stale_tpt_entries,
              fmt_ns(r.register_ns), fmt_ns(r.deregister_ns),
              r.registration_survived]
             for r in matrix])
    by_name = {r.backend: r for r in matrix}
    assert not by_name["refcount"].registration_survived
    assert by_name["refcount"].pages_relocated == BUFFER_PAGES
    assert by_name["refcount"].orphan_frames_after == 0
    for name in ("pageflags", "mlock", "mlock_naive", "kiobuf", "odp"):
        assert by_name[name].registration_survived


@pytest.mark.parametrize("backend", ["refcount", "kiobuf"])
def test_e1_locktest_run(benchmark, backend):
    """Host-time cost of one full locktest run (simulator throughput)."""
    result = benchmark(
        lambda: LocktestExperiment(backend, buffer_pages=32,
                                   num_frames=256).run())
    assert result.registration_survived == (backend == "kiobuf")
