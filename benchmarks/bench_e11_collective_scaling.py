"""E11 — collective scaling: simulated cost of barrier / bcast /
allreduce as the world grows.

Measurement-model note: the simulated clock is a single serial
timeline, so a collective's cost here is its **total message work**,
not its parallel critical path.  For a binomial tree that total is
n−1 messages (linear in n, log₂ n rounds); for the dissemination
barrier it is n·⌈log₂ n⌉ tokens.  The bench checks those totals — and
that no collective degenerates to the quadratic naive algorithm.
"""

import numpy as np
import pytest

from repro.bench.harness import print_table
from repro.mpi import MpiWorld

RANKS = [2, 4, 8]
COUNT = 256          # reduction elements
BCAST_BYTES = 8192


def measure(n: int) -> dict:
    world = MpiWorld(n, num_frames=1024, eager_threshold=16 * 1024)
    vas, outs = [], []
    for r in world.ranks:
        v = r.task.mmap(4)
        r.task.touch_pages(v, 4)
        vas.append(v)
        o = r.task.mmap(4)
        r.task.touch_pages(o, 4)
        outs.append(o)
    world.ranks[0].task.write(vas[0], b"x" * BCAST_BYTES)
    for i, r in enumerate(world.ranks):
        r.task.write(outs[i], np.full(COUNT, float(i)).tobytes())

    out = {}
    with world.clock.measure() as span:
        world.barrier()
    out["barrier"] = span.elapsed_ns
    with world.clock.measure() as span:
        world.bcast(0, vas, BCAST_BYTES)
    out["bcast"] = span.elapsed_ns
    with world.clock.measure() as span:
        world.allreduce(outs, vas, COUNT)
    out["allreduce"] = span.elapsed_ns
    dst = world.ranks[0].task.mmap(8)
    world.ranks[0].task.touch_pages(dst, 8)
    with world.clock.measure() as span:
        world.gather(0, vas, dst, 1024)
    out["gather"] = span.elapsed_ns
    return out


@pytest.fixture(scope="module")
def scaling():
    return {n: measure(n) for n in RANKS}


def test_e11_collective_scaling(scaling, report):
    if report("E11: collective scaling"):
        print_table(
            "E11 — simulated ms per collective vs world size",
            ["ranks", "barrier", "bcast 8KiB", "allreduce 256d",
             "gather 1KiB/rank"],
            [[n,
              f"{scaling[n]['barrier'] / 1e6:.3f}",
              f"{scaling[n]['bcast'] / 1e6:.3f}",
              f"{scaling[n]['allreduce'] / 1e6:.3f}",
              f"{scaling[n]['gather'] / 1e6:.3f}"]
             for n in RANKS])
    # Binomial collectives: total work is n−1 messages, so 4→8 costs
    # about (8−1)/(4−1) ≈ 2.33× — far below the 4× a naive quadratic
    # (everyone-to-everyone) scheme would show.
    for op in ("bcast", "allreduce"):
        r4, r8 = scaling[4][op], scaling[8][op]
        assert 1.5 < r8 / r4 < 3.2, \
            f"{op} off the binomial total-work shape: {r4} → {r8}"
    # Dissemination barrier: n·log2(n) tokens → 8·3 / 4·2 = 3×.
    b4, b8 = scaling[4]["barrier"], scaling[8]["barrier"]
    assert 2.0 < b8 / b4 < 4.0
    # Linear collective: gather grows ~linearly in ranks.
    assert scaling[8]["gather"] > 1.5 * scaling[4]["gather"]
    # Everything grows monotonically with n.
    for op in ("barrier", "bcast", "allreduce", "gather"):
        vals = [scaling[n][op] for n in RANKS]
        assert vals[0] < vals[1] < vals[2]


def test_e11_allreduce(benchmark):
    """Host time of one 4-rank allreduce."""
    world = MpiWorld(4, num_frames=1024)
    vas, outs = [], []
    for r in world.ranks:
        v = r.task.mmap(2)
        r.task.touch_pages(v, 2)
        vas.append(v)
        o = r.task.mmap(2)
        r.task.touch_pages(o, 2)
        outs.append(o)
        r.task.write(v, np.ones(64).tobytes())
    benchmark(lambda: world.allreduce(vas, outs, 64))
