"""E4 — multiple registration: support matrix and cost.

The VIA spec "explicitly allows a certain memory area to be registered
several times"; this bench registers the same range k times and
deregisters in LIFO, FIFO, and interleaved order, verifying after every
single deregistration that the surviving registrations still protect
the pages — then reports the per-registration cost as k grows.

Expected: kiobuf and tracked-mlock pass every order at every k;
pageflags and naive-mlock fail on the *first* deregistration;
per-registration cost is flat in k (no superlinear bookkeeping).
"""

import pytest

from repro.bench.harness import print_table
from repro.core.audit import audit_tpt_consistency
from repro.hw.physmem import PAGE_SIZE
from repro.kernel import paging
from repro.via.machine import Machine

PAGES = 8
ORDERS = {
    "lifo": lambda k: list(range(k - 1, -1, -1)),
    "fifo": lambda k: list(range(k)),
    "interleaved": lambda k: (list(range(0, k, 2))
                              + list(range(1, k, 2))),
}


def run_order(backend: str, k: int, order: str) -> bool:
    """True iff every intermediate state keeps live registrations valid."""
    m = Machine(num_frames=512, backend=backend)
    t = m.spawn()
    ua = m.user_agent(t)
    va = t.mmap(PAGES)
    regs = [ua.register_mem(va, PAGES * PAGE_SIZE) for _ in range(k)]
    for idx in ORDERS[order](k):
        ua.deregister_mem(regs[idx])
        if not m.agent.registrations:
            break
        # Pressure between deregistrations, then audit the survivors.
        paging.swap_out(m.kernel, m.kernel.pagemap.num_frames)
        if audit_tpt_consistency(m.agent):
            return False
        frames = t.physical_pages(va, PAGES)
        live = next(iter(m.agent.registrations.values()))
        if list(live.region.frames) != frames:
            return False
    return True


@pytest.fixture(scope="module")
def support_rows():
    rows = []
    for backend in ("pageflags", "mlock_naive", "mlock", "kiobuf"):
        for order in ORDERS:
            ok = all(run_order(backend, k, order) for k in (2, 4, 8))
            rows.append([backend, order, ok])
    return rows


def test_e4_support_matrix(support_rows, report):
    if report("E4: multiple-registration support"):
        print_table(
            "E4a — same range registered k∈{2,4,8} times, deregistered "
            "in the given order under pressure",
            ["backend", "dereg order", "all intermediate states valid"],
            support_rows)
    for backend, order, ok in support_rows:
        if backend in ("mlock", "kiobuf"):
            assert ok, f"{backend}/{order} must support multi-reg"
        else:
            assert not ok, f"{backend}/{order} must fail multi-reg"


@pytest.fixture(scope="module")
def cost_rows():
    rows = []
    for backend in ("mlock", "kiobuf"):
        for k in (1, 2, 4, 8, 16):
            m = Machine(num_frames=512, backend=backend)
            t = m.spawn()
            ua = m.user_agent(t)
            va = t.mmap(PAGES)
            # Pre-touch so the first registration does not pay fault-in
            # costs the others skip — we measure pure registration work.
            t.touch_pages(va, PAGES)
            with m.kernel.clock.measure() as span:
                regs = [ua.register_mem(va, PAGES * PAGE_SIZE)
                        for _ in range(k)]
                for reg in regs:
                    ua.deregister_mem(reg)
            rows.append([backend, k, span.elapsed_ns / k / 1000.0])
    return rows


def test_e4_per_registration_cost_flat(cost_rows, report):
    if report("E4b: per-registration cost vs k"):
        print_table("E4b — simulated us per register+deregister",
                    ["backend", "k", "us/registration"], cost_rows)
    for backend in ("mlock", "kiobuf"):
        costs = [c for b, k, c in cost_rows if b == backend]
        assert max(costs) < 2.0 * min(costs), \
            f"{backend} cost not flat in k: {costs}"


def test_e4_kiobuf_k8_cycle(benchmark):
    """Host time of an 8-deep registration stack (kiobuf)."""

    def cycle():
        m = Machine(num_frames=512, backend="kiobuf")
        t = m.spawn()
        ua = m.user_agent(t)
        va = t.mmap(PAGES)
        regs = [ua.register_mem(va, PAGES * PAGE_SIZE) for _ in range(8)]
        for reg in regs:
            ua.deregister_mem(reg)

    benchmark(cycle)
