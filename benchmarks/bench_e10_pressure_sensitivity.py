"""E10 — sensitivity of the Sec. 3.1 failure to memory pressure.

The paper reports the refcount failure happened "in most cases" — the
fraction of registered pages that relocate depends on how hard reclaim
has to work.  This bench sweeps the allocator's footprint relative to
installed RAM and reports, per pressure level, how many registered
pages the refcount backend loses (kiobuf as control).

Expected shape: a sharp threshold.  While the allocator fits in (or
only modestly exceeds) RAM, the kernel's ``swap_cnt`` victim heuristic
drains the allocator itself and the small locktest process is never
chosen; once pressure is sustained enough to exhaust the hog's steal
budget, the heuristic reaches the locktest process and the refcount
backend loses *all* of its pages at once — the paper's "in most cases"
is the supra-threshold regime.  kiobuf loses nothing at any pressure.
"""

import pytest

from repro.bench.harness import print_table
from repro.core.locktest import LocktestExperiment

FACTORS = [0.25, 0.75, 1.25, 1.5, 1.75, 2.0, 2.5]
BUFFER_PAGES = 48
NUM_FRAMES = 512


def relocated_fraction(backend: str, factor: float, seed: int) -> float:
    r = LocktestExperiment(backend, buffer_pages=BUFFER_PAGES,
                           num_frames=NUM_FRAMES,
                           allocator_factor=factor, seed=seed).run()
    return r.pages_relocated / r.npages


@pytest.fixture(scope="module")
def sweep_rows():
    rows = []
    for factor in FACTORS:
        ref = sum(relocated_fraction("refcount", factor, seed)
                  for seed in range(3)) / 3
        kio = sum(relocated_fraction("kiobuf", factor, seed)
                  for seed in range(3)) / 3
        rows.append([factor, f"{ref:.0%}", f"{kio:.0%}"])
    return rows


def test_e10_pressure_sweep(sweep_rows, report):
    if report("E10: failure vs memory pressure"):
        print_table(
            f"E10 — registered pages relocated vs allocator footprint "
            f"({BUFFER_PAGES}-page buffer, {NUM_FRAMES}-frame RAM, "
            f"mean of 3 seeds)",
            ["allocator / RAM", "refcount lost", "kiobuf lost"],
            sweep_rows)
    by_factor = {row[0]: row for row in sweep_rows}
    # No pressure → no loss even for the broken backend.
    assert by_factor[0.25][1] == "0%"
    # Sustained over-commit → the refcount backend loses everything.
    assert by_factor[2.0][1] == "100%"
    assert by_factor[2.5][1] == "100%"
    # The loss is monotone non-decreasing in pressure.
    fracs = [float(row[1].rstrip("%")) for row in sweep_rows]
    assert all(a <= b + 1e-9 for a, b in zip(fracs, fracs[1:]))
    # Control: kiobuf never loses a page at any pressure.
    assert all(row[2] == "0%" for row in sweep_rows)


def test_e10_single_point(benchmark):
    """Host time of one sweep point."""
    benchmark(lambda: relocated_fraction("refcount", 1.5, 0))
