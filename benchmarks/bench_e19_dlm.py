"""E19 — crash-tolerant distributed lock manager on remote atomics.

PR 8 added remote atomic verbs (CMPSWAP / FETCHADD with responder-side
retransmit dedup) and ``repro.workloads.dlm``: three lock designs behind
one client API — the server-centric message queue, the client-bypass
spin CAS with bounded backoff, and the DecLock-style FETCH_ADD ticket
lock — each lease-based and crash-recoverable.

This experiment runs every design twice: a clean pass (no chaos) for
the acquisition-throughput and fairness numbers, and a crash pass that
kills one client inside its critical section at every instrumented
protocol step, measuring how long the survivors take to reacquire the
dead holder's lock (the lease-recovery SLO, p50/p99 in simulated ns).

Asserted gates:

1. every run is *clean*: the invariant oracle recorded no violations,
   no pins leaked, and the post-chaos reaper found nothing left over;
2. the protected data words equal the oracle's increment counts — a
   crash never costs a committed increment and never double-applies one;
3. every recovery lands within one lease period plus slack.
"""

import os

import pytest

from repro.bench.harness import fmt_ns, print_table, record
from repro.sim.faults import DLM_CRASH_POINTS
from repro.workloads.dlm import DESIGNS, DLMConfig, run_dlm

N_CLIENTS = int(os.environ.get("REPRO_E19_CLIENTS", "6"))
CS_EACH = int(os.environ.get("REPRO_E19_CS", "6"))
N_LOCKS = int(os.environ.get("REPRO_E19_LOCKS", "2"))
SEEDS = [int(s) for s in
         os.environ.get("REPRO_E19_SEEDS", "0,1").split(",")]
BACKEND = os.environ.get("REPRO_E19_BACKEND", "kiobuf")


def _assert_clean(report):
    assert report.violations == [], report.violations
    assert report.sanitizer_violations == 0
    assert report.leaked_pins == 0
    assert report.reaper_post_reclaimed == 0
    assert report.data_final == report.data_expected


def _clean_pass(design):
    config = DLMConfig(design=design, n_clients=N_CLIENTS,
                       cs_per_client=CS_EACH, n_locks=N_LOCKS,
                       backend=BACKEND)
    rep = run_dlm(config)
    _assert_clean(rep)
    assert rep.acquisitions == N_CLIENTS * CS_EACH
    return {
        "design": design,
        "acquisitions": rep.acquisitions,
        "sim_ns": rep.sim_ns,
        "ns_per_cs": rep.sim_ns // max(1, rep.acquisitions),
        "max_bypass": rep.max_bypass,
    }


def _crash_pass(design):
    recovery, reclaims_by = [], {}
    runs = 0
    for seed in SEEDS:
        for point in DLM_CRASH_POINTS:
            config = DLMConfig(design=design, n_clients=N_CLIENTS,
                               cs_per_client=CS_EACH, n_locks=1,
                               backend=BACKEND, seed=seed,
                               crash_point=point)
            rep = run_dlm(config)
            _assert_clean(rep)
            assert rep.crashes == 1
            assert rep.reclaims >= 1
            bound = config.lease_ns + config.recovery_slack_ns
            assert all(ns <= bound for ns in rep.recovery_ns), (
                f"{design}/{point}/seed {seed}: recovery "
                f"{max(rep.recovery_ns)} ns exceeds {bound} ns")
            recovery.extend(rep.recovery_ns)
            for by, count in rep.reclaims_by.items():
                reclaims_by[by] = reclaims_by.get(by, 0) + count
            runs += 1
    from repro.workloads.dlm import DLMReport
    return {
        "design": design,
        "runs": runs,
        "recovery_p50_ns": DLMReport.percentile(recovery, 0.50),
        "recovery_p99_ns": DLMReport.percentile(recovery, 0.99),
        "recovery_samples": len(recovery),
        "reclaims_by": reclaims_by,
    }


@pytest.fixture(scope="module")
def passes():
    return {
        "clean": [_clean_pass(d) for d in DESIGNS],
        "crash": [_crash_pass(d) for d in DESIGNS],
    }


def test_e19_clean_throughput(passes, report):
    rows = passes["clean"]
    if report("E19: distributed lock manager on remote atomics"):
        print_table(
            f"E19a — clean pass, {N_CLIENTS} clients x {CS_EACH} CS, "
            f"{N_LOCKS} locks, backend={BACKEND}",
            ["design", "acquisitions", "sim time", "ns/CS",
             "max bypass"],
            [[r["design"], r["acquisitions"], fmt_ns(r["sim_ns"]),
              r["ns_per_cs"], r["max_bypass"]] for r in rows])
    for r in rows:
        if r["design"] in ("server", "declock"):
            assert r["max_bypass"] == 0, (
                f"{r['design']} must grant FIFO, saw bypass "
                f"{r['max_bypass']}")


def test_e19_lease_recovery_slo(passes, report):
    rows = passes["crash"]
    report("E19: distributed lock manager on remote atomics")
    print_table(
        f"E19b — kill-at-every-step sweep, {len(SEEDS)} seed(s) x "
        f"{len(DLM_CRASH_POINTS)} crash points",
        ["design", "runs", "recovery p50", "recovery p99", "samples",
         "reclaimed by"],
        [[r["design"], r["runs"], fmt_ns(r["recovery_p50_ns"]),
          fmt_ns(r["recovery_p99_ns"]), r["recovery_samples"],
          ",".join(f"{k}:{v}" for k, v in sorted(r["reclaims_by"].items()))]
         for r in rows])
    record("metrics", "E19 DLM lease recovery",
           clients=N_CLIENTS, cs_per_client=CS_EACH, seeds=SEEDS,
           backend=BACKEND,
           **{f"{r['design']}_recovery_p50_ns": r["recovery_p50_ns"]
              for r in rows},
           **{f"{r['design']}_recovery_p99_ns": r["recovery_p99_ns"]
              for r in rows},
           **{f"{r['design']}_recovery_samples": r["recovery_samples"]
              for r in rows})
    for r in rows:
        assert r["recovery_samples"] >= len(SEEDS), (
            f"{r['design']}: survivors never reacquired after crashes")


def test_e19_host_time(benchmark):
    """Host-time anchor: one clean spin-design run."""
    config = DLMConfig(design="spin", n_clients=4, cs_per_client=4,
                       n_locks=1, backend=BACKEND)

    def run():
        rep = run_dlm(config)
        _assert_clean(rep)
        return rep

    benchmark(run)
