"""E7 — ablation: CPU availability during transfers (PIO/copy vs DMA).

The collection's companion analysis ("CPU time available during data
transfer", Trams & Rehm) is the premise of this paper: copy-based
transfers burn the CPU for the whole transfer, DMA-based transfers
leave it free — *provided* user-level DMA is safe, which requires
reliable pinning.  This bench computes, from the simulated clock's
per-category accounting, the fraction of each transfer during which the
CPU is free, per protocol and message size.

Expected shape: eager ≈ 0% CPU free at every size (every byte is
copied); zero-copy grows towards ~100% free as the (fixed-cost)
handshake and registration amortise — with a crossover in the small-KiB
range, matching the companion paper's "surprisingly low" switch point.
"""

import numpy as np
import pytest

from repro.bench.harness import print_series
from repro.hw.physmem import PAGE_SIZE
from repro.msg.endpoint import make_pair
from repro.msg.protocols import (
    EagerProtocol, PioProtocol, RendezvousZeroCopyProtocol,
)
from repro.via.machine import Cluster

SIZES = [1 << k for k in range(9, 21, 2)]   # 512 B .. 1 MiB

#: clock categories during which the host CPU is busy
CPU_BUSY = {"cpu_copy", "via_cpu", "register", "syscall", "kiobuf",
            "mlock", "fault", "mm", "via_setup", "rawio", "reclaim",
            "pio"}
#: categories during which hardware works and the CPU is free
CPU_FREE = {"dma", "wire", "via_nic", "disk_io"}


def cpu_free_fraction(clock, fn) -> tuple[float, int]:
    """Run ``fn`` and return (fraction of its simulated time the CPU was
    free, total simulated ns)."""
    before = clock.categories()
    with clock.measure() as span:
        fn()
    after = clock.categories()
    busy = sum(after.get(c, 0) - before.get(c, 0) for c in CPU_BUSY)
    free = sum(after.get(c, 0) - before.get(c, 0) for c in CPU_FREE)
    total = span.elapsed_ns
    assert abs((busy + free) - total) <= total * 0.05, \
        "clock categories must account for (almost) all transfer time"
    return (free / total if total else 0.0), total


@pytest.fixture(scope="module")
def overlap_series():
    cluster = Cluster(2, num_frames=4096, backend="kiobuf")
    s, r = make_pair(cluster)
    pages = max(SIZES) // PAGE_SIZE + 2
    src = s.task.mmap(pages)
    s.task.touch_pages(src, pages)
    dst = r.task.mmap(pages)
    r.task.touch_pages(dst, pages)
    rng = np.random.default_rng(0)
    protocols = [PioProtocol(use_cache=True), EagerProtocol(),
                 RendezvousZeroCopyProtocol(True)]
    series: dict[str, list] = {p.name: [] for p in protocols}
    for size in SIZES:
        s.task.write(src, bytes(rng.integers(0, 256, size,
                                             dtype=np.uint8)))
        for proto in protocols:
            frac, _ = cpu_free_fraction(
                cluster.clock,
                lambda p=proto: p.transfer(s, r, src, dst, size))
            series[proto.name].append((size, frac * 100.0))
    return series


def test_e7_cpu_overlap(overlap_series, report):
    if report("E7: CPU availability during transfer"):
        print_series("E7 — % of transfer time the CPU is free",
                     "bytes", overlap_series, ylabel="% CPU free")
    pio = dict(overlap_series["pio"])
    eager = dict(overlap_series["eager"])
    zcopy = dict(overlap_series["rendezvous-zerocopy+cache"])
    big = max(SIZES)
    # PIO: the CPU drives every byte — essentially never free at size.
    assert pio[big] < 10.0
    # Zero-copy DMA frees most of the CPU for large transfers.
    assert zcopy[big] > 75.0
    # Ordering for large messages: DMA > eager (NIC does the wire work,
    # CPU still copies) > PIO (CPU does everything).
    assert zcopy[big] > eager[big] > pio[big]
    # The DMA advantage appears already at small sizes — the companion
    # paper's "surprisingly low" switch point.
    crossover = [n for n in SIZES if zcopy[n] > pio[n]]
    assert crossover and min(crossover) <= 8 * 1024


def test_e7_measurement(benchmark):
    """Host time of one overlap measurement."""
    cluster = Cluster(2, num_frames=1024, backend="kiobuf")
    s, r = make_pair(cluster)
    src = s.task.mmap(20)
    s.task.touch_pages(src, 20)
    dst = r.task.mmap(20)
    r.task.touch_pages(dst, 20)
    s.task.write(src, b"x" * (64 * 1024))
    proto = RendezvousZeroCopyProtocol(True)
    proto.transfer(s, r, src, dst, 64 * 1024)   # warm cache

    benchmark(lambda: cpu_free_fraction(
        cluster.clock,
        lambda: proto.transfer(s, r, src, dst, 64 * 1024)))
