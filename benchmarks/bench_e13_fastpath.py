"""E13 — the fast-path data plane.

The paper's argument is that translation and pinning must stay off the
communication fast path.  This experiment measures what the simulator's
own fast path buys once translations are extent-coalesced and cached and
DMA bursts are merged across adjacent frames:

1. host-time throughput of a multi-page rendezvous-zero-copy transfer
   loop, fast path vs the legacy per-page path — the simulator itself
   must run "as fast as the hardware allows" (≥ 2x is asserted);
2. simulated-ns comparison of the same loop (fewer DMA engine set-ups
   and cached TPT lookups also shrink *simulated* latency);
3. registration-cache acquire-hit cost as the number of cached entries
   grows — the interval index keeps a hit O(1), so per-hit host time
   must stay flat instead of growing with the entry count.
"""

import time

import pytest

from repro.bench.harness import print_series, print_table, record
from repro.core.regcache import RegistrationCache
from repro.hw.physmem import PAGE_SIZE
from repro.msg.endpoint import make_pair
from repro.msg.protocols import RendezvousZeroCopyProtocol
from repro.via.machine import Cluster, Machine

NBYTES = 1 << 20          #: 256 pages — a genuinely multi-page transfer
LOOP = 30                 #: transfers per timed loop
QUICK_SIZES = [1 << 14, 1 << 17, 1 << 20]


def build_pair(fastpath: bool, nbytes: int = NBYTES):
    """A connected endpoint pair with the data plane in fast or legacy
    mode (legacy = per-page TPT walk, no translation cache, per-segment
    DMA bursts — the pre-fast-path code path)."""
    cluster = Cluster(2, num_frames=4096, backend="kiobuf")
    s, r = make_pair(cluster)
    if not fastpath:
        for i in (0, 1):
            nic = cluster[i].nic
            nic.tpt.coalesce_extents = False
            nic.tpt.translation_cache_entries = 0
            nic.dma.coalesce = False
    pages = nbytes // PAGE_SIZE + 2
    src = s.task.mmap(pages)
    s.task.touch_pages(src, pages)
    dst = r.task.mmap(pages)
    r.task.touch_pages(dst, pages)
    s.task.write(src, b"\xa5" * nbytes)
    return cluster, s, r, src, dst


def timed_loop(proto, s, r, src, dst, nbytes, loops=LOOP, rounds=3):
    """Best-of-``rounds`` host seconds for ``loops`` transfers."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(loops):
            res = proto.transfer(s, r, src, dst, nbytes)
            assert res.ok
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def fastpath_rows():
    rows = []
    for fastpath in (False, True):
        cluster, s, r, src, dst = build_pair(fastpath)
        proto = RendezvousZeroCopyProtocol(use_cache=True)
        warm = proto.transfer(s, r, src, dst, NBYTES)   # warm the caches
        assert warm.ok
        res = proto.transfer(s, r, src, dst, NBYTES)
        host_s = timed_loop(proto, s, r, src, dst, NBYTES)
        mode = "fast" if fastpath else "legacy"
        mb_s = NBYTES * LOOP / host_s / 1e6
        tpt = s.machine.nic.tpt
        rows.append([mode, res.sim_ns / 1000.0, host_s / LOOP * 1e3,
                     mb_s, tpt.cache_hits, s.machine.nic.dma.bursts_issued])
    return rows


def test_e13_host_throughput_speedup(fastpath_rows, report):
    if report("E13: fast-path data plane"):
        print_table(
            "E13a — 1 MiB rendezvous-zero-copy loop, legacy vs fast path",
            ["mode", "sim us/transfer", "host ms/transfer",
             "host MB/s", "tpt cache hits", "dma bursts"],
            fastpath_rows)
    legacy, fast = fastpath_rows
    ratio = fast[3] / legacy[3]
    record("metric", "E13 host-throughput speedup", ratio=ratio)
    assert ratio >= 2.0, (
        f"fast path must at least double host throughput "
        f"(got {ratio:.2f}x)")
    # The fast path also shortens *simulated* time: fewer DMA engine
    # set-ups and cached translations.
    assert fast[1] < legacy[1]


def test_e13_sim_ns_sweep(report):
    series: dict[str, list] = {"legacy": [], "fast": []}
    for fastpath in (False, True):
        name = "fast" if fastpath else "legacy"
        cluster, s, r, src, dst = build_pair(fastpath)
        proto = RendezvousZeroCopyProtocol(use_cache=True)
        for size in QUICK_SIZES:
            proto.transfer(s, r, src, dst, size)         # warm
            res = proto.transfer(s, r, src, dst, size)
            assert res.ok
            series[name].append((size, res.sim_ns / 1000.0))
    if report("E13b: simulated latency, legacy vs fast path"):
        print_series("E13b — zero-copy transfer latency", "bytes",
                     series, ylabel="sim us")
    for (size, legacy_us), (_, fast_us) in zip(series["legacy"],
                                               series["fast"]):
        assert fast_us <= legacy_us, \
            f"fast path slower in sim at {size} bytes"


def test_e13_regcache_hit_is_o1(report):
    """Per-hit host time must not grow with the number of cached
    entries (the old linear scan did)."""
    m = Machine(num_frames=8192, backend="kiobuf", tpt_entries=8192)
    t = m.spawn("mpi")
    m.user_agent(t)     # allocates the protection tag
    rows = []
    per_hit: list[float] = []
    for entries in (16, 256):
        cache = RegistrationCache(m.agent, t)
        base = t.mmap(entries + 1)
        for i in range(entries):
            cache.acquire(base + i * PAGE_SIZE, PAGE_SIZE)
            cache.release(base + i * PAGE_SIZE, PAGE_SIZE)
        # hit the *coldest* entry — a linear scan would walk everything
        target = base
        hits = 20_000
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(hits):
                cache.acquire(target, PAGE_SIZE)
                cache.release(target, PAGE_SIZE)
            best = min(best, time.perf_counter() - t0)
        per_hit.append(best / hits * 1e9)
        rows.append([entries, per_hit[-1], cache.stats.hits])
    if report("E13c: regcache acquire-hit cost vs cached entries"):
        print_table("E13c — per-hit host ns as the cache grows",
                    ["cached entries", "ns/hit", "total hits"], rows)
    record("metric", "E13 regcache hit scaling",
           ratio=per_hit[1] / per_hit[0])
    # 16x more entries must not make a hit anywhere near 16x slower;
    # allow generous noise but reject linear scaling.
    assert per_hit[1] < per_hit[0] * 4.0, \
        f"acquire hit scales with cache size: {per_hit} ns"


def test_e13_fastpath_transfer(benchmark):
    """Host time of one fast-path 1 MiB zero-copy transfer."""
    cluster, s, r, src, dst = build_pair(True)
    proto = RendezvousZeroCopyProtocol(use_cache=True)
    proto.transfer(s, r, src, dst, NBYTES)   # warm

    def xfer():
        res = proto.transfer(s, r, src, dst, NBYTES)
        assert res.ok

    benchmark(xfer)


def test_e13_legacy_transfer(benchmark):
    """Host time of the same transfer on the legacy per-page path."""
    cluster, s, r, src, dst = build_pair(False)
    proto = RendezvousZeroCopyProtocol(use_cache=True)
    proto.transfer(s, r, src, dst, NBYTES)   # warm

    def xfer():
        res = proto.transfer(s, r, src, dst, NBYTES)
        assert res.ok

    benchmark(xfer)
