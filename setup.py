"""setup.py shim — enables legacy editable installs in offline
environments lacking the ``wheel`` package (metadata lives in
pyproject.toml)."""

from setuptools import setup

setup()
