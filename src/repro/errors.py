"""Exception hierarchy for the repro package.

The hierarchy mirrors the layering of the simulated system:

* :class:`ReproError` — root of everything raised by this package.
* :class:`HardwareError` — physical-memory / swap-device / DMA faults.
* :class:`KernelError` — simulated-kernel failures (bad syscall arguments,
  resource exhaustion, permission checks).
* :class:`ViaError` — VIA-layer failures; carries a ``VIP_*`` status code so
  the user-agent API can report errors the way the VIPL specification does.

Keeping hardware, kernel, and VIA failures in distinct branches lets tests
assert precisely *which layer* rejected an operation — an important part of
reproducing the paper's protection arguments (e.g. a DMA protection-tag
mismatch must surface as a :class:`ProtectionError`, never as a Python
``IndexError`` leaking from the frame array).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SanitizerViolation(ReproError):
    """The pin-safety sanitizer caught an ordering violation in strict
    mode.

    Deliberately a direct :class:`ReproError` subclass — not a kernel,
    hardware, or VIA error — so no layer's recovery path can swallow it:
    a sanitizer report must always reach the test harness.  ``violation``
    is the structured :class:`~repro.analysis.sanitizer.Violation`,
    including its happens-before event trail."""

    def __init__(self, message: str, violation=None):
        super().__init__(message)
        self.violation = violation


class RaceDetected(ReproError):
    """The happens-before race engine found two conflicting accesses with
    no synchronization edge between them, in strict mode.

    Like :class:`SanitizerViolation`, a direct :class:`ReproError`
    subclass so no layer's recovery path can swallow it.  ``violation``
    is the structured :class:`~repro.analysis.races.RaceViolation`,
    carrying both access trails."""

    def __init__(self, message: str, violation=None):
        super().__init__(message)
        self.violation = violation


class UnmetExpectation(ReproError, AssertionError):
    """A ``PinSanitizer.expect()`` block completed without the expected
    violation ever firing, and ``disarm()`` was reached.

    Doubles as an :class:`AssertionError` so test harnesses report it as
    a plain failure: an expectation that never fires is a test bug (the
    scenario stopped exercising the hazard), not a sanitizer escape."""


# ---------------------------------------------------------------------------
# Hardware layer
# ---------------------------------------------------------------------------

class HardwareError(ReproError):
    """Base class for simulated-hardware failures."""


class BadPhysicalAddress(HardwareError):
    """A physical (frame, offset) address is outside installed memory."""


class OutOfMemory(HardwareError):
    """No free page frame is available and reclaim could not make one."""


class SwapFull(HardwareError):
    """The swap device has no free slots left."""


class BadSwapSlot(HardwareError):
    """A swap slot index is invalid or not currently in use."""


class DMAFault(HardwareError):
    """A DMA transfer touched an invalid physical address."""


# ---------------------------------------------------------------------------
# Kernel layer
# ---------------------------------------------------------------------------

class KernelError(ReproError):
    """Base class for simulated-kernel failures."""


class SegmentationFault(KernelError):
    """A task touched a virtual address with no VMA, or violated VMA
    protection bits."""


class InvalidArgument(KernelError):
    """EINVAL — a syscall was handed arguments it cannot act on."""


class PermissionDenied(KernelError):
    """EPERM — the calling task lacks the capability for this operation
    (e.g. ``mlock`` without ``CAP_IPC_LOCK``)."""


class PageAccountingError(KernelError):
    """An internal page-accounting invariant was violated (refcount
    underflow, freeing a mapped page, unlocking an unlocked page...).

    The real kernel would oops; the simulator raises so tests can detect
    the corruption the paper warns about (Giganet's unconditional flag
    clears)."""


class KiobufError(KernelError):
    """A kiobuf operation failed (unmapping twice, mapping an unfaultable
    range, ...)."""


class ProcessKilled(KernelError):
    """A task was killed at a fault-injection crash point.

    Raised *after* the kernel has torn the task down, so the code that
    was running on the victim's behalf unwinds the way a fatal signal
    unwinds a real syscall: the operation never completes, and any state
    it had built is already reclaimed (or deliberately leaked, when the
    crash models a buggy teardown)."""

    def __init__(self, message: str, pid: int | None = None,
                 point: str | None = None):
        super().__init__(message)
        self.pid = pid
        self.point = point


class InvariantViolation(KernelError):
    """The invariant watchdog caught a broken system invariant.

    ``kind`` names which audit tripped (``"kernel"``, ``"stale_tpt"``,
    ``"pin_leak"``) and ``snapshot`` is a structured dump of what the
    watchdog saw, so a chaos run that dies here can be diagnosed from
    the exception alone."""

    def __init__(self, message: str, kind: str = "invariant",
                 snapshot: dict | None = None):
        super().__init__(message)
        self.kind = kind
        self.snapshot = snapshot if snapshot is not None else {}


# ---------------------------------------------------------------------------
# VIA layer
# ---------------------------------------------------------------------------

class ViaError(ReproError):
    """Base class for VIA-layer failures.

    ``status`` carries the ``VIP_*`` code from :mod:`repro.via.constants`.
    """

    def __init__(self, message: str, status: str = "VIP_ERROR"):
        super().__init__(message)
        self.status = status


class ProtectionError(ViaError):
    """A memory access failed the protection-tag or RDMA-enable check."""

    def __init__(self, message: str):
        super().__init__(message, status="VIP_PROTECTION_ERROR")


class NotRegistered(ViaError):
    """A descriptor referenced memory that is not registered in the TPT."""

    def __init__(self, message: str):
        super().__init__(message, status="VIP_INVALID_MEMORY")


class TranslationFault(ViaError):
    """A TPT lookup hit an ODP region whose pages are not yet resident.

    This is the NIC-internal signal of the on-demand-paging design: the
    region *is* registered and the protection checks all passed, but one
    or more entries still carry the invalid sentinel because no frame has
    been pinned behind them yet (or pressure evicted them).  The NIC
    catches this, suspends the transfer, and asks the kernel agent to
    fault the pages in; it must never escape to the VIPL API.

    ``pages`` are the region-relative page indices that need service.
    """

    def __init__(self, message: str, handle: int = -1, va: int = 0,
                 length: int = 0, pages: tuple[int, ...] = ()):
        super().__init__(message, status="VIP_ERROR_NOT_RESIDENT")
        self.handle = handle
        self.va = va
        self.length = length
        self.pages = pages


class DescriptorError(ViaError):
    """A malformed descriptor was posted."""

    def __init__(self, message: str):
        super().__init__(message, status="VIP_INVALID_PARAMETER")


class ViaConnectionError(ViaError):
    """VI connection management failed (already connected, peer missing,
    reliability-mode mismatch...)."""

    def __init__(self, message: str):
        super().__init__(message, status="VIP_INVALID_STATE")


def __getattr__(name: str):
    """Deprecated aliases, resolved lazily so merely importing this
    module stays silent but *using* a dead name warns loudly.

    ``ConnectionError_`` was the class's original name (the trailing
    underscore dodged the ``ConnectionError`` builtin), which leaked an
    awkward name into user-facing tracebacks; it was renamed to
    :class:`ViaConnectionError` and will be removed in a future release.
    """
    if name == "ConnectionError_":
        import warnings
        warnings.warn(
            "ConnectionError_ is deprecated; use ViaConnectionError",
            DeprecationWarning, stacklevel=2)
        return ViaConnectionError
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


class AdmissionError(ViaError):
    """Admission control rejected a registration before any pin was
    taken.

    Carries ``VIP_ERROR_RESOURCE`` deliberately: the stack already knows
    how to survive resource pressure (the registration cache evicts and
    retries, the rendezvous protocol degrades to copy), and an admission
    rejection must flow down exactly those paths rather than inventing a
    parallel recovery story.  ``uid``/``requested_pages``/``limit_pages``
    /``pinned_pages`` say which budget was short and by how much.
    """

    def __init__(self, message: str, uid: int | None = None,
                 requested_pages: int = 0, limit_pages: int | None = None,
                 pinned_pages: int = 0):
        super().__init__(message, status="VIP_ERROR_RESOURCE")
        self.uid = uid
        self.requested_pages = requested_pages
        self.limit_pages = limit_pages
        self.pinned_pages = pinned_pages


class QuotaExceeded(AdmissionError):
    """A tenant's ``RLIMIT_MEMLOCK``-style pinned-page budget is
    exhausted and eviction pressure could not free enough of it."""


class PinCeilingExceeded(AdmissionError):
    """The host-wide physical-pin ceiling is exhausted — admitting the
    registration would let pinned pages crowd out reclaimable memory."""


class QueueEmpty(ViaError):
    """A receive arrived (or a poll was attempted) with no posted
    descriptor.  Under ``RELIABLE_DELIVERY`` the VIA spec breaks the
    connection in this situation."""

    def __init__(self, message: str):
        super().__init__(message, status="VIP_NOT_DONE")


class StaleTranslationError(ViaError):
    """Raised only by audit tooling: a TPT entry points at a frame the
    owning process no longer maps.  The *hardware* never raises this —
    that silence is exactly the paper's point — but
    :mod:`repro.core.audit` uses it to report the corruption."""

    def __init__(self, message: str):
        super().__init__(message, status="VIP_ERROR_STALE_TPT")
