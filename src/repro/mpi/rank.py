"""One MPI rank: point-to-point messaging with tag matching.

Transport layout follows the collection's VIA MPI designs: every rank
pair gets a dedicated VI connection ("zwei VI's ... zwischen jedem Paar
von MPI-Tasks"), messages travel as enveloped chunks, small messages go
eager (copied through preregistered bounce buffers, buffered at the
receiver as *unexpected messages* when no receive is posted), large
messages go rendezvous: RTS → receiver registers its user buffer and
answers CTS(handle, va) → sender RDMA-writes → FIN.

Both directions of the protocol exercise exactly the dynamic
registration whose reliability the paper is about; registrations go
through each endpoint's :class:`~repro.core.regcache.RegistrationCache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ViaError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, MAX_TAG
from repro.mpi.envelope import (
    HEADER_SIZE, KIND_CTS, KIND_EAGER_BODY, KIND_EAGER_FIRST, KIND_FIN,
    KIND_RTS, Envelope, deframe, frame,
)
from repro.mpi.requests import Request, Status
from repro.msg.endpoint import Endpoint
from repro.via.descriptor import DataSegment, Descriptor

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import Task
    from repro.mpi.world import MpiWorld
    from repro.via.machine import Machine

#: payload bytes per chunk after the envelope header
CHUNK_PAYLOAD = Endpoint.CHUNK - HEADER_SIZE


@dataclass
class _Inbound:
    """A fully arrived but not yet matched message."""

    source: int
    tag: int
    context: int
    nbytes: int
    seq: int
    #: eager payload, or None for a rendezvous RTS awaiting a grant
    data: bytes | None

    @property
    def is_rts(self) -> bool:
        return self.data is None


@dataclass
class _Assembly:
    """Per-peer eager reassembly state."""

    envelope: Envelope
    buffer: bytearray
    received: int


@dataclass
class _PendingSend:
    """Sender-side rendezvous state awaiting CTS."""

    request: Request
    dest: int
    va: int
    nbytes: int


@dataclass
class _PendingRdvRecv:
    """Receiver-side rendezvous state awaiting FIN."""

    request: Request
    source: int
    va: int
    nbytes: int
    cached: bool


class MpiRank:
    """One rank of an :class:`~repro.mpi.world.MpiWorld`."""

    def __init__(self, world: "MpiWorld", index: int,
                 machine: "Machine", task: "Task") -> None:
        self.world = world
        self.index = index
        self.machine = machine
        self.task = task
        #: peer index → endpoint (one VI per pair, built by the world)
        self.endpoints: dict[int, Endpoint] = {}
        self._send_seq: dict[int, int] = {}
        self._assembly: dict[int, _Assembly | None] = {}
        self._unexpected: list[_Inbound] = []
        self._posted: list[Request] = []
        self._pending_sends: dict[tuple[int, int], _PendingSend] = {}
        self._pending_rdv_recvs: dict[tuple[int, int],
                                      _PendingRdvRecv] = {}
        self._in_progress = False
        # statistics
        self.eager_sent = 0
        self.rendezvous_sent = 0
        self.unexpected_peak = 0

    # ----------------------------------------------------------- send side

    def _next_seq(self, dest: int) -> int:
        seq = self._send_seq.get(dest, 0) + 1
        self._send_seq[dest] = seq
        return seq

    def _check_args(self, peer: int, tag: int) -> None:
        if peer == self.index:
            raise ViaError("self-sends are not supported")
        if peer not in self.endpoints:
            raise ViaError(f"rank {self.index} has no connection to "
                           f"{peer}")
        if not (0 <= tag <= MAX_TAG):
            raise ViaError(f"tag {tag} outside [0, {MAX_TAG}]")

    def isend(self, dest: int, tag: int, va: int, nbytes: int,
              context: int = 0) -> Request:
        """Non-blocking send of ``[va, va+nbytes)`` to ``dest``."""
        self._check_args(dest, tag)
        req = Request(rank=self, kind="send", source=dest, tag=tag,
                      context=context, va=va, max_nbytes=nbytes)
        seq = self._next_seq(dest)
        if nbytes <= self.world.eager_threshold:
            self._send_eager(dest, tag, context, va, nbytes, seq)
            req.complete(Status(self.index, tag, nbytes))
            self.eager_sent += 1
        else:
            self._pending_sends[(dest, seq)] = _PendingSend(
                req, dest, va, nbytes)
            env = Envelope(KIND_RTS, self.index, tag, context, nbytes,
                           seq)
            self.endpoints[dest].send_chunk(frame(env))
            self.rendezvous_sent += 1
            self.world.rank(dest).progress()
        return req

    def send(self, dest: int, tag: int, va: int, nbytes: int,
             context: int = 0) -> None:
        """Blocking send."""
        self.isend(dest, tag, va, nbytes, context).wait()

    def _send_eager(self, dest: int, tag: int, context: int, va: int,
                    nbytes: int, seq: int) -> None:
        ep = self.endpoints[dest]
        peer = self.world.rank(dest)
        first = min(nbytes, CHUNK_PAYLOAD)
        env = Envelope(KIND_EAGER_FIRST, self.index, tag, context,
                       nbytes, seq)
        ep.send_chunk(frame(env, self.task.read(va, first)))
        peer.progress()
        offset = first
        while offset < nbytes:
            n = min(nbytes - offset, CHUNK_PAYLOAD)
            env = Envelope(KIND_EAGER_BODY, self.index, tag, context, n,
                           seq)
            ep.send_chunk(frame(env, self.task.read(va + offset, n)))
            offset += n
            peer.progress()   # keeps bounce credits from overflowing

    # ----------------------------------------------------------- recv side

    def irecv(self, source: int, tag: int, va: int,
              max_nbytes: int, context: int = 0) -> Request:
        """Non-blocking receive into ``[va, va+max_nbytes)``.

        ``source`` may be :data:`~repro.mpi.constants.ANY_SOURCE`, and
        ``tag`` may be :data:`~repro.mpi.constants.ANY_TAG`.
        """
        req = Request(rank=self, kind="recv", source=source, tag=tag,
                      context=context, va=va, max_nbytes=max_nbytes)
        matched = self._match_unexpected(req)
        if matched is not None:
            self._finalize_match(req, matched)
        else:
            self._posted.append(req)
        return req

    def recv(self, source: int, tag: int, va: int, max_nbytes: int,
             context: int = 0) -> Status:
        """Blocking receive."""
        return self.irecv(source, tag, va, max_nbytes, context).wait()

    @staticmethod
    def _matches(req: Request, msg: _Inbound) -> bool:
        return (req.context == msg.context
                and req.source in (ANY_SOURCE, msg.source)
                and req.tag in (ANY_TAG, msg.tag))

    def _match_unexpected(self, req: Request) -> _Inbound | None:
        for i, msg in enumerate(self._unexpected):
            if self._matches(req, msg):
                return self._unexpected.pop(i)
        return None

    def _finalize_match(self, req: Request, msg: _Inbound) -> None:
        if msg.is_rts:
            self._grant_rendezvous(req, msg)
            return
        assert msg.data is not None
        if len(msg.data) > req.max_nbytes:
            raise ViaError(
                f"message truncation: {len(msg.data)} bytes into a "
                f"{req.max_nbytes}-byte receive")
        self.task.write(req.va, msg.data)
        req.complete(Status(msg.source, msg.tag, len(msg.data)))

    def _grant_rendezvous(self, req: Request, msg: _Inbound) -> None:
        """Register the receive buffer and grant the sender access."""
        if msg.nbytes > req.max_nbytes:
            raise ViaError(
                f"message truncation: RTS of {msg.nbytes} bytes into a "
                f"{req.max_nbytes}-byte receive")
        ep = self.endpoints[msg.source]
        reg = ep.cache.acquire(req.va, msg.nbytes, rdma_write=True)
        self._pending_rdv_recvs[(msg.source, msg.seq)] = _PendingRdvRecv(
            req, msg.source, req.va, msg.nbytes, cached=True)
        env = Envelope(KIND_CTS, self.index, msg.tag, msg.context,
                       msg.nbytes, msg.seq, arg0=reg.handle,
                       arg1=req.va)
        ep.send_chunk(frame(env))
        self.world.rank(msg.source).progress()

    # --------------------------------------------------------- progress engine

    def progress(self) -> bool:
        """Drain all inbound chunks once; True if anything moved."""
        if self._in_progress:
            return False
        self._in_progress = True
        moved = False
        try:
            for peer in sorted(self.endpoints):
                while True:
                    got = self.endpoints[peer].try_recv_chunk()
                    if got is None:
                        break
                    moved = True
                    self._dispatch(peer, got[0])
        finally:
            self._in_progress = False
        return moved

    def _dispatch(self, peer: int, chunk: bytes) -> None:
        env, payload = deframe(chunk)
        if env.kind == KIND_EAGER_FIRST:
            self._on_eager_first(peer, env, payload)
        elif env.kind == KIND_EAGER_BODY:
            self._on_eager_body(peer, env, payload)
        elif env.kind == KIND_RTS:
            self._deliver(_Inbound(env.src_rank, env.tag, env.context,
                                   env.nbytes, env.seq, data=None))
        elif env.kind == KIND_CTS:
            self._on_cts(env)
        elif env.kind == KIND_FIN:
            self._on_fin(env)
        else:  # pragma: no cover - deframe already validated
            raise ViaError(f"unhandled envelope kind {env.kind!r}")

    def _on_eager_first(self, peer: int, env: Envelope,
                        payload: bytes) -> None:
        if env.nbytes <= len(payload):
            self._deliver(_Inbound(env.src_rank, env.tag, env.context,
                                   env.nbytes, env.seq,
                                   data=payload[:env.nbytes]))
            return
        buf = bytearray(env.nbytes)
        buf[:len(payload)] = payload
        self._assembly[peer] = _Assembly(env, buf, len(payload))

    def _on_eager_body(self, peer: int, env: Envelope,
                       payload: bytes) -> None:
        asm = self._assembly.get(peer)
        if asm is None or asm.envelope.seq != env.seq:
            raise ViaError(
                f"rank {self.index}: body chunk without matching "
                f"assembly from peer {peer}")
        asm.buffer[asm.received:asm.received + len(payload)] = payload
        asm.received += len(payload)
        if asm.received >= asm.envelope.nbytes:
            self._assembly[peer] = None
            e = asm.envelope
            self._deliver(_Inbound(e.src_rank, e.tag, e.context,
                                   e.nbytes, e.seq, bytes(asm.buffer)))

    def _deliver(self, msg: _Inbound) -> None:
        for i, req in enumerate(self._posted):
            if self._matches(req, msg):
                self._posted.pop(i)
                self._finalize_match(req, msg)
                return
        self._unexpected.append(msg)
        self.unexpected_peak = max(self.unexpected_peak,
                                   len(self._unexpected))

    def _on_cts(self, env: Envelope) -> None:
        """Sender side: the receiver granted the rendezvous — RDMA the
        payload across and send FIN."""
        key = (env.src_rank, env.seq)
        pending = self._pending_sends.pop(key, None)
        if pending is None:
            raise ViaError(
                f"rank {self.index}: CTS for unknown send seq {env.seq}")
        ep = self.endpoints[pending.dest]
        sreg = ep.cache.acquire(pending.va, pending.nbytes)
        desc = Descriptor.rdma_write(
            [DataSegment(sreg.handle, pending.va, pending.nbytes)],
            remote_handle=env.arg0, remote_va=env.arg1)
        ep.ua.post_send(ep.vi, desc)
        if desc.status != "VIP_SUCCESS":
            raise ViaError(f"rendezvous RDMA failed: {desc.status}",
                           status=desc.status)
        ep.cache.release(pending.va, pending.nbytes)
        fin = Envelope(KIND_FIN, self.index, env.tag, env.context,
                       pending.nbytes, env.seq)
        ep.send_chunk(frame(fin))
        pending.request.complete(
            Status(self.index, env.tag, pending.nbytes))
        self.world.rank(pending.dest).progress()

    def _on_fin(self, env: Envelope) -> None:
        """Receiver side: the RDMA landed — complete the receive."""
        key = (env.src_rank, env.seq)
        pending = self._pending_rdv_recvs.pop(key, None)
        if pending is None:
            raise ViaError(
                f"rank {self.index}: FIN for unknown rendezvous "
                f"seq {env.seq}")
        ep = self.endpoints[pending.source]
        if pending.cached:
            ep.cache.release(pending.va, pending.nbytes)
        pending.request.complete(
            Status(pending.source, env.tag, pending.nbytes))

    # --------------------------------------------------- typed + persistent

    #: size of the per-rank pack/unpack staging area, in pages
    TYPED_SCRATCH_PAGES = 64

    def _typed_scratch(self, nbytes: int) -> int:
        """The rank's staging area for datatype pack/unpack."""
        limit = self.TYPED_SCRATCH_PAGES * 4096
        if nbytes > limit:
            raise ViaError(
                f"typed message of {nbytes} bytes exceeds the "
                f"{limit}-byte staging area")
        if not hasattr(self, "_typed_scratch_va"):
            self._typed_scratch_va = self.task.mmap(
                self.TYPED_SCRATCH_PAGES, name="typed-scratch")
            self.task.touch_pages(self._typed_scratch_va,
                                  self.TYPED_SCRATCH_PAGES)
        return self._typed_scratch_va

    def send_typed(self, dest: int, tag: int, va: int, dtype,
                   context: int = 0) -> None:
        """Blocking send of a (possibly non-contiguous)
        :class:`~repro.mpi.datatypes.Datatype` at ``va``: pack →
        send → wait (the classic MPICH pack-before-communication
        path)."""
        from repro.mpi.datatypes import pack
        scratch = self._typed_scratch(dtype.size)
        data = pack(self.task, va, dtype)
        self.task.write(scratch, data)
        self.isend(dest, tag, scratch, len(data), context).wait()

    def recv_typed(self, source: int, tag: int, va: int, dtype,
                   context: int = 0) -> Status:
        """Blocking receive into a datatype layout: recv → unpack."""
        from repro.mpi.datatypes import unpack
        scratch = self._typed_scratch(dtype.size)
        status = self.recv(source, tag, scratch, dtype.size, context)
        if status.nbytes != dtype.size:
            raise ViaError(
                f"typed receive got {status.nbytes} bytes for a "
                f"datatype of size {dtype.size}")
        unpack(self.task, va, dtype, self.task.read(scratch,
                                                    dtype.size))
        return status

    def send_init(self, dest: int, tag: int, va: int, nbytes: int,
                  context: int = 0):
        """Create a persistent send request (``MPI_Send_init``)."""
        from repro.mpi.persistent import PersistentRequest
        self._check_args(dest, tag)
        return PersistentRequest(self, "send", dest, tag, va, nbytes,
                                 context)

    def recv_init(self, source: int, tag: int, va: int, nbytes: int,
                  context: int = 0):
        """Create a persistent receive request (``MPI_Recv_init``)."""
        from repro.mpi.persistent import PersistentRequest
        return PersistentRequest(self, "recv", source, tag, va, nbytes,
                                 context)

    # -------------------------------------------------------------- inspection

    @property
    def unexpected_count(self) -> int:
        """Currently buffered unexpected messages."""
        return len(self._unexpected)

    @property
    def posted_count(self) -> int:
        """Currently posted unmatched receives."""
        return len(self._posted)
