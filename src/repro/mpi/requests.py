"""Requests and statuses — the handles of non-blocking MPI operations.

"Dieser Request ist die einzige Möglichkeit, die Kommunikationsoperation
nach ihrer Initialisierung zu referenzieren."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ViaError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.rank import MpiRank

_req_ids = itertools.count(1)


@dataclass(frozen=True)
class Status:
    """Completion status of a receive."""

    source: int
    tag: int
    nbytes: int


@dataclass
class Request:
    """One outstanding non-blocking operation."""

    rank: "MpiRank"
    kind: str                      #: ``"send"`` or ``"recv"``
    #: recv matching criteria (may hold wildcards)
    source: int = -2
    tag: int = -2
    context: int = 0
    #: recv landing zone
    va: int = 0
    max_nbytes: int = 0
    #: completion
    done: bool = False
    status: Status | None = None
    req_id: int = field(default_factory=lambda: next(_req_ids))

    def test(self) -> bool:
        """Non-blocking completion check (drives progress once)."""
        if not self.done:
            self.rank.progress()
        return self.done

    def wait(self) -> Status:
        """Block until complete; returns the status.

        In the co-simulated world "blocking" means repeatedly driving
        every rank's progress engine; if no progress is possible the
        application has genuinely deadlocked and we raise.
        """
        spins = 0
        while not self.done:
            moved = self.rank.world.progress_all()
            self.rank.progress()
            spins += 1
            if not moved and not self.done and spins > 4:
                raise ViaError(
                    f"deadlock: request {self.req_id} ({self.kind} "
                    f"src={self.source} tag={self.tag}) cannot complete")
        assert self.status is not None
        return self.status

    def complete(self, status: Status) -> None:
        """Mark complete (internal)."""
        self.done = True
        self.status = status
