"""MPI-layer constants."""

#: wildcard source for receives
ANY_SOURCE = -1

#: wildcard tag for receives
ANY_TAG = -1

#: "Tags haben innerhalb einer MPI-Applikation einen Wertebereich von 0
#: bis MPI_MAX_TAG" — negative tags are reserved for system messages.
MAX_TAG = 2**20

#: context id of the world communicator
WORLD_CONTEXT = 0
