"""Wire envelopes for the MPI layer.

Every chunk travelling between ranks carries a fixed-size header in
front of its payload.  Kinds:

* ``EGR0`` — first chunk of an eager message (header + leading payload);
* ``EGRB`` — eager body chunk (in-order continuation on the same VI);
* ``RTS`` — rendezvous request ("I have nbytes tagged t for you");
* ``CTS`` — rendezvous grant, carrying the receiver's registered
  (memory handle, virtual address);
* ``FIN`` — rendezvous completion notification after the RDMA write.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ViaError

_HEADER = struct.Struct("<4siiiQQQQ")
#: bytes of header prepended to every chunk
HEADER_SIZE = _HEADER.size

KIND_EAGER_FIRST = b"EGR0"
KIND_EAGER_BODY = b"EGRB"
KIND_RTS = b"RTS\0"
KIND_CTS = b"CTS\0"
KIND_FIN = b"FIN\0"

KINDS = {KIND_EAGER_FIRST, KIND_EAGER_BODY, KIND_RTS, KIND_CTS, KIND_FIN}


@dataclass(frozen=True)
class Envelope:
    """One chunk header."""

    kind: bytes
    src_rank: int
    tag: int
    context: int
    nbytes: int          #: total message size (EGR0/RTS) or chunk size
    seq: int             #: per-(pair) message sequence number
    arg0: int = 0        #: CTS: memory handle; FIN: unused
    arg1: int = 0        #: CTS: remote va

    def pack(self) -> bytes:
        """Serialise the header to its wire form."""
        return _HEADER.pack(self.kind, self.src_rank, self.tag,
                            self.context, self.nbytes, self.seq,
                            self.arg0, self.arg1)

    @classmethod
    def unpack(cls, data: bytes) -> "Envelope":
        if len(data) < HEADER_SIZE:
            raise ViaError(f"short envelope: {len(data)} bytes")
        kind, src, tag, ctx, nbytes, seq, a0, a1 = _HEADER.unpack(
            data[:HEADER_SIZE])
        if kind not in KINDS:
            raise ViaError(f"unknown envelope kind {kind!r}")
        return cls(kind=kind, src_rank=src, tag=tag, context=ctx,
                   nbytes=nbytes, seq=seq, arg0=a0, arg1=a1)


def frame(envelope: Envelope, payload: bytes = b"") -> bytes:
    """Serialise one chunk."""
    return envelope.pack() + payload


def deframe(chunk: bytes) -> tuple[Envelope, bytes]:
    """Parse one chunk into (envelope, payload)."""
    env = Envelope.unpack(chunk)
    return env, chunk[HEADER_SIZE:]
