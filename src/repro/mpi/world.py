"""The MPI world: rank construction, wiring, and collectives.

Collectives follow the classic algorithms (dissemination barrier,
binomial-tree broadcast and reduction, pairwise exchange for alltoall),
executed as a deterministic per-rank schedule over real point-to-point
traffic — every hop moves real bytes through the VIA stack and charges
real simulated costs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import InvalidArgument
from repro.mpi.rank import MpiRank
from repro.msg.endpoint import Endpoint
from repro.via.machine import Cluster

#: context id used by collective traffic so it can never match user tags
SYSTEM_CONTEXT = 1

#: reduction operators on numpy arrays
OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


class MpiWorld:
    """N ranks, one per machine, fully connected."""

    def __init__(self, n_ranks: int,
                 num_frames: int = 2048,
                 backend: str = "kiobuf",
                 eager_threshold: int = 16 * 1024,
                 bounce_slots: int = 16,
                 seed: int = 0) -> None:
        if n_ranks < 2:
            raise InvalidArgument("an MPI world needs at least 2 ranks")
        self.eager_threshold = eager_threshold
        self.cluster = Cluster(n_ranks, num_frames=num_frames,
                               backend=backend, seed=seed)
        self.ranks: list[MpiRank] = []
        for i in range(n_ranks):
            machine = self.cluster[i]
            task = machine.spawn(f"rank{i}")
            self.ranks.append(MpiRank(self, i, machine, task))
        # Full mesh: one endpoint (VI) per ordered pair, connected to
        # the peer's mirror endpoint.
        for i in range(n_ranks):
            for j in range(i + 1, n_ranks):
                a = Endpoint(self.cluster[i], task=self.ranks[i].task,
                             bounce_slots=bounce_slots)
                b = Endpoint(self.cluster[j], task=self.ranks[j].task,
                             bounce_slots=bounce_slots)
                self.cluster.fabric.connect(self.cluster[i].nic,
                                            a.vi.vi_id,
                                            self.cluster[j].nic,
                                            b.vi.vi_id)
                self.ranks[i].endpoints[j] = a
                self.ranks[j].endpoints[i] = b
        # Per-rank scratch region for collective staging.
        self._scratch: list[int] = []
        for rank in self.ranks:
            va = rank.task.mmap(8, name="mpi-scratch")
            rank.task.touch_pages(va, 8)
            self._scratch.append(va)

    # -- basic accessors -------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.ranks)

    def rank(self, i: int) -> MpiRank:
        """The rank object at index ``i``."""
        return self.ranks[i]

    @property
    def clock(self):
        return self.cluster.clock

    def progress_all(self) -> bool:
        """Drive every rank's progress engine once; True if any chunk
        moved anywhere."""
        moved = False
        for rank in self.ranks:
            if rank.progress():
                moved = True
        return moved

    # -- collectives --------------------------------------------------------------

    def _xfer(self, src: int, dst: int, src_va: int, dst_va: int,
              nbytes: int, tag: int) -> None:
        """One scheduled point-to-point hop of a collective."""
        req = self.ranks[src].isend(dst, tag, src_va, nbytes,
                                    context=SYSTEM_CONTEXT)
        self.ranks[dst].recv(src, tag, dst_va, nbytes,
                             context=SYSTEM_CONTEXT)
        req.wait()

    def barrier(self) -> None:
        """Dissemination barrier: ⌈log2 n⌉ rounds of 1-byte tokens."""
        n = self.size
        round_ = 0
        dist = 1
        while dist < n:
            for r in range(n):
                self.ranks[r].task.write(self._scratch[r], b"B")
            for r in range(n):
                self._xfer(r, (r + dist) % n, self._scratch[r],
                           self._scratch[(r + dist) % n] + 1, 1,
                           tag=1000 + round_)
            dist *= 2
            round_ += 1

    def bcast(self, root: int, vas: list[int], nbytes: int) -> None:
        """Binomial-tree broadcast of ``[vas[root], +nbytes)`` into every
        rank's ``vas[r]``."""
        self._check_vas(vas)
        n = self.size
        # Work in root-relative rank space.
        have = {root}
        dist = 1
        while dist < n:
            for rel in range(0, dist):
                src = (root + rel) % n
                dst = (root + rel + dist) % n
                if src in have and rel + dist < n:
                    self._xfer(src, dst, vas[src], vas[dst], nbytes,
                               tag=2000 + dist)
                    have.add(dst)
            dist *= 2

    def reduce(self, root: int, vas: list[int], out_va: int,
               count: int, op: str = "sum",
               dtype: str = "float64") -> None:
        """Binomial-tree reduction of ``count`` elements of ``dtype``
        from every rank's ``vas[r]`` into root's ``out_va``."""
        self._check_vas(vas)
        if op not in OPS:
            raise InvalidArgument(
                f"unknown op {op!r}; choose from {sorted(OPS)}")
        nbytes = count * np.dtype(dtype).itemsize
        n = self.size
        # Accumulate into a per-rank local copy first (rank buffers are
        # not modified by the collective).
        acc: dict[int, np.ndarray] = {}
        for r in range(n):
            raw = self.ranks[r].task.read(vas[r], nbytes)
            acc[r] = np.frombuffer(raw, dtype=dtype).copy()
        dist = 1
        while dist < n:
            for rel in range(0, n, 2 * dist):
                src_rel = rel + dist
                if src_rel >= n:
                    continue
                dst = (root + rel) % n
                src = (root + src_rel) % n
                # src ships its partial accumulation to dst.
                self.ranks[src].task.write(self._scratch[src],
                                           acc[src].tobytes())
                self._xfer(src, dst, self._scratch[src],
                           self._scratch[dst], nbytes, tag=3000 + dist)
                incoming = np.frombuffer(
                    self.ranks[dst].task.read(self._scratch[dst],
                                              nbytes), dtype=dtype)
                acc[dst] = OPS[op](acc[dst], incoming)
            dist *= 2
        self.ranks[root].task.write(out_va, acc[root].tobytes())

    def allreduce(self, vas: list[int], out_vas: list[int], count: int,
                  op: str = "sum", dtype: str = "float64") -> None:
        """reduce to rank 0, then bcast the result."""
        self._check_vas(vas)
        self._check_vas(out_vas)
        self.reduce(0, vas, out_vas[0], count, op=op, dtype=dtype)
        nbytes = count * np.dtype(dtype).itemsize
        self.bcast(0, out_vas, nbytes)

    def gather(self, root: int, src_vas: list[int], dst_va: int,
               nbytes_each: int) -> None:
        """Gather ``nbytes_each`` from every rank into root's ``dst_va``
        in rank order."""
        self._check_vas(src_vas)
        for r in range(self.size):
            if r == root:
                data = self.ranks[root].task.read(src_vas[root],
                                                  nbytes_each)
                self.ranks[root].task.write(dst_va + r * nbytes_each,
                                            data)
            else:
                self._xfer(r, root, src_vas[r],
                           dst_va + r * nbytes_each, nbytes_each,
                           tag=4000 + r)

    def scatter(self, root: int, src_va: int, dst_vas: list[int],
                nbytes_each: int) -> None:
        """Scatter consecutive ``nbytes_each`` slices of root's
        ``src_va`` to every rank's ``dst_vas[r]``."""
        self._check_vas(dst_vas)
        for r in range(self.size):
            if r == root:
                data = self.ranks[root].task.read(
                    src_va + r * nbytes_each, nbytes_each)
                self.ranks[root].task.write(dst_vas[root], data)
            else:
                self._xfer(root, r, src_va + r * nbytes_each,
                           dst_vas[r], nbytes_each, tag=5000 + r)

    def alltoall(self, src_vas: list[int], dst_vas: list[int],
                 nbytes_each: int) -> None:
        """Pairwise exchange: slice j of rank i's send buffer lands in
        slice i of rank j's receive buffer."""
        self._check_vas(src_vas)
        self._check_vas(dst_vas)
        n = self.size
        for i in range(n):
            for j in range(n):
                src_off = src_vas[i] + j * nbytes_each
                dst_off = dst_vas[j] + i * nbytes_each
                if i == j:
                    data = self.ranks[i].task.read(src_off, nbytes_each)
                    self.ranks[i].task.write(dst_off, data)
                else:
                    self._xfer(i, j, src_off, dst_off, nbytes_each,
                               tag=6000 + i * n + j)

    def alltoallv(self, src_vas: list[int],
                  send_counts: list[list[int]],
                  dst_vas: list[int]) -> list[list[int]]:
        """Vector alltoall: rank i sends ``send_counts[i][j]`` bytes to
        rank j.  Send slices are packed consecutively per sender;
        receive slices are packed consecutively per receiver in sender
        order.  Returns the receive counts matrix (recv[j][i])."""
        n = self.size
        recv_counts = [[send_counts[i][j] for i in range(n)]
                       for j in range(n)]
        for i in range(n):
            src_off = src_vas[i]
            for j in range(n):
                nbytes = send_counts[i][j]
                dst_off = dst_vas[j] + sum(recv_counts[j][:i])
                if nbytes:
                    if i == j:
                        data = self.ranks[i].task.read(src_off, nbytes)
                        self.ranks[i].task.write(dst_off, data)
                    else:
                        self._xfer(i, j, src_off, dst_off, nbytes,
                                   tag=7000 + i * n + j)
                src_off += nbytes
        return recv_counts

    # -- internals --------------------------------------------------------------

    def _check_vas(self, vas: list[int]) -> None:
        if len(vas) != self.size:
            raise InvalidArgument(
                f"need one address per rank ({self.size}), "
                f"got {len(vas)}")
