"""MPI datatypes: describing non-contiguous user data.

The collection's CHEMPI design names the case explicitly: library
buffers are used "for noncontiguous data types that have to be packed
before communication" — the classic MPICH approach.  A
:class:`Datatype` describes a memory layout as ``(offset, nbytes)``
blocks; :func:`pack` gathers it into a contiguous byte string (charging
the copies) and :func:`unpack` scatters it back.

``MpiRank.send_typed`` / ``recv_typed`` (see :mod:`repro.mpi.rank_typed`)
use these to transfer strided data — e.g. a column of a row-major
matrix — over the byte-oriented transport.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.errors import InvalidArgument

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import Task


class Datatype(abc.ABC):
    """A memory layout: a sequence of ``(offset, nbytes)`` blocks."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Total payload bytes (sum of block lengths)."""

    @property
    @abc.abstractmethod
    def extent(self) -> int:
        """Span from the first to one past the last byte touched."""

    @abc.abstractmethod
    def blocks(self) -> Iterator[tuple[int, int]]:
        """Yield ``(offset, nbytes)`` blocks in transfer order."""


@dataclass(frozen=True)
class Contiguous(Datatype):
    """``count`` contiguous bytes."""

    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise InvalidArgument(f"negative count {self.count}")

    @property
    def size(self) -> int:
        return self.count

    @property
    def extent(self) -> int:
        return self.count

    def blocks(self) -> Iterator[tuple[int, int]]:
        if self.count:
            yield 0, self.count


@dataclass(frozen=True)
class Vector(Datatype):
    """``count`` blocks of ``blocklen`` bytes, ``stride`` bytes apart —
    ``MPI_Type_vector`` in byte units (a matrix column, a halo face)."""

    count: int
    blocklen: int
    stride: int

    def __post_init__(self) -> None:
        if self.count < 0 or self.blocklen < 0:
            raise InvalidArgument("negative vector shape")
        if self.count > 1 and self.stride < self.blocklen:
            raise InvalidArgument(
                f"stride {self.stride} < blocklen {self.blocklen}: "
                f"blocks would overlap")

    @property
    def size(self) -> int:
        return self.count * self.blocklen

    @property
    def extent(self) -> int:
        if self.count == 0:
            return 0
        return (self.count - 1) * self.stride + self.blocklen

    def blocks(self) -> Iterator[tuple[int, int]]:
        for i in range(self.count):
            if self.blocklen:
                yield i * self.stride, self.blocklen


@dataclass(frozen=True)
class Indexed(Datatype):
    """Arbitrary ``(offset, nbytes)`` blocks — ``MPI_Type_indexed``."""

    entries: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        for offset, nbytes in self.entries:
            if offset < 0 or nbytes < 0:
                raise InvalidArgument(
                    f"negative indexed entry ({offset}, {nbytes})")

    @property
    def size(self) -> int:
        return sum(n for _, n in self.entries)

    @property
    def extent(self) -> int:
        if not self.entries:
            return 0
        return max(offset + n for offset, n in self.entries)

    def blocks(self) -> Iterator[tuple[int, int]]:
        for offset, nbytes in self.entries:
            if nbytes:
                yield offset, nbytes


def pack(task: "Task", va: int, dtype: Datatype) -> bytes:
    """Gather ``dtype`` at ``va`` into contiguous bytes (CPU copies are
    charged through the task's reads)."""
    return b"".join(task.read(va + offset, nbytes)
                    for offset, nbytes in dtype.blocks())


def unpack(task: "Task", va: int, dtype: Datatype, data: bytes) -> None:
    """Scatter contiguous ``data`` into ``dtype`` at ``va``."""
    if len(data) != dtype.size:
        raise InvalidArgument(
            f"payload of {len(data)} bytes does not fit datatype of "
            f"size {dtype.size}")
    pos = 0
    for offset, nbytes in dtype.blocks():
        task.write(va + offset, data[pos:pos + nbytes])
        pos += nbytes
