"""Persistent communication requests.

The collection's CHEMPI paper states the motivation directly: "In order
to get high performance it is profitable to use registered buffer again
like in the MPI persistent communication" — a persistent request binds
a (peer, tag, buffer) tuple once, **pre-registers the buffer** (pinning
it through the registration cache so it can never be evicted while the
request lives), and can then be started any number of times with zero
registration work on the critical path.

Usage::

    preq = rank.send_init(dest, tag, va, nbytes)
    for _ in range(iterations):
        preq.start()
        ...
        preq.wait()
    preq.free()
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ViaError
from repro.mpi.requests import Request, Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.rank import MpiRank


class PersistentRequest:
    """A reusable, pre-registered send or receive."""

    def __init__(self, rank: "MpiRank", kind: str, peer: int, tag: int,
                 va: int, nbytes: int, context: int = 0) -> None:
        if kind not in ("send", "recv"):
            raise ViaError(f"unknown persistent kind {kind!r}")
        self.rank = rank
        self.kind = kind
        self.peer = peer
        self.tag = tag
        self.va = va
        self.nbytes = nbytes
        self.context = context
        self._active: Request | None = None
        self._freed = False
        self.starts = 0
        # Pre-register: only rendezvous-sized messages ever need a
        # registration, and receives need the RDMA-write enable the
        # rendezvous grant will ask for.
        self._held = False
        if nbytes > rank.world.eager_threshold and peer in rank.endpoints:
            cache = rank.endpoints[peer].cache
            if kind == "recv":
                cache.acquire(va, nbytes, rdma_write=True)
            else:
                cache.acquire(va, nbytes)
            self._held = True

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "PersistentRequest":
        """Begin one communication; the request must not be active."""
        if self._freed:
            raise ViaError("persistent request already freed")
        if self._active is not None and not self._active.done:
            raise ViaError("persistent request already active")
        if self.kind == "send":
            self._active = self.rank.isend(self.peer, self.tag, self.va,
                                           self.nbytes, self.context)
        else:
            self._active = self.rank.irecv(self.peer, self.tag, self.va,
                                           self.nbytes, self.context)
        self.starts += 1
        return self

    def test(self) -> bool:
        """Non-blocking completion check of the current start."""
        if self._active is None:
            raise ViaError("persistent request not started")
        return self._active.test()

    def wait(self) -> Status:
        """Complete the current start; the request becomes restartable."""
        if self._active is None:
            raise ViaError("persistent request not started")
        status = self._active.wait()
        return status

    def free(self) -> None:
        """Release the pre-registration (idempotent).  The request must
        not be active."""
        if self._active is not None and not self._active.done:
            raise ViaError("cannot free an active persistent request")
        if self._held and not self._freed:
            self.rank.endpoints[self.peer].cache.release(self.va,
                                                         self.nbytes)
        self._freed = True

    @property
    def active(self) -> bool:
        """A start is in flight and not yet completed."""
        return self._active is not None and not self._active.done
