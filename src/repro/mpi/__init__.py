"""A compact MPI-style library over the VIA stack — the paper's
motivating consumer.

"The networking hardware must transfer the data directly from and to
the user buffers, the addresses of which are given to the communication
library, e.g. MPI" — this package is that library: an MPI-1-flavoured
subset (point-to-point with tag/source matching incl. wildcards,
non-blocking requests, and the common collectives) implemented on
dedicated VI pairs per rank pair ("two VI's are connected between each
couple of MPI tasks"), with eager and rendezvous-zero-copy protocols
and dynamic registration through the registration cache.

Co-simulation note: ranks live in one Python thread, so blocking
operations drive their peers' progress engines directly, and
collectives execute a deterministic per-rank schedule — the message
traffic, registrations, copies, and costs are all real.
"""

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, MAX_TAG
from repro.mpi.datatypes import Contiguous, Datatype, Indexed, Vector
from repro.mpi.persistent import PersistentRequest
from repro.mpi.requests import Request, Status
from repro.mpi.rank import MpiRank
from repro.mpi.world import MpiWorld

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "MAX_TAG", "Request", "Status", "MpiRank",
    "MpiWorld", "Datatype", "Contiguous", "Vector", "Indexed",
    "PersistentRequest",
]
