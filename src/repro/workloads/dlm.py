"""Crash-tolerant distributed lock manager on VIA remote atomics.

The tentpole workload for the atomic-verb data plane: N client
processes spread over a cluster contend for locks living in one pinned,
``rdma_atomic``-enabled page on machine ``m0``, increment a protected
data word under each lock, and get killed at instrumented crash points
*while holding*.  Three lock designs sit behind one :class:`LockClient`
API:

``server``
    server-centric queue: clients send ``A:<lock>`` / ``R:<lock>``
    messages to a lock-server process on m0, which grants FIFO with
    ``G:<lock>`` replies.  The server detects a dead holder through its
    server-side VI entering ERROR (``VIP_ERROR_CONN_LOST``) or through
    lease expiry, reclaims, and grants the next waiter.
``spin``
    client-bypass spin lock: one 8-byte word per lock, compare-and-swap
    from 0 to ``(cookie << 48) | lease_expiry_us``.  Holder identity
    and lease live in the *same* word, so a failed CAS hands every
    waiter exactly what it needs to decide expiry; reclaim is
    ``CAS(observed_value -> 0)``.  Waiters back off exponentially
    (bounded) between attempts.
``declock``
    DecLock-style ticket lock: ``FETCH_ADD`` on a ticket word issues
    turns, a serving word says whose turn it is, waiters advertise
    themselves in a ring and poll a per-client grant word the releaser
    RDMA-writes.  A *janitor* process on m0 (its own VI pair, atomics
    only on the atomic words) advances the serving counter over dead
    holders.

Every design is lease-based crash-recoverable: a holder killed at any
``dlm.*`` crash point (see :data:`repro.sim.faults.DLM_CRASH_POINTS`)
is detected — by connection loss or lease expiry — and its lock is
force-reclaimed, attributed in the trace (``dlm_reclaim`` with ``by=``)
and in ``workload.dlm.*`` obs counters.  A :class:`LockOracle` checks
the invariants the whole exercise is about: mutual exclusion (a reclaim
must never steal from a *live* holder), no lost wakeups (every live
waiter eventually acquires), a fairness bypass bound (0 for the FIFO
designs), the protected word's final value equals the count of
completed increments, and recovery latency stays within one lease plus
slack.

Word-class discipline keeps the ``atomic-nonatomic-overlap`` sanitizer
check quiet by construction: lock/ticket/serving words only ever see
adapter atomics; data, ring, and grant words only ever see plain RDMA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.audit import (
    audit_kernel_invariants, audit_pin_leaks, audit_tpt_consistency,
)
from repro.errors import ProcessKilled, QueueEmpty, ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.sim.faults import FaultPlan, crash_if_due
from repro.via.constants import VIP_SUCCESS, ViState
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.machine import Cluster, Machine
from repro.via.vi import VirtualInterface

#: the three designs, in the order the benchmark sweeps them
DESIGNS: tuple[str, ...] = ("server", "spin", "declock")

_MASK48 = (1 << 48) - 1
_WORD = 8

# Per-lock slot layout, in words (shared by all designs so a config is
# design-agnostic): the lock/serving word, the ticket word, the data
# word, then the declock waiter ring (one word per client).
_W_LOCK = 0
_W_TICKET = 1
_W_DATA = 2
_W_RING = 3


@dataclass
class DLMConfig:
    """Knobs of one DLM run (fully seeded, all simulated-time)."""

    design: str = "spin"                 #: one of :data:`DESIGNS`
    n_clients: int = 4
    n_locks: int = 2
    cs_per_client: int = 6               #: critical sections per client
    backend: str = "kiobuf"
    seed: int = 0
    n_machines: int = 3                  #: m0 hosts the lock memory
    num_frames: int = 1024
    # -- leases / pacing --
    lease_ns: int = 20_000_000           #: holder lease (20 sim-ms)
    hold_ns: int = 40_000                #: dwell inside the CS
    step_gap_ns: int = 8_000             #: per-scheduler-step idle charge
    backoff_base_ns: int = 20_000        #: spin backoff, doubled per miss
    backoff_max_ns: int = 320_000        #: ... bounded here
    recovery_slack_ns: int = 2_000_000   #: allowed on top of one lease
    # -- chaos --
    crash_point: str | None = None       #: a ``dlm.*`` point, or None
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    # -- safety bounds --
    max_steps: int = 60_000              #: scheduler steps before "stuck"
    sanitize: bool = True                #: arm a strict PinSanitizer
    janitor: bool = True                 #: run the reclaim daemon (the
    #: client-bypass designs recover by lease expiry alone without it)

    def __post_init__(self) -> None:
        if self.design not in DESIGNS:
            raise ValueError(
                f"unknown design {self.design!r}; choose one of {DESIGNS}")
        if not 2 <= self.n_clients <= 48:
            raise ValueError(
                f"n_clients must be in [2, 48] (message slots share one "
                f"page), got {self.n_clients}")
        if self.n_locks < 1:
            raise ValueError(f"need at least 1 lock, got {self.n_locks}")
        if not self.janitor and self.design == "declock":
            raise ValueError(
                "declock needs the janitor: waiters cannot advance the "
                "serving counter over a dead holder themselves")
        if self.n_machines < 2:
            raise ValueError(
                f"need at least 2 machines, got {self.n_machines}")
        # The lease must outlast the worst-case critical-section *span*:
        # the CS is 4 sub-steps, one per scheduler pass, and every pass
        # also runs each rival's step (up to one full backoff charge
        # apiece).  A lease shorter than that steals from live holders.
        cs_span = (6 * self.n_clients
                   * (self.step_gap_ns + self.backoff_max_ns)
                   + self.hold_ns)
        if self.lease_ns <= cs_span:
            raise ValueError(
                f"lease_ns ({self.lease_ns}) must exceed the worst-case "
                f"critical-section span (~{cs_span} ns with "
                f"{self.n_clients} clients backing off up to "
                f"{self.backoff_max_ns} ns) or live holders expire "
                f"mid-CS")

    # -- lock-memory layout ---------------------------------------------------

    @property
    def slot_words(self) -> int:
        return _W_RING + self.n_clients

    def lock_off(self, lock: int) -> int:
        """Byte offset of lock ``lock``'s slot."""
        return lock * self.slot_words * _WORD

    def word_off(self, lock: int, word: int) -> int:
        """Byte offset of ``word`` within lock ``lock``'s slot."""
        return self.lock_off(lock) + word * _WORD

    def ring_off(self, lock: int, ticket: int) -> int:
        """Byte offset of the ring cell that ``ticket`` maps to."""
        return self.word_off(lock, _W_RING + ticket % self.n_clients)

    def grant_off(self, lock: int, idx: int) -> int:
        """Byte offset of client ``idx``'s grant mailbox for ``lock``."""
        base = self.n_locks * self.slot_words
        return (base + lock * self.n_clients + idx) * _WORD

    @property
    def lockmem_pages(self) -> int:
        total = (self.n_locks * self.slot_words
                 + self.n_locks * self.n_clients) * _WORD
        return max(1, -(-total // PAGE_SIZE))


@dataclass
class DLMReport:
    """What one DLM run did and proved."""

    design: str = ""
    acquisitions: int = 0
    releases: int = 0
    increments: int = 0
    crashes: int = 0
    conn_failures: int = 0               #: clients lost to wire chaos
    reclaims: int = 0
    reclaims_by: dict[str, int] = field(default_factory=dict)
    recovery_ns: list[int] = field(default_factory=list)
    max_bypass: int = 0
    steps: int = 0
    sim_ns: int = 0
    data_final: dict[int, int] = field(default_factory=dict)
    data_expected: dict[int, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    sanitizer_violations: int = 0
    leaked_pins: int = 0
    reaper_post_reclaimed: int = 0       #: must be 0 — teardown got it all
    notes: list[str] = field(default_factory=list)

    @staticmethod
    def percentile(values: list[int], q: float) -> int:
        if not values:
            return 0
        ordered = sorted(values)
        index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
        return int(ordered[index])

    def recovery_slo(self) -> dict:
        """p50/p99 lease-recovery latency, for BENCH.json."""
        return {
            "recovery_p50_ns": self.percentile(self.recovery_ns, 0.50),
            "recovery_p99_ns": self.percentile(self.recovery_ns, 0.99),
            "recovery_samples": len(self.recovery_ns),
        }


class LockOracle:
    """Invariant checker fed by the harness as lock events happen.

    Violations accumulate as strings in :attr:`violations`; the harness
    folds them into the report and the tests assert the list is empty.
    """

    def __init__(self, config: DLMConfig) -> None:
        self.config = config
        self.violations: list[str] = []
        #: lock -> holder name (None = free)
        self.holder: dict[int, str | None] = {
            lock: None for lock in range(config.n_locks)}
        #: lock -> arrival-ordered live waiters (name, wait_start_ns)
        self.waiters: dict[int, list[tuple[str, int]]] = {
            lock: [] for lock in range(config.n_locks)}
        #: lock -> sim time its holder died while holding
        self.crash_ns: dict[int, int] = {}
        self.increments: dict[int, int] = {
            lock: 0 for lock in range(config.n_locks)}
        self.alive: set[str] = set()
        self.recovery_ns: list[int] = []
        self.max_bypass = 0

    # -- events ---------------------------------------------------------------

    def on_wait(self, lock: int, client: str, now_ns: int) -> None:
        """Record that ``client`` started waiting on ``lock``."""
        self.waiters[lock].append((client, now_ns))

    def on_acquire(self, lock: int, client: str, now_ns: int) -> None:
        """Check mutual exclusion, recovery bound, and FIFO fairness."""
        held_by = self.holder[lock]
        if held_by is not None:
            if held_by in self.alive:
                self.violations.append(
                    f"mutual exclusion: {client} acquired lock {lock} "
                    f"while live holder {held_by} still held it")
            elif lock not in self.crash_ns:
                self.violations.append(
                    f"lock {lock}: dead holder {held_by} was never "
                    f"reported crashed")
        if lock in self.crash_ns:
            recovery = now_ns - self.crash_ns.pop(lock)
            self.recovery_ns.append(recovery)
            bound = self.config.lease_ns + self.config.recovery_slack_ns
            if recovery > bound:
                self.violations.append(
                    f"lock {lock}: recovery took {recovery} ns, over the "
                    f"lease+slack bound of {bound} ns")
        # Fairness: live waiters that arrived before this client and are
        # still waiting were bypassed.  FIFO designs must never do this.
        my_start = None
        bypassed = 0
        queue = self.waiters[lock]
        for name, start in queue:
            if name == client:
                my_start = start
                break
        if my_start is not None:
            bypassed = sum(1 for name, start in queue
                           if name != client and name in self.alive
                           and start < my_start)
        self.max_bypass = max(self.max_bypass, bypassed)
        if bypassed and self.config.design in ("server", "declock"):
            self.violations.append(
                f"fairness: {client} bypassed {bypassed} earlier live "
                f"waiter(s) on lock {lock} under FIFO design "
                f"{self.config.design!r}")
        self.waiters[lock] = [(n, s) for n, s in queue if n != client]
        self.holder[lock] = client

    def on_increment(self, lock: int, client: str) -> None:
        """Count a data-word increment; flag it if ``client`` lacks the lock."""
        if self.holder[lock] != client:
            self.violations.append(
                f"lost update: {client} incremented lock {lock}'s data "
                f"word while holder is {self.holder[lock]!r}")
        self.increments[lock] += 1

    def on_release(self, lock: int, client: str) -> None:
        """Record a release; flag it if ``client`` was not the holder."""
        if self.holder[lock] != client:
            self.violations.append(
                f"release: {client} released lock {lock} held by "
                f"{self.holder[lock]!r}")
        self.holder[lock] = None

    def on_crash(self, client: str, now_ns: int,
                 holding: int | None) -> None:
        """Mark ``client`` dead and start the recovery clock if it held a lock."""
        self.alive.discard(client)
        if holding is not None and self.holder[holding] == client:
            self.crash_ns[holding] = now_ns
        for lock, queue in self.waiters.items():
            self.waiters[lock] = [(n, s) for n, s in queue if n != client]

    def on_reclaim(self, lock: int, by: str) -> None:
        """Validate a lease reclaim: the holder must really be dead."""
        held_by = self.holder[lock]
        if held_by is None:
            self.violations.append(
                f"reclaim by {by}: lock {lock} was not held")
        elif held_by in self.alive:
            self.violations.append(
                f"reclaim by {by}: lock {lock}'s holder {held_by} is "
                f"still alive — the lease lied")
        self.holder[lock] = None

    def finish(self, data_final: dict[int, int],
               stuck_waiters: list[str]) -> None:
        """Check final data words against the oracle's increment counts."""
        for lock, value in data_final.items():
            expected = self.increments[lock]
            if value != expected:
                self.violations.append(
                    f"lock {lock}: data word is {value}, oracle counted "
                    f"{expected} completed increments")
        for name in stuck_waiters:
            self.violations.append(
                f"lost wakeup: live client {name} never finished")


class _LockMem:
    """The lock memory and its owner process on m0."""

    def __init__(self, machine: Machine, config: DLMConfig) -> None:
        self.machine = machine
        self.config = config
        self.task = machine.spawn("lockd", uid=4000)
        self.ua = machine.user_agent(self.task)
        pages = config.lockmem_pages
        self.va = self.task.mmap(pages, name="dlm_lockmem")
        self.task.touch_pages(self.va, pages)
        self.reg = self.ua.register_mem(
            self.va, pages * PAGE_SIZE, rdma_write=True, rdma_read=True,
            rdma_atomic=True)

    def read_word(self, off: int) -> int:
        """Host-side read of one lock-memory word (final audits only —
        the data path goes through the NIC)."""
        return int.from_bytes(self.task.read(self.va + off, _WORD),
                              "little")


class LockClient:
    """One lock-manager client: a process, a VI pair to m0, and a
    design-specific acquire/release state machine driven by
    :meth:`step`.

    The critical section itself is design-agnostic and shared: read the
    protected word, write it +1, dwell, release — with a ``dlm.*``
    crash point between every two sub-steps.
    """

    def __init__(self, harness: "DLMHarness", idx: int,
                 machine: Machine) -> None:
        config = harness.config
        self.harness = harness
        self.config = config
        self.idx = idx
        self.name = f"c{idx}"
        self.machine = machine
        self.task = machine.spawn(self.name, uid=4100 + idx)
        self.ua = machine.user_agent(self.task)
        self.vi = self.ua.create_vi()
        lockmem = harness.lockmem
        self.server_vi: VirtualInterface = lockmem.ua.create_vi()
        harness.cluster.connect(self.vi, machine, self.server_vi,
                                lockmem.machine)
        self.scratch_va = self.task.mmap(1, name=f"dlm_{self.name}")
        self.task.touch_pages(self.scratch_va, 1)
        self.reg = self.ua.register_mem(self.scratch_va, PAGE_SIZE)
        self.h_mem = lockmem.reg.handle
        self.mem_va = lockmem.va
        self.alive = True
        self.completed = 0
        self.state = "idle"
        self.lock: int = 0               #: lock currently targeted
        self.holding: int | None = None
        self.data_value = 0              #: CS-read value in flight
        # design-specific protocol state
        self.spin_val = 0                #: exact word the spin CAS installed
        self.spin_misses = 0
        self.ticket = 0
        if config.design == "server":
            self._post_msg_recvs()

    # -- raw verbs ------------------------------------------------------------

    def _finish_send(self) -> Descriptor:
        done = self.ua.send_done(self.vi)
        if done.status != VIP_SUCCESS:
            raise ViaError(
                f"{self.name}: {done.dtype.value} failed with "
                f"{done.status}")
        return done

    def _cas(self, off: int, compare: int, swap: int) -> int:
        self.ua.atomic_cmpswap(self.vi, self.reg, self.h_mem,
                               self.mem_va + off, compare, swap)
        done = self._finish_send()
        assert done.atomic_original_value is not None
        return done.atomic_original_value

    def _fadd(self, off: int, add: int) -> int:
        self.ua.atomic_fetchadd(self.vi, self.reg, self.h_mem,
                                self.mem_va + off, add)
        done = self._finish_send()
        assert done.atomic_original_value is not None
        return done.atomic_original_value

    def _read_word(self, off: int) -> int:
        seg = DataSegment(self.reg.handle, self.reg.va + 8, _WORD)
        self.ua.post_send(self.vi, Descriptor.rdma_read(
            [seg], self.h_mem, self.mem_va + off))
        self._finish_send()
        return int.from_bytes(self.task.read(self.reg.va + 8, _WORD),
                              "little")

    def _write_word(self, off: int, value: int) -> None:
        self.task.write(self.reg.va + 16, value.to_bytes(_WORD, "little"))
        seg = DataSegment(self.reg.handle, self.reg.va + 16, _WORD)
        self.ua.post_send(self.vi, Descriptor.rdma_write(
            [seg], self.h_mem, self.mem_va + off))
        self._finish_send()

    # -- server-design messaging ----------------------------------------------

    _MSG_SLOTS = (256, 320)
    _MSG_LEN = 32

    def _post_msg_recvs(self) -> None:
        for slot in self._MSG_SLOTS:
            self._post_one_recv(slot)

    def _post_one_recv(self, slot: int) -> None:
        seg = DataSegment(self.reg.handle, self.reg.va + slot,
                          self._MSG_LEN)
        self.ua.post_recv(self.vi, Descriptor.recv([seg]))

    def _send_msg(self, text: str) -> None:
        self.ua.send_bytes(self.vi, self.reg, text.encode(), offset=384)
        self._finish_send()

    def _poll_msg(self) -> str | None:
        try:
            done = self.ua.recv_done(self.vi)
        except QueueEmpty:
            return None
        if done.status != VIP_SUCCESS:
            raise ViaError(f"{self.name}: recv failed with {done.status}")
        text = self.ua.recv_bytes(self.vi, done).decode()
        slot = done.segments[0].va - self.reg.va
        self._post_one_recv(slot)
        return text

    # -- crash points ---------------------------------------------------------

    def _crash(self, point: str) -> None:
        crash_if_due(self.machine.kernel.fault_plan, self.machine.kernel,
                     self.task, point)

    # -- the step machine -----------------------------------------------------

    @property
    def done(self) -> bool:
        return self.completed >= self.config.cs_per_client

    def step(self) -> None:
        """Advance by one protocol action (the harness round-robins
        these, charging a think gap per visit)."""
        config = self.config
        clock = self.harness.clock
        clock.charge(config.step_gap_ns, "dlm_step")
        state = self.state
        if state == "idle":
            self.lock = (self.idx + self.completed) % config.n_locks
            self.harness.oracle.on_wait(self.lock, self.name,
                                        clock.now_ns)
            self.spin_misses = 0
            self.state = {"server": "msg_acquire", "spin": "spin_cas",
                          "declock": "take_ticket"}[config.design]
        elif state == "msg_acquire":
            self._send_msg(f"A:{self.lock}")
            self.state = "wait_grant"
        elif state == "wait_grant":
            msg = self._poll_msg()
            if msg == f"G:{self.lock}":
                self._acquired()
        elif state == "spin_cas":
            self._spin_acquire_step()
        elif state == "take_ticket":
            self.ticket = self._fadd(
                config.word_off(self.lock, _W_TICKET), 1)
            self._write_word(config.ring_off(self.lock, self.ticket),
                             self.idx + 1)
            self.state = "poll_turn"
        elif state == "poll_turn":
            self._declock_poll_step()
        elif state == "cs_acquired":
            self._crash("dlm.acquired")
            self.data_value = self._read_word(
                config.word_off(self.lock, _W_DATA))
            self.state = "cs_read"
        elif state == "cs_read":
            self._crash("dlm.cs_read")
            self._write_word(config.word_off(self.lock, _W_DATA),
                             self.data_value + 1)
            self.harness.oracle.on_increment(self.lock, self.name)
            self.harness.report.increments += 1
            self.state = "cs_write"
        elif state == "cs_write":
            self._crash("dlm.cs_write")
            clock.charge(config.hold_ns, "dlm_hold")
            self.state = "cs_release"
        elif state == "cs_release":
            self._crash("dlm.before_release")
            self._release()
            self.harness.oracle.on_release(self.lock, self.name)
            self.harness.report.releases += 1
            self.holding = None
            self.completed += 1
            self.state = "idle"
        else:  # pragma: no cover - state machine is closed
            raise AssertionError(f"unknown client state {state!r}")

    def _acquired(self) -> None:
        self.holding = self.lock
        self.harness.oracle.on_acquire(self.lock, self.name,
                                       self.harness.clock.now_ns)
        self.harness.report.acquisitions += 1
        self.harness.cluster.obs.inc("workload.dlm.acquires")
        self.state = "cs_acquired"

    # -- spin design ----------------------------------------------------------

    def _spin_value(self) -> int:
        expiry_us = (self.harness.clock.now_ns
                     + self.config.lease_ns) // 1000
        return ((self.idx + 1) << 48) | (expiry_us & _MASK48)

    def _spin_acquire_step(self) -> None:
        config = self.config
        off = config.word_off(self.lock, _W_LOCK)
        my_val = self._spin_value()
        old = self._cas(off, 0, my_val)
        if old == 0:
            self.spin_val = my_val
            self._acquired()
            return
        # The failed CAS's original value is the holder's cookie+lease:
        # everything a waiter needs to decide the holder is dead.
        expiry_us = old & _MASK48
        if self.harness.clock.now_ns // 1000 > expiry_us:
            if self._cas(off, old, 0) == old:
                self.harness.note_reclaim(self.lock, by="waiter")
            return   # retry the acquire CAS on the next visit
        self.spin_misses += 1
        backoff = min(config.backoff_base_ns * (2 ** (self.spin_misses - 1)),
                      config.backoff_max_ns)
        self.harness.clock.charge(backoff, "dlm_backoff")

    def _spin_release(self) -> None:
        off = self.config.word_off(self.lock, _W_LOCK)
        if self._cas(off, self.spin_val, 0) != self.spin_val:
            # Reclaimed out from under a live holder — the oracle will
            # have flagged the mutual-exclusion breach already; record
            # the symptom too.
            self.harness.report.notes.append(
                f"{self.name}: release CAS on lock {self.lock} missed "
                f"(word changed while held)")

    # -- declock design -------------------------------------------------------

    def _declock_poll_step(self) -> None:
        config = self.config
        grant = self._read_word(config.grant_off(self.lock, self.idx))
        if grant == self.ticket + 1:
            self._acquired()
            return
        serving = self._read_word(config.word_off(self.lock, _W_LOCK))
        if serving == self.ticket:
            self._acquired()
        elif serving > self.ticket:
            raise ViaError(
                f"{self.name}: serving counter {serving} passed my "
                f"ticket {self.ticket} on lock {self.lock} — turn lost")

    def _declock_release(self) -> None:
        config = self.config
        old = self._fadd(config.word_off(self.lock, _W_LOCK), 1)
        nxt = old + 1
        waiter = self._read_word(config.ring_off(self.lock, nxt))
        if waiter:
            self._write_word(config.grant_off(self.lock, waiter - 1),
                             nxt + 1)

    def _release(self) -> None:
        design = self.config.design
        if design == "server":
            self._send_msg(f"R:{self.lock}")
        elif design == "spin":
            self._spin_release()
        else:
            self._declock_release()


class _LockServer:
    """The server-centric design's grant engine, running as the lockd
    process: FIFO queues, leases, and death detection through the
    server-side VIs."""

    def __init__(self, harness: "DLMHarness") -> None:
        self.harness = harness
        config = harness.config
        lockmem = harness.lockmem
        self.ua = lockmem.ua
        self.task = lockmem.task
        self.scratch_va = self.task.mmap(1, name="dlm_serverbuf")
        self.task.touch_pages(self.scratch_va, 1)
        self.reg = self.ua.register_mem(self.scratch_va, PAGE_SIZE)
        #: lock -> FIFO of waiting client indices
        self.queues: dict[int, list[int]] = {
            lock: [] for lock in range(config.n_locks)}
        #: lock -> (holder idx, grant sim-time)
        self.grants: dict[int, tuple[int, int]] = {}
        self.dead: set[int] = set()
        # Two pre-posted receives per client VI (request + release can
        # be in flight together), each in its own slot of the server's
        # scratch page.
        for client in harness.clients:
            for k in (0, 1):
                slot = 256 + (client.idx * 2 + k) * LockClient._MSG_LEN
                seg = DataSegment(self.reg.handle, self.reg.va + slot,
                                  LockClient._MSG_LEN)
                self.ua.post_recv(client.server_vi,
                                  Descriptor.recv([seg]))

    def step(self) -> None:
        """Drain queued requests/releases and hand out FIFO grants."""
        harness = self.harness
        clients = harness.clients
        for client in clients:
            if (client.idx not in self.dead
                    and client.server_vi.state is ViState.ERROR):
                self._on_death(client.idx)
            self._drain(client)
        # Lease backstop: a grant outliving its lease means the holder
        # is gone (a live holder releases orders of magnitude sooner).
        now = harness.clock.now_ns
        for lock, (idx, granted_ns) in list(self.grants.items()):
            if now - granted_ns > harness.config.lease_ns:
                self._reclaim(lock, f"lease expiry of c{idx}")

    def _drain(self, client: LockClient) -> None:
        vi = client.server_vi
        while vi.recv_done:
            done = vi.recv_done.popleft()
            if done.status != VIP_SUCCESS:
                continue
            text = self.ua.recv_bytes(vi, done).decode()
            seg = done.segments[0]
            self.ua.post_recv(vi, Descriptor.recv(
                [DataSegment(seg.mem_handle, seg.va, client._MSG_LEN)]))
            kind, lock_str = text.split(":", 1)
            lock = int(lock_str)
            if kind == "A":
                self.queues[lock].append(client.idx)
                self._grant_next(lock)
            elif kind == "R":
                holder = self.grants.get(lock)
                if holder is not None and holder[0] == client.idx:
                    del self.grants[lock]
                    self._grant_next(lock)

    def _on_death(self, idx: int) -> None:
        self.dead.add(idx)
        for lock, queue in self.queues.items():
            if idx in queue:
                self.queues[lock] = [i for i in queue if i != idx]
        for lock, (holder, _granted) in list(self.grants.items()):
            if holder == idx:
                self._reclaim(lock, f"conn lost to c{idx}")

    def _reclaim(self, lock: int, why: str) -> None:
        del self.grants[lock]
        self.harness.note_reclaim(lock, by="server", why=why)
        self._grant_next(lock)

    def _grant_next(self, lock: int) -> None:
        if lock in self.grants:
            return
        queue = self.queues[lock]
        while queue:
            idx = queue[0]
            client = self.harness.clients[idx]
            if (idx in self.dead
                    or client.server_vi.state is not ViState.CONNECTED):
                queue.pop(0)
                continue
            self.ua.send_bytes(client.server_vi, self.reg,
                               f"G:{lock}".encode())
            sent = self.ua.send_done(client.server_vi)
            if sent.status != VIP_SUCCESS:
                # The wire died mid-grant; the VI is now ERROR and the
                # next step's death scan will reroute the lock.
                queue.pop(0)
                continue
            queue.pop(0)
            self.grants[lock] = (idx, self.harness.clock.now_ns)
            return


class _Janitor:
    """Reclaim daemon for the client-bypass designs: its own process on
    m0 with a VI pair into the lock memory, speaking only atomics to the
    atomic words (so the ``atomic-nonatomic-overlap`` check stays quiet)
    and plain RDMA to the ring/grant words."""

    def __init__(self, harness: "DLMHarness") -> None:
        self.harness = harness
        config = harness.config
        lockmem = harness.lockmem
        machine = lockmem.machine
        self.task = machine.spawn("janitor", uid=4001)
        self.ua = machine.user_agent(self.task)
        self.vi = self.ua.create_vi()
        self.peer_vi = lockmem.ua.create_vi()
        machine.connect_loopback(self.vi, self.peer_vi)
        self.scratch_va = self.task.mmap(1, name="dlm_janitor")
        self.task.touch_pages(self.scratch_va, 1)
        self.reg = self.ua.register_mem(self.scratch_va, PAGE_SIZE)
        self.h_mem = lockmem.reg.handle
        self.mem_va = lockmem.va
        #: declock: lock -> (last serving value, first seen at ns)
        self._serving_seen: dict[int, tuple[int, int]] = {}

    # -- verbs (janitor-side mirrors of the client helpers) -------------------

    def _cas(self, off: int, compare: int, swap: int) -> int:
        self.ua.atomic_cmpswap(self.vi, self.reg, self.h_mem,
                               self.mem_va + off, compare, swap)
        done = self.ua.send_done(self.vi)
        if done.status != VIP_SUCCESS:
            raise ViaError(f"janitor: CAS failed with {done.status}")
        assert done.atomic_original_value is not None
        return done.atomic_original_value

    def _fadd(self, off: int, add: int) -> int:
        self.ua.atomic_fetchadd(self.vi, self.reg, self.h_mem,
                                self.mem_va + off, add)
        done = self.ua.send_done(self.vi)
        if done.status != VIP_SUCCESS:
            raise ViaError(f"janitor: FETCH_ADD failed with {done.status}")
        assert done.atomic_original_value is not None
        return done.atomic_original_value

    def _read_word(self, off: int) -> int:
        seg = DataSegment(self.reg.handle, self.reg.va, _WORD)
        self.ua.post_send(self.vi, Descriptor.rdma_read(
            [seg], self.h_mem, self.mem_va + off))
        done = self.ua.send_done(self.vi)
        if done.status != VIP_SUCCESS:
            raise ViaError(f"janitor: read failed with {done.status}")
        return int.from_bytes(self.task.read(self.reg.va, _WORD), "little")

    def _write_word(self, off: int, value: int) -> None:
        self.task.write(self.reg.va + 16,
                        value.to_bytes(_WORD, "little"))
        seg = DataSegment(self.reg.handle, self.reg.va + 16, _WORD)
        self.ua.post_send(self.vi, Descriptor.rdma_write(
            [seg], self.h_mem, self.mem_va + off))
        done = self.ua.send_done(self.vi)
        if done.status != VIP_SUCCESS:
            raise ViaError(f"janitor: write failed with {done.status}")

    # -- the sweep ------------------------------------------------------------

    def step(self) -> None:
        """Scan every lock once and reclaim any whose lease has expired."""
        design = self.harness.config.design
        for lock in range(self.harness.config.n_locks):
            if design == "spin":
                self._sweep_spin(lock)
            else:
                self._sweep_declock(lock)

    def _client_dead(self, idx: int) -> bool:
        clients = self.harness.clients
        if not 0 <= idx < len(clients):
            return False
        return clients[idx].server_vi.state is ViState.ERROR

    def _sweep_spin(self, lock: int) -> None:
        config = self.harness.config
        off = config.word_off(lock, _W_LOCK)
        old = self._read_word(off)
        if old == 0:
            return
        cookie, expiry_us = old >> 48, old & _MASK48
        expired = self.harness.clock.now_ns // 1000 > expiry_us
        if self._client_dead(cookie - 1) or expired:
            if self._cas(off, old, 0) == old:
                why = ("conn lost" if self._client_dead(cookie - 1)
                       else "lease expiry")
                self.harness.note_reclaim(
                    lock, by="janitor", why=f"{why} of c{cookie - 1}")

    def _sweep_declock(self, lock: int) -> None:
        config = self.harness.config
        harness = self.harness
        serving = self._read_word(config.word_off(lock, _W_LOCK))
        ticket = self._read_word(config.word_off(lock, _W_TICKET))
        now = harness.clock.now_ns
        last, since = self._serving_seen.get(lock, (None, now))
        if last != serving:
            self._serving_seen[lock] = (serving, now)
            since = now
        if serving >= ticket:
            return   # free (nobody has an unserved ticket)
        holder_word = self._read_word(config.ring_off(lock, serving))
        if holder_word == 0:
            return   # holder hasn't advertised yet
        idx = holder_word - 1
        dead = self._client_dead(idx)
        stuck = now - since > config.lease_ns
        if not (dead or stuck):
            return
        advanced = self._fadd(config.word_off(lock, _W_LOCK), 1)
        if advanced != serving:
            # Raced a genuine release between read and advance: undo is
            # impossible (counters only go up), but the turn we consumed
            # belongs to a holder that just started — this cannot happen
            # for a dead holder, so treat it as a harness bug loudly.
            raise AssertionError(
                f"janitor: serving moved {advanced - serving} turns "
                f"under the sweep of lock {lock}")
        why = f"{'conn lost' if dead else 'serving stuck'} of c{idx}"
        self.harness.note_reclaim(lock, by="janitor", why=why)
        nxt = serving + 1
        waiter = self._read_word(config.ring_off(lock, nxt))
        if waiter:
            self._write_word(config.grant_off(lock, waiter - 1), nxt + 1)


class DLMHarness:
    """Drives one :class:`DLMConfig` to a :class:`DLMReport`.

    Clients (and the lock server / janitor) are cooperative step
    machines round-robined on one simulated clock — deterministic
    interleaving, seeded chaos, and a kill at any ``dlm.*`` crash point
    unwinds through :class:`~repro.errors.ProcessKilled` exactly like a
    fatal signal mid-syscall.
    """

    def __init__(self, config: DLMConfig) -> None:
        self.config = config
        self.report = DLMReport(design=config.design)
        self.cluster = Cluster(config.n_machines, backend=config.backend,
                               num_frames=config.num_frames,
                               seed=config.seed)
        self.clock = self.cluster.clock
        self.cluster.obs.enable()
        self.sanitizer = (self.cluster.arm_sanitizer(strict=True)
                          if config.sanitize else None)
        self.lockmem = _LockMem(self.cluster[0], config)
        self.oracle = LockOracle(config)
        self.clients: list[LockClient] = []
        for idx in range(config.n_clients):
            machine = self.cluster[1 + idx % (config.n_machines - 1)]
            client = LockClient(self, idx, machine)
            self.clients.append(client)
            self.oracle.alive.add(client.name)
        self.server = (_LockServer(self)
                       if config.design == "server" else None)
        self.janitor = (_Janitor(self)
                        if config.design != "server" and config.janitor
                        else None)
        # Chaos armed after setup so faults hit the protocol, not pool
        # construction.
        self.plan: FaultPlan | None = None
        if (config.crash_point is not None or config.loss_rate
                or config.duplicate_rate):
            self.plan = FaultPlan(seed=config.seed,
                                  loss_rate=config.loss_rate,
                                  duplicate_rate=config.duplicate_rate,
                                  crash_point=config.crash_point)
            self.cluster.inject_faults(self.plan)

    # -- reclaim attribution --------------------------------------------------

    def note_reclaim(self, lock: int, *, by: str, why: str = "") -> None:
        """One forced reclaim happened: oracle check, trace, counters."""
        self.oracle.on_reclaim(lock, by)
        report = self.report
        report.reclaims += 1
        report.reclaims_by[by] = report.reclaims_by.get(by, 0) + 1
        self.cluster.trace.emit("dlm_reclaim", design=self.config.design,
                                lock=lock, by=by, why=why)
        self.cluster.obs.inc("workload.dlm.reclaims")
        self.cluster.obs.inc(f"workload.dlm.reclaims.{by}")

    # -- failure paths --------------------------------------------------------

    def _on_crash(self, client: LockClient) -> None:
        client.alive = False
        self.report.crashes += 1
        self.oracle.on_crash(client.name, self.clock.now_ns,
                             client.holding)
        self.cluster.obs.inc("workload.dlm.crashes")

    def _on_conn_failure(self, client: LockClient,
                         exc: ViaError) -> None:
        """Wire chaos broke the client's connection: it can't make
        progress, so it exits cleanly (the death signal every design
        watches for) and the oracle treats it like a crash."""
        client.alive = False
        self.report.conn_failures += 1
        self.report.notes.append(f"{client.name}: {exc}")
        kernel = client.machine.kernel
        if any(t.pid == client.task.pid for t in kernel.tasks):
            kernel.exit_task(client.task)
        self.oracle.on_crash(client.name, self.clock.now_ns,
                             client.holding)

    # -- run ------------------------------------------------------------------

    def run(self) -> DLMReport:
        """Drive the workload to completion and return the report."""
        config = self.config
        report = self.report
        steps = 0
        while (any(c.alive and not c.done for c in self.clients)
               and steps < config.max_steps):
            steps += 1
            for client in self.clients:
                if not client.alive or client.done:
                    continue
                try:
                    client.step()
                except ProcessKilled:
                    self._on_crash(client)
                except ViaError as exc:
                    self._on_conn_failure(client, exc)
            if self.server is not None:
                self.server.step()
            if self.janitor is not None:
                self.janitor.step()
        report.steps = steps
        stuck = [c.name for c in self.clients if c.alive and not c.done]
        self._quiesce()
        data_final: dict[int, int] = {}
        for lock in range(config.n_locks):
            data_final[lock] = self.lockmem.read_word(
                config.word_off(lock, _W_DATA))
        report.data_final = data_final
        report.data_expected = dict(self.oracle.increments)
        self.oracle.finish(data_final, stuck)
        report.recovery_ns = list(self.oracle.recovery_ns)
        report.max_bypass = self.oracle.max_bypass
        report.violations = list(self.oracle.violations)
        report.sim_ns = self.clock.now_ns
        self._teardown_and_audit()
        return report

    # -- quiesce / audit ------------------------------------------------------

    def _locks_free(self) -> bool:
        config = self.config
        if self.server is not None:
            return (not self.server.grants
                    and not any(self.server.queues.values()))
        for lock in range(config.n_locks):
            if config.design == "spin":
                if self.lockmem.read_word(
                        config.word_off(lock, _W_LOCK)):
                    return False
            else:
                serving = self.lockmem.read_word(
                    config.word_off(lock, _W_LOCK))
                ticket = self.lockmem.read_word(
                    config.word_off(lock, _W_TICKET))
                if serving < ticket:
                    return False
        return True

    def _quiesce(self) -> None:
        """Chaos off, then let the reclaim machinery (server or
        janitor, plus lease expiry) drain every lock a corpse still
        holds — survivors are gone, so only forced reclaim can free
        them."""
        self.cluster.inject_faults(None)
        if (self.janitor is None and self.server is None
                and not self._locks_free()):
            # Ran janitor-less (pure lease-expiry recovery) and the last
            # crash left a lock held with no waiter to reclaim it: the
            # operator's cleanup pass is a janitor started late.
            self.janitor = _Janitor(self)
        rounds = 0
        while not self._locks_free() and rounds < 200:
            rounds += 1
            if self.server is not None:
                self.server.step()
            if self.janitor is not None:
                self.janitor.step()
            self.clock.charge(self.config.lease_ns // 8, "dlm_quiesce")
        if not self._locks_free():
            self.report.violations.append(
                "quiesce: locks still held after 200 reclaim rounds")

    def _teardown_and_audit(self) -> None:
        report = self.report
        for client in self.clients:
            kernel = client.machine.kernel
            if any(t.pid == client.task.pid for t in kernel.tasks):
                kernel.exit_task(client.task)
        m0 = self.cluster[0]
        if self.janitor is not None:
            m0.kernel.exit_task(self.janitor.task)
        m0.kernel.exit_task(self.lockmem.task)
        for machine in self.cluster.machines:
            reaper = machine.start_reaper()
            scan = reaper.scan()
            report.reaper_post_reclaimed += scan.reclaimed_total
            leaks = audit_pin_leaks(machine.kernel, machine.agent)
            report.leaked_pins += len(leaks)
            if leaks:
                report.notes.append(
                    f"{machine.name}: leaked pins {leaks[:4]}")
            stale = audit_tpt_consistency(machine.agent)
            if stale:
                report.notes.append(
                    f"{machine.name}: stale TPT entries {stale[:4]}")
            audit_kernel_invariants(machine.kernel)
        if self.sanitizer is not None:
            self.sanitizer.disarm()
            report.sanitizer_violations = len(self.sanitizer.violations)


def run_dlm(config: DLMConfig | None = None) -> DLMReport:
    """Run one DLM workload; returns its :class:`DLMReport`.

    A clean run has ``violations == []``, ``leaked_pins == 0``,
    ``reaper_post_reclaimed == 0``, and the protected words equal to the
    oracle's increment counts — the tests and the E19 benchmark assert
    exactly that.
    """
    return DLMHarness(config if config is not None else DLMConfig()).run()

