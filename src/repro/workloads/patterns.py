"""Message-traffic patterns for the benchmarks.

* :func:`size_sweep` — the NetPIPE-style powers-of-two size ladder every
  bandwidth figure in the companion papers uses;
* :func:`buffer_reuse_trace` — a synthetic MPI application trace: a pool
  of buffers, some reused hot (persistent-communication style), some
  cold, to drive the registration cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.physmem import PAGE_SIZE
from repro.sim.rng import make_rng


@dataclass(frozen=True)
class SweepPoint:
    """One point of a size sweep."""

    nbytes: int
    repeats: int


def size_sweep(min_bytes: int = 64, max_bytes: int = 4 * 1024 * 1024,
               repeats_small: int = 5, repeats_large: int = 2
               ) -> list[SweepPoint]:
    """Powers of two from ``min_bytes`` to ``max_bytes`` with more
    repeats at the small end (where per-message noise dominates)."""
    points: list[SweepPoint] = []
    n = min_bytes
    while n <= max_bytes:
        repeats = repeats_small if n <= 64 * 1024 else repeats_large
        points.append(SweepPoint(n, repeats))
        n *= 2
    return points


@dataclass(frozen=True)
class TraceOp:
    """One operation of a buffer-reuse trace."""

    buffer_index: int
    offset: int       #: byte offset inside the buffer
    nbytes: int


def buffer_reuse_trace(num_buffers: int = 8,
                       buffer_pages: int = 16,
                       operations: int = 200,
                       hot_fraction: float = 0.25,
                       hot_probability: float = 0.8,
                       seed: int = 0) -> list[TraceOp]:
    """A synthetic application trace over a pool of buffers.

    ``hot_fraction`` of the buffers receive ``hot_probability`` of the
    traffic — the locality a registration cache exploits.  Sizes and
    offsets are page-aligned sub-ranges of the chosen buffer.
    """
    rng = make_rng(seed)
    n_hot = max(1, int(num_buffers * hot_fraction))
    ops: list[TraceOp] = []
    for _ in range(operations):
        if rng.random() < hot_probability:
            buf = int(rng.integers(0, n_hot))
        else:
            buf = int(rng.integers(n_hot, num_buffers))
        pages = int(rng.integers(1, buffer_pages + 1))
        start_page = int(rng.integers(0, buffer_pages - pages + 1))
        ops.append(TraceOp(buffer_index=buf,
                           offset=start_page * PAGE_SIZE,
                           nbytes=pages * PAGE_SIZE))
    return ops
