"""The *allocator* process of the paper's experiment (step 3).

"Now we start another allocator process that allocates as much memory as
possible forcing a large amount of pages to be swapped out."

"Due to the demand paging mechanism it is necessary to write to the
allocated pages ... and really consume physical memory" — so the hog
*touches* everything it allocates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hw.physmem import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


class MemoryHog:
    """A task that consumes physical memory on demand."""

    def __init__(self, kernel: "Kernel", name: str = "allocator") -> None:
        self.kernel = kernel
        self.task: "Task" = kernel.create_task(name=name)
        self._regions: list[tuple[int, int]] = []   # (va, npages)
        self.pages_touched = 0

    def grow(self, npages: int) -> int:
        """Allocate and touch ``npages``; returns pages actually touched
        (stops early only on true OOM, which reclaim normally prevents)."""
        va = self.task.mmap(npages, name="hog")
        self._regions.append((va, npages))
        touched = 0
        for i in range(npages):
            self.task.write(va + i * PAGE_SIZE, b"HOG-PAGE")
            touched += 1
        self.pages_touched += touched
        return touched

    def churn(self, rounds: int = 1) -> None:
        """Re-touch everything, round-robin — sustained pressure that
        keeps faulting pages back in and pushing others out."""
        for _ in range(rounds):
            for va, npages in self._regions:
                for i in range(npages):
                    self.task.write(va + i * PAGE_SIZE + 8, b"!")

    def release(self) -> None:
        """Free all hog memory."""
        for va, npages in self._regions:
            self.task.munmap(va, npages)
        self._regions.clear()


def apply_memory_pressure(kernel: "Kernel", factor: float = 2.0,
                          name: str = "allocator") -> MemoryHog:
    """Convenience: one hog that touches ``factor ×`` installed RAM,
    guaranteeing reclaim ran.  Returns the hog (call ``release()`` to
    lift the pressure)."""
    hog = MemoryHog(kernel, name=name)
    hog.grow(int(kernel.pagemap.num_frames * factor))
    return hog
