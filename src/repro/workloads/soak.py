"""Multi-tenant churn soak: sim-hours of registration-service abuse.

The tentpole workload for the tenancy layer: N tenants (distinct uids)
share a two-machine cluster, each running one connected endpoint pair,
and a seeded op mix churns them for simulated hours — zero-copy
transfers (which degrade to copy under admission pressure), direct
registrations sampled for latency SLOs, ``munmap`` of still-registered
ranges, process kills (a configurable fraction through the *buggy*
teardown path), and swap pressure from a memory hog — all under a
:class:`~repro.sim.faults.FaultPlan` of wire/DMA chaos with the pin
sanitizer armed strict.

Throughout the run the harness asserts the budget invariants the
service promises: per-tenant pinned pages never exceed the quota, total
pinned pages never exceed the host ceiling, and the service's books
match the driver's registration records.  At the end it quiesces
(clean exits, cache purge, reaper convergence) and requires a
zero-leak final audit.  :class:`SoakReport` carries the SLO percentiles
and admission counters the benchmark folds into BENCH.json.

Simulated hours are cheap: the loop *charges* an exponential
inter-arrival gap to the shared clock between ops, so two sim-hours of
churn is thousands of ops, not billions of ticks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sanitizer import PinSanitizer
from repro.core.audit import (
    audit_kernel_invariants, audit_pin_leaks, audit_tpt_consistency,
)
from repro.errors import AdmissionError, ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.msg.endpoint import Endpoint, connect_endpoints
from repro.msg.protocols import RendezvousZeroCopyProtocol
from repro.sim.faults import FaultPlan
from repro.sim.rng import make_rng
from repro.via.constants import ViState
from repro.via.machine import Cluster
from repro.via.tenancy import audit_tenant_accounting
from repro.workloads.allocator import MemoryHog


@dataclass
class SoakConfig:
    """Knobs of one soak run (all simulated-time; fully seeded)."""

    tenants: int = 8
    sim_seconds: float = 7200.0          #: soak duration (2 sim-hours)
    seed: int = 0
    # -- machine shape --
    num_frames: int = 2048
    swap_slots: int = 16384
    tpt_entries: int = 8192
    # -- budgets --
    tenant_quota_pages: int = 96         #: RLIMIT_MEMLOCK-style, per uid
    host_ceiling_pages: int = 400        #: physical-pin ceiling, per host
    cache_max_pages: int = 48            #: per-endpoint regcache budget
    # -- endpoints / buffers --
    bounce_slots: int = 8
    buffer_pages: int = 24               #: per-tenant transfer buffer
    max_live_scratch: int = 2            #: direct registrations kept live
    # -- op mix (weights, normalized) --
    w_transfer: float = 0.62
    w_register: float = 0.18
    w_munmap: float = 0.08
    w_kill: float = 0.04
    w_pressure: float = 0.08
    dirty_kill_fraction: float = 0.4     #: kills through buggy teardown
    # -- pacing --
    mean_gap_ns: int = 800_000_000       #: mean inter-op idle gap
    reaper_interval_ns: int = 2_000_000_000
    hog_max_pages: int = 512
    # -- chaos --
    loss_rate: float = 0.02
    duplicate_rate: float = 0.01
    corrupt_rate: float = 0.005
    delay_rate: float = 0.02
    dma_fail_rate: float = 0.001
    # -- consistency sampling --
    audit_every_ops: int = 200           #: full invariant audit cadence

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError(f"need at least one tenant, got {self.tenants}")
        if self.sim_seconds <= 0:
            raise ValueError(
                f"sim_seconds must be > 0, got {self.sim_seconds}")
        weights = (self.w_transfer + self.w_register + self.w_munmap
                   + self.w_kill + self.w_pressure)
        if weights <= 0:
            raise ValueError("op-mix weights sum to zero")


@dataclass
class SoakReport:
    """What a soak run did, observed, and promised."""

    sim_ns: int = 0
    ops: dict[str, int] = field(default_factory=dict)
    transfers_ok: int = 0
    transfers_degraded: int = 0
    transfers_failed: int = 0            #: honest ViaError (then rebuilt)
    endpoint_rebuilds: int = 0
    kills_clean: int = 0
    kills_dirty: int = 0
    respawns: int = 0
    respawns_denied: int = 0             #: respawn refused by admission
    registrations_sampled: int = 0
    registrations_denied: int = 0
    reg_latency_ns: list[int] = field(default_factory=list)
    transfer_ns: list[int] = field(default_factory=list)
    max_host_pinned_pages: int = 0
    max_tenant_pinned_pages: int = 0
    admission: dict = field(default_factory=dict)   #: per-machine snapshot
    reaper_reclaimed: int = 0
    reaper_by_uid: dict[int, int] = field(default_factory=dict)
    sanitizer_violations: int = 0
    leaked_pins: int = 0                 #: at final audit (must be 0)
    notes: list[str] = field(default_factory=list)

    @staticmethod
    def _percentile(values: list[int], q: float) -> int:
        if not values:
            return 0
        ordered = sorted(values)
        index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
        return int(ordered[index])

    def latency_slo(self) -> dict:
        """p50/p90/p99 of sampled registration latency and transfer
        time, in simulated ns — the SLO block BENCH.json publishes."""
        return {
            "register_p50_ns": self._percentile(self.reg_latency_ns, 0.50),
            "register_p90_ns": self._percentile(self.reg_latency_ns, 0.90),
            "register_p99_ns": self._percentile(self.reg_latency_ns, 0.99),
            "transfer_p50_ns": self._percentile(self.transfer_ns, 0.50),
            "transfer_p99_ns": self._percentile(self.transfer_ns, 0.99),
            "register_samples": len(self.reg_latency_ns),
            "transfer_samples": len(self.transfer_ns),
        }


class _Tenant:
    """One tenant: a sender rank on m0, a receiver rank on m1."""

    def __init__(self, uid: int, index: int) -> None:
        self.uid = uid
        self.index = index
        self.sender: Endpoint | None = None
        self.receiver: Endpoint | None = None
        self.src_va = 0
        self.dst_va = 0
        self.scratch: list[tuple[int, int, object]] = []  # (va, npages, reg)
        self.down = False


class SoakHarness:
    """Drives one :class:`SoakConfig` to a :class:`SoakReport`."""

    def __init__(self, config: SoakConfig) -> None:
        self.config = config
        self.report = SoakReport()
        self.rng = make_rng(config.seed)
        self.cluster = Cluster(
            2, num_frames=config.num_frames, swap_slots=config.swap_slots,
            seed=config.seed, backend="kiobuf",
            tpt_entries=config.tpt_entries,
            tenant_quota_pages=config.tenant_quota_pages,
            host_pin_ceiling_pages=config.host_ceiling_pages)
        self.cluster.obs.enable()
        self.reapers = self.cluster.start_reapers(
            interval_ns=config.reaper_interval_ns)
        self.sanitizer: PinSanitizer = self.cluster.arm_sanitizer(
            strict=True)
        self.protocol = RendezvousZeroCopyProtocol(use_cache=True)
        self.tenants = [_Tenant(uid=2000 + i, index=i)
                        for i in range(config.tenants)]
        for tenant in self.tenants:
            self._spawn_pair(tenant)
            if tenant.down:
                raise AssertionError(
                    f"soak setup: tenant uid {tenant.uid} did not fit "
                    f"its quota — shrink endpoints or raise budgets")
        # Chaos armed after setup, like the chaos suite: faults hit the
        # churn, not pool construction.
        self.plan = FaultPlan(
            seed=config.seed, loss_rate=config.loss_rate,
            duplicate_rate=config.duplicate_rate,
            corrupt_rate=config.corrupt_rate,
            delay_rate=config.delay_rate,
            dma_fail_rate=config.dma_fail_rate)
        self.cluster.inject_faults(self.plan)
        self.hogs: dict[int, MemoryHog] = {}
        self.hog_pages: dict[int, int] = {}

    # ------------------------------------------------------------- lifecycle

    def _spawn_pair(self, tenant: _Tenant) -> None:
        """(Re)build a tenant's endpoint pair; marks the tenant down
        (instead of raising) when admission refuses the pool."""
        config = self.config
        made: list[Endpoint] = []
        try:
            for machine in (self.cluster[0], self.cluster[1]):
                task = machine.spawn(f"t{tenant.uid}", uid=tenant.uid)
                made.append(Endpoint(machine, task,
                                     bounce_slots=config.bounce_slots,
                                     cache_max_pages=config.cache_max_pages))
        except AdmissionError:
            # Not enough budget to come back up yet (a predecessor's
            # debris is still being reaped): tear down whatever half
            # got built and retry on a later visit.
            for ep in made:
                ep.machine.kernel.exit_task(ep.task)
            for machine in self.cluster.machines:
                machine.tenants.purge_dead_caches()
            tenant.down = True
            self.report.respawns_denied += 1
            return
        sender, receiver = made
        connect_endpoints(self.cluster, sender, receiver)
        pages = config.buffer_pages
        tenant.src_va = sender.task.mmap(pages, name="soak_src")
        sender.task.touch_pages(tenant.src_va, pages)
        tenant.dst_va = receiver.task.mmap(pages, name="soak_dst")
        receiver.task.touch_pages(tenant.dst_va, pages)
        tenant.sender, tenant.receiver = sender, receiver
        tenant.scratch = []
        tenant.down = False

    def _teardown_pair(self, tenant: _Tenant, *,
                       kill_side: int | None = None,
                       dirty: bool = False) -> None:
        """End both ranks — one possibly through the buggy kill path —
        and purge the dead caches so the budget is freed for respawn."""
        pair = (tenant.sender, tenant.receiver)
        for side, endpoint in enumerate(pair):
            if endpoint is None:
                continue
            kernel = endpoint.machine.kernel
            if side == kill_side:
                kernel.kill(endpoint.task.pid, cleanup=not dirty)
                if dirty:
                    self.report.kills_dirty += 1
                else:
                    self.report.kills_clean += 1
            elif any(t.pid == endpoint.task.pid for t in kernel.tasks):
                kernel.exit_task(endpoint.task)
        tenant.sender = tenant.receiver = None
        tenant.scratch = []
        tenant.down = True
        for machine in self.cluster.machines:
            machine.tenants.purge_dead_caches()

    # ------------------------------------------------------------------- ops

    def _op_transfer(self, tenant: _Tenant) -> None:
        sender, receiver = tenant.sender, tenant.receiver
        assert sender is not None and receiver is not None
        nbytes = int(self.rng.integers(
            1, self.config.buffer_pages * PAGE_SIZE + 1))
        payload = self.rng.integers(0, 256, min(nbytes, 512),
                                    dtype="uint8").tobytes()
        sender.task.write(tenant.src_va, payload)
        try:
            result = self.protocol.transfer(
                sender, receiver, tenant.src_va, tenant.dst_va, nbytes)
        except ViaError:
            # Honest failure under chaos (conn lost, NIC error): the VI
            # pair is dead — recycle the tenant through a clean restart.
            self.report.transfers_failed += 1
            self._teardown_pair(tenant)
            self.report.endpoint_rebuilds += 1
            self._spawn_pair(tenant)
            return
        if result.ok:
            self.report.transfers_ok += 1
            self.report.transfer_ns.append(result.sim_ns)
        else:
            self.report.transfers_failed += 1
        if result.degraded:
            self.report.transfers_degraded += 1
        if (sender.vi.state is ViState.ERROR
                or receiver.vi.state is ViState.ERROR):
            self._teardown_pair(tenant)
            self.report.endpoint_rebuilds += 1
            self._spawn_pair(tenant)

    def _op_register(self, tenant: _Tenant) -> None:
        """Direct register/deregister churn, sampled for the SLO."""
        sender = tenant.sender
        assert sender is not None
        npages = int(self.rng.integers(1, 9))
        va = sender.task.mmap(npages, name="soak_scratch")
        sender.task.touch_pages(va, npages)
        clock = self.cluster.clock
        try:
            with clock.measure() as span:
                reg = sender.ua.register_mem(va, npages * PAGE_SIZE)
        except AdmissionError:
            self.report.registrations_denied += 1
            sender.task.munmap(va, npages)
            return
        self.report.registrations_sampled += 1
        self.report.reg_latency_ns.append(span.elapsed_ns)
        tenant.scratch.append((va, npages, reg))
        while len(tenant.scratch) > self.config.max_live_scratch:
            old_va, old_npages, old_reg = tenant.scratch.pop(0)
            sender.ua.deregister_mem(old_reg)
            sender.task.munmap(old_va, old_npages)

    def _op_munmap(self, tenant: _Tenant) -> None:
        """munmap a still-registered range: the driver's munmap hook
        must force-deregister it (no stale TPT entries, budget credited)."""
        if not tenant.scratch:
            self._op_register(tenant)
            return
        sender = tenant.sender
        assert sender is not None
        index = int(self.rng.integers(0, len(tenant.scratch)))
        va, npages, _reg = tenant.scratch.pop(index)
        sender.task.munmap(va, npages)

    def _op_kill(self, tenant: _Tenant) -> None:
        side = int(self.rng.integers(0, 2))
        dirty = float(self.rng.random()) < self.config.dirty_kill_fraction
        self._teardown_pair(tenant, kill_side=side, dirty=dirty)
        self.report.respawns += 1
        self._spawn_pair(tenant)

    def _op_pressure(self) -> None:
        machine = self.cluster.machines[
            int(self.rng.integers(0, len(self.cluster.machines)))]
        hog = self.hogs.get(id(machine))
        if hog is None:
            hog = self.hogs[id(machine)] = MemoryHog(
                machine.kernel, name=f"hog.{machine.name}")
        held = self.hog_pages.get(id(machine), 0)
        if held and float(self.rng.random()) < 0.3:
            hog.release()
            self.hog_pages[id(machine)] = 0
            return
        grow = min(int(self.rng.integers(32, 129)),
                   self.config.hog_max_pages - held)
        if grow <= 0:
            hog.churn()
        else:
            hog.grow(grow)
            self.hog_pages[id(machine)] = held + grow

    # ------------------------------------------------------------ invariants

    def _check_budgets(self, op_index: int) -> None:
        config = self.config
        report = self.report
        for machine in self.cluster.machines:
            service = machine.tenants
            total = service.total_pinned_pages
            report.max_host_pinned_pages = max(
                report.max_host_pinned_pages, total)
            if total > config.host_ceiling_pages:
                raise AssertionError(
                    f"op {op_index}: {machine.name} has {total} pinned "
                    f"pages, over the host ceiling of "
                    f"{config.host_ceiling_pages}")
            for uid, acct in service.accounts.items():
                report.max_tenant_pinned_pages = max(
                    report.max_tenant_pinned_pages, acct.pinned_pages)
                quota = service.quota_of(uid)
                if quota is not None and acct.pinned_pages > quota:
                    raise AssertionError(
                        f"op {op_index}: uid {uid} on {machine.name} has "
                        f"{acct.pinned_pages} pinned pages, over its "
                        f"quota of {quota}")

    def _deep_audit(self, op_index: int) -> None:
        for machine in self.cluster.machines:
            problems = audit_tenant_accounting(machine.agent)
            if problems:
                raise AssertionError(
                    f"op {op_index}: tenant accounting diverged on "
                    f"{machine.name}: " + "; ".join(problems))
            audit_kernel_invariants(machine.kernel)

    # ------------------------------------------------------------------ run

    def run(self) -> SoakReport:
        """Churn until the configured sim-duration elapses, then
        quiesce and final-audit; returns the filled report."""
        config = self.config
        report = self.report
        clock = self.cluster.clock
        end_ns = clock.now_ns + int(config.sim_seconds * 1e9)
        weights = [config.w_transfer, config.w_register, config.w_munmap,
                   config.w_kill, config.w_pressure]
        total_weight = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total_weight
            cumulative.append(acc)
        op_names = ("transfer", "register", "munmap", "kill", "pressure")
        op_index = 0
        while clock.now_ns < end_ns:
            clock.charge(int(self.rng.exponential(config.mean_gap_ns)) + 1,
                         "soak_idle")
            op_index += 1
            tenant = self.tenants[
                int(self.rng.integers(0, len(self.tenants)))]
            if tenant.down:
                # Budget permitting, the tenant comes back before its op.
                self.report.respawns += 1
                self._spawn_pair(tenant)
                if tenant.down:
                    continue
            roll = float(self.rng.random())
            op = op_names[next(i for i, edge in enumerate(cumulative)
                               if roll <= edge)]
            report.ops[op] = report.ops.get(op, 0) + 1
            if op == "transfer":
                self._op_transfer(tenant)
            elif op == "register":
                self._op_register(tenant)
            elif op == "munmap":
                self._op_munmap(tenant)
            elif op == "kill":
                self._op_kill(tenant)
            else:
                self._op_pressure()
            self._check_budgets(op_index)
            if op_index % config.audit_every_ops == 0:
                self._deep_audit(op_index)
        report.sim_ns = clock.now_ns
        self._quiesce()
        self._final_audit()
        return report

    # -------------------------------------------------------------- teardown

    def _quiesce(self) -> None:
        """Clean exits, hog release, cache purge, reaper convergence."""
        # Chaos off for teardown: quiesce must converge, and the
        # invariants it checks are about the *system*, not the wire.
        self.cluster.inject_faults(None)
        for tenant in self.tenants:
            self._teardown_pair(tenant)
        for hog in self.hogs.values():
            hog.release()
            hog.kernel.exit_task(hog.task)
        clock = self.cluster.clock
        quiet_rounds = 0
        for _ in range(64):
            busy = False
            for reaper in self.reapers:
                scan = reaper.scan()
                if scan.reclaimed_total or scan.failures or scan.deferred:
                    busy = True
            # Step past the backoff windows of anything deferred.
            clock.charge(self.config.reaper_interval_ns, "soak_quiesce")
            quiet_rounds = 0 if busy else quiet_rounds + 1
            if quiet_rounds >= 2:
                break
        else:
            self.report.notes.append("reaper did not converge in 64 rounds")

    def _final_audit(self) -> None:
        report = self.report
        for machine in self.cluster.machines:
            kernel, agent = machine.kernel, machine.agent
            leaks = audit_pin_leaks(kernel, agent, count_kiobufs=True)
            report.leaked_pins += len(leaks)
            if leaks:
                report.notes.append(
                    f"{machine.name}: {len(leaks)} leaked pins at final "
                    f"audit: {leaks[:4]}")
            audit_kernel_invariants(kernel)
            stale = audit_tpt_consistency(agent)
            if stale:
                report.notes.append(
                    f"{machine.name}: stale TPT entries: {stale[:4]}")
            if agent.registrations:
                report.notes.append(
                    f"{machine.name}: {len(agent.registrations)} "
                    f"registrations outlived quiesce")
            problems = audit_tenant_accounting(agent)
            if problems:
                report.notes.append(
                    f"{machine.name}: accounting: {problems}")
            service = machine.tenants
            report.admission[machine.name] = service.snapshot()
        # Lifetime reaper totals (quiesce scans alone would miss what
        # the daemon already reclaimed mid-run on clock ticks).
        obs = self.cluster.obs
        if obs.enabled:
            report.reaper_reclaimed = obs.metrics.counter(
                "kernel.reaper.reclaimed").value
            for tenant in self.tenants:
                reclaimed = obs.metrics.counter(
                    f"kernel.reaper.tenant.{tenant.uid}.reclaimed").value
                if reclaimed:
                    report.reaper_by_uid[tenant.uid] = reclaimed
        self.sanitizer.disarm()
        report.sanitizer_violations = len(self.sanitizer.violations)


def run_soak(config: SoakConfig | None = None) -> SoakReport:
    """Run one churn soak; returns its :class:`SoakReport`.

    Raises :class:`AssertionError` the moment a budget invariant breaks
    and :class:`~repro.errors.SanitizerViolation` at the first ordering
    violation (the sanitizer is armed strict) — a completed run *is* the
    acceptance signal, and the report carries the SLO numbers.
    """
    return SoakHarness(config if config is not None else SoakConfig()).run()
