"""Workload generators: memory hogs, message-traffic patterns, churn
soaks, and the distributed lock manager."""

from repro.workloads.allocator import MemoryHog, apply_memory_pressure
from repro.workloads.dlm import (
    DESIGNS, DLMConfig, DLMHarness, DLMReport, LockClient, LockOracle,
    run_dlm,
)
from repro.workloads.patterns import (
    buffer_reuse_trace, size_sweep, SweepPoint,
)
from repro.workloads.soak import SoakConfig, SoakReport, run_soak

__all__ = [
    "MemoryHog", "apply_memory_pressure", "buffer_reuse_trace",
    "size_sweep", "SweepPoint", "SoakConfig", "SoakReport", "run_soak",
    "DESIGNS", "DLMConfig", "DLMHarness", "DLMReport", "LockClient",
    "LockOracle", "run_dlm",
]
