"""Workload generators: memory hogs and message-traffic patterns."""

from repro.workloads.allocator import MemoryHog, apply_memory_pressure
from repro.workloads.patterns import (
    buffer_reuse_trace, size_sweep, SweepPoint,
)
from repro.workloads.soak import SoakConfig, SoakReport, run_soak

__all__ = [
    "MemoryHog", "apply_memory_pressure", "buffer_reuse_trace",
    "size_sweep", "SweepPoint", "SoakConfig", "SoakReport", "run_soak",
]
