"""Consistency audits.

The hardware cannot detect a stale TPT ("the NIC will use wrong memory
addresses for its DMA operations.  Communication fails, the system
stability, however, is not affected") — so the *experimenter* needs an
oracle.  These audits are that oracle: they compare the NIC's recorded
translations against the owning process's live page tables, and check
the kernel's own accounting invariants.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import (
    InvalidArgument, InvariantViolation, PageAccountingError,
)
from repro.hw.physmem import PAGE_SIZE
from repro.via.tpt import INVALID_FRAME

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.via.kernel_agent import KernelAgent


@dataclass(frozen=True)
class StaleEntry:
    """One TPT page entry that no longer matches the owner's mapping."""

    handle: int
    pid: int
    vpn: int
    tpt_frame: int
    actual_frame: int | None    #: None ⇔ page not resident


def audit_tpt_consistency(agent: "KernelAgent") -> list[StaleEntry]:
    """Compare every live registration's recorded frames against the
    owning task's current page table.

    Returns the stale entries (empty ⇔ the NIC and the MMU agree — the
    correctness criterion for a locking mechanism).
    """
    kernel = agent.kernel
    stale: list[StaleEntry] = []
    for reg in agent.registrations.values():
        try:
            task = kernel.find_task(reg.pid)
        except InvalidArgument:
            # Owner exited; the registration is dangling by definition.
            # Only the lookup failure is absorbed — a broad except here
            # would swallow ProcessKilled from a crash point firing
            # inside an audited callback.
            continue
        first_vpn = reg.region.first_vpn
        for i, tpt_frame in enumerate(reg.region.frames):
            if reg.region.odp and tpt_frame == INVALID_FRAME:
                # Not-yet-translated ODP entry: the NIC suspends and
                # fault-services instead of DMAing through it, so it
                # cannot be stale — there is nothing to be stale *from*.
                continue
            vpn = first_vpn + i
            pte = task.page_table.lookup(vpn)
            actual = pte.frame if (pte is not None and pte.present) else None
            if actual != tpt_frame:
                stale.append(StaleEntry(
                    handle=reg.handle, pid=reg.pid, vpn=vpn,
                    tpt_frame=tpt_frame, actual_frame=actual))
    return stale


@dataclass(frozen=True)
class LeakedPin:
    """A frame holding more pins than live registrations explain."""

    frame: int
    pin_count: int
    expected: int


def audit_pin_leaks(kernel: "Kernel", *agents: "KernelAgent",
                    count_kiobufs: bool = False,
                    full_scan: bool = False) -> list[LeakedPin]:
    """Find frames whose pin count exceeds what live registrations
    explain — the leak signature of an error path that dropped a
    registration record without releasing its pin.

    Each live registration of a pin-based backend (the paper's kiobuf
    proposal) holds exactly one pin per page of its range.  Pins held by
    non-VIA users (raw I/O in flight) are accounted the same way only if
    their owner is passed in, so call this at quiesce points: after a
    chaos run has completed or failed every transfer and released its
    buffers, every remaining pin must be explained by a registration
    still recorded in some agent.  Backends that do not pin
    (refcount-only) vacuously pass.

    ``count_kiobufs=True`` additionally accepts pins held by live
    (mapped) kiobufs — required when sampling at arbitrary points (the
    invariant watchdog's cadence), where a registration may legimately
    be halfway built: pinned by its kiobuf but not yet recorded.

    Only frames the page map's pinned set names can leak (a frame with
    zero pins never exceeds its expectation), so the audit is
    O(pinned + registered), not O(frames); ``full_scan=True`` keeps the
    legacy whole-table walk for the E18 before/after arms.
    """
    expected: Counter[int] = Counter()
    for agent in agents:
        for reg in agent.registrations.values():
            for frame in reg.region.frames:
                expected[frame] += 1
    if count_kiobufs:
        for kio in kernel.kiobufs.values():
            if kio.mapped:
                for frame in kio.frames:
                    expected[frame] += 1
    leaks: list[LeakedPin] = []
    if full_scan:
        for pd in kernel.pagemap:
            if pd.pin_count > expected.get(pd.frame, 0):
                leaks.append(LeakedPin(frame=pd.frame,
                                       pin_count=pd.pin_count,
                                       expected=expected.get(pd.frame, 0)))
        return leaks
    pin_counts = kernel.pagemap.table.pin_counts
    for frame in kernel.pagemap.pinned_frames():
        if pin_counts[frame] > expected.get(frame, 0):
            leaks.append(LeakedPin(frame=frame,
                                   pin_count=pin_counts[frame],
                                   expected=expected.get(frame, 0)))
    return leaks


def audit_kernel_invariants(kernel: "Kernel", full_scan: bool = False,
                            ) -> None:
    """Raise :class:`~repro.errors.PageAccountingError` if any kernel
    accounting invariant is violated.

    Invariants:

    1. the free list is well-formed (no duplicates, refcount 0),
    2. no present PTE maps a free or reserved-for-kernel frame,
    3. a frame mapped by a present PTE has refcount ≥ 1,
    4. every swap slot is referenced by at most one PTE,
    5. pinned frames are in use (pin without reference is impossible).

    Invariant 5 and the negative-counter check run against the frame
    table's columns and pinned set — an ``array`` ``min()`` plus a walk
    of only the pinned frames — instead of visiting every descriptor;
    ``full_scan=True`` restores the legacy walk (E18 A/B arms).
    """
    kernel.pagemap.check_free_list(full_scan=full_scan)

    slot_owner: dict[int, tuple[int, int]] = {}
    for task in kernel.tasks:
        for vpn in sorted(task.page_table._entries):
            pte = task.page_table.lookup(vpn)
            if pte.present:
                pd = kernel.pagemap.page(pte.frame)
                if pd.count < 1:
                    raise PageAccountingError(
                        f"pid {task.pid} vpn {vpn} maps free frame "
                        f"{pte.frame}")
                if pd.tag == "kernel-image":
                    raise PageAccountingError(
                        f"pid {task.pid} vpn {vpn} maps kernel frame "
                        f"{pte.frame}")
            elif pte.swapped:
                if pte.swap_slot in slot_owner:
                    other = slot_owner[pte.swap_slot]
                    raise PageAccountingError(
                        f"swap slot {pte.swap_slot} referenced by both "
                        f"{other} and {(task.pid, vpn)}")
                slot_owner[pte.swap_slot] = (task.pid, vpn)

    if full_scan:
        for pd in kernel.pagemap:
            if pd.pin_count > 0 and pd.count == 0:
                raise PageAccountingError(
                    f"frame {pd.frame} pinned ({pd.pin_count}) but free")
            if pd.pin_count < 0 or pd.count < 0:
                raise PageAccountingError(
                    f"frame {pd.frame} has negative counters")
        return
    table = kernel.pagemap.table
    for frame in table.pinned:
        if table.counts[frame] == 0:
            raise PageAccountingError(
                f"frame {frame} pinned ({table.pin_counts[frame]}) "
                f"but free")
    if table.min_count() < 0 or table.min_pin_count() < 0:
        for pd in kernel.pagemap:
            if pd.pin_count < 0 or pd.count < 0:
                raise PageAccountingError(
                    f"frame {pd.frame} has negative counters")


class InvariantWatchdog:
    """``core.audit`` as a continuously-running checker.

    Armed on a :class:`~repro.via.machine.Machine` or
    :class:`~repro.via.machine.Cluster` (or a raw ``(kernel, agents)``
    pair), the watchdog samples all three audits on a sim-clock cadence
    — by default a self-rescheduling calendar event per clock, like the
    reaper; ``use_events=False`` keeps the legacy per-charge subscriber
    for the E18 A/B arms — and at every task-teardown boundary.  A
    failed audit raises :class:`~repro.errors.InvariantViolation`
    carrying a structured snapshot, so the violation surfaces at the
    operation that caused it instead of at the end of the run.

    Cadence catch-up follows the calendar's fire-once semantics: a
    charge that jumps several intervals yields one sample, and the next
    deadline realigns from the current time.
    """

    def __init__(self, *, interval_ns: int = 1_000_000,
                 check_kernel: bool = True,
                 check_tpt: bool = True,
                 check_pins: bool = True,
                 use_events: bool = True,
                 full_scan: bool = False) -> None:
        self.interval_ns = interval_ns
        self.check_kernel = check_kernel
        self.check_tpt = check_tpt
        self.check_pins = check_pins
        self.use_events = use_events
        #: run the audits' legacy whole-table walks (E18 A/B arms)
        self.full_scan = full_scan
        self.checks_run = 0
        self.violations = 0
        self.armed = False
        self._pairs: list[tuple] = []     #: (kernel, [agents])
        self._next_due_ns = 0
        self._in_check = False
        self._teardowns: list[tuple] = []  #: (hook_list, hook) to undo
        self._unsubscribes: list[Callable[[], None]] = []
        #: one mutable cell per cadence chain holding its pending event
        self._cadences: list[list] = []

    # --------------------------------------------------------------- arming

    def arm(self, target) -> "InvariantWatchdog":
        """Arm on a Machine, a Cluster, or a ``(kernel, agents)`` pair."""
        from repro.via.machine import Cluster, Machine
        if isinstance(target, Cluster):
            pairs = [(m.kernel, [m.agent]) for m in target.machines]
        elif isinstance(target, Machine):
            pairs = [(target.kernel, [target.agent])]
        else:
            kernel, agents = target
            pairs = [(kernel, list(agents))]
        self._pairs.extend(pairs)
        self.armed = True
        clocks = {id(k.clock): k.clock for k, _ in pairs}
        for clock in clocks.values():
            if self.use_events:
                # First cadence sample is one interval out, not
                # immediately; each chain reschedules itself.
                self._start_cadence(clock)
            else:
                self._next_due_ns = max(self._next_due_ns,
                                        clock.now_ns + self.interval_ns)
                self._unsubscribes.append(clock.subscribe(  # repro-lint: allow(clock-subscribe)
                    self._on_tick))
        for kernel, _ in pairs:
            hook = self._make_teardown_hook()
            kernel.post_exit_hooks.append(hook)
            self._teardowns.append((kernel.post_exit_hooks, hook))
        return self

    def _start_cadence(self, clock) -> None:
        cell: list = [None]

        def fire(now_ns: int) -> None:
            if not self.armed:
                return
            # Reschedule before checking: a violation raised out of the
            # check must not silence future samples.  Fire-once
            # catch-up — the next deadline realigns from now.
            cell[0] = clock.schedule_after(
                self.interval_ns, fire, name="watchdog.cadence")
            self.check(boundary="cadence")

        cell[0] = clock.schedule_after(
            self.interval_ns, fire, name="watchdog.cadence")
        self._cadences.append(cell)

    def disarm(self) -> None:
        """Stop all sampling."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
        for cell in self._cadences:
            if cell[0] is not None:
                cell[0].cancel()
        self._cadences.clear()
        for hook_list, hook in self._teardowns:
            if hook in hook_list:
                hook_list.remove(hook)
        self._teardowns.clear()
        self.armed = False

    def _make_teardown_hook(self):
        def on_teardown(task) -> None:
            self.check(boundary=f"teardown pid {task.pid}")
        return on_teardown

    def _on_tick(self, now_ns: int) -> None:
        if not self.armed or now_ns < self._next_due_ns:
            return
        self._next_due_ns = now_ns + self.interval_ns
        self.check(boundary="cadence")

    # -------------------------------------------------------------- checking

    def check(self, boundary: str = "manual") -> None:
        """Run every enabled audit over every armed pair now."""
        if self._in_check:
            return
        self._in_check = True
        try:
            for kernel, agents in self._pairs:
                self._check_one(kernel, agents, boundary)
        finally:
            self._in_check = False

    def _check_one(self, kernel, agents, boundary: str) -> None:
        self.checks_run += 1
        if self.check_kernel:
            try:
                audit_kernel_invariants(kernel, full_scan=self.full_scan)
            except PageAccountingError as exc:
                raise self._violation(
                    "kernel", kernel, boundary, str(exc)) from exc
        for agent in agents:
            if self.check_tpt:
                stale = audit_tpt_consistency(agent)
                if stale:
                    raise self._violation(
                        "stale_tpt", kernel, boundary,
                        f"{len(stale)} stale TPT entries",
                        stale=[asdict(s) for s in stale])
        if self.check_pins:
            # count_kiobufs: a cadence sample can land mid-registration,
            # where the pin exists but the record does not yet.
            leaks = audit_pin_leaks(kernel, *agents, count_kiobufs=True,
                                    full_scan=self.full_scan)
            if leaks:
                raise self._violation(
                    "pin_leak", kernel, boundary,
                    f"{len(leaks)} leaked pins",
                    leaks=[asdict(leak) for leak in leaks])

    def _violation(self, kind: str, kernel, boundary: str,
                   detail: str, **extra) -> InvariantViolation:
        self.violations += 1
        snapshot = {
            "kind": kind,
            "boundary": boundary,
            "now_ns": kernel.clock.now_ns,
            "checks_run": self.checks_run,
            "memory": kernel.memory_stats(),
            # The full metrics/span snapshot: with observability enabled
            # a violation arrives with the quantitative history (swap
            # activity, retransmits, cache churn) attached.
            "metrics": kernel.obs.snapshot(),
            **extra,
        }
        kernel.trace.emit("invariant_violation", violation=kind,
                          boundary=boundary, detail=detail)
        return InvariantViolation(
            f"invariant violation ({kind}) at {boundary}: {detail}",
            kind=kind, snapshot=snapshot)


def frame_ownership_summary(kernel: "Kernel") -> dict[str, int]:
    """Classify every frame for reports: free / kernel / mapped /
    page-cache / orphan / driver-held."""
    summary = {"free": 0, "kernel": 0, "mapped": 0, "page_cache": 0,
               "orphan": 0, "other": 0}
    for pd in kernel.pagemap:
        if pd.count == 0:
            summary["free"] += 1
        elif pd.reserved and pd.tag == "kernel-image":
            summary["kernel"] += 1
        elif pd.in_page_cache:
            summary["page_cache"] += 1
        elif pd.mapping is not None:
            summary["mapped"] += 1
        elif pd.tag == "orphan":
            summary["orphan"] += 1
        else:
            summary["other"] += 1
    return summary


def virt_phys_map(task, va: int, npages: int) -> list[tuple[int, int | None]]:
    """``(vpn, frame-or-None)`` pairs over a range — the probe the
    experiment runs in steps 2 and 6."""
    base_vpn = va // PAGE_SIZE
    out = []
    for i in range(npages):
        pte = task.page_table.lookup(base_vpn + i)
        out.append((base_vpn + i,
                    pte.frame if pte is not None and pte.present else None))
    return out
