"""Consistency audits.

The hardware cannot detect a stale TPT ("the NIC will use wrong memory
addresses for its DMA operations.  Communication fails, the system
stability, however, is not affected") — so the *experimenter* needs an
oracle.  These audits are that oracle: they compare the NIC's recorded
translations against the owning process's live page tables, and check
the kernel's own accounting invariants.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import PageAccountingError
from repro.hw.physmem import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.via.kernel_agent import KernelAgent


@dataclass(frozen=True)
class StaleEntry:
    """One TPT page entry that no longer matches the owner's mapping."""

    handle: int
    pid: int
    vpn: int
    tpt_frame: int
    actual_frame: int | None    #: None ⇔ page not resident


def audit_tpt_consistency(agent: "KernelAgent") -> list[StaleEntry]:
    """Compare every live registration's recorded frames against the
    owning task's current page table.

    Returns the stale entries (empty ⇔ the NIC and the MMU agree — the
    correctness criterion for a locking mechanism).
    """
    kernel = agent.kernel
    stale: list[StaleEntry] = []
    for reg in agent.registrations.values():
        try:
            task = kernel.find_task(reg.pid)
        except Exception:
            continue   # owner exited; registration is dangling by definition
        first_vpn = reg.region.first_vpn
        for i, tpt_frame in enumerate(reg.region.frames):
            vpn = first_vpn + i
            pte = task.page_table.lookup(vpn)
            actual = pte.frame if (pte is not None and pte.present) else None
            if actual != tpt_frame:
                stale.append(StaleEntry(
                    handle=reg.handle, pid=reg.pid, vpn=vpn,
                    tpt_frame=tpt_frame, actual_frame=actual))
    return stale


@dataclass(frozen=True)
class LeakedPin:
    """A frame holding more pins than live registrations explain."""

    frame: int
    pin_count: int
    expected: int


def audit_pin_leaks(kernel: "Kernel", *agents: "KernelAgent"
                    ) -> list[LeakedPin]:
    """Find frames whose pin count exceeds what live registrations
    explain — the leak signature of an error path that dropped a
    registration record without releasing its pin.

    Each live registration of a pin-based backend (the paper's kiobuf
    proposal) holds exactly one pin per page of its range.  Pins held by
    non-VIA users (raw I/O in flight) are accounted the same way only if
    their owner is passed in, so call this at quiesce points: after a
    chaos run has completed or failed every transfer and released its
    buffers, every remaining pin must be explained by a registration
    still recorded in some agent.  Backends that do not pin
    (refcount-only) vacuously pass.
    """
    expected: Counter[int] = Counter()
    for agent in agents:
        for reg in agent.registrations.values():
            for frame in reg.region.frames:
                expected[frame] += 1
    leaks: list[LeakedPin] = []
    for pd in kernel.pagemap:
        if pd.pin_count > expected.get(pd.frame, 0):
            leaks.append(LeakedPin(frame=pd.frame,
                                   pin_count=pd.pin_count,
                                   expected=expected.get(pd.frame, 0)))
    return leaks


def audit_kernel_invariants(kernel: "Kernel") -> None:
    """Raise :class:`~repro.errors.PageAccountingError` if any kernel
    accounting invariant is violated.

    Invariants:

    1. the free list is well-formed (no duplicates, refcount 0),
    2. no present PTE maps a free or reserved-for-kernel frame,
    3. a frame mapped by a present PTE has refcount ≥ 1,
    4. every swap slot is referenced by at most one PTE,
    5. pinned frames are in use (pin without reference is impossible).
    """
    kernel.pagemap.check_free_list()

    slot_owner: dict[int, tuple[int, int]] = {}
    for task in kernel.tasks:
        for vpn in sorted(task.page_table._entries):
            pte = task.page_table.lookup(vpn)
            if pte.present:
                pd = kernel.pagemap.page(pte.frame)
                if pd.count < 1:
                    raise PageAccountingError(
                        f"pid {task.pid} vpn {vpn} maps free frame "
                        f"{pte.frame}")
                if pd.tag == "kernel-image":
                    raise PageAccountingError(
                        f"pid {task.pid} vpn {vpn} maps kernel frame "
                        f"{pte.frame}")
            elif pte.swapped:
                if pte.swap_slot in slot_owner:
                    other = slot_owner[pte.swap_slot]
                    raise PageAccountingError(
                        f"swap slot {pte.swap_slot} referenced by both "
                        f"{other} and {(task.pid, vpn)}")
                slot_owner[pte.swap_slot] = (task.pid, vpn)

    for pd in kernel.pagemap:
        if pd.pin_count > 0 and pd.count == 0:
            raise PageAccountingError(
                f"frame {pd.frame} pinned ({pd.pin_count}) but free")
        if pd.pin_count < 0 or pd.count < 0:
            raise PageAccountingError(
                f"frame {pd.frame} has negative counters")


def frame_ownership_summary(kernel: "Kernel") -> dict[str, int]:
    """Classify every frame for reports: free / kernel / mapped /
    page-cache / orphan / driver-held."""
    summary = {"free": 0, "kernel": 0, "mapped": 0, "page_cache": 0,
               "orphan": 0, "other": 0}
    for pd in kernel.pagemap:
        if pd.count == 0:
            summary["free"] += 1
        elif pd.reserved and pd.tag == "kernel-image":
            summary["kernel"] += 1
        elif pd.in_page_cache:
            summary["page_cache"] += 1
        elif pd.mapping is not None:
            summary["mapped"] += 1
        elif pd.tag == "orphan":
            summary["orphan"] += 1
        else:
            summary["other"] += 1
    return summary


def virt_phys_map(task, va: int, npages: int) -> list[tuple[int, int | None]]:
    """``(vpn, frame-or-None)`` pairs over a range — the probe the
    experiment runs in steps 2 and 6."""
    base_vpn = va // PAGE_SIZE
    out = []
    for i in range(npages):
        pte = task.page_table.lookup(base_vpn + i)
        out.append((base_vpn + i,
                    pte.frame if pte is not None and pte.present else None))
    return out
