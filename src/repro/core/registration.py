"""MemoryRegistrar — the paper's mechanism packaged as a library.

This is the layer a communication library (MPI, a VIPL provider) would
link against.  It wraps the Kernel Agent with:

* **leases** — context-managed registrations that cannot leak,
* **first-class multiple registration** — per-(pid, page) pin accounting
  is observable, so callers can assert the property the VIA spec
  requires and the paper's mechanism guarantees,
* **self-auditing** — :meth:`audit` confirms the NIC's translations
  still match the owner's page tables (the criterion every experiment
  in this reproduction is judged by).

By default the registrar insists on a backend that is actually reliable
(the point of the paper); pass ``allow_unreliable=True`` to study the
broken ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.audit import StaleEntry, audit_tpt_consistency
from repro.errors import InvalidArgument
from repro.hw.physmem import PAGE_SIZE
from repro.via.kernel_agent import Registration

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import Task
    from repro.via.machine import Machine


@dataclass
class RegionLease:
    """A live registration that releases itself on context exit."""

    registrar: "MemoryRegistrar"
    registration: Registration

    @property
    def handle(self) -> int:
        return self.registration.handle

    @property
    def va(self) -> int:
        return self.registration.va

    @property
    def nbytes(self) -> int:
        return self.registration.nbytes

    @property
    def frames(self) -> list[int]:
        return list(self.registration.region.frames)

    def release(self) -> None:
        """Deregister (idempotent)."""
        self.registrar._release(self)

    def __enter__(self) -> "RegionLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class MemoryRegistrar:
    """High-level registration manager bound to one machine."""

    def __init__(self, machine: "Machine",
                 allow_unreliable: bool = False) -> None:
        if not machine.backend.reliable and not allow_unreliable:
            raise InvalidArgument(
                f"backend {machine.backend.name!r} does not reliably lock "
                f"memory; pass allow_unreliable=True to study it anyway")
        self.machine = machine
        self.agent = machine.agent
        self._live: dict[int, RegionLease] = {}
        self.registrations_total = 0
        self.deregistrations_total = 0

    # -- leases ---------------------------------------------------------------

    def register(self, task: "Task", va: int, nbytes: int,
                 rdma_write: bool = False,
                 rdma_read: bool = False) -> RegionLease:
        """Register ``[va, va+nbytes)``; returns a context-managed lease.

        The same range may be registered any number of times; with a
        conforming backend each lease holds an independent pin.
        """
        self.agent.open_nic(task)   # idempotent; allocates the prot tag
        reg = self.agent.register_memory(task, va, nbytes,
                                         rdma_write=rdma_write,
                                         rdma_read=rdma_read)
        lease = RegionLease(self, reg)
        self._live[reg.handle] = lease
        self.registrations_total += 1
        return lease

    def _release(self, lease: RegionLease) -> None:
        if lease.handle not in self._live:
            return   # already released; leases are idempotent
        del self._live[lease.handle]
        self.agent.deregister_memory(lease.handle)
        self.deregistrations_total += 1

    def release_all(self) -> int:
        """Release every live lease (teardown); returns the count."""
        leases = list(self._live.values())
        for lease in leases:
            lease.release()
        return len(leases)

    # -- introspection ------------------------------------------------------------

    @property
    def live_count(self) -> int:
        """Number of currently live leases."""
        return len(self._live)

    def pin_count(self, task: "Task", va: int) -> int:
        """Kernel pin count of the page backing ``va`` (0 if the page is
        not resident)."""
        vpn = va // PAGE_SIZE
        pte = task.page_table.lookup(vpn)
        if pte is None or not pte.present:
            return 0
        return self.machine.kernel.pagemap.page(pte.frame).pin_count

    def registration_count(self, task: "Task", va: int, nbytes: int) -> int:
        """How many live leases fully cover ``[va, va+nbytes)``."""
        return sum(
            1 for lease in self._live.values()
            if lease.registration.pid == task.pid
            and lease.va <= va
            and va + nbytes <= lease.va + lease.nbytes)

    def audit(self) -> list[StaleEntry]:
        """Stale TPT entries across all live registrations (must be empty
        for a reliable backend, under any memory pressure)."""
        return audit_tpt_consistency(self.agent)

    def stats(self) -> dict:
        """Counters for reports."""
        return {
            "live": self.live_count,
            "registrations_total": self.registrations_total,
            "deregistrations_total": self.deregistrations_total,
            "tpt_entries_used": self.machine.nic.tpt.entries_used,
            "tpt_entries_free": self.machine.nic.tpt.entries_free,
        }
