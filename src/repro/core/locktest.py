"""The Section 3.1 experiment, step by step.

"Following is the experiment in detail:

1. The *locktest* program allocates some memory and fills it with data.
   After that one can be sure that each virtual page is mapped to a
   distinct physical page.
2. We simulate the registration by incrementing the reference counters
   and storing the physical addresses.
3. Now we start another *allocator* process that allocates as much
   memory as possible forcing a large amount of pages to be swapped out.
4. *locktest* writes again to each page of the memory block.
5. The kernel agent writes a certain value to the first page of the
   block using the physical address obtained during the registration.
   In this way we simulate a DMA operation of the NIC.
6. The physical addresses of all pages are derived from the page tables
   again and compared to those acquired during the registration.
7. The memory block is deregistered by decrementing the reference
   counters.
8. The contents of the first page is printed."

This module runs those eight steps against *any* locking backend and
reports what the paper reports: whether the physical addresses changed
and whether the DMA write is visible — plus the extra observables our
simulator can expose (orphaned frames, swap traffic, trace evidence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.audit import audit_tpt_consistency
from repro.hw.physmem import PAGE_SIZE
from repro.sim.costs import CostModel
from repro.via.locking.base import LockingBackend
from repro.via.machine import Machine

#: The "certain value" the kernel agent DMA-writes in step 5.
DMA_STAMP = b"DMA-STAMP-0xC0FFEE"


@dataclass
class LocktestResult:
    """Outcome of one locktest run."""

    backend: str
    npages: int
    #: step 6: how many pages' physical addresses changed
    pages_relocated: int
    #: step 8: is the step-5 DMA stamp visible through the process's
    #: *own* mapping?
    dma_write_visible: bool
    #: data-integrity check: did the process's own writes (step 4) survive?
    process_data_intact: bool
    #: frames orphaned by the steal (refcount held the frame alive)
    orphan_frames_during: int
    #: orphans left after deregistration (should always be 0 — "system
    #: stability is not affected")
    orphan_frames_after: int
    #: swap_out events that hit registered pages
    registered_pages_swapped: int
    #: stale TPT page entries observed at step 6 (before deregistration)
    stale_tpt_entries: int
    #: simulated time of registration (step 2), ns
    register_ns: int
    #: simulated time of deregistration (step 7), ns
    deregister_ns: int
    #: the backend registers on-demand-paging regions (no pins at
    #: registration; translations repaired at DMA time)
    odp: bool = False
    notes: list[str] = field(default_factory=list)

    @property
    def registration_survived(self) -> bool:
        """The paper's pass criterion: no page moved and the DMA write
        landed where the process can see it.

        ODP promises repair, not immobility: its pages *may* relocate
        while evicted, but every DMA translates (and fault-services)
        at use, so the criterion is that the DMA write is visible and
        no translation was stale when the NIC used it."""
        if self.odp:
            return self.dma_write_visible and self.stale_tpt_entries == 0
        return self.pages_relocated == 0 and self.dma_write_visible


class LocktestExperiment:
    """One configured experiment: machine size, buffer size, pressure."""

    def __init__(self,
                 backend: LockingBackend | str,
                 buffer_pages: int = 64,
                 num_frames: int = 512,
                 allocator_factor: float = 2.0,
                 costs: CostModel | None = None,
                 seed: int = 0) -> None:
        self.machine = Machine(name="locktest-box", num_frames=num_frames,
                               swap_slots=max(4096, num_frames * 4),
                               costs=costs, seed=seed, backend=backend)
        self.buffer_pages = buffer_pages
        #: how much memory (relative to installed RAM) the allocator
        #: touches — >1 guarantees reclaim
        self.allocator_factor = allocator_factor
        self.seed = seed

    def run(self) -> LocktestResult:
        """Execute steps 1–8 and return the observables."""
        m = self.machine
        kernel = m.kernel
        notes: list[str] = []

        # -- step 1: allocate and fill -------------------------------------
        locktest = m.spawn("locktest")
        ua = m.user_agent(locktest)
        va = locktest.mmap(self.buffer_pages, name="locktest-buffer")
        for i in range(self.buffer_pages):
            locktest.write(va + i * PAGE_SIZE,
                           f"page-{i:04d}-original".encode())
        frames_initial = locktest.physical_pages(va, self.buffer_pages)
        assert None not in frames_initial
        assert len(set(frames_initial)) == self.buffer_pages

        # -- step 2: register (store the physical addresses) ----------------
        with kernel.clock.measure() as reg_span:
            reg = ua.register_mem(va, self.buffer_pages * PAGE_SIZE)
        if reg.region.odp:
            # ODP stores *no* addresses at registration — they are
            # acquired on first DMA touch.  Simulate that first touch so
            # the step-6 comparison has a baseline to compare against.
            m.agent.service_translation_fault(
                reg.handle, tuple(range(self.buffer_pages)))
            notes.append("odp: frames acquired by first-touch "
                         "fault service, not at registration")
        frames_registered = list(reg.region.frames)
        assert frames_registered == frames_initial

        # -- step 3: the allocator forces swapping ---------------------------
        allocator = m.spawn("allocator")
        hog_pages = int(kernel.pagemap.num_frames * self.allocator_factor)
        hog_va = allocator.mmap(hog_pages, name="hog")
        swap_before = kernel.swap.writes
        for i in range(hog_pages):
            # Demand paging: each write consumes a frame, forcing
            # reclaim once free memory is gone.
            allocator.write(hog_va + i * PAGE_SIZE, b"HOG")
        notes.append(f"allocator touched {hog_pages} pages, "
                     f"{kernel.swap.writes - swap_before} pages swapped")

        registered_swapped = sum(
            1 for e in kernel.trace.of_kind("swap_out")
            if e["pid"] == locktest.pid
            and va // PAGE_SIZE <= e["vpn"] < va // PAGE_SIZE
            + self.buffer_pages)

        # -- step 4: locktest writes again to each page ----------------------
        for i in range(self.buffer_pages):
            locktest.write(va + i * PAGE_SIZE + 64,
                           f"page-{i:04d}-rewrite".encode())

        # -- step 5: simulated NIC DMA via the registered address ------------
        if reg.region.odp:
            # The ODP NIC never DMAs through a stored address: it
            # translates at DMA time, fault-servicing any entries the
            # reclaim pressure invalidated.
            invalid = reg.region.invalid_pages(
                va, self.buffer_pages * PAGE_SIZE)
            if invalid:
                m.agent.service_translation_fault(reg.handle, invalid)
            phys_addr = reg.region.frames[0] * PAGE_SIZE + 2048
        else:
            phys_addr = frames_registered[0] * PAGE_SIZE + 2048
        m.nic.dma.write(phys_addr, DMA_STAMP)

        # -- step 6: compare physical addresses -------------------------------
        frames_now = locktest.physical_pages(va, self.buffer_pages)
        pages_relocated = sum(
            1 for before, after in zip(frames_registered, frames_now)
            if before != after)
        stale = audit_tpt_consistency(m.agent)
        orphans_during = len(kernel.pagemap.orphans())

        # Integrity probes *before* deregistration.
        dma_visible = (locktest.read(va + 2048, len(DMA_STAMP))
                       == DMA_STAMP)
        data_intact = all(
            locktest.read(va + i * PAGE_SIZE, 18)
            == f"page-{i:04d}-original".encode()
            and locktest.read(va + i * PAGE_SIZE + 64, 17)
            == f"page-{i:04d}-rewrite".encode()
            for i in range(self.buffer_pages))

        # -- step 7: deregister ------------------------------------------------
        with kernel.clock.measure() as dereg_span:
            ua.deregister_mem(reg)
        orphans_after = len(kernel.pagemap.orphans())

        # -- step 8: report -----------------------------------------------------
        return LocktestResult(
            backend=m.backend.name,
            npages=self.buffer_pages,
            pages_relocated=pages_relocated,
            dma_write_visible=dma_visible,
            process_data_intact=data_intact,
            orphan_frames_during=orphans_during,
            orphan_frames_after=orphans_after,
            registered_pages_swapped=registered_swapped,
            stale_tpt_entries=len(stale),
            register_ns=reg_span.elapsed_ns,
            deregister_ns=dereg_span.elapsed_ns,
            odp=reg.region.odp,
            notes=notes,
        )


def run_matrix(backends: list[str], buffer_pages: int = 64,
               num_frames: int = 512, seed: int = 0
               ) -> list[LocktestResult]:
    """Run the experiment for each backend on identical machines —
    the E1 survival matrix."""
    return [
        LocktestExperiment(name, buffer_pages=buffer_pages,
                           num_frames=num_frames, seed=seed).run()
        for name in backends
    ]
