"""The paper's contribution as a library.

* :mod:`repro.core.registration` — :class:`MemoryRegistrar`, the
  kiobuf-based reliable registration manager with first-class multiple
  registration;
* :mod:`repro.core.regcache` — the registration cache the paper
  motivates ("caching registered regions, i.e. keeping them registered
  as long as possible");
* :mod:`repro.core.locktest` — the Section 3.1 experiment, parameterised
  over locking backends;
* :mod:`repro.core.audit` — TPT-vs-page-table consistency checks and
  kernel accounting invariants.
"""

from repro.core.registration import MemoryRegistrar, RegionLease
from repro.core.regcache import RegistrationCache
from repro.core.locktest import LocktestExperiment, LocktestResult
from repro.core.audit import (
    audit_kernel_invariants, audit_tpt_consistency, StaleEntry,
)

__all__ = [
    "MemoryRegistrar", "RegionLease", "RegistrationCache",
    "LocktestExperiment", "LocktestResult",
    "audit_kernel_invariants", "audit_tpt_consistency", "StaleEntry",
]
