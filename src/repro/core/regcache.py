"""Registration cache.

Section 1: dynamic buffer registration "is actually a contradiction to
the aim of the VI Architecture, namely to remove operating system calls
from the communication path, but it is the only way to achieve
zero-copy.  Furthermore, the bad effects can be remedied by 'caching'
registered regions, i.e. by keeping them registered as long as
possible."

The cache keys on page-aligned ranges.  ``acquire`` returns a live
registration for the covering range — a cache *hit* costs no kernel
call; a *miss* registers the aligned range.  ``release`` only drops the
caller's use; the registration itself stays cached (pinned!) until
capacity pressure evicts an unused entry, LRU-first.

Lookup is O(1): an interval index keyed by virtual page number maps the
first page of a request straight to the entries covering it (any
covering entry must cover the request's first page), and recency is the
order of an ``OrderedDict`` — a hit is one dict probe plus a
``move_to_end``, and eviction pops from the cold end, with no linear
scans on the communication fast path.

Because entries stay registered while cached, the cache **requires** a
backend that supports multiple registration safely — with mlock_naive or
pageflags semantics a second user of an overlapping range would be
silently unprotected.  (That interaction is measured in benchmark E5.)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.via.kernel_agent import Registration

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import Task
    from repro.via.kernel_agent import KernelAgent


def aligned_range(va: int, nbytes: int) -> tuple[int, int]:
    """Page-align ``[va, va+nbytes)``; returns ``(base_va, nbytes)``."""
    start = (va // PAGE_SIZE) * PAGE_SIZE
    end = ((va + nbytes - 1) // PAGE_SIZE + 1) * PAGE_SIZE
    return start, end - start


@dataclass
class CacheEntry:
    """One cached registration."""

    registration: Registration
    users: int = 0           #: live acquisitions
    last_use: int = 0        #: LRU stamp
    hits: int = 0
    rdma_write: bool = False
    rdma_read: bool = False

    @property
    def key(self) -> tuple[int, int, int, bool, bool]:
        """Identity of the cached registration.  Includes the RDMA
        enables: the same range registered with different enables is a
        *different* registration (a plain entry cannot serve an
        rdma_write acquire), and keying on the range alone would let the
        second insert silently shadow the first in ``_entries`` while
        both stay in ``_page_index`` — a leak."""
        r = self.registration
        return (r.pid, r.va, r.nbytes, self.rdma_write, self.rdma_read)

    def page_span(self) -> tuple[int, int]:
        """``[first_vpn, last_vpn]`` (inclusive) of the cached range."""
        r = self.registration
        return r.va // PAGE_SIZE, (r.va + r.nbytes - 1) // PAGE_SIZE


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    capacity_failures: int = 0
    #: registration attempts retried after a VIP_ERROR_RESOURCE failure
    retries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RegistrationCache:
    """LRU cache of registrations for one (agent, task) pair."""

    def __init__(self, agent: "KernelAgent", task: "Task",
                 max_pages: int | None = None,
                 max_register_attempts: int = 3) -> None:
        self.agent = agent
        self.task = task
        #: page budget; None = bounded only by the TPT
        self.max_pages = max_pages
        #: how many times a failing registration is retried when there
        #: is nothing left to evict (transient VIP_ERROR_RESOURCE)
        self.max_register_attempts = max_register_attempts
        #: entries in LRU order: oldest acquire first (acquire moves an
        #: entry to the hot end; release does not change recency)
        self._entries: OrderedDict[tuple[int, int, int, bool, bool],
                                   CacheEntry] = OrderedDict()
        #: interval index: vpn → entries covering that page, in
        #: insertion order (so candidate priority matches the old scan)
        self._page_index: dict[int, list[CacheEntry]] = {}
        self._pages_total = 0
        self._tick = 0
        self.stats = CacheStats()
        # Per-tenant sharding: the cache registers itself with the
        # agent's tenant service so admission pressure can shed its
        # unused entries (tenant-local first) instead of denying.
        agent.tenants.attach_cache(self)

    def _publish_stats(self, obs) -> None:
        """Bridge :class:`CacheStats` into the metrics registry (called
        only when observability is enabled)."""
        stats = self.stats
        metrics = obs.metrics
        metrics.counter("core.regcache.hits").value = stats.hits
        metrics.counter("core.regcache.misses").value = stats.misses
        metrics.counter("core.regcache.evictions").value = stats.evictions
        metrics.counter("core.regcache.retries").value = stats.retries
        metrics.counter("core.regcache.capacity_failures").value = \
            stats.capacity_failures
        metrics.gauge("core.regcache.hit_rate").set(stats.hit_rate)
        metrics.gauge("core.regcache.cached_pages").set(self._pages_total)

    # -- internals -----------------------------------------------------------

    def _pages_cached(self) -> int:
        return self._pages_total

    def _index_add(self, entry: CacheEntry) -> None:
        first, last = entry.page_span()
        for vpn in range(first, last + 1):
            self._page_index.setdefault(vpn, []).append(entry)
        self._pages_total += entry.registration.region.npages

    def _index_remove(self, entry: CacheEntry) -> None:
        first, last = entry.page_span()
        for vpn in range(first, last + 1):
            bucket = self._page_index.get(vpn)
            if bucket is not None:
                # Remove by identity, not equality: two distinct entries
                # covering the same span compare equal (dataclass
                # __eq__), and list.remove would evict whichever comes
                # first — desyncing _page_index from _entries.
                for i, candidate in enumerate(bucket):
                    if candidate is entry:
                        del bucket[i]
                        break
                if not bucket:
                    del self._page_index[vpn]
        self._pages_total -= entry.registration.region.npages

    def _candidates(self, va: int) -> list[CacheEntry]:
        """Entries that could cover a range starting at ``va`` — exactly
        those indexed under ``va``'s page."""
        return self._page_index.get(va // PAGE_SIZE, [])

    def _find_covering(self, va: int, nbytes: int,
                       rdma_write: bool, rdma_read: bool
                       ) -> CacheEntry | None:
        """A cached entry whose range covers the request and whose RDMA
        enables are at least as permissive."""
        for entry in self._candidates(va):
            r = entry.registration
            if (r.va <= va and va + nbytes <= r.va + r.nbytes
                    and (not rdma_write or entry.rdma_write)
                    and (not rdma_read or entry.rdma_read)):
                return entry
        return None

    def _evict_one(self) -> bool:
        """Evict the least-recently-used unused entry; False if none.

        The OrderedDict runs cold→hot, so the victim is the first
        unused entry from the cold end — no min-scan over all entries.
        """
        victim = None
        for entry in self._entries.values():
            if entry.users == 0:
                victim = entry
                break
        if victim is None:
            return False
        del self._entries[victim.key]
        self._index_remove(victim)
        self.agent.deregister_memory(victim.registration.handle)
        self.stats.evictions += 1
        return True

    # -- interface -------------------------------------------------------------

    def acquire(self, va: int, nbytes: int, rdma_write: bool = False,
                rdma_read: bool = False) -> Registration:
        """Get a registration covering ``[va, va+nbytes)``.

        Pair every acquire with a :meth:`release` of the same range.
        """
        self._tick += 1
        entry = self._find_covering(va, nbytes, rdma_write, rdma_read)
        if entry is not None:
            entry.users += 1
            entry.hits += 1
            entry.last_use = self._tick
            self._entries.move_to_end(entry.key)
            self.stats.hits += 1
            obs = self.agent.kernel.obs
            if obs.enabled:
                self._publish_stats(obs)
            return entry.registration

        self.stats.misses += 1
        base, length = aligned_range(va, nbytes)
        want_pages = length // PAGE_SIZE
        if self.max_pages is not None:
            while (self._pages_cached() + want_pages > self.max_pages
                   and self._evict_one()):
                pass
        attempts = 0
        while True:
            try:
                reg = self.agent.register_memory(
                    self.task, base, length,
                    rdma_write=rdma_write, rdma_read=rdma_read)
                break
            except ViaError as exc:
                if exc.status != "VIP_ERROR_RESOURCE":
                    raise
                # Resource pressure: shed an unused cached entry (freeing
                # TPT capacity *and* pinned pages) and retry.  When
                # nothing is evictable the failure may still be
                # transient, so retry up to max_register_attempts times
                # before surfacing it.
                attempts += 1
                evicted = self._evict_one()
                retry = evicted or attempts < self.max_register_attempts
                self.agent.kernel.trace.emit(
                    "regcache_retry", pid=self.task.pid, va=base,
                    nbytes=length, attempt=attempts, evicted=evicted,
                    giving_up=not retry)
                if not retry:
                    self.stats.capacity_failures += 1
                    raise
                self.stats.retries += 1
        entry = CacheEntry(registration=reg, users=1, last_use=self._tick,
                           rdma_write=rdma_write, rdma_read=rdma_read)
        self._entries[entry.key] = entry
        self._index_add(entry)
        obs = self.agent.kernel.obs
        if obs.enabled:
            self._publish_stats(obs)
        return reg

    def release(self, va: int, nbytes: int) -> None:
        """Drop one use of the covering entry (stays cached)."""
        for entry in self._candidates(va):
            r = entry.registration
            if (r.va <= va and va + nbytes <= r.va + r.nbytes
                    and entry.users > 0):
                entry.users -= 1
                return
        raise ViaError(f"release of unacquired range [{va}, {va + nbytes})")

    def shed(self, target_pages: int | None = None) -> int:
        """Admission-pressure hook: evict unused entries, cold end
        first, until ``target_pages`` pinned pages were released (None =
        everything unused).  Entries whose registration is already gone
        — the owner died and the exit path (or the reaper) deregistered
        underneath the cache — are purged as pure bookkeeping, without a
        kernel call and without counting toward the released total.
        Returns pinned pages actually released."""
        freed = 0
        for key in list(self._entries):
            if target_pages is not None and freed >= target_pages:
                break
            entry = self._entries.get(key)
            if entry is None or entry.users > 0:
                continue
            del self._entries[key]
            self._index_remove(entry)
            handle = entry.registration.handle
            if handle in self.agent.registrations:
                self.agent.deregister_memory(handle)
                self.stats.evictions += 1
                freed += entry.registration.region.npages
        return freed

    def flush(self) -> int:
        """Deregister every unused entry; returns how many were dropped."""
        dropped = 0
        for key in list(self._entries):
            entry = self._entries[key]
            if entry.users == 0:
                del self._entries[key]
                self._index_remove(entry)
                self.agent.deregister_memory(entry.registration.handle)
                dropped += 1
        return dropped

    @property
    def cached_regions(self) -> int:
        return len(self._entries)

    @property
    def cached_pages(self) -> int:
        return self._pages_cached()
