"""Message-transfer protocols.

Three protocols in the style the companion papers describe for VIA MPI
implementations, all orchestrated over real simulated control messages:

* **eager** — the payload is copied through preregistered bounce buffers
  chunk by chunk.  No registration in the critical path; one CPU copy on
  each side.  Wins for small messages.
* **rendezvous-copy** — an RTS/CTS handshake, then data flows through
  bounce buffers into the receiver, which copies it to the user buffer.
  One copy on the receive side (the "one copy VIA protocol").
* **rendezvous-zero-copy** — RTS; the receiver registers its *user*
  buffer on the fly (dynamically!) and returns its handle in the CTS;
  the sender registers its user buffer and RDMA-writes straight across;
  FIN completes.  No copies — but two registrations on the critical
  path, which is why the registration cache matters and why those
  registrations must be *reliable* (the paper's subject).

Because simulation is synchronous, a protocol object orchestrates both
ranks; every handshake message is nonetheless a genuine VIA transfer
with full simulated cost.
"""

from __future__ import annotations

import abc
import struct
from dataclasses import dataclass, field

from repro.errors import ViaError
from repro.msg.endpoint import Endpoint
from repro.sim.faults import crash_if_due
from repro.via.descriptor import DataSegment, Descriptor

_RTS = struct.Struct("<4sQQ")   # magic, nbytes, msg_id
_CTS = struct.Struct("<4sQQQ")  # magic, handle, remote_va, msg_id
_FIN = struct.Struct("<4sQ")    # magic, msg_id
_CPY = struct.Struct("<4sQ")    # magic, msg_id — "degrade to copy mode"


@dataclass
class TransferResult:
    """Observables of one transfer."""

    protocol: str
    nbytes: int
    ok: bool
    sim_ns: int                     #: simulated wall time of the transfer
    copies_bytes: int = 0           #: CPU-copied bytes (both sides)
    control_messages: int = 0
    registrations: int = 0          #: registrations on the critical path
    cache_hits: int = 0
    corrupt: bool = False           #: payload mismatch at the receiver
    #: the protocol fell back to a slower mode (copy instead of
    #: zero-copy) because dynamic registration failed
    degraded: bool = False
    #: registration attempts the caches retried under pressure
    registration_retries: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def bandwidth_mb_s(self) -> float:
        """Simulated bandwidth in MB/s."""
        if self.sim_ns <= 0:
            return float("inf")
        return self.nbytes / (self.sim_ns / 1e9) / 1e6


class Protocol(abc.ABC):
    """A transfer protocol between two connected endpoints."""

    name: str = "abstract"

    @abc.abstractmethod
    def _transfer(self, sender: Endpoint, receiver: Endpoint,
                  src_va: int, dst_va: int, nbytes: int,
                  result: TransferResult) -> None:
        """Move ``nbytes`` from sender's ``src_va`` to receiver's
        ``dst_va``."""

    def transfer(self, sender: Endpoint, receiver: Endpoint,
                 src_va: int, dst_va: int, nbytes: int) -> TransferResult:
        """Run the protocol and collect observables."""
        kernel = sender.machine.kernel
        clock = kernel.clock
        obs = kernel.obs
        copies0 = sender.copies_bytes + receiver.copies_bytes
        ctrl0 = sender.control_messages + receiver.control_messages
        retries0 = sender.cache.stats.retries + receiver.cache.stats.retries
        result = TransferResult(protocol=self.name, nbytes=nbytes,
                                ok=False, sim_ns=0)
        with obs.span(f"msg.transfer.{self.name}", nbytes=nbytes):
            with clock.measure() as span:
                self._transfer(sender, receiver, src_va, dst_va, nbytes,
                               result)
        result.sim_ns = span.elapsed_ns
        result.copies_bytes = (sender.copies_bytes
                               + receiver.copies_bytes - copies0)
        result.control_messages = (sender.control_messages
                                   + receiver.control_messages - ctrl0)
        result.registration_retries = (sender.cache.stats.retries
                                       + receiver.cache.stats.retries
                                       - retries0)
        result.ok = not result.corrupt
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter(f"msg.transfers.{self.name}").inc()
            metrics.counter("msg.bytes_transferred").inc(nbytes)
            metrics.histogram("msg.transfer_ns").observe(result.sim_ns)
            if result.corrupt:
                metrics.counter("msg.transfers_corrupt").inc()
        return result

    # -- verification shared by protocols ------------------------------------

    @staticmethod
    def _verify(sender: Endpoint, receiver: Endpoint, src_va: int,
                dst_va: int, nbytes: int, result: TransferResult) -> None:
        """Compare payloads through both processes' *own* page tables —
        how the paper detects that a stale DMA never arrived."""
        sample = min(nbytes, 64 * 1024)
        sent = sender.task.read(src_va, sample)
        got = receiver.task.read(dst_va, sample)
        if sent != got:
            result.corrupt = True
            result.notes.append(
                f"payload mismatch in first {sample} bytes")
        if nbytes > sample:   # also probe the tail
            sent_t = sender.task.read(src_va + nbytes - 64, 64)
            got_t = receiver.task.read(dst_va + nbytes - 64, 64)
            if sent_t != got_t:
                result.corrupt = True
                result.notes.append("payload mismatch in tail")


class EagerProtocol(Protocol):
    """Copy through bounce buffers, chunk by chunk."""

    name = "eager"

    def _transfer(self, sender: Endpoint, receiver: Endpoint,
                  src_va: int, dst_va: int, nbytes: int,
                  result: TransferResult) -> None:
        offset = 0
        while offset < nbytes:
            n = min(Endpoint.CHUNK, nbytes - offset)
            data = sender.task.read(src_va + offset, n)
            sender.send_chunk(data)
            payload, _ = receiver.recv_chunk()
            receiver.task.write(dst_va + offset, payload)
            receiver.copies_bytes += len(payload)
            offset += n
        self._verify(sender, receiver, src_va, dst_va, nbytes, result)


class RendezvousCopyProtocol(Protocol):
    """RTS/CTS handshake, data through bounce buffers, one receive copy."""

    name = "rendezvous-copy"

    def _transfer(self, sender: Endpoint, receiver: Endpoint,
                  src_va: int, dst_va: int, nbytes: int,
                  result: TransferResult) -> None:
        sender.send_control(_RTS.pack(b"RTS!", nbytes, 1))
        rts = receiver.recv_control()
        magic, size, _ = _RTS.unpack(rts)
        assert magic == b"RTS!" and size == nbytes
        receiver.send_control(_CTS.pack(b"CTS!", 0, 0, 1))
        cts = sender.recv_control()
        assert _CTS.unpack(cts)[0] == b"CTS!"
        offset = 0
        while offset < nbytes:
            n = min(Endpoint.CHUNK, nbytes - offset)
            data = sender.task.read(src_va + offset, n)
            sender.send_chunk(data)
            payload, _ = receiver.recv_chunk()
            receiver.task.write(dst_va + offset, payload)
            receiver.copies_bytes += len(payload)
            offset += n
        self._verify(sender, receiver, src_va, dst_va, nbytes, result)


class PioProtocol(Protocol):
    """Programmed-I/O transfer — the SCI shared-memory baseline.

    The sender's **CPU** stores the payload directly into the receiver's
    exported (registered, RDMA-write-enabled) buffer through a mapped
    window: minimal latency, but the CPU is busy for the whole transfer
    — the companion papers' "the CPU participates actively on the data
    transfer" case whose cost motivates protected user-level DMA.

    Implemented over the same TPT translation the NIC uses (an imported
    window is exactly a remote translation), with the transfer time
    charged to the CPU-busy ``pio`` category.
    """

    name = "pio"

    def __init__(self, use_cache: bool = True) -> None:
        self.use_cache = use_cache

    def _transfer(self, sender: Endpoint, receiver: Endpoint,
                  src_va: int, dst_va: int, nbytes: int,
                  result: TransferResult) -> None:
        kernel_r = receiver.machine.kernel
        clock = sender.machine.kernel.clock
        costs = sender.machine.kernel.costs
        # The receiver exports its buffer (registration pins it so the
        # window's physical pages cannot move — same requirement as DMA).
        if self.use_cache:
            hits0 = receiver.cache.stats.hits
            rreg = receiver.cache.acquire(dst_va, nbytes, rdma_write=True)
            if receiver.cache.stats.hits > hits0:
                result.cache_hits += 1
            else:
                result.registrations += 1
        else:
            rreg = receiver.ua.register_mem(dst_va, nbytes,
                                            rdma_write=True)
            result.registrations += 1
        # The NIC-level wrapper (not tpt.translate directly) so an ODP
        # registration's first touch fault-services instead of failing.
        segs = receiver.machine.nic._tpt_translate(
            rreg.handle, dst_va, nbytes, rreg.region.prot_tag,
            rdma_write=True)
        # CPU-driven stores: first-word latency plus streaming cost.
        # The stores land through the translated window as one iovec —
        # no per-page slicing of the payload.
        payload = sender.task.read(src_va, nbytes)
        clock.charge(costs.pio_word_ns, "pio")
        clock.charge(int(costs.pio_stream_per_byte_ns * nbytes), "pio")
        clock.charge(costs.nic_wire_latency_ns, "wire")
        kernel_r.phys.write_iovec(segs, payload)
        if not self.use_cache:
            receiver.ua.deregister_mem(rreg)
        else:
            receiver.cache.release(dst_va, nbytes)
        self._verify(sender, receiver, src_va, dst_va, nbytes, result)


class RendezvousZeroCopyProtocol(Protocol):
    """RTS → receiver registers user buffer → CTS(handle) → sender RDMA
    writes → FIN.  Dynamic registration on the critical path."""

    def __init__(self, use_cache: bool = True) -> None:
        self.use_cache = use_cache
        self.name = ("rendezvous-zerocopy+cache" if use_cache
                     else "rendezvous-zerocopy")

    def _register(self, ep: Endpoint, va: int, nbytes: int,
                  result: TransferResult, **attrs):
        """Register through the cache or directly, updating counters."""
        if self.use_cache:
            hits0 = ep.cache.stats.hits
            reg = ep.cache.acquire(va, nbytes, **attrs)
            if ep.cache.stats.hits > hits0:
                result.cache_hits += 1
            else:
                result.registrations += 1
            return reg, True
        result.registrations += 1
        return ep.ua.register_mem(va, nbytes, **attrs), False

    def _release(self, ep: Endpoint, reg, cached: bool, va: int,
                 nbytes: int) -> None:
        if cached:
            ep.cache.release(va, nbytes)
        else:
            ep.ua.deregister_mem(reg)

    def _degrade_to_copy(self, sender: Endpoint, receiver: Endpoint,
                         src_va: int, dst_va: int, nbytes: int,
                         result: TransferResult, exc: ViaError,
                         side: str) -> None:
        """Dynamic registration failed: finish the transfer through the
        preregistered bounce buffers instead (the copy protocol needs no
        registration on the critical path).  The degrading side tells
        its peer with a CPY control message."""
        result.degraded = True
        sender.machine.kernel.obs.inc("msg.transfers_degraded")
        result.notes.append(
            f"{side} registration failed ({exc.status}); "
            f"degraded to copy protocol")
        sender.machine.kernel.trace.emit(
            "protocol_fallback", protocol=self.name, side=side,
            status=exc.status, nbytes=nbytes)
        if side == "receiver":
            receiver.send_control(_CPY.pack(b"CPY!", 1))
            assert _CPY.unpack(sender.recv_control())[0] == b"CPY!"
        else:
            sender.send_control(_CPY.pack(b"CPY!", 1))
            assert _CPY.unpack(receiver.recv_control())[0] == b"CPY!"
        offset = 0
        while offset < nbytes:
            n = min(Endpoint.CHUNK, nbytes - offset)
            data = sender.task.read(src_va + offset, n)
            sender.send_chunk(data)
            payload, _ = receiver.recv_chunk()
            receiver.task.write(dst_va + offset, payload)
            receiver.copies_bytes += len(payload)
            offset += n
        self._verify(sender, receiver, src_va, dst_va, nbytes, result)

    @staticmethod
    def _crash(ep: Endpoint, point: str) -> None:
        """Kill ``ep``'s process here if its machine's fault plan says
        so (the kill-at-every-step chaos sweep).  Raises
        :class:`~repro.errors.ProcessKilled` — a *kernel* error, so it
        escapes the ``ViaError`` degrade-to-copy handlers."""
        crash_if_due(ep.machine.agent.fault_plan, ep.machine.kernel,
                     ep.task, point)

    def _transfer(self, sender: Endpoint, receiver: Endpoint,
                  src_va: int, dst_va: int, nbytes: int,
                  result: TransferResult) -> None:
        # RTS: "I have nbytes for you."
        sender.send_control(_RTS.pack(b"RTS!", nbytes, 1))
        self._crash(sender, "xfer.rts_sent")
        rts = receiver.recv_control()
        _, size, _ = _RTS.unpack(rts)
        self._crash(receiver, "xfer.rts_received")

        # Receiver registers its *user* buffer dynamically and exposes it.
        try:
            rreg, rcached = self._register(receiver, dst_va, size, result,
                                           rdma_write=True)
        except ViaError as exc:
            self._degrade_to_copy(sender, receiver, src_va, dst_va,
                                  nbytes, result, exc, side="receiver")
            return
        self._crash(receiver, "xfer.dst_registered")
        receiver.send_control(_CTS.pack(b"CTS!", rreg.handle, dst_va, 1))
        cts = sender.recv_control()
        _, rhandle, rva, _ = _CTS.unpack(cts)
        self._crash(sender, "xfer.cts_received")

        # Sender registers its user buffer and RDMA-writes directly.
        try:
            sreg, scached = self._register(sender, src_va, nbytes, result)
        except ViaError as exc:
            self._release(receiver, rreg, rcached, dst_va, size)
            self._degrade_to_copy(sender, receiver, src_va, dst_va,
                                  nbytes, result, exc, side="sender")
            return
        self._crash(sender, "xfer.src_registered")
        desc = Descriptor.rdma_write(
            [DataSegment(sreg.handle, src_va, nbytes)],
            remote_handle=rhandle, remote_va=rva)
        sender.ua.post_send(sender.vi, desc)
        if desc.status != "VIP_SUCCESS":
            raise ViaError(f"RDMA write failed: {desc.status}",
                           status=desc.status)
        self._crash(sender, "xfer.rdma_done")

        # FIN so the receiver knows the data landed.
        sender.send_control(_FIN.pack(b"FIN!", 1))
        self._crash(sender, "xfer.fin_sent")
        fin = receiver.recv_control()
        assert _FIN.unpack(fin)[0] == b"FIN!"
        self._crash(receiver, "xfer.fin_received")

        self._release(sender, sreg, scached, src_va, nbytes)
        self._release(receiver, rreg, rcached, dst_va, size)
        self._verify(sender, receiver, src_va, dst_va, nbytes, result)
