"""Zero-copy message passing over VIA — the workload that motivates the
paper's mechanism.

"The networking hardware must transfer the data directly from and to the
user buffers, the addresses of which are given to the communication
library, e.g. MPI.  Since any arbitrary user space address can be used,
MPI cannot predict it.  Neither is it possible to register the whole
user space in advance due to resource limitation.  Hence, the buffers
must be registered on the fly."

* :mod:`repro.msg.endpoint` — per-rank endpoint with preregistered
  bounce buffers and a connected VI;
* :mod:`repro.msg.protocols` — eager, rendezvous-copy, and
  rendezvous-zero-copy protocols (the latter with an optional
  registration cache);
* :mod:`repro.msg.mpi_like` — an MPI-flavoured facade that switches
  protocols by message size.
"""

from repro.msg.endpoint import Endpoint, connect_endpoints
from repro.msg.protocols import (
    EagerProtocol, PioProtocol, Protocol, RendezvousCopyProtocol,
    RendezvousZeroCopyProtocol, TransferResult,
)
from repro.msg.mpi_like import MpiPair

__all__ = [
    "Endpoint", "connect_endpoints", "Protocol", "EagerProtocol",
    "PioProtocol", "RendezvousCopyProtocol",
    "RendezvousZeroCopyProtocol", "TransferResult", "MpiPair",
]
