"""An MPI-flavoured facade over the protocols.

Mirrors how real VIA MPI implementations pick a protocol by message
size ("the kink at 4 KB is caused by switching from eager to long
protocol"):

* below ``eager_threshold`` — eager,
* between the thresholds — rendezvous-copy,
* at or above ``zerocopy_threshold`` — rendezvous-zero-copy (cached).

Thresholds default to the MPI/Pro-era switch points and are
constructor-tunable so benchmark E5 can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.msg.endpoint import Endpoint
from repro.msg.protocols import (
    EagerProtocol, Protocol, RendezvousCopyProtocol,
    RendezvousZeroCopyProtocol, TransferResult,
)


@dataclass
class MpiPair:
    """A connected sender/receiver pair with size-based protocol switch."""

    sender: Endpoint
    receiver: Endpoint
    eager_threshold: int = 4 * 1024
    zerocopy_threshold: int = 128 * 1024
    use_cache: bool = True
    history: list[TransferResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._eager = EagerProtocol()
        self._rcopy = RendezvousCopyProtocol()
        self._zcopy = RendezvousZeroCopyProtocol(use_cache=self.use_cache)

    def protocol_for(self, nbytes: int) -> Protocol:
        """The protocol the pair would use for ``nbytes``."""
        if nbytes < self.eager_threshold:
            return self._eager
        if nbytes < self.zerocopy_threshold:
            return self._rcopy
        return self._zcopy

    def sendrecv(self, src_va: int, dst_va: int,
                 nbytes: int) -> TransferResult:
        """One matched send/recv: move ``nbytes`` from the sender's
        ``src_va`` to the receiver's ``dst_va``."""
        protocol = self.protocol_for(nbytes)
        result = protocol.transfer(self.sender, self.receiver,
                                   src_va, dst_va, nbytes)
        self.history.append(result)
        return result

    def ping_pong(self, src_va: int, dst_va: int, nbytes: int,
                  back_src_va: int, back_dst_va: int
                  ) -> tuple[TransferResult, TransferResult]:
        """A NetPIPE-style ping-pong: A→B then B→A of the same size."""
        there = self.sendrecv(src_va, dst_va, nbytes)
        protocol = self.protocol_for(nbytes)
        back = protocol.transfer(self.receiver, self.sender,
                                 back_src_va, back_dst_va, nbytes)
        self.history.append(back)
        return there, back
