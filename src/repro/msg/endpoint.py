"""Messaging endpoints.

An :class:`Endpoint` is one communicating rank: a task with an open NIC,
one connected VI, a pool of preregistered *bounce buffers* with receive
descriptors preposted into them (the classic VIA pattern — "a receive
descriptor with a data buffer of sufficient size has to be posted before
the sender's data arrives"), and an optional registration cache for
zero-copy transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.regcache import RegistrationCache
from repro.errors import QueueEmpty, ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.via.constants import ReliabilityLevel
from repro.via.descriptor import DataSegment, Descriptor

if TYPE_CHECKING:  # pragma: no cover
    from repro.via.machine import Cluster, Machine
    from repro.kernel.task import Task


@dataclass
class BounceSlot:
    """One preregistered bounce buffer slot."""

    index: int
    va: int
    size: int
    descriptor: Descriptor | None = None   #: currently posted recv desc


class Endpoint:
    """One rank of a message-passing pair."""

    #: bytes per bounce slot (one page keeps eager fragmentation simple)
    CHUNK = PAGE_SIZE

    def __init__(self, machine: "Machine", task: "Task | None" = None,
                 bounce_slots: int = 16,
                 reliability: ReliabilityLevel =
                 ReliabilityLevel.RELIABLE_DELIVERY,
                 cache_max_pages: int | None = None) -> None:
        self.machine = machine
        self.task = task if task is not None else machine.spawn("rank")
        self.ua = machine.user_agent(self.task)
        self.vi = self.ua.create_vi(reliability=reliability)
        self.cache = RegistrationCache(machine.agent, self.task,
                                       max_pages=cache_max_pages)

        # -- bounce pool: allocated, registered once, receives preposted --
        self.bounce_slots: list[BounceSlot] = []
        pool_pages = bounce_slots * (self.CHUNK // PAGE_SIZE)
        self._bounce_va = self.task.mmap(pool_pages, name="bounce")
        self.task.touch_pages(self._bounce_va, pool_pages)
        self.bounce_reg = self.ua.register_mem(
            self._bounce_va, pool_pages * PAGE_SIZE)
        for i in range(bounce_slots):
            slot = BounceSlot(i, self._bounce_va + i * self.CHUNK,
                              self.CHUNK)
            self.bounce_slots.append(slot)
            self._post_slot(slot)

        # -- a dedicated send-side staging slot (for copy protocols) -------
        staging_pages = 1
        self._staging_va = self.task.mmap(staging_pages, name="staging")
        self.task.touch_pages(self._staging_va, staging_pages)
        self.staging_reg = self.ua.register_mem(
            self._staging_va, staging_pages * PAGE_SIZE)

        # counters
        self.copies_bytes = 0
        self.control_messages = 0

    # -- bounce management ----------------------------------------------------

    def _post_slot(self, slot: BounceSlot) -> None:
        desc = Descriptor.recv([DataSegment(self.bounce_reg.handle,
                                            slot.va, slot.size)])
        slot.descriptor = desc
        self.ua.post_recv(self.vi, desc)

    def _slot_of(self, desc: Descriptor) -> BounceSlot:
        for slot in self.bounce_slots:
            if slot.descriptor is desc:
                return slot
        raise ViaError("completed descriptor does not belong to any slot")

    # -- basic messaging --------------------------------------------------------

    def send_chunk(self, data: bytes, immediate: bytes | None = None) -> None:
        """Copy ``data`` (≤ CHUNK) into staging and send it."""
        if len(data) > self.CHUNK:
            raise ViaError(f"chunk of {len(data)} bytes exceeds "
                           f"{self.CHUNK}")
        self.task.write(self._staging_va, data)
        self.copies_bytes += len(data)
        desc = Descriptor.send(
            [DataSegment(self.staging_reg.handle, self._staging_va,
                         len(data))],
            immediate=immediate)
        self.ua.post_send(self.vi, desc)
        if desc.status != "VIP_SUCCESS":
            raise ViaError(f"send failed: {desc.status}",
                           status=desc.status)

    def recv_chunk(self) -> tuple[bytes, bytes | None]:
        """Pop the next arrived chunk; returns ``(payload, immediate)``
        and reposts the slot."""
        desc = self.ua.recv_done(self.vi)
        if desc.status != "VIP_SUCCESS":
            raise ViaError(f"receive failed: {desc.status}",
                           status=desc.status)
        slot = self._slot_of(desc)
        payload = self.task.read(slot.va, desc.length_transferred)
        self.copies_bytes += desc.length_transferred
        immediate = desc.received_immediate
        self._post_slot(slot)
        return payload, immediate

    def try_recv_chunk(self) -> tuple[bytes, bytes | None] | None:
        """Like :meth:`recv_chunk` but returns None when nothing arrived."""
        try:
            return self.recv_chunk()
        except QueueEmpty:
            return None

    # -- control messages ----------------------------------------------------------

    def send_control(self, payload: bytes) -> None:
        """Send a small control message (rendezvous RTS/CTS/FIN)."""
        self.control_messages += 1
        self.send_chunk(payload, immediate=b"CTRL")

    def recv_control(self) -> bytes:
        """Receive a control message."""
        payload, imm = self.recv_chunk()
        if imm != b"CTRL":
            raise ViaError(f"expected control message, got immediate {imm!r}")
        return payload


def connect_endpoints(cluster: "Cluster", a: Endpoint, b: Endpoint) -> None:
    """Connect two endpoints' VIs across the cluster fabric."""
    cluster.fabric.connect(a.machine.nic, a.vi.vi_id,
                           b.machine.nic, b.vi.vi_id)


def make_pair(cluster: "Cluster",
              bounce_slots: int = 16,
              reliability: ReliabilityLevel =
              ReliabilityLevel.RELIABLE_DELIVERY,
              cache_max_pages: int | None = None
              ) -> tuple[Endpoint, Endpoint]:
    """Build and connect one endpoint on each of the cluster's first two
    machines."""
    a = Endpoint(cluster[0], bounce_slots=bounce_slots,
                 reliability=reliability, cache_max_pages=cache_max_pages)
    b = Endpoint(cluster[1], bounce_slots=bounce_slots,
                 reliability=reliability, cache_max_pages=cache_max_pages)
    connect_endpoints(cluster, a, b)
    return a, b
