"""Correctness tooling: the pin-safety sanitizer and the repo linter.

The paper's claim is that pinning is only *reliable* when the kernel can
prove invariants the driver cannot.  This package is the mechanical
check of those invariants:

* :mod:`repro.analysis.events` — a structured event stream (pin/unpin,
  mlock/munlock, DMA windows, swap traffic, TPT lifecycle, registration
  lifecycle, process exit) emitted by the locking backends, the DMA
  engines, the reclaim path, and the Kernel Agent.
* :mod:`repro.analysis.sanitizer` — :class:`PinSanitizer`, a
  TSAN/lockdep analog that subscribes to that stream and maintains
  per-frame/per-range state machines detecting typed violations, each
  with a happens-before event trail.
* :mod:`repro.analysis.lint` — ``repro-lint``, an AST checker enforcing
  the repo's own coding invariants (no swallowed control-flow
  exceptions, no wall-clock time or unseeded randomness, guarded
  observability hot paths, audited kernel-state mutation, validated
  fault-plan knobs, guarded event-hub emissions).
* :mod:`repro.analysis.races` — :class:`RaceDetector`, a vector-clock
  happens-before engine over the same stream: conflicting frame/TPT
  accesses with no synchronization edge become typed
  :class:`RaceViolation`s even when the schedule that ran was harmless.
* :mod:`repro.analysis.explore` — the schedule explorer: re-runs a
  scenario over permuted same-deadline dispatch orders and crash-point
  placements (DPOR-lite pruned), feeding every run through the race
  engine and the sanitizer.
"""

from __future__ import annotations

from repro.analysis.events import EVENT_KINDS, EventHub, SanEvent
from repro.analysis.explore import (
    ExploreConfig, ExploreReport, Scenario, ScheduleResult, explore,
)
from repro.analysis.races import RACE_KINDS, RaceDetector, RaceViolation
from repro.analysis.sanitizer import CHECKS, PinSanitizer, Violation

__all__ = [
    "EVENT_KINDS", "EventHub", "SanEvent",
    "CHECKS", "PinSanitizer", "Violation",
    "RACE_KINDS", "RaceDetector", "RaceViolation",
    "ExploreConfig", "ExploreReport", "Scenario", "ScheduleResult",
    "explore",
]
