"""Vector-clock happens-before race detection over the analysis stream.

The :class:`~repro.analysis.sanitizer.PinSanitizer` checks the one
schedule the simulator happens to dispatch; this module checks the
*ordering* itself.  A :class:`RaceDetector` subscribes to the same
:class:`~repro.analysis.events.EventHub` stream, assigns every event to
an **execution context**, and maintains a vector clock per context.  Two
conflicting accesses to the same frame or TPT entry with no
happens-before edge between their contexts are reported as a typed
:class:`RaceViolation` carrying both access trails — the latent bug that
a different legal schedule would have turned into corruption, even when
the schedule that actually ran was harmless.

Execution contexts, not hardware names
--------------------------------------

The simulator is single-threaded: the NIC, the DMA engine, and the
kernel run inline in whoever called them, so labelling accesses by
hardware unit would declare almost everything concurrent and drown the
report in false races.  The real nondeterminism lives in exactly one
place: the order same-deadline calendar events dispatch (the explorer
permutes it via :meth:`SimClock.set_tiebreak`).  The detector therefore
models contexts as:

* ``main`` — everything that runs outside a calendar callback.  Main is
  totally ordered with itself, trivially.
* one context per calendar callback *firing*.  A firing happens-after
  the context that scheduled it, after the charge that crossed its
  deadline (the carrier), and after every firing at an earlier
  deadline; when the dispatch pass ends, its effects fold back into
  ``main``.  Two firings at the *same* deadline share none of those
  edges — they are the pair a permuted tie-break would reorder, and the
  only true concurrency in the system.

Synchronization edges
---------------------

On top of calendar causality, protocol events build acquire/release
edges between contexts, keyed per armed scope:

* ``DOORBELL`` (release) → ``COMPLETION`` (acquire), keyed by token:
  posting a descriptor publishes the work; *observing* its completion
  orders the observer after it.
* ``DMA_SUSPEND`` (release) → ``FAULT_SERVICE`` (acquire) →
  ``DMA_RESUME`` (acquire of the service's release), keyed by the
  suspension token: the ODP fault protocol.
* ``FENCE`` (release) → ``FAULT_SERVICE`` (acquire), keyed by handle:
  eviction fences a region's translations before unpinning; a later
  fault service of that region is ordered after the fence.

Conflicts are **directional**: ``translate`` after a concurrent
``invalidate`` is use-after-invalidate, while ``invalidate`` after a
completed ``translate`` is ordinary teardown.  This is what makes the
whole suite race-clean on the default schedule while a permuted
schedule (which really does run the dangerous order) reports the race.

Race classes (:data:`RACE_KINDS`):

1.  ``unpin-vs-dma`` — DMA through a frame a concurrent context
    unpinned (or an unpin while a concurrent DMA window is open).
2.  ``swap-vs-dma`` — DMA racing page-steal on the same frame.
3.  ``invalidate-vs-translate`` — a TPT translation racing the
    invalidation of the same handle's entries.
4.  ``fault-service-vs-evict`` — ODP fault-in racing pressure eviction
    of the same frame.
5.  ``pin-ledger`` — concurrent unordered updates of a frame's pin
    count (unpin racing pin or another unpin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import RaceDetected
from repro.sim.clock import CalendarHook, ScheduledEvent, SimClock

from . import events as ev
from .events import EventHub, SanEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel

#: Every race class the engine reports.
RACE_KINDS: tuple[str, ...] = (
    "unpin-vs-dma",
    "swap-vs-dma",
    "invalidate-vs-translate",
    "fault-service-vs-evict",
    "pin-ledger",
)

#: prior access class → current access class → race kind, for the
#: unconditionally dangerous directions.
_DIRECTIONAL: dict[tuple[str, str], str] = {
    ("unpin", "dma"): "unpin-vs-dma",
    ("swap", "dma"): "swap-vs-dma",
    ("invalidate", "translate"): "invalidate-vs-translate",
    ("service", "evict"): "fault-service-vs-evict",
    ("pin", "unpin"): "pin-ledger",
    ("unpin", "unpin"): "pin-ledger",
}

#: directions dangerous only while the prior DMA window is still open —
#: a *closed* window followed by unpin/swap is ordinary teardown.
_WINDOW_CONDITIONAL: dict[tuple[str, str], str] = {
    ("dma", "unpin"): "unpin-vs-dma",
    ("dma", "swap"): "swap-vs-dma",
}


def _join(into: dict[str, int], other: dict[str, int]) -> None:
    """Pointwise max, in place."""
    for key, val in other.items():
        if into.get(key, 0) < val:
            into[key] = val


@dataclass(frozen=True)
class RaceViolation:
    """Two conflicting accesses with no happens-before edge."""

    race: str                        #: entry of :data:`RACE_KINDS`
    host: str                        #: machine the accesses came from
    location: tuple[Any, ...]        #: ("frame", n) or ("tpt", handle)
    message: str
    prior: SanEvent                  #: the earlier access (in run order)
    prior_actor: str                 #: its execution context / actor
    current: SanEvent                #: the access that closed the race
    current_actor: str
    prior_trail: tuple[SanEvent, ...]
    current_trail: tuple[SanEvent, ...]

    def format(self) -> str:
        """Human-readable report: message plus both access trails."""
        lines = [f"[{self.race}] on {self.host} at {self.location}: "
                 f"{self.message}"]
        for label, actor, trail, marker_of in (
                ("prior", self.prior_actor, self.prior_trail, self.prior),
                ("current", self.current_actor, self.current_trail,
                 self.current)):
            lines.append(f"  {label} access by {actor}:")
            for e in trail:
                marker = "=>" if e is marker_of else "  "
                fields = " ".join(f"{k}={v!r}"
                                  for k, v in sorted(e.fields.items()))
                lines.append(f"    {marker} t={e.ts_ns} {e.kind} {fields}")
        return "\n".join(lines)


class _ClockState(CalendarHook):
    """Per-clock calendar observer: context lifecycle + tie groups.

    Owns the calendar-causality bookkeeping for one :class:`SimClock`:
    the carrier/frontier joins that order callback firings after main
    and after earlier deadlines, and the recorded tie groups the
    explorer's DPOR-lite pruning consumes.
    """

    def __init__(self, detector: "RaceDetector", clock: SimClock,
                 index: int) -> None:
        self.detector = detector
        self.clock = clock
        self.main = f"c{index}:main"
        self._prefix = f"c{index}:"
        #: schedule-time VC snapshot per event seq (calendar causality)
        self.sched_vc: dict[int, dict[str, int]] = {}
        #: join of end-VCs of firings at earlier deadlines/passes
        self.completed: dict[str, int] = {}
        #: join of end-VCs of firings at the current tie (deadline, pass)
        self.pending: dict[str, int] = {}
        #: join of end-VCs awaiting fold into main when dispatch ends
        self.resume: dict[str, int] = {}
        self.cur_deadline: int | None = None
        self.firing_ctx: str | None = None
        self.firing_seq: int | None = None
        #: recorded tie groups: (deadline, [seqs in dispatch order])
        self.groups: list[tuple[int, list[int]]] = []
        #: locations touched per firing seq (for DPOR-lite pruning)
        self.locs: dict[int, set[tuple[Any, ...]]] = {}

    # -- CalendarHook ------------------------------------------------------

    def scheduled(self, event: ScheduledEvent) -> None:
        ctx = self.firing_ctx if self.firing_ctx is not None else self.main
        vc = self.detector._vcs.get(ctx)
        if vc:
            self.sched_vc[event.seq] = dict(vc)

    def pass_begin(self) -> None:
        self._fold_resume()

    def fire_begin(self, event: ScheduledEvent) -> None:
        if self.cur_deadline != event.deadline_ns:
            _join(self.completed, self.pending)
            self.pending = {}
            self.cur_deadline = event.deadline_ns
            self.groups.append((event.deadline_ns, []))
        self.groups[-1][1].append(event.seq)
        suffix = f":{event.name}" if event.name else ""
        ctx = f"{self._prefix}ev{event.seq}{suffix}"
        start = dict(self.detector._vcs.get(self.main, {}))
        _join(start, self.completed)
        sched = self.sched_vc.pop(event.seq, None)
        if sched is not None:
            _join(start, sched)
        self.detector._vcs[ctx] = start
        self.firing_ctx = ctx
        self.firing_seq = event.seq

    def fire_end(self, event: ScheduledEvent) -> None:
        if self.firing_ctx is not None:
            end = self.detector._vcs.get(self.firing_ctx)
            if end:
                _join(self.pending, end)
                _join(self.resume, end)
        self.firing_ctx = None
        self.firing_seq = None

    # -- helpers -----------------------------------------------------------

    def current_ctx(self) -> str:
        """The context the event being handled right now belongs to."""
        if self.firing_ctx is not None:
            return self.firing_ctx
        self._fold_resume()
        return self.main

    def record_loc(self, loc: tuple[Any, ...]) -> None:
        """Charge a touched location to the currently-firing callback
        (the explorer's DPOR pruning consumes these per-firing sets)."""
        if self.firing_seq is not None:
            self.locs.setdefault(self.firing_seq, set()).add(loc)

    def _fold_resume(self) -> None:
        """Dispatch is over (or a new pass begins): main continues
        after every firing, and firings so far precede later ones."""
        _join(self.completed, self.pending)
        self.pending = {}
        self.cur_deadline = None
        if self.resume:
            main_vc = self.detector._vcs.setdefault(self.main, {})
            _join(main_vc, self.resume)
            self.resume = {}


class RaceDetector:
    """Happens-before checker for the pin/DMA event stream.

    Mirrors the :class:`PinSanitizer` lifecycle: construct, ``arm()`` a
    Machine / Cluster / bare Kernel, run the workload, read ``races`` /
    ``counts`` (or let ``strict=True`` raise :class:`RaceDetected` at
    the access that closed the race), ``disarm()``.  ``feed()`` drives
    the engine from a synthetic event list for golden tests — there the
    ``actor`` field (or pid/engine) names the context explicitly, since
    no calendar exists to attribute against.
    """

    def __init__(self, *, strict: bool = False,
                 suppress: Iterable[str] = (),
                 trail_maxlen: int = 256,
                 trail_report: int = 8) -> None:
        self.strict = strict
        self.suppressed: set[str] = set()
        for race in suppress:
            self.suppress(race)
        self.races: list[RaceViolation] = []
        self.events_seen = 0
        self.armed = False
        self._trail_maxlen = trail_maxlen
        self._trail_report = trail_report
        self._ring: list[tuple[Any, str, SanEvent]] = []
        self._counts: dict[str, int] = {race: 0 for race in RACE_KINDS}
        self._unsubscribes: list[Callable[[], None]] = []
        self._hook_removers: list[Callable[[], None]] = []
        self._n_scopes = 0
        self._feed_ts = 0
        #: vector clocks, one per execution context
        self._vcs: dict[str, dict[str, int]] = {}
        #: calendar observer per armed clock (by id), and per scope
        self._clock_states: dict[int, _ClockState] = {}
        self._scope_state: dict[Any, _ClockState] = {}
        #: last access per (scope, location) → {(class, ctx): (own, event)}
        self._accesses: dict[tuple[Any, tuple[Any, ...]],
                             dict[tuple[str, str], tuple[int, SanEvent]]] = {}
        #: open DMA windows per (scope, frame)
        self._windows: dict[tuple[Any, int], int] = {}
        #: released VCs per (scope, edge kind, key)
        self._released: dict[tuple[Any, str, Any], dict[str, int]] = {}
        #: already-reported (scope, loc, race, prior ctx, current ctx)
        self._reported: set[tuple[Any, ...]] = set()

    # ------------------------------------------------------------ suppression

    def suppress(self, race: str) -> "RaceDetector":
        """Disable one race class (typo-checked against
        :data:`RACE_KINDS`)."""
        if race not in RACE_KINDS:
            raise ValueError(
                f"unknown race kind {race!r}; choose one of {RACE_KINDS}")
        self.suppressed.add(race)
        return self

    def unsuppress(self, race: str) -> "RaceDetector":
        """Re-enable a suppressed race class."""
        self.suppressed.discard(race)
        return self

    # ----------------------------------------------------------------- arming

    def arm(self, target: Any) -> "RaceDetector":
        """Subscribe to a Machine, a Cluster, or a bare Kernel.

        Installs a calendar hook on each distinct clock reachable from
        the target (machines of one cluster share a clock and therefore
        a context namespace) and subscribes to each kernel's event hub
        under a fresh scope.
        """
        from repro.via.machine import Cluster, Machine
        if isinstance(target, Cluster):
            kernels = [m.kernel for m in target.machines]
        elif isinstance(target, Machine):
            kernels = [target.kernel]
        else:
            kernels = [target]
        for kernel in kernels:
            self._arm_kernel(kernel)
        self.armed = True
        return self

    def _arm_kernel(self, kernel: "Kernel") -> None:
        hub: EventHub = kernel.events
        self._n_scopes += 1
        scope = self._n_scopes
        clock = kernel.clock
        state = self._clock_states.get(id(clock))
        if state is None:
            state = _ClockState(self, clock, len(self._clock_states))
            self._clock_states[id(clock)] = state
            self._hook_removers.append(clock.add_calendar_hook(state))
        self._scope_state[scope] = state
        self._unsubscribes.append(hub.subscribe(
            lambda event, _scope=scope: self.handle(event, scope=_scope)))

    def disarm(self) -> None:
        """Unsubscribe from every armed hub and remove clock hooks."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
        for remove in self._hook_removers:
            remove()
        self._hook_removers.clear()
        self.armed = False

    # ------------------------------------------------------------------ stats

    @property
    def counts(self) -> dict[str, int]:
        """Races recorded so far, by class (includes zeros)."""
        return dict(self._counts)

    def dispatch_groups(self) -> list[tuple[int, list[tuple[int, frozenset]]]]:
        """Recorded same-deadline tie groups with ≥ 2 members.

        Each entry is ``(deadline_ns, [(seq, touched_locations), ...])``
        in the order the group actually dispatched — the raw material
        for the explorer's DPOR-lite pruning: a candidate tie-break seed
        whose first reordering only swaps members with disjoint
        location sets cannot change the race verdict.
        """
        out: list[tuple[int, list[tuple[int, frozenset]]]] = []
        for state in self._clock_states.values():
            for deadline, seqs in state.groups:
                if len(seqs) < 2:
                    continue
                out.append((deadline, [
                    (seq, frozenset(state.locs.get(seq, ())))
                    for seq in seqs]))
        return out

    # ------------------------------------------------------------------- feed

    def handle(self, event: SanEvent, scope: Any = None) -> None:
        """Consume one event (the hub-subscription entry point)."""
        if scope is None:
            scope = event.host
        self.events_seen += 1
        state = self._scope_state.get(scope)
        if state is not None:
            ctx = state.current_ctx()
        else:
            ctx = self._feed_actor(event)
        ring = self._ring
        ring.append((scope, ctx, event))
        if len(ring) > self._trail_maxlen:
            del ring[:len(ring) - self._trail_maxlen]
        vc = self._vcs.setdefault(ctx, {})
        vc[ctx] = vc.get(ctx, 0) + 1
        self._sync_edges(event, scope, ctx, vc)
        if event.kind == ev.DMA_END:
            self._on_dma_end(event, scope)
            return
        for cls, loc in self._accesses_of(event):
            if state is not None:
                state.record_loc(loc)
            self._check_access(event, scope, ctx, vc, cls, loc)

    def feed(self, events: Iterable) -> None:
        """Drive the detector directly — the golden-test entry point.

        Items are :class:`SanEvent`s or ``(kind, fields)`` pairs (host
        ``"test"``, monotonic timestamps).  Context comes from the
        event's ``actor`` field, falling back to ``task:<pid>`` or the
        DMA ``engine`` name — with no calendar, every distinct actor is
        concurrent unless a sync edge orders it.
        """
        for item in events:
            if not isinstance(item, SanEvent):
                kind, fields = item
                self._feed_ts += 1
                item = SanEvent(self._feed_ts, "test", kind, dict(fields))
            self.handle(item)

    @staticmethod
    def _feed_actor(event: SanEvent) -> str:
        actor = event.get("actor")
        if actor is not None:
            return str(actor)
        pid = event.get("pid")
        if pid is not None:
            return f"task:{pid}"
        engine = event.get("engine")
        if engine is not None:
            return str(engine)
        return "main"

    # -------------------------------------------------------------- the model

    def _sync_edges(self, event: SanEvent, scope: Any, ctx: str,
                    vc: dict[str, int]) -> None:
        kind = event.kind
        if kind == ev.DOORBELL:
            self._release(scope, "db", event.get("token"), vc)
        elif kind == ev.COMPLETION:
            self._acquire(scope, "db", event.get("token"), vc)
        elif kind == ev.DMA_SUSPEND:
            self._release(scope, "fault", event.get("token"), vc)
        elif kind == ev.FAULT_SERVICE:
            token = event.get("token")
            self._acquire(scope, "fault", token, vc)
            self._acquire(scope, "fence", event.get("handle"), vc)
            self._release(scope, "svc", token, vc)
        elif kind == ev.DMA_RESUME:
            self._acquire(scope, "svc", event.get("token"), vc)
        elif kind == ev.FENCE:
            self._release(scope, "fence", event.get("handle"), vc)

    def _release(self, scope: Any, edge: str, key: Any,
                 vc: dict[str, int]) -> None:
        if key is None:
            return
        slot = self._released.setdefault((scope, edge, key), {})
        _join(slot, vc)

    def _acquire(self, scope: Any, edge: str, key: Any,
                 vc: dict[str, int]) -> None:
        if key is None:
            return
        released = self._released.get((scope, edge, key))
        if released:
            _join(vc, released)

    @staticmethod
    def _accesses_of(event: SanEvent
                     ) -> list[tuple[str, tuple[Any, ...]]]:
        kind = event.kind
        if kind == ev.PIN:
            return [("pin", ("frame", f)) for f in event.get("frames", ())]
        if kind == ev.UNPIN:
            return [("unpin", ("frame", f)) for f in event.get("frames", ())]
        if kind == ev.DMA_BEGIN:
            return [("dma", ("frame", f)) for f in event.get("frames", ())]
        if kind == ev.SWAP_OUT:
            frame = event.get("frame")
            return [] if frame is None else [("swap", ("frame", frame))]
        if kind == ev.FAULT_SERVICE:
            return [("service", ("frame", f))
                    for f in event.get("frames", ()) if f is not None
                    and f >= 0]
        if kind == ev.ODP_EVICT:
            frame = event.get("frame")
            return [] if frame is None else [("evict", ("frame", frame))]
        if kind == ev.TPT_TRANSLATE:
            return [("translate", ("tpt", event.get("handle")))]
        if kind in (ev.TPT_INVALIDATE, ev.TPT_PAGE_INVALIDATE):
            return [("invalidate", ("tpt", event.get("handle")))]
        return []

    def _check_access(self, event: SanEvent, scope: Any, ctx: str,
                      vc: dict[str, int], cls: str,
                      loc: tuple[Any, ...]) -> None:
        slot = self._accesses.setdefault((scope, loc), {})
        for (prior_cls, prior_ctx), (own, prior_event) in slot.items():
            if prior_ctx == ctx:
                continue
            race = _DIRECTIONAL.get((prior_cls, cls))
            if race is None:
                race = _WINDOW_CONDITIONAL.get((prior_cls, cls))
                if race is not None and not self._window_open(scope, loc):
                    race = None
            if race is None or race in self.suppressed:
                continue
            if own <= vc.get(prior_ctx, 0):
                continue                      # happens-before: ordered
            self._report(race, loc, scope, prior_cls, prior_ctx,
                         prior_event, cls, ctx, event)
        slot[(cls, ctx)] = (vc[ctx], event)
        if event.kind == ev.DMA_BEGIN:
            key = (scope, loc[1])
            self._windows[key] = self._windows.get(key, 0) + 1

    def _window_open(self, scope: Any, loc: tuple[Any, ...]) -> bool:
        return self._windows.get((scope, loc[1]), 0) > 0

    def _on_dma_end(self, event: SanEvent, scope: Any) -> None:
        for frame in event.get("frames", ()):
            key = (scope, frame)
            count = self._windows.get(key, 0)
            if count > 1:
                self._windows[key] = count - 1
            else:
                self._windows.pop(key, None)

    # -------------------------------------------------------------- reporting

    def _report(self, race: str, loc: tuple[Any, ...], scope: Any,
                prior_cls: str, prior_ctx: str, prior_event: SanEvent,
                cls: str, ctx: str, event: SanEvent) -> None:
        dedup = (scope, loc, race, prior_ctx, ctx)
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        message = (f"{cls} by {ctx} races {prior_cls} by {prior_ctx}: "
                   f"no happens-before edge orders them")
        violation = RaceViolation(
            race=race, host=event.host, location=loc, message=message,
            prior=prior_event, prior_actor=prior_ctx,
            current=event, current_actor=ctx,
            prior_trail=self._trail(scope, prior_ctx),
            current_trail=self._trail(scope, ctx))
        self._counts[race] += 1
        self.races.append(violation)
        if self.strict:
            raise RaceDetected(violation.format(), violation=violation)

    def _trail(self, scope: Any, ctx: str) -> tuple[SanEvent, ...]:
        related = [e for e_scope, e_ctx, e in self._ring
                   if e_scope == scope and e_ctx == ctx]
        return tuple(related[-self._trail_report:])
