"""The structured analysis event stream.

Unlike the :class:`~repro.sim.trace.Trace` ring (a bounded log queried
after the fact), the event hub is a *live* publish/subscribe channel: a
subscriber — the :class:`~repro.analysis.sanitizer.PinSanitizer` — sees
every event at the moment it happens, in order, and can raise at the
exact operation that broke an invariant.

The hub is deliberately tiny.  Every instrumentation site in a hot path
pays one attribute load and one branch while nothing is subscribed::

    events = kernel.events
    if events.active:
        events.emit(PIN, frames=frames, pid=task.pid)

Frame numbers, pids, and vpns are only meaningful per kernel, so every
event carries the ``host`` label of the hub that emitted it — a cluster
sanitizer subscribed to several machines keys its state by
``(host, frame)`` and never confuses ``m0``'s frame 5 with ``m1``'s.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

# -- event kinds -------------------------------------------------------------

PIN = "pin"                        #: kiobuf pins taken (fields: frames, pid)
UNPIN = "unpin"                    #: kiobuf pins dropped (fields: frames, pid)
MLOCK = "mlock"                    #: VM_LOCKED set (pid, start_vpn, end_vpn)
MUNLOCK = "munlock"                #: VM_LOCKED cleared (pid, start_vpn, end_vpn)
DMA_BEGIN = "dma_begin"            #: bus-master window opens (frames, op)
DMA_END = "dma_end"                #: bus-master window closes (frames, op)
SWAP_OUT = "swap_out"              #: page stolen to swap (pid, vpn, frame)
SWAP_IN = "swap_in"                #: page read back (pid, vpn, frame, slot)
TPT_INSERT = "tpt_insert"          #: region installed (handle, frames)
TPT_INVALIDATE = "tpt_invalidate"  #: region removed (handle)
TPT_TRANSLATE = "tpt_translate"    #: translation served (handle, va, length)
MUNMAP = "munmap"                  #: range unmapped (pid, start_vpn, end_vpn)
REGISTER = "register"              #: driver registration (handle, pid, frames,
                                   #: backend, first_vpn, npages)
DEREGISTER = "deregister"          #: driver deregistration (handle, pid)
TASK_EXIT = "task_exit"            #: process gone (pid, cleanup)
ATOMIC_RMW = "atomic_rmw"          #: remote atomic RMW on one 8-byte word
                                   #: (frame, offset, op, engine)
DMA_SUSPEND = "dma_suspend"        #: NIC parked a transfer on a translation
                                   #: fault (handle, pages, token)
DMA_RESUME = "dma_resume"          #: suspended transfer resumed (token, ok)
FAULT_SERVICE = "fault_service"    #: agent faulted+pinned ODP pages just in
                                   #: time (handle, pages, frames, coalesced)
ODP_EVICT = "odp_evict"            #: pressure unpinned an ODP-resident frame
                                   #: and invalidated its TPT pages
                                   #: (handle, frame, page)
TPT_PAGE_INVALIDATE = "tpt_page_invalidate"
                                   #: individual ODP entries went invalid
                                   #: (handle, pages) — the region itself
                                   #: stays registered, unlike TPT_INVALIDATE
DOORBELL = "doorbell"              #: a descriptor was handed to the NIC —
                                   #: the release half of the doorbell→
                                   #: completion sync edge (token, vi, pid)
COMPLETION = "completion"          #: user code *observed* a completion —
                                   #: the acquire half of the doorbell edge
                                   #: (token, vi)
FENCE = "fence"                    #: eviction fenced a region's in-flight
                                   #: translations before unpinning
                                   #: (handle, frame) — release half of the
                                   #: fence→fault-service sync edge

#: Every kind the instrumented layers emit.
EVENT_KINDS: tuple[str, ...] = (
    PIN, UNPIN, MLOCK, MUNLOCK, DMA_BEGIN, DMA_END, SWAP_OUT, SWAP_IN,
    TPT_INSERT, TPT_INVALIDATE, TPT_TRANSLATE, MUNMAP, REGISTER,
    DEREGISTER, TASK_EXIT, ATOMIC_RMW, DMA_SUSPEND, DMA_RESUME,
    FAULT_SERVICE, ODP_EVICT, TPT_PAGE_INVALIDATE, DOORBELL, COMPLETION,
    FENCE,
)

_hub_ids = itertools.count(0)


@dataclass(frozen=True)
class SanEvent:
    """One analysis event: a timestamped, host-labelled fact."""

    ts_ns: int                 #: simulated timestamp
    host: str                  #: emitting machine (hub label)
    kind: str                  #: one of :data:`EVENT_KINDS`
    fields: dict = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Field lookup with a default, like ``dict.get``."""
        return self.fields.get(key, default)


class EventHub:
    """Per-kernel publish/subscribe channel for analysis events.

    ``active`` is a plain attribute (kept in sync by
    :meth:`subscribe`), so hot emission sites can guard with a single
    attribute load instead of a property call.  The hub's truthiness
    mirrors it (``if events:`` ≡ ``if events.active:``), which is the
    guard the ``hub-emit-unguarded`` lint rule enforces on emission
    sites.
    """

    __slots__ = ("_clock", "_subs", "active", "host", "events_emitted")

    def __init__(self, clock, host: str | None = None) -> None:
        self._clock = clock
        self._subs: list[Callable[[SanEvent], None]] = []
        self.active = False
        self.host = host if host is not None else f"kernel{next(_hub_ids)}"
        self.events_emitted = 0

    def __bool__(self) -> bool:
        """True while anything is subscribed — the emission-site guard."""
        return self.active

    def subscribe(self, callback: Callable[[SanEvent], None]
                  ) -> Callable[[], None]:
        """Add a subscriber; returns an idempotent unsubscribe."""
        self._subs.append(callback)
        self.active = True

        def unsubscribe() -> None:
            if callback in self._subs:
                self._subs.remove(callback)
            self.active = bool(self._subs)

        return unsubscribe

    def emit(self, kind: str, **fields: Any) -> None:
        """Publish one event to every subscriber (no-op when inactive).

        The fields mapping is owned by the event from here on; callers
        must not retain and mutate it (the emission sites all build the
        dict inline, so this holds by construction).
        """
        if not self._subs:
            return
        self.events_emitted += 1
        event = SanEvent(self._clock.now_ns, self.host, kind, fields)
        for callback in list(self._subs):
            callback(event)
