"""PinSanitizer — a lockdep/TSAN analog for pinned communication memory.

The sanitizer subscribes to one or more kernels'
:class:`~repro.analysis.events.EventHub` streams and maintains per-frame
and per-range state machines that mechanically check the orderings the
paper's locking mechanisms exist to guarantee.  The violation catalog:

``dma-unpinned-frame``
    a frame's pin count reached zero while a DMA window on it was open —
    the NP-RDMA / page-fault-during-RDMA hazard.
``dma-swapped-frame``
    a frame was stolen by ``swap_out`` while inside an open DMA window.
``mlock-nesting``
    a ``munlock`` annulled a range still covered by a live mlock-family
    registration — the §3.2 non-nesting bug, detected from the event
    stream instead of asserted by a test.
``pin-underflow``
    an unpin with no matching pin outstanding (double release).
``tpt-use-after-invalidate``
    a translation served through a handle after its region was removed.
``registration-leak``
    a process exited through the *clean* teardown path with live
    registrations left behind.
``swap-registered``
    a registered page was swapped out — the §3.1 locktest failure
    signature (only the deliberately broken refcount backend lets the
    reclaim path do this).
``quota-breach``
    a registration pushed its tenant past the pinned-page quota the
    driver reported for it — admission control and the accounting it
    relies on have diverged (the event stream is the ground truth the
    budget books are checked against).
``atomic-nonatomic-overlap``
    a plain DMA write touched a registered word the adapter has served
    remote atomics on (or an atomic landed inside an open plain-write
    window).  Adapter RMWs are atomic only with respect to *other
    adapter RMWs* — a plain RDMA/DMA write to the same word is a data
    race that can tear a compare-and-swap, so the two access classes
    must never mix on one word while its registration is live.
``odp-dangling-suspension``
    a DMA suspension was never repaired: either the NIC resumed a
    parked transfer as OK without any fault-service event for its
    token, or a suspension was still open when the sanitizer
    disarmed.  Suspending on a translation fault is only safe because
    the agent is guaranteed to fault, pin, and patch before the
    resume — a resume with no service replays the transfer through a
    still-invalid translation.

The ``odp`` mode (on by default) understands the on-demand-paging
backend's *sanctioned* transitions: ``FAULT_SERVICE`` frames join a
registration's tracked set and ``ODP_EVICT`` removes them again, so a
pressure eviction followed by swap-out of the (now unpinned,
invalidated) frame is not misread as ``swap-registered`` or
``dma-swapped-frame``.  Per-page ``TPT_PAGE_INVALIDATE`` never marks a
handle dead — the region stays registered, unlike ``TPT_INVALIDATE`` —
so a later fault-service and translate through the same handle is not
``tpt-use-after-invalidate``.  What stays a violation is the dangling
suspension above: the repair must actually happen.

Each violation carries a happens-before trail: the recent events that
share a frame, pid, or handle with the trigger, in emission order.

Usage mirrors the :class:`~repro.core.audit.InvariantWatchdog`::

    san = PinSanitizer(strict=True).arm(machine)     # or cluster/kernel
    ... workload ...
    san.disarm()
    assert not san.violations

In *strict* mode a violation raises
:class:`~repro.errors.SanitizerViolation` at the offending operation;
otherwise violations accumulate on :attr:`PinSanitizer.violations`.
Individual checks can be suppressed, and :meth:`expect` captures
violations a chaos test *wants* to happen without raising.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.analysis import events as ev
from repro.analysis.events import EventHub, SanEvent
from repro.errors import SanitizerViolation, UnmetExpectation

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.obs import Observability

#: Every check the sanitizer can report, in catalog order.
CHECKS: tuple[str, ...] = (
    "dma-unpinned-frame",
    "dma-swapped-frame",
    "mlock-nesting",
    "pin-underflow",
    "tpt-use-after-invalidate",
    "registration-leak",
    "swap-registered",
    "quota-breach",
    "atomic-nonatomic-overlap",
    "odp-dangling-suspension",
)

#: DMA window ops that are plain (non-atomic) writes to memory, for the
#: ``atomic-nonatomic-overlap`` check.  The ``"atomic"`` window an RMW
#: opens over its own word is deliberately absent.
_PLAIN_WRITE_OPS: frozenset[str] = frozenset({"write", "write_scatter"})

#: Backends whose registrations are guarded by VM_LOCKED, and therefore
#: annulled by any munlock over their range (§3.2).
MLOCK_BACKENDS: frozenset[str] = frozenset({"mlock", "mlock_naive"})


@dataclass(frozen=True)
class Violation:
    """One detected ordering violation."""

    check: str                      #: entry of :data:`CHECKS`
    host: str                       #: machine the trigger came from
    message: str
    event: SanEvent                 #: the triggering event
    trail: tuple[SanEvent, ...]     #: happens-before context (trigger last)

    def format(self) -> str:
        """Human-readable report: message plus the event trail."""
        lines = [f"[{self.check}] on {self.host}: {self.message}"]
        for e in self.trail:
            marker = "=>" if e is self.event else "  "
            fields = " ".join(f"{k}={v!r}" for k, v in sorted(
                e.fields.items()))
            lines.append(f"  {marker} t={e.ts_ns} {e.kind} {fields}")
        return "\n".join(lines)


@dataclass
class _Registration:
    """Sanitizer-side shadow of one driver registration."""

    handle: int
    pid: int
    frames: tuple[int, ...]
    backend: str
    first_vpn: int
    end_vpn: int
    uid: int | None = None      #: owning tenant, when the event said


@dataclass
class _Expectation:
    checks: frozenset[str]
    captured: list[Violation] = field(default_factory=list)


class PinSanitizer:
    """Event-stream checker for the pin-safety violation catalog."""

    def __init__(self, *, strict: bool = False, odp: bool = True,
                 suppress: Iterable[str] = (),
                 trail_maxlen: int = 256,
                 trail_report: int = 32) -> None:
        self.strict = strict
        self.odp = odp
        self.suppressed: set[str] = set()
        for check in suppress:
            self.suppress(check)
        self.violations: list[Violation] = []
        self.events_seen = 0
        self.armed = False
        self._trail_maxlen = trail_maxlen
        self._trail_report = trail_report
        self._ring: list[tuple[Any, SanEvent]] = []
        self._expectations: list[_Expectation] = []
        #: expect() blocks that exited without capturing anything (and
        #: without an exception in flight) — reported at disarm
        self._unmet: list[str] = []
        self._unsubscribes: list[Callable[[], None]] = []
        self._collectors: list[tuple["Observability", Callable]] = []
        self._counts: dict[str, int] = {check: 0 for check in CHECKS}
        self._feed_ts = 0
        self._n_scopes = 0
        # -- per-(scope, ...) state machines --
        # A *scope* namespaces the state: each armed hub gets a fresh
        # token so two kernels that happen to share a host label (e.g.
        # many single-machine clusters built in one test) can never
        # alias each other's frames or handles.  Host labels are kept
        # for display only.
        #: believed pin count per (scope, frame)
        self._pins: dict[tuple[Any, int], int] = {}
        #: open DMA windows per (scope, frame)
        self._dma: dict[tuple[Any, int], int] = {}
        #: live registrations by (scope, handle)
        self._regs: dict[tuple[Any, int], _Registration] = {}
        #: live handles per (scope, pid)
        self._regs_by_pid: dict[tuple[Any, int], set[int]] = {}
        #: live handles covering each (scope, frame)
        self._reg_frames: dict[tuple[Any, int], set[int]] = {}
        #: TPT handles seen invalidated, per (scope, handle)
        self._tpt_dead: set[tuple[Any, int]] = set()
        #: pinned pages per (scope, uid), from REGISTER/DEREGISTER
        self._uid_pages: dict[tuple[Any, int], int] = {}
        #: last quota each (scope, uid) was registered under
        self._uid_quota: dict[tuple[Any, int], int] = {}
        #: word offsets adapter atomics have hit, per (scope, frame);
        #: cleared when the frame loses its last live registration
        self._atomic_words: dict[tuple[Any, int], set[int]] = {}
        #: open plain-write DMA spans as (offset, nbytes), per
        #: (scope, frame)
        self._write_spans: dict[tuple[Any, int], list[tuple[int, int]]] = {}
        #: open DMA suspensions by (scope, token) → the suspend event
        self._suspensions: dict[tuple[Any, int], SanEvent] = {}
        #: suspension tokens a FAULT_SERVICE has answered
        self._serviced: set[tuple[Any, int]] = set()
        self._handlers: dict[str, Callable[[SanEvent, Any], None]] = {
            ev.PIN: self._on_pin,
            ev.UNPIN: self._on_unpin,
            ev.DMA_BEGIN: self._on_dma_begin,
            ev.DMA_END: self._on_dma_end,
            ev.SWAP_OUT: self._on_swap_out,
            ev.MUNLOCK: self._on_munlock,
            ev.TPT_INVALIDATE: self._on_tpt_invalidate,
            ev.TPT_TRANSLATE: self._on_tpt_translate,
            ev.ATOMIC_RMW: self._on_atomic_rmw,
            ev.REGISTER: self._on_register,
            ev.DEREGISTER: self._on_deregister,
            ev.TASK_EXIT: self._on_task_exit,
        }
        if self.odp:
            # TPT_PAGE_INVALIDATE is deliberately absent: a per-page
            # invalidation leaves the region registered, so it must not
            # feed the tpt-use-after-invalidate handle graveyard.
            self._handlers.update({
                ev.DMA_SUSPEND: self._on_dma_suspend,
                ev.DMA_RESUME: self._on_dma_resume,
                ev.FAULT_SERVICE: self._on_fault_service,
                ev.ODP_EVICT: self._on_odp_evict,
            })

    # ------------------------------------------------------------ suppression

    def suppress(self, check: str) -> "PinSanitizer":
        """Disable one check (typo-checked against :data:`CHECKS`)."""
        if check not in CHECKS:
            raise ValueError(
                f"unknown check {check!r}; choose one of {CHECKS}")
        self.suppressed.add(check)
        return self

    def unsuppress(self, check: str) -> "PinSanitizer":
        """Re-enable a suppressed check."""
        self.suppressed.discard(check)
        return self

    @contextmanager
    def expect(self, *checks: str) -> Iterator[list[Violation]]:
        """Capture violations of ``checks`` (all checks when empty)
        instead of recording/raising them — for tests that *provoke* a
        violation and want to assert it fired.  Yields the capture
        list.

        An expect block that exits *without* capturing anything is a
        test bug — the scenario stopped exercising the hazard and the
        "expected violation" assertion now vacuously passes.  Such
        blocks are remembered and :meth:`disarm` raises
        :class:`~repro.errors.UnmetExpectation` for them (at disarm
        rather than at block exit, so an exception already unwinding
        through the block — the usual reason nothing fired — is never
        masked)."""
        for check in checks:
            if check not in CHECKS:
                raise ValueError(
                    f"unknown check {check!r}; choose one of {CHECKS}")
        exp = _Expectation(frozenset(checks))
        self._expectations.append(exp)
        try:
            yield exp.captured
        finally:
            self._expectations.remove(exp)
            if not exp.captured and sys.exc_info()[0] is None:
                self._unmet.append(
                    "expect(" + ", ".join(sorted(exp.checks)) + ")"
                    if exp.checks else "expect(<any check>)")

    # ----------------------------------------------------------------- arming

    def arm(self, target: Any) -> "PinSanitizer":
        """Subscribe to a Machine, a Cluster, or a bare Kernel.

        Arming snapshots each kernel's current pin counts (so an unpin
        of a pre-existing pin is not misread as underflow) and seeds the
        registration shadow from any Kernel Agents reachable from the
        target, so pre-existing registrations are tracked too.
        """
        from repro.via.machine import Cluster, Machine
        if isinstance(target, Cluster):
            pairs = [(m.kernel, [m.agent]) for m in target.machines]
        elif isinstance(target, Machine):
            pairs = [(target.kernel, [target.agent])]
        else:
            pairs = [(target, [])]
        for kernel, agents in pairs:
            self._arm_kernel(kernel, agents)
        self.armed = True
        return self

    def _arm_kernel(self, kernel: "Kernel", agents: list) -> None:
        hub: EventHub = kernel.events
        self._n_scopes += 1
        scope = self._n_scopes
        for pd in kernel.pagemap:
            if pd.pin_count > 0:
                self._pins[(scope, pd.frame)] = pd.pin_count
        for agent in agents:
            for reg in agent.registrations.values():
                uid = reg.uid if reg.uid >= 0 else None
                # ODP regions hold the INVALID_FRAME (-1) sentinel for
                # pages not yet faulted in; only real frames are tracked.
                self._track_registration(
                    scope, handle=reg.handle, pid=reg.pid,
                    frames=tuple(f for f in reg.region.frames if f >= 0),
                    backend=reg.backend_name,
                    first_vpn=reg.region.first_vpn,
                    end_vpn=reg.region.first_vpn + reg.region.npages,
                    uid=uid,
                    quota_pages=(agent.tenants.quota_of(uid)
                                 if uid is not None else None))
        self._unsubscribes.append(hub.subscribe(
            lambda event, _scope=scope: self.handle(event, scope=_scope)))
        self._attach_collector(kernel.obs)

    def disarm(self) -> None:
        """Unsubscribe from every armed hub and detach collectors.

        In ``odp`` mode any suspension still open now is a dangling
        suspension — a transfer the NIC parked and nobody ever fixed
        up — and is reported before the checker lets go."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
        for obs, collector in self._collectors:
            obs.remove_collector(collector)
        self._collectors.clear()
        self.armed = False
        dangling, self._suspensions = self._suspensions, {}
        self._serviced.clear()
        for (scope, token), suspend in dangling.items():
            self._report(
                "odp-dangling-suspension", suspend, scope,
                f"DMA suspension token {token} on handle "
                f"{suspend['handle']} still open at disarm — the parked "
                f"transfer was never resumed",
                handle=suspend["handle"])
        unmet, self._unmet = self._unmet, []
        if unmet:
            raise UnmetExpectation(
                f"{len(unmet)} expect() block(s) completed without the "
                f"expected violation ever firing: " + "; ".join(unmet))

    # ------------------------------------------------------------- obs bridge

    def _attach_collector(self, obs: "Observability") -> None:
        if any(existing is obs for existing, _ in self._collectors):
            return
        collector = self._collect_into
        obs.add_collector(collector)
        self._collectors.append((obs, collector))

    def _collect_into(self, obs: "Observability") -> None:
        """Snapshot-time collector: fold sanitizer counters into the
        metrics registry (see the Observability snapshot pipeline)."""
        metrics = obs.metrics
        metrics.gauge("analysis.san.events_observed").set(self.events_seen)
        metrics.gauge("analysis.san.violations_total").set(
            sum(self._counts.values()))
        for check, count in self._counts.items():
            name = "analysis.san.violations." + check.replace("-", "_")
            metrics.gauge(name).set(count)

    # ------------------------------------------------------------------ stats

    @property
    def counts(self) -> dict[str, int]:
        """Violations recorded so far, by check (includes zeros)."""
        return dict(self._counts)

    # ------------------------------------------------------------------- feed

    def handle(self, event: SanEvent, scope: Any = None) -> None:
        """Consume one event (the hub-subscription entry point).

        ``scope`` namespaces the per-frame/per-handle state; armed hubs
        bind a distinct scope at subscription time.  When fed directly
        it defaults to the event's host label.
        """
        if scope is None:
            scope = event.host
        self.events_seen += 1
        ring = self._ring
        ring.append((scope, event))
        if len(ring) > self._trail_maxlen:
            del ring[:len(ring) - self._trail_maxlen]
        handler = self._handlers.get(event.kind)
        if handler is not None:
            handler(event, scope)

    def feed(self, events: Iterable) -> None:
        """Drive the sanitizer directly — the golden-test entry point.

        Each item is either a ready :class:`SanEvent` or a
        ``(kind, fields_dict)`` pair, which is stamped with host
        ``"test"`` and a monotonically increasing timestamp.
        """
        for item in events:
            if not isinstance(item, SanEvent):
                kind, fields = item
                self._feed_ts += 1
                item = SanEvent(self._feed_ts, "test", kind, dict(fields))
            self.handle(item)

    # -------------------------------------------------------------- reporting

    def _report(self, check: str, event: SanEvent, scope: Any,
                message: str, *, frames: Iterable[int] = (),
                pid: int | None = None,
                handle: int | None = None) -> None:
        if check in self.suppressed:
            return
        violation = Violation(
            check=check, host=event.host, message=message, event=event,
            trail=self._trail(event, scope, frozenset(frames), pid,
                              handle))
        for exp in reversed(self._expectations):
            if not exp.checks or check in exp.checks:
                exp.captured.append(violation)
                return
        self._counts[check] += 1
        self.violations.append(violation)
        if self.strict:
            raise SanitizerViolation(violation.format(),
                                     violation=violation)

    def _trail(self, trigger: SanEvent, scope: Any,
               frames: frozenset[int], pid: int | None,
               handle: int | None) -> tuple[SanEvent, ...]:
        related: list[SanEvent] = []
        for e_scope, e in self._ring:
            if e_scope != scope and e is not trigger:
                continue
            if e is trigger or self._related(e, frames, pid, handle):
                related.append(e)
        return tuple(related[-self._trail_report:])

    @staticmethod
    def _related(e: SanEvent, frames: frozenset[int], pid: int | None,
                 handle: int | None) -> bool:
        f = e.fields
        if frames:
            if f.get("frame") in frames:
                return True
            ef = f.get("frames")
            if ef and not frames.isdisjoint(ef):
                return True
        if pid is not None and f.get("pid") == pid:
            return True
        if handle is not None and f.get("handle") == handle:
            return True
        return False

    # ----------------------------------------------------- state transitions

    def _track_registration(self, scope: Any, *, handle: int, pid: int,
                            frames: tuple[int, ...], backend: str,
                            first_vpn: int, end_vpn: int,
                            uid: int | None = None,
                            quota_pages: int | None = None) -> None:
        reg = _Registration(handle=handle, pid=pid, frames=frames,
                            backend=backend, first_vpn=first_vpn,
                            end_vpn=end_vpn, uid=uid)
        self._regs[(scope, handle)] = reg
        self._regs_by_pid.setdefault((scope, pid), set()).add(handle)
        for frame in frames:
            self._reg_frames.setdefault((scope, frame), set()).add(handle)
        if uid is not None:
            key = (scope, uid)
            self._uid_pages[key] = self._uid_pages.get(key, 0) + len(frames)
            if quota_pages is not None:
                self._uid_quota[key] = quota_pages

    def _untrack_registration(self, scope: Any, handle: int) -> None:
        reg = self._regs.pop((scope, handle), None)
        if reg is None:
            return   # registered before arming; nothing tracked
        if reg.uid is not None:
            key = (scope, reg.uid)
            remaining = self._uid_pages.get(key, 0) - len(reg.frames)
            if remaining > 0:
                self._uid_pages[key] = remaining
            else:
                self._uid_pages.pop(key, None)
        pid_key = (scope, reg.pid)
        handles = self._regs_by_pid.get(pid_key)
        if handles is not None:
            handles.discard(handle)
            if not handles:
                del self._regs_by_pid[pid_key]
        for frame in reg.frames:
            frame_key = (scope, frame)
            owners = self._reg_frames.get(frame_key)
            if owners is not None:
                owners.discard(handle)
                if not owners:
                    del self._reg_frames[frame_key]
                    # A frame with no live registration can be reused
                    # for anything; its atomic-word history is moot.
                    self._atomic_words.pop(frame_key, None)

    # -- handlers ------------------------------------------------------------

    def _on_pin(self, event: SanEvent, scope: Any) -> None:
        for frame in event["frames"]:
            key = (scope, frame)
            self._pins[key] = self._pins.get(key, 0) + 1

    def _on_unpin(self, event: SanEvent, scope: Any) -> None:
        for frame in event["frames"]:
            key = (scope, frame)
            current = self._pins.get(key, 0)
            if current <= 0:
                self._report(
                    "pin-underflow", event, scope,
                    f"unpin of frame {frame} with no pin outstanding "
                    f"(double release)",
                    frames=(frame,), pid=event.get("pid"))
                continue
            current -= 1
            if current:
                self._pins[key] = current
            else:
                del self._pins[key]
                if self._dma.get(key, 0) > 0:
                    self._report(
                        "dma-unpinned-frame", event, scope,
                        f"pin count of frame {frame} reached zero inside "
                        f"an open DMA window",
                        frames=(frame,), pid=event.get("pid"))

    def _on_dma_begin(self, event: SanEvent, scope: Any) -> None:
        for frame in event["frames"]:
            key = (scope, frame)
            self._dma[key] = self._dma.get(key, 0) + 1
        spans = event.get("spans")
        if spans and event.get("op") in _PLAIN_WRITE_OPS:
            for frame, offset, n in spans:
                key = (scope, frame)
                for word in self._atomic_words.get(key, ()):
                    if word < offset + n and word + 8 > offset:
                        self._report(
                            "atomic-nonatomic-overlap", event, scope,
                            f"plain DMA {event.get('op')} over "
                            f"[{offset}, {offset + n}) of frame {frame} "
                            f"hits word {word}, which the adapter serves "
                            f"remote atomics on — a plain write can tear "
                            f"a concurrent RMW",
                            frames=(frame,))
                self._write_spans.setdefault(key, []).append((offset, n))

    def _on_dma_end(self, event: SanEvent, scope: Any) -> None:
        for frame in event["frames"]:
            key = (scope, frame)
            current = self._dma.get(key, 0)
            if current <= 1:
                self._dma.pop(key, None)
            else:
                self._dma[key] = current - 1
        spans = event.get("spans")
        if spans and event.get("op") in _PLAIN_WRITE_OPS:
            for frame, offset, n in spans:
                key = (scope, frame)
                open_spans = self._write_spans.get(key)
                if open_spans is None:
                    continue
                try:
                    open_spans.remove((offset, n))
                except ValueError:
                    pass
                if not open_spans:
                    del self._write_spans[key]

    def _on_atomic_rmw(self, event: SanEvent, scope: Any) -> None:
        frame, offset = event["frame"], event["offset"]
        key = (scope, frame)
        for span_off, span_n in self._write_spans.get(key, ()):
            if span_off < offset + 8 and span_off + span_n > offset:
                self._report(
                    "atomic-nonatomic-overlap", event, scope,
                    f"atomic RMW on word {offset} of frame {frame} "
                    f"landed inside an open plain-write window over "
                    f"[{span_off}, {span_off + span_n})",
                    frames=(frame,))
        self._atomic_words.setdefault(key, set()).add(offset)

    def _on_swap_out(self, event: SanEvent, scope: Any) -> None:
        frame = event["frame"]
        key = (scope, frame)
        if self._dma.get(key, 0) > 0:
            self._report(
                "dma-swapped-frame", event, scope,
                f"frame {frame} stolen by swap_out inside an open DMA "
                f"window",
                frames=(frame,), pid=event.get("pid"))
        owners = self._reg_frames.get(key)
        if owners:
            handle = min(owners)
            backend = self._regs[(scope, handle)].backend
            self._report(
                "swap-registered", event, scope,
                f"frame {frame} of live registration handle {handle} "
                f"(backend {backend!r}) swapped out — the §3.1 failure",
                frames=(frame,), pid=event.get("pid"), handle=handle)

    def _on_munlock(self, event: SanEvent, scope: Any) -> None:
        pid = event["pid"]
        start_vpn, end_vpn = event["start_vpn"], event["end_vpn"]
        for handle in sorted(self._regs_by_pid.get((scope, pid), ())):
            reg = self._regs[(scope, handle)]
            if (reg.backend in MLOCK_BACKENDS
                    and reg.first_vpn < end_vpn
                    and reg.end_vpn > start_vpn):
                self._report(
                    "mlock-nesting", event, scope,
                    f"munlock of vpns [{start_vpn}, {end_vpn}) annulled "
                    f"VM_LOCKED under live registration handle {handle} "
                    f"of pid {pid} (vpns [{reg.first_vpn}, {reg.end_vpn}))"
                    f" — mlock does not nest (§3.2)",
                    pid=pid, handle=handle)

    def _on_tpt_invalidate(self, event: SanEvent, scope: Any) -> None:
        self._tpt_dead.add((scope, event["handle"]))

    def _on_tpt_translate(self, event: SanEvent, scope: Any) -> None:
        handle = event["handle"]
        if (scope, handle) in self._tpt_dead:
            self._report(
                "tpt-use-after-invalidate", event, scope,
                f"translation served through handle {handle} after its "
                f"region was invalidated",
                handle=handle)

    def _on_register(self, event: SanEvent, scope: Any) -> None:
        uid = event.get("uid")
        quota = event.get("quota_pages")
        self._track_registration(
            scope, handle=event["handle"], pid=event["pid"],
            frames=tuple(event["frames"]), backend=event["backend"],
            first_vpn=event["first_vpn"],
            end_vpn=event["first_vpn"] + event["npages"],
            uid=uid, quota_pages=quota)
        if uid is None:
            return
        key = (scope, uid)
        limit = self._uid_quota.get(key)
        total = self._uid_pages.get(key, 0)
        if limit is not None and total > limit:
            self._report(
                "quota-breach", event, scope,
                f"registration handle {event['handle']} pushed uid {uid} "
                f"to {total} pinned pages, past its quota of {limit} — "
                f"admission control and tenant accounting disagree",
                pid=event["pid"], handle=event["handle"])

    def _on_deregister(self, event: SanEvent, scope: Any) -> None:
        self._untrack_registration(scope, event["handle"])

    def _on_task_exit(self, event: SanEvent, scope: Any) -> None:
        pid = event["pid"]
        if not event["cleanup"]:
            # Buggy teardown being modelled: leaked registrations are
            # the reaper's job, not a sanitizer violation.
            return
        handles = sorted(self._regs_by_pid.get((scope, pid), ()))
        if handles:
            self._report(
                "registration-leak", event, scope,
                f"pid {pid} exited through the clean teardown path with "
                f"live registrations {handles}",
                pid=pid, handle=handles[0])
        for handle in handles:
            self._untrack_registration(scope, handle)

    # -- ODP mode ------------------------------------------------------------

    def _on_dma_suspend(self, event: SanEvent, scope: Any) -> None:
        self._suspensions[(scope, event["token"])] = event

    def _on_fault_service(self, event: SanEvent, scope: Any) -> None:
        token = event.get("token")
        if token is not None:
            self._serviced.add((scope, token))
        reg = self._regs.get((scope, event["handle"]))
        if reg is None:
            return   # registered before arming; nothing tracked
        handle = reg.handle
        for frame in event["frames"]:
            owners = self._reg_frames.setdefault((scope, frame), set())
            if handle in owners:
                continue       # coalesced / already-resident page
            owners.add(handle)
            reg.frames = reg.frames + (frame,)
            if reg.uid is not None:
                key = (scope, reg.uid)
                self._uid_pages[key] = self._uid_pages.get(key, 0) + 1

    def _on_dma_resume(self, event: SanEvent, scope: Any) -> None:
        token = event["token"]
        key = (scope, token)
        suspend = self._suspensions.pop(key, None)
        serviced = key in self._serviced
        self._serviced.discard(key)
        if not event["ok"]:
            return   # error unwind: the transfer completes in error
        if suspend is not None and not serviced:
            self._report(
                "odp-dangling-suspension", event, scope,
                f"suspended DMA (token {token}, handle {event['handle']})"
                f" resumed OK without a fault-service event — the "
                f"transfer would replay through a still-invalid "
                f"translation",
                handle=event["handle"])

    def _on_odp_evict(self, event: SanEvent, scope: Any) -> None:
        handle, frame = event["handle"], event["frame"]
        key = (scope, frame)
        owners = self._reg_frames.get(key)
        if owners is not None:
            owners.discard(handle)
            if not owners:
                del self._reg_frames[key]
                self._atomic_words.pop(key, None)
        reg = self._regs.get((scope, handle))
        if reg is None or frame not in reg.frames:
            return
        dropped = reg.frames.count(frame)
        reg.frames = tuple(f for f in reg.frames if f != frame)
        if reg.uid is not None:
            ukey = (scope, reg.uid)
            remaining = self._uid_pages.get(ukey, 0) - dropped
            if remaining > 0:
                self._uid_pages[ukey] = remaining
            else:
                self._uid_pages.pop(ukey, None)
