"""repro-lint: AST checks for the repo's own invariants.

A conventional linter checks style; this one checks the handful of
*semantic* conventions this codebase depends on for correctness, the
kind a reviewer has to re-derive on every PR:

``broad-except``
    A ``try`` with a bare ``except:`` / ``except Exception:`` handler
    must not swallow :class:`~repro.errors.ProcessKilled` (a crash
    point firing mid-operation) — the handler must either re-raise
    (contain a bare ``raise``, or re-raise its bound exception), or be
    preceded by an ``except ProcessKilled: raise`` /
    ``except KernelError: raise`` handler in the same ``try``.

``wall-clock``
    Nothing in ``src/repro`` may read the host's wall clock or draw
    unseeded randomness: all time comes from the
    :class:`~repro.sim.clock.SimClock` and all randomness from
    :mod:`repro.sim.rng` (the one audited seeding point, which is
    exempt).  A single ``time.time()`` makes every run unreproducible.

``obs-unguarded``
    Direct metrics-registry access (``obs.metrics.counter(...)`` and
    friends) records even while observability is *disabled* and pays
    full cost on the hot path, so it must sit under an
    ``if ....enabled:`` guard.  The :class:`~repro.obs.Observability`
    facade methods (``obs.inc`` …) self-guard and are always fine.

``kernel-mutation``
    Layers above the kernel (``repro/via``, ``repro/msg``,
    ``repro/mpi``) must mutate kernel page state only through audited
    kernel entry points (``map_user_kiobuf``, ``do_mlock`` …), never by
    poking page descriptors or page tables directly.  The historical
    backends the paper critiques do exactly that — on purpose — and
    carry ``allow(kernel-mutation)`` pragmas saying so.

``faultplan-validation``
    Every public knob of :class:`~repro.sim.faults.FaultPlan` must be
    validated in ``__post_init__``: a typo'd or out-of-range fault plan
    must fail at construction, not half-way through a chaos run.

``clock-subscribe``
    ``clock.subscribe(...)`` is the deprecated per-charge fan-out model
    of periodic work — every watcher re-runs on every single charge, the
    hottest path in the simulator.  Periodic daemons must use the event
    calendar (``clock.schedule_after`` / ``schedule_at``); the clock
    module itself and explicitly pragma'd legacy A/B arms are exempt.

``hub-emit-unguarded``
    An :class:`~repro.analysis.events.EventHub` ``emit(...)`` builds a
    :class:`SanEvent` dict even while nobody subscribes, so every
    emission on a hot path must sit under an ``if ....active:`` guard
    (or test the hub's truthiness, which is the same check).  The
    analysis package itself is exempt — the hub, the checkers, and
    their tests are allowed to drive emissions unconditionally.

Findings on a line carrying ``# repro-lint: allow(<rule>, ...)`` (or
whose preceding line carries it) are suppressed; rules can also be
enabled/disabled wholesale per :class:`Linter`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

#: Every rule this linter knows, with a one-line summary.
RULES: dict[str, str] = {
    "broad-except":
        "broad except handler may swallow ProcessKilled/KernelError",
    "wall-clock":
        "wall-clock time or unseeded randomness breaks reproducibility",
    "obs-unguarded":
        "metrics-registry access outside an `if ....enabled:` guard",
    "kernel-mutation":
        "kernel page state mutated above the kernel layer",
    "faultplan-validation":
        "FaultPlan knob not validated in __post_init__",
    "clock-subscribe":
        "per-charge clock.subscribe() instead of a calendar event",
    "hub-emit-unguarded":
        "event-hub emit outside an `if ....active:` guard",
}

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*allow\(([^)]*)\)")

#: Catching one of these (with a re-raise) before a broad handler
#: protects it: ProcessKilled can no longer reach the broad arm.
_KILL_SAFE = frozenset({"ProcessKilled", "KernelError"})
_BROAD = frozenset({"Exception", "BaseException"})

#: Wall-clock / entropy calls, by resolved dotted name.
_WALL_CLOCK_EXACT = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
})
_WALL_CLOCK_PREFIXES = ("random.", "numpy.random.", "secrets.")
#: The audited seeding point — the one module allowed to construct RNGs.
_WALL_CLOCK_EXEMPT_FILES = ("repro/sim/rng.py",)

#: Path prefixes (posix, relative to the scan root) of the layers that
#: sit above the kernel and must use its audited entry points.
_ABOVE_KERNEL_LAYERS = ("repro/via/", "repro/msg/", "repro/mpi/")
#: Page/PTE state attributes those layers must never assign directly.
_KERNEL_STATE_ATTRS = frozenset({
    "pin_count", "count", "present", "frame", "swapped", "swap_slot",
    "flags", "reserved", "mapping",
})
#: Page/pagemap mutator methods those layers must never call directly.
_KERNEL_MUTATOR_METHODS = frozenset({
    "pin", "unpin", "get_page", "put_page", "set_flag", "clear_flag",
})

#: The observability implementation itself (guards internally).
_OBS_EXEMPT_PREFIX = "repro/obs/"

#: The scheduler/shim module — the one place `subscribe` may live.
_CLOCK_SUBSCRIBE_EXEMPT_FILES = ("repro/sim/clock.py",)

#: The analysis package (hub, checkers) emits unconditionally by design.
_HUB_EMIT_EXEMPT_PREFIX = "repro/analysis/"
#: Receiver names an EventHub lives under by convention.
_HUB_NAMES = frozenset({"events", "_events"})


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    path: str    #: file the finding is in (as given to the linter)
    line: int    #: 1-based line
    col: int     #: 0-based column
    rule: str    #: rule name (a :data:`RULES` key)
    message: str

    def format(self) -> str:
        """``path:line:col: rule: message`` — one line per finding."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: " \
               f"{self.message}"


def _last_name(node: ast.expr | None) -> str | None:
    """The final identifier of a Name/Attribute chain (else None)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _exc_names(node: ast.expr | None) -> set[str]:
    """The exception class names a handler catches (last segments)."""
    if node is None:
        return set()
    if isinstance(node, ast.Tuple):
        return {n for e in node.elts if (n := _last_name(e))}
    name = _last_name(node)
    return {name} if name else set()


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body re-raise (bare ``raise``, or ``raise e``
    of its own bound name)?  Nested defs don't count — a ``raise``
    inside a closure does not unwind this handler."""
    bound = handler.name

    def walk(nodes: Iterable[ast.stmt]) -> bool:
        for stmt in nodes:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(node, ast.Raise):
                    if node.exc is None:
                        return True
                    if (bound and isinstance(node.exc, ast.Name)
                            and node.exc.id == bound
                            and node.cause is None):
                        return True
        return False

    return walk(handler.body)


def _contains_enabled(node: ast.expr) -> bool:
    """Does the expression read some ``....enabled`` attribute?"""
    return any(isinstance(n, ast.Attribute) and n.attr == "enabled"
               for n in ast.walk(node))


class Linter:
    """The repro-lint engine: parse, visit, report.

    ``rules`` selects which checks run (default: all of
    :data:`RULES`); unknown names raise :class:`ValueError` so a CI
    config typo cannot silently disable a check.
    """

    def __init__(self, rules: Iterable[str] | None = None) -> None:
        selected = frozenset(rules) if rules is not None \
            else frozenset(RULES)
        unknown = selected - frozenset(RULES)
        if unknown:
            raise ValueError(
                f"unknown lint rule(s) {sorted(unknown)}; "
                f"known: {sorted(RULES)}")
        self.rules = selected

    # ------------------------------------------------------------ entry points

    def check_source(self, source: str, path: str = "<string>",
                     relpath: str | None = None) -> list[LintFinding]:
        """Lint one source string.

        ``relpath`` is the file's posix path relative to the scan root
        (e.g. ``repro/via/nic.py``); path-scoped rules (wall-clock
        exemption, layer scoping) key off it.  A syntax error is itself
        reported as a finding rather than raised, so one broken file
        cannot hide the rest of a tree scan.
        """
        rel = relpath if relpath is not None else path
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [LintFinding(path, exc.lineno or 1, exc.offset or 0,
                                "broad-except",
                                f"file does not parse: {exc.msg}")]
        allowed = self._pragmas(source)
        findings: list[LintFinding] = []
        if "broad-except" in self.rules:
            findings += self._check_broad_except(tree, path)
        if "wall-clock" in self.rules \
                and not rel.endswith(_WALL_CLOCK_EXEMPT_FILES):
            findings += self._check_wall_clock(tree, path)
        if "obs-unguarded" in self.rules \
                and not rel.startswith(_OBS_EXEMPT_PREFIX):
            findings += self._check_obs_unguarded(tree, path)
        if "kernel-mutation" in self.rules \
                and rel.startswith(_ABOVE_KERNEL_LAYERS):
            findings += self._check_kernel_mutation(tree, path)
        if "faultplan-validation" in self.rules:
            findings += self._check_faultplan(tree, path)
        if "clock-subscribe" in self.rules \
                and not rel.endswith(_CLOCK_SUBSCRIBE_EXEMPT_FILES):
            findings += self._check_clock_subscribe(tree, path)
        if "hub-emit-unguarded" in self.rules \
                and not rel.startswith(_HUB_EMIT_EXEMPT_PREFIX):
            findings += self._check_hub_emit(tree, path)
        findings = [f for f in findings
                    if f.rule not in allowed.get(f.line, ())
                    and f.rule not in allowed.get(f.line - 1, ())]
        return sorted(findings, key=lambda f: (f.line, f.col, f.rule))

    def check_file(self, path: str | Path,
                   root: str | Path | None = None) -> list[LintFinding]:
        """Lint one file; ``root`` anchors path-scoped rules."""
        path = Path(path)
        rel = (path.relative_to(root).as_posix() if root is not None
               else path.as_posix())
        return self.check_source(path.read_text(), str(path), rel)

    def check_tree(self, root: str | Path) -> list[LintFinding]:
        """Lint every ``*.py`` under ``root`` (sorted, deterministic).

        Path-scoped rules treat ``root``'s *parent* as the scan root
        when ``root`` itself is the ``repro`` package directory, so
        ``check_tree("src/repro")`` and ``check_tree("src")`` agree.
        """
        root = Path(root)
        anchor = root.parent if root.name == "repro" else root
        findings: list[LintFinding] = []
        for path in sorted(root.rglob("*.py")):
            findings += self.check_file(path, anchor)
        return findings

    # --------------------------------------------------------------- pragmas

    @staticmethod
    def _pragmas(source: str) -> dict[int, frozenset[str]]:
        """Per-line suppressions from ``# repro-lint: allow(...)``."""
        allowed: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _PRAGMA_RE.search(line)
            if match:
                names = frozenset(
                    part.strip() for part in match.group(1).split(",")
                    if part.strip())
                allowed[lineno] = names
        return allowed

    # ----------------------------------------------------------------- rules

    @staticmethod
    def _check_broad_except(tree: ast.AST,
                            path: str) -> list[LintFinding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try):
                continue
            protected = False
            for handler in node.handlers:
                names = _exc_names(handler.type)
                broad = handler.type is None or (names & _BROAD)
                if not broad:
                    if (names & _KILL_SAFE) and _reraises(handler):
                        protected = True
                    continue
                if protected or _reraises(handler):
                    continue
                caught = ("bare except" if handler.type is None
                          else f"except {'/'.join(sorted(names & _BROAD))}")
                findings.append(LintFinding(
                    path, handler.lineno, handler.col_offset,
                    "broad-except",
                    f"{caught} swallows ProcessKilled/KernelError; "
                    f"re-raise, or precede with "
                    f"`except ProcessKilled: raise`"))
        return findings

    @staticmethod
    def _import_aliases(tree: ast.AST) -> dict[str, str]:
        """Local name → dotted origin, from import statements."""
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.asname:
                        aliases[a.asname] = a.name
                    else:
                        # `import a.b` binds `a` (to package `a`).
                        head = a.name.split(".")[0]
                        aliases[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for a in node.names:
                    aliases[a.asname or a.name] = \
                        f"{node.module}.{a.name}"
        return aliases

    @classmethod
    def _resolve_call(cls, func: ast.expr,
                      aliases: dict[str, str]) -> str | None:
        """The dotted origin of a call target, through import aliases."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = aliases.get(node.id, node.id)
        return ".".join([head, *reversed(parts)])

    @classmethod
    def _check_wall_clock(cls, tree: ast.AST,
                          path: str) -> list[LintFinding]:
        aliases = cls._import_aliases(tree)
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = cls._resolve_call(node.func, aliases)
            if dotted is None:
                continue
            if dotted in _WALL_CLOCK_EXACT \
                    or dotted.startswith(_WALL_CLOCK_PREFIXES):
                findings.append(LintFinding(
                    path, node.lineno, node.col_offset, "wall-clock",
                    f"`{dotted}` is nondeterministic; use the SimClock "
                    f"or repro.sim.rng"))
        return findings

    @staticmethod
    def _check_obs_unguarded(tree: ast.AST,
                             path: str) -> list[LintFinding]:
        # Annotate parents so guards can be found lexically.
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                child._lint_parent = node  # type: ignore[attr-defined]
        findings = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("counter", "gauge", "histogram")
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr == "metrics"):
                continue
            # Guarded if any lexical ancestor `if` tests `....enabled`…
            guarded = False
            ancestor = getattr(node, "_lint_parent", None)
            func_scope = None
            while ancestor is not None:
                if isinstance(ancestor, ast.If) \
                        and _contains_enabled(ancestor.test):
                    guarded = True
                    break
                if func_scope is None and isinstance(
                        ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    func_scope = ancestor
                ancestor = getattr(ancestor, "_lint_parent", None)
            # …or the enclosing function bailed out early on `.enabled`.
            if not guarded and func_scope is not None:
                for stmt in func_scope.body:
                    if stmt.lineno >= node.lineno:
                        break
                    if isinstance(stmt, ast.If) \
                            and _contains_enabled(stmt.test) \
                            and stmt.body and isinstance(
                                stmt.body[-1],
                                (ast.Return, ast.Continue, ast.Raise)):
                        guarded = True
                        break
            if not guarded:
                findings.append(LintFinding(
                    path, node.lineno, node.col_offset, "obs-unguarded",
                    f"direct registry access "
                    f"`.metrics.{node.func.attr}(...)` records even "
                    f"while disabled; guard with `if ....enabled:` or "
                    f"use the self-guarding facade"))
        return findings

    @staticmethod
    def _check_kernel_mutation(tree: ast.AST,
                               path: str) -> list[LintFinding]:
        findings = []

        def is_self(expr: ast.expr) -> bool:
            node = expr
            while isinstance(node, ast.Attribute):
                node = node.value
            return isinstance(node, ast.Name) and node.id == "self"

        for node in ast.walk(tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and target.attr in _KERNEL_STATE_ATTRS \
                        and not is_self(target.value):
                    findings.append(LintFinding(
                        path, target.lineno, target.col_offset,
                        "kernel-mutation",
                        f"direct assignment to `.{target.attr}` of a "
                        f"kernel object; go through an audited kernel "
                        f"entry point"))
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _KERNEL_MUTATOR_METHODS \
                    and not is_self(node.func.value):
                findings.append(LintFinding(
                    path, node.lineno, node.col_offset,
                    "kernel-mutation",
                    f"direct call to kernel mutator "
                    f"`.{node.func.attr}()`; go through an audited "
                    f"kernel entry point"))
        return findings

    @staticmethod
    def _check_faultplan(tree: ast.AST, path: str) -> list[LintFinding]:
        findings = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.ClassDef)
                    and node.name == "FaultPlan"):
                continue
            fields: list[tuple[str, int, int]] = []
            post: ast.FunctionDef | None = None
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name):
                    name = stmt.target.id
                    if not name.startswith("_") and name != "stats":
                        fields.append((name, stmt.lineno,
                                       stmt.col_offset))
                elif isinstance(stmt, ast.FunctionDef) \
                        and stmt.name == "__post_init__":
                    post = stmt
            if post is None:
                if fields:
                    findings.append(LintFinding(
                        path, node.lineno, node.col_offset,
                        "faultplan-validation",
                        "FaultPlan has knobs but no __post_init__ "
                        "validating them"))
                continue
            # A knob counts as validated if __post_init__ reads it —
            # directly as `self.<knob>` or by name through getattr
            # (the string literal appears).
            seen: set[str] = set()
            for sub in ast.walk(post):
                if isinstance(sub, ast.Attribute) \
                        and isinstance(sub.value, ast.Name) \
                        and sub.value.id == "self":
                    seen.add(sub.attr)
                elif isinstance(sub, ast.Constant) \
                        and isinstance(sub.value, str):
                    seen.add(sub.value)
            for name, lineno, col in fields:
                if name not in seen:
                    findings.append(LintFinding(
                        path, lineno, col, "faultplan-validation",
                        f"FaultPlan knob `{name}` is never validated "
                        f"in __post_init__"))
        return findings


    @staticmethod
    def _check_clock_subscribe(tree: ast.AST,
                               path: str) -> list[LintFinding]:
        findings = []
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "subscribe"
                    and _last_name(node.func.value) in ("clock", "_clock")):
                findings.append(LintFinding(
                    path, node.lineno, node.col_offset, "clock-subscribe",
                    "per-charge `clock.subscribe(...)` re-runs every "
                    "watcher on every charge; schedule a calendar event "
                    "with `clock.schedule_after(...)` instead"))
        return findings


    @staticmethod
    def _check_hub_emit(tree: ast.AST, path: str) -> list[LintFinding]:
        def guards_hub(test: ast.expr) -> bool:
            # `....active` attribute, or the hub itself tested for
            # truthiness (EventHub.__bool__ returns `.active`).
            for sub in ast.walk(test):
                if isinstance(sub, ast.Attribute) and sub.attr == "active":
                    return True
                if _last_name(sub) in _HUB_NAMES:
                    return True
            return False

        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                child._lint_parent = node  # type: ignore[attr-defined]
        findings = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"
                    and _last_name(node.func.value) in _HUB_NAMES):
                continue
            guarded = False
            ancestor = getattr(node, "_lint_parent", None)
            func_scope = None
            while ancestor is not None:
                if isinstance(ancestor, ast.If) \
                        and guards_hub(ancestor.test):
                    guarded = True
                    break
                if func_scope is None and isinstance(
                        ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    func_scope = ancestor
                ancestor = getattr(ancestor, "_lint_parent", None)
            # …or the enclosing function bailed out early on the hub.
            if not guarded and func_scope is not None:
                for stmt in func_scope.body:
                    if stmt.lineno >= node.lineno:
                        break
                    if isinstance(stmt, ast.If) \
                            and guards_hub(stmt.test) \
                            and stmt.body and isinstance(
                                stmt.body[-1],
                                (ast.Return, ast.Continue, ast.Raise)):
                        guarded = True
                        break
            if not guarded:
                findings.append(LintFinding(
                    path, node.lineno, node.col_offset,
                    "hub-emit-unguarded",
                    "event-hub `.emit(...)` builds its event dict even "
                    "with nobody subscribed; guard with "
                    "`if ....active:` (or the hub's truthiness)"))
        return findings


def lint_paths(paths: Iterable[str | Path],
               rules: Iterable[str] | None = None) -> list[LintFinding]:
    """Lint files and/or trees; the one-call API the CLI and tests use."""
    linter = Linter(rules)
    findings: list[LintFinding] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            findings += linter.check_tree(path)
        else:
            findings += linter.check_file(path, path.parent)
    return findings
