"""Explorable scenarios: seeded race goldens and the CI exploration set.

Two families live here:

* **Seeded goldens** — ``unpin_vs_dma``, ``invalidate_vs_translate``,
  ``fault_service_vs_evict``.  Each schedules the two halves of a known
  hazard at the *same* calendar deadline, wired so the FIFO (identity)
  dispatch order is the safe protocol order: the default schedule is
  race-clean, and only a permuted tie-break runs the dangerous order.
  They are the detector's regression oracle: the explorer must find
  exactly the declared race class across its schedules, and must find
  nothing on identity (``Scenario.expect_races``).
* **Exploration workloads** — ``kill_sweep`` and ``odp_fault``: real
  registration/teardown and ODP fault/evict churn with daemons riding
  the calendar.  These are expected race-clean under every schedule and
  crash placement; CI runs them scaled by ``REPRO_RACE_SCHEDULES``.

Scenarios build a fresh Machine per run (the explorer executes them
dozens of times), attach the run *before* scheduling their callbacks —
``attach`` installs the tie-break seed, which only affects events
scheduled afterwards — and tear their world down so the post-run
sanitizer sweep is clean.
"""

from __future__ import annotations

from repro.errors import ProcessKilled, TranslationFault, ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.reaper import OrphanReaper
from repro.sim.faults import REGISTRATION_CRASH_POINTS, FaultPlan
from repro.via.machine import Machine

from .explore import ExploreRun, Scenario

#: every ODP crash point the kill-sweep scenario may be asked to place
_ODP_CRASH_POINTS = ("odp_fault.start", "odp_fault.pinned",
                     "odp_fault.patched")


# --------------------------------------------------------------- seeded races

def _build_unpin_vs_dma(run: ExploreRun) -> None:
    """A DMA and the unpin of its frame race at one deadline.

    FIFO order is transfer-then-unpin (the window closes before the pin
    drops — ordinary teardown).  A permuted schedule unpins first and
    then DMAs through the stale pin: the paper's central corruption.
    """
    kernel = Machine(name="race", num_frames=32, seed=0).kernel
    task = kernel.create_task(name="app")
    va = task.mmap(1)
    task.write(va, b"payload")
    frame = kernel.pin_user_page(task, va // PAGE_SIZE)
    run.attach(kernel)

    def dma_cb(now: int) -> None:
        kernel.dma.read(frame * PAGE_SIZE, 64)

    def unpin_cb(now: int) -> None:
        kernel.unpin_user_page(frame, task.pid)

    kernel.clock.schedule_after(1_000, dma_cb, name="dma")
    kernel.clock.schedule_after(1_000, unpin_cb, name="unpin")
    kernel.clock.charge(1_000, "scenario")


def _build_invalidate_vs_translate(run: ExploreRun) -> None:
    """A TPT translation races the invalidation of the same entries.

    FIFO order translates first, then invalidates (teardown after use).
    Permuted, the translation runs against already-invalidated entries:
    it faults, re-services, and retries — a use-after-invalidate with no
    ordering edge, which the engine reports even though the simulated
    NIC survived it.
    """
    m = Machine(name="race", backend="odp", num_frames=64, seed=0)
    task = m.spawn("app")
    ua = m.user_agent(task)
    va = task.mmap(2)
    reg = ua.register_mem(va, 2 * PAGE_SIZE)
    m.agent.service_translation_fault(reg.handle, (0,))
    run.attach(m)
    tpt = m.nic.tpt
    tag = reg.region.prot_tag

    def translate_cb(now: int) -> None:
        try:
            tpt.translate(reg.handle, va, 16, tag)
        except TranslationFault as fault:
            m.agent.service_translation_fault(reg.handle, fault.pages)
            tpt.translate(reg.handle, va, 16, tag)

    def invalidate_cb(now: int) -> None:
        tpt.invalidate_pages(reg.handle, [0])

    m.kernel.clock.schedule_after(1_000, translate_cb, name="translate")
    m.kernel.clock.schedule_after(1_000, invalidate_cb, name="invalidate")
    m.kernel.clock.charge(1_000, "scenario")
    ua.deregister_mem(reg)


def _build_fault_service_vs_evict(run: ExploreRun) -> None:
    """An ODP fault service races pressure eviction of the same frame.

    FIFO order evicts first (fence, unpin) and the service then
    re-faults the page — ordered through the fence edge.  Permuted, the
    service answers from a frame the eviction is concurrently tearing
    down, with no edge between them.
    """
    m = Machine(name="race", backend="odp", num_frames=64, seed=0)
    task = m.spawn("app")
    ua = m.user_agent(task)
    va = task.mmap(1)
    reg = ua.register_mem(va, PAGE_SIZE)
    frame = m.agent.service_translation_fault(reg.handle, (0,))[0]
    run.attach(m)

    def service_cb(now: int) -> None:
        m.agent.service_translation_fault(reg.handle, (0,))

    def evict_cb(now: int) -> None:
        m.agent.try_evict_frame(frame)

    m.kernel.clock.schedule_after(1_000, evict_cb, name="evict")
    m.kernel.clock.schedule_after(1_000, service_cb, name="service")
    m.kernel.clock.charge(1_000, "scenario")
    ua.deregister_mem(reg)


# -------------------------------------------------------- exploration set

def _build_kill_sweep(run: ExploreRun) -> None:
    """Registration/teardown with an orphan reaper, killed at the run's
    crash point.  Every pin the victim leaves behind flows to the
    reaper's calendar context — whose ordering edges must make the
    sweep race-clean under every schedule."""
    m = Machine(name="sweep", backend="kiobuf", seed=0)
    run.attach(m)
    reaper = OrphanReaper(m.kernel, interval_ns=10_000).start()
    victim = m.spawn("victim")
    ua = m.user_agent(victim)
    if run.crash_point is not None:
        m.inject_faults(FaultPlan(seed=0, crash_point=run.crash_point,
                                  crash_pid=victim.pid))
    va = victim.mmap(4)
    victim.touch_pages(va, 4)
    try:
        reg = ua.register_mem(va, 4 * PAGE_SIZE)
        ua.deregister_mem(reg)
    except ProcessKilled:
        pass                       # exit path ran; the reaper converges
    for _ in range(4):
        m.kernel.clock.charge(10_000, "scenario")
    reaper.stop()


def _build_odp_fault(run: ExploreRun) -> None:
    """ODP fault/evict churn on the calendar: touchers fault pages in
    two per deadline — mostly on distinct pages (non-conflicting tie
    groups the DPOR pruner should skip), once on the *same* page (a
    conflicting tie that forces a permuted schedule to actually run) —
    while an evictor applies pressure on an offset cadence.  The
    protocol's ordering edges must keep every schedule race-clean."""
    m = Machine(name="odp", backend="odp", num_frames=96, seed=0)
    task = m.spawn("app")
    ua = m.user_agent(task)
    va = task.mmap(8)
    reg = ua.register_mem(va, 8 * PAGE_SIZE)
    run.attach(m)
    frames = reg.region.frames

    def touch(page: int):
        def cb(now: int) -> None:
            try:
                m.agent.service_translation_fault(reg.handle, (page,))
            except ViaError:       # deregistered under a crash placement
                pass
        return cb

    def evict_cb(now: int) -> None:
        resident = [f for f in frames if f >= 0]
        if resident:
            m.agent.try_evict_frame(resident[0])

    clock = m.kernel.clock
    for k in range(4):
        base = 10_000 * (k + 1)
        first = 2 * k % 8
        second = first if k == 2 else (2 * k + 1) % 8
        clock.schedule_at(base, touch(first), name=f"touch{k}a")
        clock.schedule_at(base, touch(second), name=f"touch{k}b")
        clock.schedule_at(base + 5_000, evict_cb, name=f"evict{k}")
    clock.charge(50_000, "scenario")
    ua.deregister_mem(reg)


# ------------------------------------------------------------------ registry

SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in (
        Scenario(
            name="unpin_vs_dma",
            build=_build_unpin_vs_dma,
            expect_races=("unpin-vs-dma",),
            description="seeded: DMA vs unpin of its frame at one tie"),
        Scenario(
            name="invalidate_vs_translate",
            build=_build_invalidate_vs_translate,
            expect_races=("invalidate-vs-translate",),
            description="seeded: TPT translate vs page invalidation"),
        Scenario(
            name="fault_service_vs_evict",
            build=_build_fault_service_vs_evict,
            expect_races=("fault-service-vs-evict",),
            description="seeded: ODP fault-in vs pressure eviction"),
        Scenario(
            name="kill_sweep",
            build=_build_kill_sweep,
            crash_points=REGISTRATION_CRASH_POINTS,
            description="registration churn + reaper under kills"),
        Scenario(
            name="odp_fault",
            build=_build_odp_fault,
            crash_points=_ODP_CRASH_POINTS,
            description="ODP fault/evict churn on the calendar"),
    )
}
