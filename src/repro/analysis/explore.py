"""Schedule exploration: run one scenario over many legal schedules.

The race engine (:mod:`repro.analysis.races`) finds conflicting
accesses with no ordering edge — but only among the events one run
actually dispatches.  The explorer turns that into systematic coverage:
it re-runs a scenario over *K* permuted same-deadline dispatch orders
(via :meth:`SimClock.set_tiebreak`) and over every instrumented
crash-point placement, feeding each run through a fresh
:class:`RaceDetector` and a fresh (non-strict)
:class:`~repro.analysis.sanitizer.PinSanitizer`, and folds the verdicts
into one :class:`ExploreReport`.

DPOR-lite pruning
-----------------

:func:`tiebreak_key` is a pure function of ``(seed, seq)``, so the
permutation a candidate seed induces on the identity run's recorded tie
groups can be *predicted* without running it.  A candidate is pruned
when

* its predicted schedule equals one already executed (different seeds
  often hash to the same small permutation), or
* its first divergence from the identity schedule only swaps events
  whose recorded location sets are disjoint — reordering
  non-conflicting events cannot change the race verdict (the classic
  partial-order-reduction argument, applied at tie-group granularity).

This is deliberately *lite*: location sets come from the identity run,
so a permutation that makes an event touch new locations could in
principle be pruned wrongly; scenarios whose callbacks touch a fixed
working set (all of ours) are exact.

Scenario contract
-----------------

A :class:`Scenario` wraps a build function receiving one
:class:`ExploreRun`.  The build function constructs its world, calls
:meth:`ExploreRun.attach` on the Machine / Cluster / Kernel (arming the
detector + sanitizer and installing the run's tie-break seed on the
clock), runs the workload — consulting :attr:`ExploreRun.crash_point`
to place a :class:`~repro.sim.faults.FaultPlan` — and handles its own
teardown of expected kills.  ``ProcessKilled`` escaping the build is
recorded as outcome ``"killed"``; other :class:`ReproError`s as
``"error:<Type>"``; anything else propagates (a scenario bug).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ProcessKilled, ReproError
from repro.sim.clock import SimClock, tiebreak_key

from .races import RaceDetector, RaceViolation
from .sanitizer import PinSanitizer, Violation


@dataclass(frozen=True)
class Scenario:
    """One explorable workload."""

    name: str
    build: Callable[["ExploreRun"], Any]
    #: crash points the explorer places (one run per point)
    crash_points: tuple[str, ...] = ()
    #: race kinds this scenario *seeds* on purpose: the explorer must
    #: find exactly these across all schedules (and none on identity)
    expect_races: tuple[str, ...] = ()
    description: str = ""


class ExploreRun:
    """Per-run handle passed to a scenario's build function."""

    def __init__(self, seed: int | None, crash_point: str | None) -> None:
        self.tiebreak_seed = seed
        self.crash_point = crash_point
        self.detector = RaceDetector(strict=False)
        self.sanitizer = PinSanitizer(strict=False)
        self._clocks: list[SimClock] = []

    def attach(self, target: Any) -> Any:
        """Arm the race detector and sanitizer on ``target`` (Machine,
        Cluster, or Kernel) and install this run's tie-break seed on
        every reachable clock.  Returns ``target`` for chaining."""
        self.detector.arm(target)
        self.sanitizer.arm(target)
        for clock in self._clocks_of(target):
            if clock not in self._clocks:
                clock.set_tiebreak(self.tiebreak_seed)
                self._clocks.append(clock)
        return target

    @staticmethod
    def _clocks_of(target: Any) -> list[SimClock]:
        from repro.via.machine import Cluster, Machine
        if isinstance(target, Cluster):
            return [target.clock]
        if isinstance(target, Machine):
            return [target.kernel.clock]
        return [target.clock]

    def detach(self) -> None:
        """Disarm both checkers and restore FIFO tie-break order."""
        if self.detector.armed:
            self.detector.disarm()
        if self.sanitizer.armed:
            self.sanitizer.disarm()
        for clock in self._clocks:
            clock.set_tiebreak(None)


@dataclass
class ScheduleResult:
    """Verdict of one (schedule, crash point) execution."""

    seed: int | None               #: tie-break seed (None = identity/FIFO)
    crash_point: str | None
    outcome: str                   #: "ok" | "killed" | "error:<Type>"
    races: list[RaceViolation] = field(default_factory=list)
    san_violations: list[Violation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.races and not self.san_violations

    def to_payload(self) -> dict:
        """JSON-able summary of this run's verdict."""
        return {
            "seed": self.seed,
            "crash_point": self.crash_point,
            "outcome": self.outcome,
            "races": [{"race": r.race, "location": list(r.location),
                       "prior_actor": r.prior_actor,
                       "current_actor": r.current_actor,
                       "message": r.message} for r in self.races],
            "sanitizer": [{"check": v.check, "message": v.message}
                          for v in self.san_violations],
        }


@dataclass
class ExploreConfig:
    """Knobs for one exploration."""

    #: total schedules to attempt, identity included (before pruning)
    schedules: int = 8
    #: run every crash point under every surviving seed, not just FIFO
    crash_with_schedules: bool = False
    #: enable DPOR-lite pruning of predicted-equivalent seeds
    dpor: bool = True
    #: first candidate seed (seeds are consecutive integers)
    seed_base: int = 1


@dataclass
class ExploreReport:
    """Everything one exploration learned."""

    scenario: str
    results: list[ScheduleResult]
    pruned: int                    #: candidate seeds skipped by DPOR-lite
    #: identity run's tie groups: (deadline, [(seq, locations), ...])
    groups: list = field(default_factory=list)

    @property
    def schedules_run(self) -> int:
        return len(self.results)

    @property
    def race_kinds_found(self) -> set[str]:
        return {r.race for res in self.results for r in res.races}

    @property
    def identity_result(self) -> ScheduleResult:
        return self.results[0]

    def to_payload(self) -> dict:
        """JSON-able summary (the ``RACE_REPORT.json`` artifact)."""
        return {
            "scenario": self.scenario,
            "schedules_run": self.schedules_run,
            "pruned": self.pruned,
            "tie_groups": len(self.groups),
            "race_kinds_found": sorted(self.race_kinds_found),
            "identity_clean": self.identity_result.clean,
            "results": [r.to_payload() for r in self.results],
        }


def run_one(scenario: Scenario, seed: int | None = None,
            crash_point: str | None = None) -> tuple[ScheduleResult,
                                                     ExploreRun]:
    """Execute ``scenario`` once under one (seed, crash point) pair."""
    run = ExploreRun(seed, crash_point)
    outcome = "ok"
    try:
        scenario.build(run)
    except ProcessKilled:
        outcome = "killed"
    except ReproError as exc:
        outcome = f"error:{type(exc).__name__}"
    finally:
        run.detach()
    result = ScheduleResult(
        seed=seed, crash_point=crash_point, outcome=outcome,
        races=list(run.detector.races),
        san_violations=list(run.sanitizer.violations))
    return result, run


def _predicted_signature(groups: list, seed: int) -> tuple:
    """The per-group dispatch orders ``seed`` would induce."""
    return tuple(
        tuple(seq for seq in sorted(
            (s for s, _locs in members), key=lambda s: tiebreak_key(seed, s)))
        for _deadline, members in groups)


def _first_divergence_conflicts(groups: list, predicted: tuple,
                                identity: tuple) -> bool:
    """Does the first group where ``predicted`` differs from
    ``identity`` reorder at least one pair of location-overlapping
    events?"""
    for (_deadline, members), pred, ident in zip(groups, predicted,
                                                 identity):
        if pred == ident:
            continue
        locs = {seq: frozenset(l) for seq, l in members}
        ident_pos = {seq: i for i, seq in enumerate(ident)}
        pred_pos = {seq: i for i, seq in enumerate(pred)}
        for i, a in enumerate(ident):
            for b in ident[i + 1:]:
                inverted = (pred_pos[a] > pred_pos[b]) != (
                    ident_pos[a] > ident_pos[b])
                if inverted and locs[a] & locs[b]:
                    return True
        return False
    return False


def explore(scenario: Scenario,
            config: ExploreConfig | None = None) -> ExploreReport:
    """Run ``scenario`` over permuted schedules and crash placements."""
    config = config if config is not None else ExploreConfig()
    results: list[ScheduleResult] = []
    pruned = 0

    identity, identity_run = run_one(scenario)
    results.append(identity)
    groups = identity_run.detector.dispatch_groups()
    identity_sig = tuple(tuple(seq for seq, _l in members)
                         for _deadline, members in groups)

    executed_sigs = {identity_sig}
    surviving_seeds: list[int] = []
    for seed in range(config.seed_base,
                      config.seed_base + max(0, config.schedules - 1)):
        if config.dpor and groups:
            sig = _predicted_signature(groups, seed)
            if sig in executed_sigs:
                pruned += 1
                continue
            if not _first_divergence_conflicts(groups, sig, identity_sig):
                pruned += 1
                continue
            executed_sigs.add(sig)
        surviving_seeds.append(seed)
        result, _run = run_one(scenario, seed=seed)
        results.append(result)

    for point in scenario.crash_points:
        result, _run = run_one(scenario, crash_point=point)
        results.append(result)
        if config.crash_with_schedules:
            for seed in surviving_seeds:
                result, _run = run_one(scenario, seed=seed,
                                       crash_point=point)
                results.append(result)

    return ExploreReport(scenario=scenario.name, results=results,
                         pruned=pruned, groups=groups)
