"""The orphan reaper: a periodic kernel daemon converging leaked state.

A clean process exit reclaims everything through the driver exit hooks
— but teardown can be buggy (``Kernel.kill(pid, cleanup=False)``), a
crash can land between a pin and its registration record, and a backend
can transiently fail to unlock.  The reaper is the backstop: like
``paging.try_to_free_pages`` it runs periodically (as a calendar event
on the sim clock, rescheduling itself every ``interval_ns`` — or
drafted directly by ``try_to_free_pages`` when ordinary reclaim falls
short) and scans for

* registrations whose owning pid is dead (stale TPT entries included),
* kiobufs pinning pages for a dead pid with no backing registration,
* VIs owned by a dead pid (peers complete ``VIP_ERROR_CONN_LOST``),
* descriptors older than a configurable deadline,
* orphan frames (swap_out's unmapped-but-referenced leftovers) that no
  live registration explains,
* pinned frames no live registration or kiobuf explains.

Every reclaim attempt is retried with exponential backoff; after
``max_attempts`` failures the reaper escalates to force-dropping the
record (:meth:`~repro.via.kernel_agent.KernelAgent.forget_registration`)
so even a permanently failing backend converges to a clean TPT.  Each
scan produces a :class:`ReaperReport` of what it found and freed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.analysis.events import UNPIN
from repro.errors import ReproError
from repro.sim.clock import ScheduledEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.via.kernel_agent import KernelAgent


@dataclass
class ReaperReport:
    """What one reaper scan found and reclaimed."""

    scan_index: int = 0
    now_ns: int = 0
    registrations_reclaimed: int = 0
    registrations_forced: int = 0        #: forget_registration escalations
    kiobufs_reclaimed: int = 0
    vis_reclaimed: int = 0
    descriptors_flushed: int = 0         #: past the descriptor deadline
    orphan_frames_freed: int = 0
    pins_force_released: int = 0
    frames_freed: int = 0                #: net frames returned to the free list
    failures: int = 0                    #: reclaim attempts that raised
    deferred: int = 0                    #: items still in their backoff window
    notes: list[str] = field(default_factory=list)
    #: reclaimed items by owning pid (items with an identifiable owner:
    #: registrations, kiobufs, VIs, flushed descriptors)
    reclaimed_by_pid: dict[int, int] = field(default_factory=dict)
    #: the same, attributed to the owning tenant's uid — so obs and the
    #: soak harness can tell *which tenant's* debris the reaper is
    #: cleaning up
    reclaimed_by_uid: dict[int, int] = field(default_factory=dict)

    @property
    def reclaimed_total(self) -> int:
        return (self.registrations_reclaimed + self.registrations_forced
                + self.kiobufs_reclaimed + self.vis_reclaimed
                + self.descriptors_flushed + self.orphan_frames_freed
                + self.pins_force_released)

    def attribute(self, pid: int | None, uid: int | None,
                  n: int = 1) -> None:
        """Charge ``n`` reclaimed items to their owner.  Items with no
        identifiable owner (orphan frames, unexplained pins) pass None
        and stay unattributed."""
        if n <= 0:
            return
        if pid is not None:
            self.reclaimed_by_pid[pid] = (
                self.reclaimed_by_pid.get(pid, 0) + n)
        if uid is not None:
            self.reclaimed_by_uid[uid] = (
                self.reclaimed_by_uid.get(uid, 0) + n)


@dataclass
class _Backoff:
    """Per-item retry state."""

    attempts: int = 0
    next_due_ns: int = 0


class OrphanReaper:
    """Periodic scanner reclaiming state leaked past a process's death."""

    def __init__(self, kernel: "Kernel",
                 agents: "list[KernelAgent] | tuple[KernelAgent, ...]" = (),
                 *,
                 interval_ns: int = 1_000_000,
                 descriptor_deadline_ns: int | None = None,
                 max_attempts: int = 3,
                 backoff_base_ns: int = 10_000) -> None:
        self.kernel = kernel
        self.agents = list(agents)
        self.interval_ns = interval_ns
        #: flush descriptors posted longer ago than this (None = never)
        self.descriptor_deadline_ns = descriptor_deadline_ns
        self.max_attempts = max_attempts
        self.backoff_base_ns = backoff_base_ns
        self.scans = 0
        self.last_report: ReaperReport | None = None
        self._backoff: dict[tuple, _Backoff] = {}
        self._next_due_ns = 0
        self._in_scan = False
        #: pending calendar event, if any
        self._event: ScheduledEvent | None = None
        #: calendar-shard label: all of this reaper's events carry it,
        #: so one host's teardown on a shared cluster clock cancels only
        #: its own daemon (SimClock.cancel_shard).
        self.shard = f"reaper@{id(kernel):#x}"
        # try_to_free_pages drafts the attached reaper directly.
        kernel.reaper = self

    # ------------------------------------------------------------- scheduling

    def start(self) -> "OrphanReaper":
        """Run as a daemon: scan every ``interval_ns`` of simulated time.

        Rides the clock's event calendar: one pending event at a time,
        rescheduled after each firing.  (The legacy per-charge
        ``clock.subscribe`` cadence was retired once E18 established the
        A/B baseline — the calendar is the only model now.)
        """
        if self._event is None or not self._event.pending:
            self._event = self.kernel.clock.schedule_after(
                self.interval_ns, self._on_event,
                name="reaper.cadence", shard=self.shard)
        return self

    def stop(self) -> None:
        """Stop the periodic scans (manual ``scan()`` still works)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _on_event(self, now_ns: int) -> None:
        """Calendar-event cadence with fire-once catch-up semantics.

        A single large charge that jumps past several intervals delivers
        one firing, possibly well past the deadline; the daemon scans
        once and realigns the next deadline from *now* rather than
        replaying the missed intervals.  If ``try_to_free_pages``
        drafted a scan since this event was scheduled (pushing
        ``_next_due_ns`` into the future), the firing is a no-op and the
        event realigns to that deadline instead of scanning early.
        """
        self._event = None
        clock = self.kernel.clock
        if not self._in_scan and clock.now_ns >= self._next_due_ns:
            self.scan()     # sets _next_due_ns = now + interval_ns
        deadline = max(self._next_due_ns, clock.now_ns + 1)
        self._event = clock.schedule_at(
            deadline, self._on_event,
            name="reaper.cadence", shard=self.shard)

    def run_if_due(self) -> ReaperReport | None:
        """Scan iff the cadence interval has elapsed since the last scan."""
        if self._in_scan or self.kernel.clock.now_ns < self._next_due_ns:
            return None
        return self.scan()

    # ------------------------------------------------------------------ scan

    def scan(self) -> ReaperReport:
        """One full reaper pass; returns what it found and reclaimed."""
        kernel = self.kernel
        report = ReaperReport(scan_index=self.scans,
                              now_ns=kernel.clock.now_ns)
        self.scans += 1
        self._in_scan = True
        free_before = kernel.pagemap.free_count
        try:
            self._reap_dead_registrations(report)
            self._reap_dead_kiobufs(report)
            self._reap_dead_vis(report)
            self._reap_stale_descriptors(report)
            self._reap_orphan_frames(report)
            self._reap_unexplained_pins(report)
        finally:
            self._in_scan = False
        kernel.clock.charge(kernel.costs.syscall_ns, "reaper")
        self._next_due_ns = kernel.clock.now_ns + self.interval_ns
        report.frames_freed = max(
            0, kernel.pagemap.free_count - free_before)
        self.last_report = report
        obs = kernel.obs
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("kernel.reaper.scans").inc()
            metrics.counter("kernel.reaper.reclaimed").inc(
                report.reclaimed_total)
            metrics.counter("kernel.reaper.frames_freed").inc(
                report.frames_freed)
            metrics.counter("kernel.reaper.failures").inc(report.failures)
            metrics.counter("kernel.reaper.deferred").inc(report.deferred)
            metrics.counter("kernel.reaper.forced").inc(
                report.registrations_forced)
            for uid, n in report.reclaimed_by_uid.items():
                metrics.counter(
                    f"kernel.reaper.tenant.{uid}.reclaimed").inc(n)
        if report.reclaimed_total or report.failures:
            kernel.trace.emit("reaper_scan", scan=report.scan_index,
                              reclaimed=report.reclaimed_total,
                              frames_freed=report.frames_freed,
                              failures=report.failures,
                              deferred=report.deferred)
        return report

    # -------------------------------------------------------------- helpers

    def _alive(self, pid: int) -> bool:
        return any(t.pid == pid for t in self.kernel.tasks)

    def _uid_of(self, pid: int) -> int | None:
        """Resolve a (possibly dead) pid to its tenant uid through the
        agents' tenant services, which keep pid→uid past death exactly
        for this posthumous attribution."""
        for agent in self.agents:
            uid = agent.tenants.uid_of(pid)
            if uid is not None:
                return uid
        return None

    def _reg_uid(self, reg) -> int | None:
        """A registration's tenant (falling back to the pid map for
        records predating uid tracking)."""
        return reg.uid if reg.uid >= 0 else self._uid_of(reg.pid)

    def _attempt(self, key: tuple, action: Callable[[], None],
                 report: ReaperReport) -> bool:
        """Run one reclaim action under retry accounting.

        Failures are recorded with exponential backoff
        (``base * 2**(attempts-1)``); while an item is inside its backoff
        window it is deferred, not retried.  Returns True iff the action
        succeeded (clearing any backoff state for the item).
        """
        state = self._backoff.get(key)
        now = self.kernel.clock.now_ns
        if state is not None and now < state.next_due_ns:
            report.deferred += 1
            return False
        try:
            action()
        except ReproError as exc:
            if state is None:
                state = self._backoff[key] = _Backoff()
            state.attempts += 1
            delay = self.backoff_base_ns * (2 ** (state.attempts - 1))
            state.next_due_ns = now + delay
            report.failures += 1
            report.notes.append(f"{key}: {exc}")
            self.kernel.trace.emit("reaper_retry", item=str(key),
                                   attempts=state.attempts,
                                   backoff_ns=delay, error=str(exc))
            return False
        self._backoff.pop(key, None)
        return True

    def _attempts_of(self, key: tuple) -> int:
        state = self._backoff.get(key)
        return state.attempts if state is not None else 0

    # ---------------------------------------------------------- scan phases

    def _reap_dead_registrations(self, report: ReaperReport) -> None:
        """TPT entries whose owning pid is dead."""
        for agent in self.agents:
            for reg in list(agent.registrations.values()):
                if self._alive(reg.pid):
                    continue
                key = ("reg", id(agent), reg.handle)
                if self._attempts_of(key) >= self.max_attempts:
                    # The backend keeps failing: force the stale TPT
                    # entry out and let the pin scans mop up.
                    agent.forget_registration(reg.handle)
                    self._backoff.pop(key, None)
                    report.registrations_forced += 1
                    report.attribute(reg.pid, self._reg_uid(reg))
                    report.notes.append(
                        f"forced handle {reg.handle} of dead pid "
                        f"{reg.pid} after {self.max_attempts} attempts")
                    continue
                handle = reg.handle
                if self._attempt(key,
                                 lambda a=agent, h=handle:
                                 a.reclaim_registration(h),
                                 report):
                    report.registrations_reclaimed += 1
                    report.attribute(reg.pid, self._reg_uid(reg))

    def _reap_dead_kiobufs(self, report: ReaperReport) -> None:
        """Kiobufs pinning pages for a dead pid.

        A kiobuf still referenced as some recorded registration's lock
        cookie is skipped — the registration phase owns it (unmapping it
        underneath would corrupt that deregistration's retry).
        """
        referenced = {id(reg.region.lock_cookie)
                      for agent in self.agents
                      for reg in agent.registrations.values()}
        for kio in list(self.kernel.kiobufs.values()):
            if not kio.mapped or self._alive(kio.pid):
                continue
            if id(kio) in referenced:
                continue
            key = ("kio", kio.kiobuf_id)
            if self._attempt(key,
                             lambda k=kio: self.kernel.unmap_kiobuf(k),
                             report):
                report.kiobufs_reclaimed += 1
                report.attribute(kio.pid, self._uid_of(kio.pid))

    def _reap_dead_vis(self, report: ReaperReport) -> None:
        """VIs owned by a dead pid; also drops its protection tag."""
        for agent in self.agents:
            nic = agent.nic
            for vi in list(nic.vis.values()):
                if self._alive(vi.owner_pid):
                    continue
                key = ("vi", nic.name, vi.vi_id)
                if self._attempt(key,
                                 lambda n=nic, v=vi.vi_id:
                                 n.teardown_vi(v, reason="reaper"),
                                 report):
                    report.vis_reclaimed += 1
                    report.attribute(vi.owner_pid,
                                     self._uid_of(vi.owner_pid))
            for pid in [p for p in agent._tags if not self._alive(p)]:
                agent._tags.pop(pid, None)

    def _reap_stale_descriptors(self, report: ReaperReport) -> None:
        """Descriptors posted longer ago than the configured deadline.

        Flushing completes them with ``VIP_ERROR_CONN_LOST`` so a poller
        learns its transfer died of old age instead of waiting forever.
        """
        deadline = self.descriptor_deadline_ns
        if deadline is None:
            return
        cutoff = self.kernel.clock.now_ns - deadline
        for agent in self.agents:
            for vi in list(agent.nic.vis.values()):
                for queue, complete in ((vi.send_queue, vi.complete_send),
                                        (vi.recv_queue, vi.complete_recv)):
                    expired = [d for d in queue
                               if d.posted_at_ns is not None
                               and d.posted_at_ns <= cutoff]
                    for desc in expired:
                        queue.remove(desc)
                        desc.complete("VIP_ERROR_CONN_LOST", 0)
                        complete(desc)
                        report.descriptors_flushed += 1
                        report.attribute(vi.owner_pid,
                                         self._uid_of(vi.owner_pid))
                        self.kernel.trace.emit(
                            "reaper_descriptor_flush", vi=vi.vi_id,
                            posted_at_ns=desc.posted_at_ns,
                            age_ns=self.kernel.clock.now_ns
                            - desc.posted_at_ns)

    def _live_registration_frames(self) -> set[int]:
        return {frame
                for agent in self.agents
                for reg in agent.registrations.values()
                for frame in reg.region.frames}

    def _reap_orphan_frames(self, report: ReaperReport) -> None:
        """swap_out's orphans — unmapped frames kept alive by leaked
        references — that no recorded registration still explains.

        Frames a recorded registration names are left alone: its
        eventual deregistration will drop the reference itself, and
        freeing underneath it would underflow.
        """
        explained = self._live_registration_frames()
        table = self.kernel.pagemap.table
        # Candidate-set sweep: only frames whose tag is "orphan" are in
        # the set, so this is O(orphans) instead of O(frames).
        for frame in sorted(table.orphan_candidates):
            if (table.counts[frame] <= 0
                    or table.pin_counts[frame] > 0
                    or table.mappings[frame] is not None
                    or frame in explained):
                continue
            key = ("orphan", frame)
            if self._attempt(key,
                             lambda f=frame:
                             self._free_orphan(f),
                             report):
                report.orphan_frames_freed += 1

    def _free_orphan(self, frame: int) -> None:
        pd = self.kernel.pagemap.page(frame)
        # Every remaining reference is leaked by definition (unmapped,
        # unpinned, unregistered): drop them all.
        while pd.count > 0:
            if self.kernel.pagemap.put_page(frame):
                break
        self.kernel.trace.emit("reaper_orphan_freed", frame=frame)

    def _reap_unexplained_pins(self, report: ReaperReport) -> None:
        """Pinned frames with no backing registration or kiobuf.

        A pin only the leak created keeps the frame unreclaimable
        forever, so after ``max_attempts`` consecutive sightings (spaced
        by the backoff schedule — a transiently in-flight pin must not
        be stripped) the excess pins are force-released.
        """
        expected: Counter[int] = Counter()
        for agent in self.agents:
            for reg in agent.registrations.values():
                for frame in reg.region.frames:
                    expected[frame] += 1
        for kio in self.kernel.kiobufs.values():
            if kio.mapped:
                for frame in kio.frames:
                    expected[frame] += 1
        now = self.kernel.clock.now_ns
        pagemap = self.kernel.pagemap
        excess_frames: set[int] = set()
        # Pinned-set sweep: frames with zero pins can never have excess,
        # so only the incrementally maintained pinned set is visited.
        for frame in pagemap.pinned_frames():
            pd = pagemap.page(frame)
            excess = pd.pin_count - expected.get(frame, 0)
            if excess <= 0:
                self._backoff.pop(("pin", frame), None)
                continue
            excess_frames.add(frame)
            key = ("pin", frame)
            state = self._backoff.get(key)
            if state is None:
                state = self._backoff[key] = _Backoff()
            if now < state.next_due_ns:
                report.deferred += 1
                continue
            state.attempts += 1
            if state.attempts < self.max_attempts:
                state.next_due_ns = now + self.backoff_base_ns * (
                    2 ** (state.attempts - 1))
                report.deferred += 1
                continue
            for _ in range(excess):
                pd.unpin()
            if self.kernel.events.active:
                self.kernel.events.emit(
                    UNPIN, frames=(pd.frame,) * excess, pid=None,
                    actor="reaper")
            self._backoff.pop(key, None)
            excess_frames.discard(frame)
            report.pins_force_released += excess
            self.kernel.trace.emit("reaper_pin_released", frame=pd.frame,
                                   excess=excess,
                                   sightings=state.attempts)
        # A frame unpinned since its last sighting leaves the pinned set
        # without passing through the excess<=0 branch above; drop its
        # stale backoff so a future, unrelated leak starts fresh.
        for key in [k for k in self._backoff
                    if k[0] == "pin" and k[1] not in excess_frames]:
            self._backoff.pop(key)
