"""RAW I/O — the subsystem kiobufs were invented for.

Section 4.2: "The RAW I/O mechanism was introduced to the Linux kernel
by Stephen C. Tweedie of RedHat in order to accelerate SCSI disk
accesses.  Traditional implementations first read data from disk to
kernel buffers and then copy it to the user buffer."

This module provides both paths over a simulated block device, so the
repository contains the mechanism's *original* consumer alongside the
paper's new one (VIA registration) — and so the cost difference the
kiobuf design exists for is measurable:

* :func:`buffered_read` / :func:`buffered_write` — the traditional path:
  disk ↔ a page-cache buffer ↔ CPU copy ↔ user memory;
* :func:`raw_read` / :func:`raw_write` — the kiobuf path: map the user
  buffer with ``map_user_kiobuf`` and DMA the disk transfer **directly**
  into the pinned user pages, zero copies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvalidArgument
from repro.hw.physmem import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


class BlockDevice:
    """A page-granular simulated disk (the "SCSI device")."""

    def __init__(self, kernel: "Kernel", num_blocks: int = 1024) -> None:
        self.kernel = kernel
        self.num_blocks = num_blocks
        self._blocks: dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0

    def _check(self, block: int) -> None:
        if not (0 <= block < self.num_blocks):
            raise InvalidArgument(
                f"block {block} outside device (0..{self.num_blocks - 1})")

    def read_block(self, block: int) -> bytes:
        """Read one block (charges disk I/O)."""
        self._check(block)
        self.kernel.clock.charge(self.kernel.costs.disk_io_page_ns,
                                 "disk_io")
        self.reads += 1
        return self._blocks.get(block, bytes(PAGE_SIZE))

    def write_block(self, block: int, data: bytes) -> None:
        """Write one block (charges disk I/O)."""
        self._check(block)
        if len(data) > PAGE_SIZE:
            raise InvalidArgument("block write exceeds block size")
        self.kernel.clock.charge(self.kernel.costs.disk_io_page_ns,
                                 "disk_io")
        self.writes += 1
        self._blocks[block] = bytes(data).ljust(PAGE_SIZE, b"\x00")


def _block_range(va: int, nbytes: int) -> int:
    if nbytes <= 0 or nbytes % PAGE_SIZE or va % PAGE_SIZE:
        raise InvalidArgument(
            "raw I/O requires page-aligned address and length")
    return nbytes // PAGE_SIZE


# ---------------------------------------------------------------------------
# Traditional buffered path
# ---------------------------------------------------------------------------

def buffered_read(kernel: "Kernel", task: "Task", dev: BlockDevice,
                  block: int, va: int, nbytes: int) -> None:
    """disk → page-cache buffer → CPU copy → user memory."""
    kernel.clock.charge(kernel.costs.syscall_ns, "rawio")
    nblocks = _block_range(va, nbytes)
    for i in range(nblocks):
        buf = kernel.add_page_cache_page()
        data = dev.read_block(block + i)
        kernel.phys.write_frame(buf.frame, data)
        # The copy the kiobuf path eliminates:
        task.write(va + i * PAGE_SIZE, data)
        kernel.page_cache.discard(buf.frame)
        kernel.pagemap.put_page(buf.frame)
    kernel.trace.emit("buffered_read", pid=task.pid, blocks=nblocks)


def buffered_write(kernel: "Kernel", task: "Task", dev: BlockDevice,
                   block: int, va: int, nbytes: int) -> None:
    """user memory → CPU copy → page-cache buffer → disk."""
    kernel.clock.charge(kernel.costs.syscall_ns, "rawio")
    nblocks = _block_range(va, nbytes)
    for i in range(nblocks):
        buf = kernel.add_page_cache_page()
        data = task.read(va + i * PAGE_SIZE, PAGE_SIZE)
        kernel.phys.write_frame(buf.frame, data)
        dev.write_block(block + i,
                        kernel.phys.read_frame(buf.frame))
        kernel.page_cache.discard(buf.frame)
        kernel.pagemap.put_page(buf.frame)
    kernel.trace.emit("buffered_write", pid=task.pid, blocks=nblocks)


# ---------------------------------------------------------------------------
# RAW (kiobuf) path
# ---------------------------------------------------------------------------

def raw_read(kernel: "Kernel", task: "Task", dev: BlockDevice,
             block: int, va: int, nbytes: int) -> None:
    """disk → DMA → pinned user pages; zero CPU copies.

    While the transfer is in flight the pages are locked (a kiobuf pin),
    so the reclaim path cannot steal them mid-DMA — the same guarantee
    the paper wants for VIA communication memory.
    """
    kernel.clock.charge(kernel.costs.syscall_ns, "rawio")
    nblocks = _block_range(va, nbytes)
    kio = kernel.map_user_kiobuf(task, va, nbytes, write=True)
    try:
        for i in range(nblocks):
            data = dev.read_block(block + i)
            # The device bus-masters straight into the pinned frame; the
            # transfer itself is part of the disk-I/O charge above, so
            # the byte movement here is cost-free.
            kernel.phys.write_frame(kio.frames[i], data)
    finally:
        kernel.unmap_kiobuf(kio)
    kernel.trace.emit("raw_read", pid=task.pid, blocks=nblocks)


def raw_write(kernel: "Kernel", task: "Task", dev: BlockDevice,
              block: int, va: int, nbytes: int) -> None:
    """pinned user pages → DMA → disk; zero CPU copies."""
    kernel.clock.charge(kernel.costs.syscall_ns, "rawio")
    nblocks = _block_range(va, nbytes)
    kio = kernel.map_user_kiobuf(task, va, nbytes, write=False)
    try:
        for i in range(nblocks):
            data = kernel.phys.read_frame(kio.frames[i])
            dev.write_block(block + i, data)
    finally:
        kernel.unmap_kiobuf(kio)
    kernel.trace.emit("raw_write", pid=task.pid, blocks=nblocks)
