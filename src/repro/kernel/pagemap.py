"""The page map — ``mem_map[]`` plus the free list and frame accounting.

This module owns *who may use which frame*; policy about *when to steal
frames back* lives in :mod:`repro.kernel.paging`.

A central subtlety, copied from the kernel and essential to the paper's
experiment: :meth:`put_page` decrements the reference counter and returns
the frame to the free list **only if the counter reaches zero**.  When a
VIA driver has taken an extra reference, the kernel's ``swap_out`` path
still unmaps the page and calls ``__free_page`` — but because of the
driver's reference the frame is *not* freed: it becomes an **orphan**,
"not really released ... not associated with the virtual page just
swapped out any more but still in use" (Sec. 3.1).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import OutOfMemory, PageAccountingError
from repro.kernel.flags import PG_RESERVED
from repro.kernel.page import PageDescriptor
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.trace import Trace


class PageMap:
    """Array of :class:`PageDescriptor` covering all installed frames."""

    def __init__(self, num_frames: int, clock: SimClock, costs: CostModel,
                 trace: Trace | None = None,
                 reserved_frames: int = 0) -> None:
        self._clock = clock
        self._costs = costs
        self._trace = trace
        self.num_frames = num_frames
        self.pages: list[PageDescriptor] = [
            PageDescriptor(frame=i) for i in range(num_frames)]
        # Frames reserved for the "kernel image" — PG_reserved, never
        # allocatable, mirroring the pages the real kernel marks reserved
        # at boot.
        self._free: list[int] = []
        for i in range(num_frames - 1, reserved_frames - 1, -1):
            self._free.append(i)
        for i in range(reserved_frames):
            pd = self.pages[i]
            pd.set_flag(PG_RESERVED)
            pd.count = 1
            pd.tag = "kernel-image"
        self.reserved_frames = reserved_frames

    # -- queries -----------------------------------------------------------

    def page(self, frame: int) -> PageDescriptor:
        """The descriptor for ``frame``."""
        return self.pages[frame]

    @property
    def free_count(self) -> int:
        """Number of frames on the free list."""
        return len(self._free)

    def __iter__(self) -> Iterator[PageDescriptor]:
        return iter(self.pages)

    # -- allocation ---------------------------------------------------------

    def alloc(self, tag: str = "") -> PageDescriptor:
        """``get_free_pages`` fast path: pop a frame from the free list.

        Raises :class:`~repro.errors.OutOfMemory` when the list is empty;
        the caller (:meth:`repro.kernel.kernel.Kernel.alloc_frame`) is
        responsible for invoking reclaim and retrying — mirroring the
        ``get_free_pages → try_to_free_pages`` structure of the kernel.
        """
        if not self._free:
            raise OutOfMemory("free list empty")
        self._clock.charge(self._costs.frame_alloc_ns, "mm")
        frame = self._free.pop()
        pd = self.pages[frame]
        if pd.count != 0:
            raise PageAccountingError(
                f"frame {frame} on free list with refcount {pd.count}")
        pd.count = 1
        pd.flags = 0
        pd.pin_count = 0
        pd.age = 0
        pd.mapping = None
        pd.cow_shares = 0
        pd.tag = tag
        return pd

    def get_page(self, frame: int) -> PageDescriptor:
        """Take an extra reference on an in-use frame (``get_page``)."""
        pd = self.pages[frame]
        if pd.count == 0:
            raise PageAccountingError(
                f"get_page on free frame {frame}")
        pd.get()
        return pd

    def put_page(self, frame: int) -> bool:
        """``__free_page``: drop one reference; free the frame iff the
        count reaches zero.  Returns True if the frame was actually
        freed.

        Reserved frames are never returned to the free list even at count
        zero (the kernel leaves them alone entirely)."""
        pd = self.pages[frame]
        new_count = pd.put()
        if new_count == 0 and not pd.reserved:
            pd.flags = 0
            pd.mapping = None
            pd.cow_shares = 0
            pd.tag = ""
            if pd.pin_count != 0:
                raise PageAccountingError(
                    f"frame {frame} freed while pinned "
                    f"(pin_count={pd.pin_count})")
            self._free.append(frame)
            if self._trace is not None:
                self._trace.emit("frame_freed", frame=frame)
            return True
        return False

    # -- audits --------------------------------------------------------------

    def orphans(self) -> list[PageDescriptor]:
        """Frames that are in use but mapped by no page table and owned by
        no subsystem tag — the tell-tale of the Sec. 3.1 failure.

        (The kernel has no such query; our audit layer uses it.)
        """
        return [pd for pd in self.pages
                if pd.count > 0 and not pd.reserved
                and pd.mapping is None and not pd.in_page_cache
                and pd.tag == "orphan"]

    def check_free_list(self) -> None:
        """Invariant: every frame on the free list has refcount zero and
        no frame appears twice."""
        seen: set[int] = set()
        for frame in self._free:
            if frame in seen:
                raise PageAccountingError(
                    f"frame {frame} on the free list twice")
            seen.add(frame)
            if self.pages[frame].count != 0:
                raise PageAccountingError(
                    f"frame {frame} free with refcount "
                    f"{self.pages[frame].count}")
