"""The page map — ``mem_map[]`` plus the free list and frame accounting.

This module owns *who may use which frame*; policy about *when to steal
frames back* lives in :mod:`repro.kernel.paging`.

A central subtlety, copied from the kernel and essential to the paper's
experiment: :meth:`put_page` decrements the reference counter and returns
the frame to the free list **only if the counter reaches zero**.  When a
VIA driver has taken an extra reference, the kernel's ``swap_out`` path
still unmaps the page and calls ``__free_page`` — but because of the
driver's reference the frame is *not* freed: it becomes an **orphan**,
"not really released ... not associated with the virtual page just
swapped out any more but still in use" (Sec. 3.1).

Since the E18 scale-out the map is columnar: all per-frame state lives
in one :class:`~repro.kernel.page.FrameTable` and ``self.pages`` holds
cached :class:`~repro.kernel.page.PageDescriptor` *views* (one per
frame, identity-stable).  ``alloc``/``put_page`` mutate the columns
directly; :meth:`orphans` walks the incrementally maintained
orphan-candidate set and :meth:`check_free_list` uses a parallel free
*set* for O(1) duplicate detection, so neither audit scans every frame
(pass ``full_scan=True`` to get the legacy whole-table walk for A/B
benchmarking).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import OutOfMemory, PageAccountingError
from repro.kernel.flags import PG_PAGECACHE, PG_RESERVED
from repro.kernel.page import FrameTable, PageDescriptor
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.trace import Trace


class PageMap:
    """Columnar ``mem_map[]`` covering all installed frames."""

    def __init__(self, num_frames: int, clock: SimClock, costs: CostModel,
                 trace: Trace | None = None,
                 reserved_frames: int = 0) -> None:
        self._clock = clock
        self._costs = costs
        self._trace = trace
        self.num_frames = num_frames
        self.table = FrameTable(num_frames)
        #: identity-stable per-frame views (compatibility surface)
        self.pages: list[PageDescriptor] = [
            PageDescriptor.bound(self.table, i) for i in range(num_frames)]
        # Frames reserved for the "kernel image" — PG_reserved, never
        # allocatable, mirroring the pages the real kernel marks reserved
        # at boot.
        self._free: list[int] = list(
            range(num_frames - 1, reserved_frames - 1, -1))
        self._free_set: set[int] = set(self._free)
        for i in range(reserved_frames):
            self.table.flags[i] |= PG_RESERVED
            self.table.counts[i] = 1
            self.table.set_tag(i, "kernel-image")
        self.reserved_frames = reserved_frames

    # -- queries -----------------------------------------------------------

    def page(self, frame: int) -> PageDescriptor:
        """The descriptor view for ``frame``."""
        return self.pages[frame]

    @property
    def free_count(self) -> int:
        """Number of frames on the free list."""
        return len(self._free)

    def __iter__(self) -> Iterator[PageDescriptor]:
        return iter(self.pages)

    def pinned_frames(self) -> list[int]:
        """Frames currently holding at least one kiobuf pin, in frame
        order — served from the incrementally maintained pinned set, so
        pin audits need not scan the whole table."""
        return sorted(self.table.pinned)

    # -- allocation ---------------------------------------------------------

    def alloc(self, tag: str = "") -> PageDescriptor:
        """``get_free_pages`` fast path: pop a frame from the free list.

        Raises :class:`~repro.errors.OutOfMemory` when the list is empty;
        the caller (:meth:`repro.kernel.kernel.Kernel.alloc_frame`) is
        responsible for invoking reclaim and retrying — mirroring the
        ``get_free_pages → try_to_free_pages`` structure of the kernel.
        """
        if not self._free:
            raise OutOfMemory("free list empty")
        self._clock.charge(self._costs.frame_alloc_ns, "mm")
        frame = self._free.pop()
        self._free_set.discard(frame)
        table = self.table
        if table.counts[frame] != 0:
            raise PageAccountingError(
                f"frame {frame} on free list with refcount "
                f"{table.counts[frame]}")
        table.reset_frame(frame, tag)
        return self.pages[frame]

    def get_page(self, frame: int) -> PageDescriptor:
        """Take an extra reference on an in-use frame (``get_page``)."""
        table = self.table
        if table.counts[frame] == 0:
            raise PageAccountingError(
                f"get_page on free frame {frame}")
        table.counts[frame] += 1
        return self.pages[frame]

    def put_page(self, frame: int) -> bool:
        """``__free_page``: drop one reference; free the frame iff the
        count reaches zero.  Returns True if the frame was actually
        freed.

        Reserved frames are never returned to the free list even at count
        zero (the kernel leaves them alone entirely)."""
        table = self.table
        if table.counts[frame] <= 0:
            raise PageAccountingError(
                f"refcount underflow on frame {frame}")
        table.counts[frame] -= 1
        if table.counts[frame] == 0 and not table.flags[frame] & PG_RESERVED:
            table.scrub_identity(frame)
            if table.pin_counts[frame] != 0:
                raise PageAccountingError(
                    f"frame {frame} freed while pinned "
                    f"(pin_count={table.pin_counts[frame]})")
            self._free.append(frame)
            self._free_set.add(frame)
            if self._trace is not None:
                self._trace.emit("frame_freed", frame=frame)
            return True
        return False

    # -- audits --------------------------------------------------------------

    def orphans(self) -> list[PageDescriptor]:
        """Frames that are in use but mapped by no page table and owned by
        no subsystem tag — the tell-tale of the Sec. 3.1 failure.

        (The kernel has no such query; our audit layer uses it.)  Served
        from the orphan-candidate set the FrameTable maintains on every
        tag write, so the query is O(orphans), not O(frames).
        """
        table = self.table
        return [self.pages[frame]
                for frame in sorted(table.orphan_candidates)
                if table.counts[frame] > 0
                and not table.flags[frame] & (PG_RESERVED | PG_PAGECACHE)
                and table.mappings[frame] is None]

    def orphan_count(self) -> int:
        """Number of frames :meth:`orphans` would return (O(orphans))."""
        table = self.table
        return sum(1 for frame in table.orphan_candidates
                   if table.counts[frame] > 0
                   and not table.flags[frame] & (PG_RESERVED | PG_PAGECACHE)
                   and table.mappings[frame] is None)

    def check_free_list(self, full_scan: bool = False) -> None:
        """Invariant: every frame on the free list has refcount zero and
        no frame appears twice.

        The fast path leans on the parallel free *set*: a duplicate
        shows up as a length mismatch in O(1), and the refcount check is
        a straight ``array`` read per free frame.  ``full_scan=True``
        runs the legacy object-walking audit (kept for the E18 before/
        after benchmark arms).
        """
        if full_scan:
            seen: set[int] = set()
            for frame in self._free:
                if frame in seen:
                    raise PageAccountingError(
                        f"frame {frame} on the free list twice")
                seen.add(frame)
                if self.pages[frame].count != 0:
                    raise PageAccountingError(
                        f"frame {frame} free with refcount "
                        f"{self.pages[frame].count}")
            return
        if len(self._free) != len(self._free_set):
            seen = set()
            for frame in self._free:
                if frame in seen:
                    raise PageAccountingError(
                        f"frame {frame} on the free list twice")
                seen.add(frame)
            raise PageAccountingError(
                "free list and free set disagree "
                f"({len(self._free)} vs {len(self._free_set)})")
        counts = self.table.counts
        for frame in self._free:
            if counts[frame] != 0:
                raise PageAccountingError(
                    f"frame {frame} free with refcount {counts[frame]}")
