"""The Bigphysarea approach — static reserved communication memory.

Before kiobufs, the group's SCI drivers used "the so-called
Bigphysarea-Patch ... an extension to the Linux memory management.
With this patch it is possible to reserve an amount of dedicated
consecutive memory locations for special purposes — such as memory to
export into SCI space" (Trams et al., this collection).

Its two documented problems, both reproduced here:

* it **wastes memory** — the reservation is carved out at boot and is
  unavailable to everyone else "if it is not really exported later";
* applications must allocate communication buffers with a **special
  malloc** from the reserved region, "but this violates a major goal of
  the MPI standard: Architecture Independence" — arbitrary user buffers
  cannot be registered at all.

The region's frames are ``PG_reserved``, so reclaim never touches them:
within its constraints the approach is perfectly reliable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvalidArgument, OutOfMemory
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.flags import PG_RESERVED, VM_READ, VM_WRITE
from repro.kernel.vma import VMArea

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


class BigPhysArea:
    """A boot-time contiguous reservation with a bump/free-list
    allocator (``bigphysarea_alloc_pages``)."""

    def __init__(self, kernel: "Kernel", npages: int) -> None:
        if npages <= 0:
            raise InvalidArgument("reservation must be positive")
        if npages > kernel.pagemap.free_count:
            raise OutOfMemory(
                f"cannot reserve {npages} pages: only "
                f"{kernel.pagemap.free_count} free")
        self.kernel = kernel
        self.frames: list[int] = []
        for _ in range(npages):
            pd = kernel.pagemap.alloc(tag="bigphysarea")
            pd.set_flag(PG_RESERVED)
            self.frames.append(pd.frame)
        self.frames.sort()
        self._free: list[int] = list(self.frames)
        #: (task pid, base vpn) → list of frames, for freeing
        self._grants: dict[tuple[int, int], list[int]] = {}

    # -- allocator ----------------------------------------------------------

    @property
    def total_pages(self) -> int:
        """Size of the reservation."""
        return len(self.frames)

    @property
    def free_pages(self) -> int:
        """Currently unallocated pages of the reservation."""
        return len(self._free)

    def contains(self, frame: int) -> bool:
        """True iff ``frame`` belongs to the reservation."""
        return frame in self._frame_set

    @property
    def _frame_set(self) -> set[int]:
        cached = getattr(self, "_frame_set_cache", None)
        if cached is None:
            cached = set(self.frames)
            self._frame_set_cache = cached
        return cached

    # -- the "special malloc" ---------------------------------------------------

    def alloc(self, task: "Task", npages: int,
              name: str = "bigphys") -> int:
        """``bigphys_malloc``: map ``npages`` of reserved memory into
        ``task``; returns the base virtual address.

        The pages are resident immediately (they are real reserved
        frames) and can never be swapped (``PG_reserved``)."""
        if npages <= 0:
            raise InvalidArgument(f"cannot allocate {npages} pages")
        if npages > len(self._free):
            raise OutOfMemory(
                f"bigphysarea exhausted: {npages} requested, "
                f"{len(self._free)} free")
        frames = [self._free.pop(0) for _ in range(npages)]
        start_vpn = task.mmap_hint_vpn
        task.mmap_hint_vpn += npages + 1
        task.vmas.insert(VMArea(start_vpn, start_vpn + npages,
                                VM_READ | VM_WRITE, name=name))
        for i, frame in enumerate(frames):
            pd = self.kernel.pagemap.get_page(frame)
            pd.mapping = (task.pid, start_vpn + i)
            self.kernel.phys.zero_frame(frame)
            task.page_table.set_mapping(start_vpn + i, frame,
                                        writable=True)
        self._grants[(task.pid, start_vpn)] = frames
        return start_vpn * PAGE_SIZE

    def free(self, task: "Task", va: int) -> None:
        """``bigphys_free``: unmap and return a grant to the pool."""
        key = (task.pid, va // PAGE_SIZE)
        frames = self._grants.pop(key, None)
        if frames is None:
            raise InvalidArgument(
                f"va {va:#x} is not a bigphys grant of {task.name}")
        start_vpn = va // PAGE_SIZE
        task.vmas.remove_range(start_vpn, start_vpn + len(frames))
        for i, frame in enumerate(frames):
            task.page_table.clear(start_vpn + i)
            pd = self.kernel.pagemap.page(frame)
            pd.mapping = None
            pd.put()          # drop the mapping ref; stays reserved
        self._free.extend(frames)
        self._free.sort()
