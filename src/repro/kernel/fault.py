"""Page-fault handling: demand-zero, copy-on-write, and swap-in.

Reproduces the behaviour Section 3.1 relies on: "When we come to step 4
... the locktest process will cause a not-present page fault.  The memory
subsystem extracts the swap file index from the page table entry and
starts reading the page back from disk.  **A new page is allocated for
this.**  Note, that it cannot be one of the pages formerly mapped to the
registered region since the kernel still regards them used."

That "new page is allocated" is what disconnects the NIC's stale TPT from
the process — the fault handler here does exactly that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.events import SWAP_IN
from repro.errors import PageAccountingError, SegmentationFault
from repro.kernel.flags import VM_WRITE

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


def handle_fault(kernel: "Kernel", task: "Task", vpn: int,
                 write: bool) -> int:
    """Service a page fault at ``vpn``; returns the frame now mapped.

    Dispatch order mirrors ``do_page_fault``/``handle_mm_fault``:

    1. no VMA → SIGSEGV,
    2. access-rights check against the VMA,
    3. present PTE + write to a COW page → break COW,
    4. not-present PTE with a swap slot → major fault (swap-in),
    5. otherwise → minor fault (demand-zero).
    """
    vma = task.vmas.find(vpn)
    if vma is None:
        raise SegmentationFault(
            f"{task.name}: fault at vpn {vpn} outside any VMA")
    if write and not (vma.flags & VM_WRITE):
        raise SegmentationFault(
            f"{task.name}: write fault at vpn {vpn} in read-only VMA")

    pte = task.page_table.lookup(vpn)

    # -- present: only a COW break or a spurious fault can land here --------
    if pte is not None and pte.present:
        if write and not pte.writable and pte.cow:
            return _break_cow(kernel, task, vpn)
        if write and not pte.writable:
            raise SegmentationFault(
                f"{task.name}: write to write-protected vpn {vpn}")
        pte.accessed = True
        return pte.frame

    # -- not present: swap-in (major) or demand-zero (minor) ----------------
    if pte is not None and pte.swapped:
        return _swap_in(kernel, task, vpn, pte.swap_slot, vma_writable=bool(
            vma.flags & VM_WRITE))

    return _demand_zero(kernel, task, vpn, vma_writable=bool(
        vma.flags & VM_WRITE))


def _demand_zero(kernel: "Kernel", task: "Task", vpn: int,
                 vma_writable: bool) -> int:
    """Minor fault: allocate and zero a fresh frame."""
    pd = kernel.alloc_frame(tag=f"anon:{task.pid}")
    kernel.phys.zero_frame(pd.frame)
    pd.mapping = (task.pid, vpn)
    task.page_table.set_mapping(vpn, pd.frame, writable=vma_writable)
    task.minor_faults += 1
    kernel.clock.charge(kernel.costs.minor_fault_ns, "fault")
    kernel.trace.emit("minor_fault", pid=task.pid, vpn=vpn, frame=pd.frame)
    return pd.frame


def _swap_in(kernel: "Kernel", task: "Task", vpn: int, slot: int,
             vma_writable: bool) -> int:
    """Major fault: read the page back from swap into a *new* frame."""
    pd = kernel.alloc_frame(tag=f"anon:{task.pid}")
    data = kernel.swap.read_page(slot)
    kernel.phys.write_frame(pd.frame, data)
    kernel.swap.free_slot(slot)
    pd.mapping = (task.pid, vpn)
    task.page_table.set_mapping(vpn, pd.frame, writable=vma_writable,
                                dirty=True)
    task.major_faults += 1
    kernel.clock.charge(kernel.costs.major_fault_base_ns, "fault")
    if kernel.events.active:
        kernel.events.emit(SWAP_IN, pid=task.pid, vpn=vpn, frame=pd.frame,
                           slot=slot)
    kernel.trace.emit("swap_in", pid=task.pid, vpn=vpn, frame=pd.frame,
                      slot=slot)
    return pd.frame


def _drop_cow_share(kernel: "Kernel", task: "Task", vpn: int,
                    pd) -> None:
    """Decrement a frame's COW sharer count, refusing to underflow.

    A COW break on a frame whose sharer count is already zero means the
    fork/munmap/exit accounting lost a decrement somewhere — the kind of
    silent corruption the ODP eviction path (which trusts ``cow_shares``
    to decide stealability) would turn into a stale DMA.  Clamping hid
    it; now it always leaves a trace, and under strict accounting it is
    fatal.
    """
    if pd.cow_shares <= 0:
        kernel.trace.emit("cow_underflow", pid=task.pid, vpn=vpn,
                          frame=pd.frame, cow_shares=pd.cow_shares)
        kernel.obs.inc("kernel.fault.cow_underflows")
        if kernel.strict_accounting:
            raise PageAccountingError(
                f"COW sharer-count underflow on frame {pd.frame} "
                f"(pid {task.pid}, vpn {vpn}): breaking COW with "
                f"cow_shares={pd.cow_shares}")
        return
    pd.cow_shares -= 1


def _break_cow(kernel: "Kernel", task: "Task", vpn: int) -> int:
    """Copy-on-write break: give the faulting task a private copy."""
    pte = task.page_table.lookup(vpn)
    assert pte is not None and pte.present and pte.cow
    old = kernel.pagemap.page(pte.frame)
    if old.count == 1:
        # Last sharer: simply regain write access in place.
        pte.writable = True
        pte.cow = False
        _drop_cow_share(kernel, task, vpn, old)
        kernel.trace.emit("cow_reuse", pid=task.pid, vpn=vpn,
                          frame=old.frame)
        return old.frame
    new = kernel.alloc_frame(tag=f"anon:{task.pid}")
    kernel.phys.copy_frame(old.frame, new.frame)
    _drop_cow_share(kernel, task, vpn, old)
    kernel.pagemap.put_page(old.frame)
    new.mapping = (task.pid, vpn)
    task.page_table.set_mapping(vpn, new.frame, writable=True, dirty=True)
    task.minor_faults += 1
    kernel.clock.charge(kernel.costs.minor_fault_ns, "fault")
    kernel.clock.charge(kernel.costs.memcpy_ns(kernel.phys.size_bytes
                                               // kernel.phys.num_frames),
                        "fault")
    kernel.trace.emit("cow_copy", pid=task.pid, vpn=vpn,
                      src=old.frame, dst=new.frame)
    return new.frame
