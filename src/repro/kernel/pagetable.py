"""Per-task page tables.

A page-table entry is either **present** (maps a frame, with a writable
bit) or **not present**; a not-present entry may carry a swap-slot index,
in which case the page's contents live on the swap device and the next
touch takes a *major* fault.  This is precisely the state machine the
paper's Section 3.1 walks through: ``swap_out`` "stores the swap address
in the page table and marks the entry not-present".
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator


@dataclass
class PTE:
    """One page-table entry."""

    present: bool = False
    frame: int = -1            #: valid iff present
    writable: bool = False
    dirty: bool = False
    accessed: bool = False
    cow: bool = False          #: write-protected pending copy-on-write
    swap_slot: int = -1        #: valid iff not present and >= 0

    @property
    def swapped(self) -> bool:
        """Entry refers to a swap slot rather than a frame."""
        return (not self.present) and self.swap_slot >= 0


class PageTable:
    """Sparse map from virtual page number to :class:`PTE`.

    (The real kernel uses a multi-level radix structure; the simulator
    uses a dict because only the *semantics* of entries matter to the
    paper's arguments, not their encoding.)
    """

    def __init__(self) -> None:
        self._entries: dict[int, PTE] = {}
        #: sorted vpn cache — walks are far more frequent than
        #: insert/remove, so sort once and invalidate on mutation
        #: instead of re-sorting on every walk
        self._sorted_vpns: list[int] | None = None

    def _sorted(self) -> list[int]:
        if self._sorted_vpns is None:
            self._sorted_vpns = sorted(self._entries)
        return self._sorted_vpns

    def lookup(self, vpn: int) -> PTE | None:
        """The entry for ``vpn``, or None if no entry exists at all."""
        return self._entries.get(vpn)

    def ensure(self, vpn: int) -> PTE:
        """The entry for ``vpn``, creating an empty one if needed."""
        pte = self._entries.get(vpn)
        if pte is None:
            pte = PTE()
            self._entries[vpn] = pte
            self._sorted_vpns = None
        return pte

    def set_mapping(self, vpn: int, frame: int, writable: bool,
                    dirty: bool = False) -> PTE:
        """Install a present mapping ``vpn → frame``."""
        pte = self.ensure(vpn)
        pte.present = True
        pte.frame = frame
        pte.writable = writable
        pte.dirty = dirty
        pte.accessed = True
        pte.swap_slot = -1
        return pte

    def set_swapped(self, vpn: int, slot: int) -> PTE:
        """Mark ``vpn`` not-present with its contents in swap ``slot``."""
        pte = self.ensure(vpn)
        pte.present = False
        pte.frame = -1
        pte.swap_slot = slot
        return pte

    def clear(self, vpn: int) -> None:
        """Remove any entry for ``vpn`` (munmap path)."""
        if self._entries.pop(vpn, None) is not None:
            self._sorted_vpns = None

    def present_entries(self) -> Iterator[tuple[int, PTE]]:
        """Iterate ``(vpn, pte)`` over present entries, ascending vpn."""
        for vpn in self._sorted():
            pte = self._entries[vpn]
            if pte.present:
                yield vpn, pte

    def entries_in(self, start_vpn: int, end_vpn: int
                   ) -> Iterator[tuple[int, PTE]]:
        """Iterate entries with ``start_vpn <= vpn < end_vpn``
        (bisected out of the sorted-key cache, not a full scan)."""
        keys = self._sorted()
        for i in range(bisect_left(keys, start_vpn), len(keys)):
            vpn = keys[i]
            if vpn >= end_vpn:
                break
            yield vpn, self._entries[vpn]

    def __len__(self) -> int:
        return len(self._entries)

    def resident_count(self) -> int:
        """Number of present entries (the task's RSS in pages)."""
        return sum(1 for _, pte in self.present_entries())
