"""``mlock``/``munlock`` — the VMA-based locking approach of Section 3.2.

Three entry points mirror the three ways the paper discusses of reaching
``do_mlock``:

* :func:`sys_mlock` — the standard syscall: checks ``CAP_IPC_LOCK``
  ("only super-user processes are allowed to use mlock").
* :func:`do_mlock` — the internal function a driver may call directly
  once the kernel is patched to move the uid check up into ``sys_mlock``
  (the "User-DMA patch" variant).
* the ``cap_raise``/``do_mlock``/``cap_lower`` dance, available through
  :func:`mlock_with_cap_dance` — "the Kernel Agent's registration
  function can grant that capability to the current process by means of
  cap_raise(), then call do_mlock and reclaim the capability again".

The crucial semantic wart, faithfully preserved: **mlock calls do not
nest** — "a single unlock operation annuls multiple lock operations on
the same address".  ``do_munlock`` clears ``VM_LOCKED`` unconditionally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.events import MLOCK, MUNLOCK
from repro.errors import InvalidArgument, PermissionDenied
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.capabilities import CAP_IPC_LOCK, capable
from repro.kernel.fault import handle_fault
from repro.kernel.flags import VM_LOCKED, VM_WRITE
from repro.sim.faults import crash_if_due

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


def _range_vpns(va: int, nbytes: int) -> tuple[int, int]:
    if nbytes <= 0:
        raise InvalidArgument(f"cannot lock {nbytes} bytes")
    start_vpn = va // PAGE_SIZE
    end_vpn = (va + nbytes - 1) // PAGE_SIZE + 1
    return start_vpn, end_vpn


def sys_mlock(kernel: "Kernel", task: "Task", va: int, nbytes: int) -> None:
    """The ``mlock(2)`` syscall: capability-checked entry to
    :func:`do_mlock`."""
    kernel.clock.charge(kernel.costs.syscall_ns, "syscall")
    kernel.clock.charge(kernel.costs.capability_check_ns, "syscall")
    if not capable(task, CAP_IPC_LOCK):
        raise PermissionDenied(
            f"{task.name} (uid {task.uid}) lacks CAP_IPC_LOCK")
    do_mlock(kernel, task, va, nbytes)


def do_mlock(kernel: "Kernel", task: "Task", va: int, nbytes: int) -> None:
    """Lock ``[va, va+nbytes)``: split boundary VMAs, set ``VM_LOCKED``,
    and make every page present (``make_pages_present``).

    No permission check — this is the kernel-internal function; callers
    are responsible for authorization (that *is* the Sec. 3.2 plot).
    """
    start_vpn, end_vpn = _range_vpns(va, nbytes)
    if not task.vmas.covers(start_vpn, end_vpn):
        raise InvalidArgument(
            f"mlock range vpns [{start_vpn}, {end_vpn}) has unmapped holes")
    kernel.clock.charge(kernel.costs.mlock_range_ns, "mlock")
    splits = task.vmas.split_range(start_vpn, end_vpn)
    kernel.clock.charge(splits * kernel.costs.vma_split_ns, "mlock")
    task.vmas.set_flags_range(start_vpn, end_vpn, set_bits=VM_LOCKED)
    # make_pages_present: fault everything in now, so locking guarantees
    # residency and known physical addresses.
    for vpn in range(start_vpn, end_vpn):
        pte = task.page_table.lookup(vpn)
        if pte is None or not pte.present:
            vma = task.vmas.find_or_fault(vpn)
            handle_fault(kernel, task, vpn,
                         write=bool(vma.flags & VM_WRITE))
    if kernel.events.active:
        kernel.events.emit(MLOCK, pid=task.pid, start_vpn=start_vpn,
                           end_vpn=end_vpn)
    kernel.trace.emit("mlock", pid=task.pid, start_vpn=start_vpn,
                      end_vpn=end_vpn)


def sys_munlock(kernel: "Kernel", task: "Task", va: int,
                nbytes: int) -> None:
    """The ``munlock(2)`` syscall.

    Note: the real syscall performs no capability check on unlock, and
    **clears VM_LOCKED unconditionally** — the non-nesting behaviour the
    paper calls "another major drawback of this approach".
    """
    kernel.clock.charge(kernel.costs.syscall_ns, "syscall")
    do_munlock(kernel, task, va, nbytes)


def do_munlock(kernel: "Kernel", task: "Task", va: int,
               nbytes: int) -> None:
    """Clear ``VM_LOCKED`` over the range — regardless of how many times
    it was locked."""
    start_vpn, end_vpn = _range_vpns(va, nbytes)
    kernel.clock.charge(kernel.costs.mlock_range_ns, "mlock")
    splits = task.vmas.split_range(start_vpn, end_vpn)
    kernel.clock.charge(splits * kernel.costs.vma_split_ns, "mlock")
    task.vmas.set_flags_range(start_vpn, end_vpn, clear_bits=VM_LOCKED)
    task.vmas.merge_adjacent()
    if kernel.events.active:
        kernel.events.emit(MUNLOCK, pid=task.pid, start_vpn=start_vpn,
                           end_vpn=end_vpn)
    kernel.trace.emit("munlock", pid=task.pid, start_vpn=start_vpn,
                      end_vpn=end_vpn)


def mlock_with_cap_dance(kernel: "Kernel", task: "Task", va: int,
                         nbytes: int) -> None:
    """The capability dance: temporarily grant ``CAP_IPC_LOCK``, go
    through the *checked* syscall path, then revoke it.

    Restores the capability set exactly (if the task already held the
    capability it keeps it), **on every exit path**: an mlock failure —
    or the process dying inside the window (the ``mlock.cap_raised``
    crash point) — must not leave an unprivileged task holding
    CAP_IPC_LOCK, or one crashed registration would mint a permanently
    privileged process."""
    from repro.kernel.capabilities import cap_lower, cap_raise
    had = CAP_IPC_LOCK in task.capabilities
    cap_raise(task, CAP_IPC_LOCK)
    try:
        crash_if_due(kernel.fault_plan, kernel, task, "mlock.cap_raised")
        sys_mlock(kernel, task, va, nbytes)
    finally:
        if not had:
            cap_lower(task, CAP_IPC_LOCK)
