"""Page-descriptor and VM-area flag bits.

Named after their Linux counterparts so the code reads like the kernel
sources the paper cites (``mm/vmscan.c``, ``mm/filemap.c``).
"""

from __future__ import annotations

# -- per-page flags (mem_map_t.flags) ---------------------------------------

#: Page is locked for I/O; reclaim must leave it alone
#: ("Pages with the PG_locked bit set are left untouched").
PG_LOCKED = 1 << 0

#: Page is not available to the system at all — "not even counted to the
#: total amount of available memory".
PG_RESERVED = 1 << 1

#: Recently referenced — used by the shrink_mmap clock algorithm to give
#: pages a second chance.
PG_REFERENCED = 1 << 2

#: Page belongs to the page/buffer cache (simulated kernel I/O buffers),
#: i.e. it is a shrink_mmap candidate rather than a swap_out candidate.
PG_PAGECACHE = 1 << 3

PAGE_FLAG_NAMES = {
    PG_LOCKED: "PG_locked",
    PG_RESERVED: "PG_reserved",
    PG_REFERENCED: "PG_referenced",
    PG_PAGECACHE: "PG_pagecache",
}

# -- per-VMA flags (vm_area_struct.vm_flags) ---------------------------------

VM_READ = 1 << 0
VM_WRITE = 1 << 1

#: VMA is locked against swapping; ``swap_out_vma`` skips it
#: ("VMAs with the VM_LOCKED bit set are skipped").
VM_LOCKED = 1 << 3

#: Device/IO mapping (doorbell pages); never swapped, never COWed.
VM_IO = 1 << 4

VMA_FLAG_NAMES = {
    VM_READ: "VM_READ",
    VM_WRITE: "VM_WRITE",
    VM_LOCKED: "VM_LOCKED",
    VM_IO: "VM_IO",
}


def describe_flags(flags: int, names: dict[int, str]) -> str:
    """Render a flag word as ``"PG_locked|PG_referenced"`` for messages."""
    parts = [name for bit, name in names.items() if flags & bit]
    return "|".join(parts) if parts else "0"
